"""Tests for main memory, page tables and permission checks."""

from __future__ import annotations

import pytest

from repro.uarch import Fault, MainMemory, MemorySystem, PAGE_SIZE, PageTable


class TestMainMemory:
    def test_default_contents_are_zero(self):
        memory = MainMemory()
        assert memory.read(0x1000, 8) == 0

    def test_byte_roundtrip(self):
        memory = MainMemory()
        memory.write_byte(0x1000, 0xAB)
        assert memory.read_byte(0x1000) == 0xAB

    def test_little_endian_multibyte(self):
        memory = MainMemory()
        memory.write(0x1000, 0x1122334455667788, 8)
        assert memory.read_byte(0x1000) == 0x88
        assert memory.read_byte(0x1007) == 0x11
        assert memory.read(0x1000, 8) == 0x1122334455667788

    def test_partial_read(self):
        memory = MainMemory()
        memory.write(0x1000, 0xDEADBEEF, 4)
        assert memory.read(0x1000, 2) == 0xBEEF

    def test_load_bytes(self):
        memory = MainMemory()
        memory.load_bytes(0x2000, [1, 2, 3])
        assert memory.read(0x2000, 3) == 0x030201
        assert 0x2001 in memory


class TestPageTable:
    def test_default_pages_are_user_present(self):
        table = PageTable()
        assert table.check(0x1000, supervisor=False) is Fault.NONE

    def test_kernel_page_faults_for_user(self):
        table = PageTable()
        table.map_range(0xFFFF0000, 64, user=False)
        assert table.check(0xFFFF0000, supervisor=False) is Fault.PRIVILEGE
        assert table.check(0xFFFF0000, supervisor=True) is Fault.NONE

    def test_unmapped_page_not_present(self):
        table = PageTable()
        table.unmap_range(0xFFFF0000, 64)
        assert table.check(0xFFFF0000, supervisor=True) is Fault.NOT_PRESENT
        assert not table.is_present(0xFFFF0000)

    def test_read_only_page(self):
        table = PageTable()
        table.map_range(0x5000, 64, writable=False)
        assert table.check(0x5000, supervisor=False, write=True) is Fault.READ_ONLY
        assert table.check(0x5000, supervisor=False, write=False) is Fault.NONE

    def test_map_range_spans_pages(self):
        table = PageTable()
        table.map_range(PAGE_SIZE - 8, 16, user=False)
        assert table.check(PAGE_SIZE - 4, supervisor=False) is Fault.PRIVILEGE
        assert table.check(PAGE_SIZE + 4, supervisor=False) is Fault.PRIVILEGE

    def test_page_of(self):
        assert PageTable.page_of(0) == 0
        assert PageTable.page_of(PAGE_SIZE) == 1


class TestMemorySystem:
    def test_read_returns_data_even_on_privilege_fault(self):
        """The Meltdown-enabling behaviour: data races with the permission check."""
        system = MemorySystem()
        system.memory.write(0xFFFF0000, 0x42, 1)
        system.page_table.map_range(0xFFFF0000, 64, user=False)
        access = system.read(0xFFFF0000, 1, supervisor=False)
        assert access.fault is Fault.PRIVILEGE
        assert access.value == 0x42

    def test_read_of_unmapped_page_returns_nothing(self):
        """The KPTI-enabling behaviour: an unmapped page has no data to leak."""
        system = MemorySystem()
        system.memory.write(0xFFFF0000, 0x42, 1)
        system.page_table.unmap_range(0xFFFF0000, 64)
        access = system.read(0xFFFF0000, 1, supervisor=False)
        assert access.fault is Fault.NOT_PRESENT
        assert access.value == 0

    def test_write_respects_permissions(self):
        system = MemorySystem()
        system.page_table.map_range(0x5000, 64, writable=False)
        assert system.write(0x5000, 1, 1, supervisor=False) is Fault.READ_ONLY
        assert system.memory.read(0x5000, 1) == 0
        assert system.write(0x6000, 7, 1, supervisor=False) is Fault.NONE
        assert system.memory.read(0x6000, 1) == 7
