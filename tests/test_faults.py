"""Tests for deterministic fault injection and the fault-tolerant grid plane."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.engine import (
    Engine,
    FailurePolicy,
    GridPointFailed,
    Result,
)
from repro.faults import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    FaultyDiskStore,
    apply_store_faults,
    load_fault_plan,
)
from repro.scenario import ScenarioGrid, ScenarioSpec
from repro.store import DiskStore, MemoryStore

pytestmark = pytest.mark.faults


def _simulate_grid(secrets):
    return ScenarioGrid(
        "simulate", axes={"attack": ["spectre_v1"], "secret": list(secrets)}
    )


#: A policy tuned for tests: fast backoff, no jitter, one retry.
FAST = FailurePolicy(retries=1, backoff=0.001, jitter=0.0)


# ---------------------------------------------------------------------------
# FaultSpec / FaultPlan mechanics
# ---------------------------------------------------------------------------
class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor")

    def test_rate_bounds_enforced(self):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec(kind="exception", rate=1.5)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="count"):
            FaultSpec(kind="exception", count=-1)

    def test_dict_round_trip(self):
        spec = FaultSpec(kind="hang", match="secret=3", rate=0.5, hang_seconds=2.0)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fault field"):
            FaultSpec.from_dict({"kind": "exception", "blast_radius": 3})


class TestFaultPlan:
    def test_exception_fault_raises_fault_injected(self):
        plan = FaultPlan([FaultSpec(kind="exception")])
        with pytest.raises(FaultInjected):
            plan.fire_point("simulate(attack='spectre_v1')")

    def test_match_selects_only_matching_keys(self):
        plan = FaultPlan([FaultSpec(kind="exception", match="secret=3")])
        plan.fire_point("simulate(attack='spectre_v1', secret=1)")  # no fire
        with pytest.raises(FaultInjected):
            plan.fire_point("simulate(attack='spectre_v1', secret=3)")

    def test_rate_selection_is_deterministic_across_instances(self):
        def hits(seed):
            plan = FaultPlan([FaultSpec(kind="exception", rate=0.5)], seed=seed)
            fired = set()
            for i in range(64):
                try:
                    plan.fire_point(f"key-{i}")
                except FaultInjected:
                    fired.add(i)
            return fired

        first, second = hits(7), hits(7)
        assert first == second
        assert 0 < len(first) < 64
        assert hits(8) != first  # a different seed picks different points

    def test_count_without_state_dir_is_per_instance(self):
        plan = FaultPlan([FaultSpec(kind="exception", count=1)])
        with pytest.raises(FaultInjected):
            plan.fire_point("k")
        plan.fire_point("k")  # credit spent, no fire
        clone = pickle.loads(pickle.dumps(plan))
        with pytest.raises(FaultInjected):  # counts reset at the pickle boundary
            clone.fire_point("k")

    def test_count_with_state_dir_is_exact_across_instances(self, tmp_path):
        def make():
            return FaultPlan(
                [FaultSpec(kind="exception", count=2)], state_dir=tmp_path
            )

        fired = 0
        for _ in range(5):
            try:
                make().fire_point("k")  # fresh instance every time
            except FaultInjected:
                fired += 1
        assert fired == 2
        assert len(list(tmp_path.glob("*.token"))) == 2

    def test_plan_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            [FaultSpec(kind="crash", match="secret=5"), FaultSpec(kind="corrupt")],
            seed=11,
            state_dir=tmp_path,
        )
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()))
        loaded = load_fault_plan(path)
        assert loaded.seed == 11
        assert loaded.faults == plan.faults
        assert loaded.state_dir == str(tmp_path)

    def test_plan_rejects_non_object_json(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            load_fault_plan(path)


# ---------------------------------------------------------------------------
# The supervised grid plane: retry, quarantine, timeout, pool respawn
# ---------------------------------------------------------------------------
class TestQuarantine:
    def test_serial_exception_is_quarantined_and_grid_completes(self):
        faults = FaultPlan([FaultSpec(kind="exception", match="secret=2")])
        with Engine(policy=FAST, faults=faults) as engine:
            result = engine.run_grid(_simulate_grid(range(4)))
        assert result.data["quarantined"] == 1
        assert result.data["points"] == 4
        bad = result.data["rows"][2]
        assert bad["ok"] is False
        assert bad["data"]["quarantined"] is True
        assert bad["data"]["error"] == "FaultInjected"
        good = [row for i, row in enumerate(result.data["rows"]) if i != 2]
        assert all("quarantined" not in row["data"] for row in good)
        summary = engine.stats()["grid"]
        assert summary["quarantined"] == 1
        assert summary["retried"] == FAST.retries

    def test_error_envelope_shape(self):
        faults = FaultPlan([FaultSpec(kind="exception")])
        with Engine(policy=FAST, faults=faults) as engine:
            result = engine.run_grid(_simulate_grid([0]))
        (envelope,) = result.payload
        assert envelope.kind == "error"
        assert envelope.ok is False
        assert envelope.cache == "none"
        assert envelope.data["attempts"] == FAST.retries + 1
        assert "FaultInjected" in envelope.data["error"]

    def test_retry_heals_a_transient_fault(self, tmp_path):
        # One firing credit in a shared state_dir: the first attempt trips,
        # every retry finds the token spent and succeeds.
        faults = FaultPlan(
            [FaultSpec(kind="exception", match="secret=1", count=1)],
            state_dir=tmp_path,
        )
        with Engine(policy=FAST, faults=faults) as engine:
            result = engine.run_grid(_simulate_grid(range(3)))
        assert "quarantined" not in result.data
        summary = engine.stats()["grid"]
        assert summary["retried"] == 1
        assert summary["quarantined"] == 0

    def test_quarantine_disabled_raises_grid_point_failed(self):
        faults = FaultPlan([FaultSpec(kind="exception", match="secret=0")])
        policy = FailurePolicy(retries=1, backoff=0.001, jitter=0.0, quarantine=False)
        with Engine(policy=policy, faults=faults) as engine:
            with pytest.raises(GridPointFailed, match="FaultInjected"):
                engine.run_grid(_simulate_grid(range(2)))

    def test_crashed_worker_is_quarantined_and_pool_respawned(self):
        faults = FaultPlan([FaultSpec(kind="crash", match="secret=1")])
        policy = FailurePolicy(retries=1, backoff=0.001, jitter=0.0, timeout=60.0)
        with Engine(parallel=2, policy=policy, faults=faults) as engine:
            result = engine.run_grid(_simulate_grid(range(4)))
        assert result.data["quarantined"] == 1
        assert result.data["rows"][1]["data"]["quarantined"] is True
        # The innocent points all completed despite the dead pool.
        for i in (0, 2, 3):
            assert "quarantined" not in result.data["rows"][i]["data"]
        assert engine.stats()["grid"]["pool_respawns"] >= 1

    def test_hung_worker_times_out_and_is_quarantined(self):
        faults = FaultPlan(
            [FaultSpec(kind="hang", match="secret=1", hang_seconds=30.0)]
        )
        policy = FailurePolicy(retries=1, backoff=0.001, jitter=0.0, timeout=1.0)
        with Engine(parallel=2, policy=policy, faults=faults) as engine:
            result = engine.run_grid(_simulate_grid(range(3)))
        assert result.data["quarantined"] == 1
        bad = result.data["rows"][1]["data"]
        assert bad["error"] == "Timeout"
        assert engine.stats()["grid"]["timeouts"] >= 1


# ---------------------------------------------------------------------------
# Streaming + checkpointing + resume
# ---------------------------------------------------------------------------
class TestStreamingCheckpoints:
    def test_iter_grid_checkpoints_each_point_as_it_is_yielded(self, tmp_path):
        store = DiskStore(root=tmp_path, version="t")
        grid = _simulate_grid(range(4))
        with Engine(store=store) as engine:
            for seen, point in enumerate(engine.iter_grid(grid), start=1):
                assert isinstance(point.result, Result)
                entries = store.stats()["entries"]
                assert entries >= seen  # persisted before the yield

    def test_resume_serves_checkpoints_without_recompute(self, tmp_path):
        grid = _simulate_grid(range(4))
        with Engine(store=DiskStore(root=tmp_path, version="t")) as engine:
            cold = engine.run_grid(grid)
        store = DiskStore(root=tmp_path, version="t")
        with Engine(store=store) as engine:
            warm = engine.run_grid(grid)
            summary = engine.stats()["grid"]
        assert warm.data == cold.data
        assert summary["resumed"] == 4
        assert store.stats()["misses"] == 0

    def test_partial_checkpoints_resume_only_missing_points(self, tmp_path):
        grid = _simulate_grid(range(6))
        specs = grid.specs()
        seed = DiskStore(root=tmp_path, version="t")
        with Engine(store=seed) as engine:
            for spec in specs[:2]:  # simulate a campaign killed after 2 points
                engine.run(spec)
        store = DiskStore(root=tmp_path, version="t")
        with Engine(store=store) as engine:
            result = engine.run_grid(grid)
            summary = engine.stats()["grid"]
        assert result.data["points"] == 6
        assert summary["resumed"] == 2
        # Only the four missing points actually executed ...
        assert engine.stats()["runs"]["simulate"] == 4
        # ... and their checkpoints joined the first two on disk.
        assert store.stats()["entries"] == 6

    def test_quarantined_points_are_never_checkpointed(self, tmp_path):
        store = DiskStore(root=tmp_path, version="t")
        faults = FaultPlan([FaultSpec(kind="exception", match="secret=1")])
        with Engine(store=store, policy=FAST, faults=faults) as engine:
            result = engine.run_grid(_simulate_grid(range(3)))
        assert result.data["quarantined"] == 1
        assert store.stats()["entries"] == 2  # only the healthy points persisted
        # A resume without the fault plan heals the grid.
        with Engine(store=DiskStore(root=tmp_path, version="t"), policy=FAST) as engine:
            healed = engine.run_grid(_simulate_grid(range(3)))
        assert "quarantined" not in healed.data


class TestFaultFreeEnvelopes:
    def test_serial_and_policy_envelopes_are_identical(self):
        grid = _simulate_grid(range(4))
        with Engine() as engine:
            legacy = engine.run_grid(grid)
        with Engine(policy=FAST) as engine:
            supervised = engine.run_grid(grid)
        assert supervised.data == legacy.data
        assert supervised.subject == legacy.subject
        assert supervised.ok == legacy.ok

    def test_fault_free_grid_data_keys_are_unchanged(self):
        with Engine() as engine:
            result = engine.run_grid(_simulate_grid(range(2)))
        assert sorted(result.data) == ["axes", "kind", "ok_points", "points", "rows"]


# ---------------------------------------------------------------------------
# Store sabotage: corrupted checkpoints recompute, never propagate
# ---------------------------------------------------------------------------
class TestFaultyDiskStore:
    @pytest.mark.parametrize("kind", ["corrupt", "partial_write"])
    def test_sabotaged_entry_recomputes_then_heals(self, tmp_path, kind):
        spec = ScenarioSpec("simulate", attack="spectre_v1", secret=9)
        plan = FaultPlan([FaultSpec(kind=kind, count=1)])
        with Engine(store=FaultyDiskStore(root=tmp_path, plan=plan, version="t")) as engine:
            first = engine.run(spec)
        assert first.cache == "cold"
        # The sabotaged entry is detected, dropped, and recomputed ...
        with Engine(store=DiskStore(root=tmp_path, version="t")) as engine:
            second = engine.run(spec)
        assert second.cache == "cold"
        assert second.data == first.data
        # ... and the rewritten entry serves warm.
        with Engine(store=DiskStore(root=tmp_path, version="t")) as engine:
            third = engine.run(spec)
        assert third.cache == "warm"
        assert third.data == first.data

    def test_faulty_store_pickles_to_a_healthy_disk_store(self, tmp_path):
        plan = FaultPlan([FaultSpec(kind="corrupt")])
        store = FaultyDiskStore(root=tmp_path, plan=plan, version="t")
        clone = pickle.loads(pickle.dumps(store))
        assert type(clone) is DiskStore

    def test_apply_store_faults_wraps_only_disk_stores(self, tmp_path):
        plan = FaultPlan([FaultSpec(kind="corrupt")])
        disk = DiskStore(root=tmp_path, version="t")
        wrapped = apply_store_faults(disk, plan)
        assert isinstance(wrapped, FaultyDiskStore)
        assert wrapped.root == disk.root and wrapped.version == disk.version
        memory = MemoryStore()
        assert apply_store_faults(memory, plan) is memory
        assert apply_store_faults(None, plan) is None
        # A plan without store faults is a no-op wrap.
        point_only = FaultPlan([FaultSpec(kind="exception")])
        assert apply_store_faults(disk, point_only) is disk
