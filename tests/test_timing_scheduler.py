"""Tests for the OoO timing schedulers (event-driven vs rescan baseline)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.timing import (
    DEFAULT_MODEL,
    DynamicOp,
    EventScheduler,
    RescanScheduler,
    TimingModel,
    WindowRecord,
    build_trace,
)


def op(seq, reads=(), writes=(), latency=1, kind="alu", **extra):
    return DynamicOp(
        seq=seq,
        pc=seq,
        text=kind,
        kind=kind,
        reads=tuple(reads),
        writes=tuple(writes),
        latency=latency,
        **extra,
    )


WIDE = TimingModel(dispatch_width=8, commit_width=8, rob_size=64, rs_entries=64)


class TestEventSchedulerBasics:
    def test_empty_stream(self):
        schedule = EventScheduler().schedule([])
        assert schedule.cycles == 0

    def test_independent_ops_overlap(self):
        ops = [op(0, writes=["a"]), op(1, writes=["b"]), op(2, writes=["c"])]
        schedule = EventScheduler(WIDE).schedule(ops)
        assert schedule.dispatch == [0, 0, 0]
        assert schedule.issue == [1, 1, 1]
        assert schedule.complete == [2, 2, 2]

    def test_dependency_chain_serializes(self):
        ops = [
            op(0, writes=["a"], latency=3),
            op(1, reads=["a"], writes=["b"], latency=2),
            op(2, reads=["b"], writes=["c"]),
        ]
        schedule = EventScheduler(WIDE).schedule(ops)
        # op0: issue 1, complete 4; op1 wakes at 5, completes 7; op2 at 8.
        assert schedule.issue == [1, 5, 8]
        assert schedule.complete == [4, 7, 9]

    def test_long_latency_producer_delays_consumer(self):
        ops = [op(0, writes=["x"], latency=200, kind="load"), op(1, reads=["x"])]
        schedule = EventScheduler(WIDE).schedule(ops)
        assert schedule.complete[0] == 201
        assert schedule.issue[1] == 202

    def test_rat_renames_to_youngest_writer(self):
        ops = [
            op(0, writes=["a"], latency=50),
            op(1, writes=["a"], latency=1),
            op(2, reads=["a"]),
        ]
        schedule = EventScheduler(WIDE).schedule(ops)
        # op2 depends on op1 (the youngest writer), not the slow op0.
        assert schedule.issue[2] == schedule.complete[1] + 1

    def test_dispatch_width_limits_per_cycle(self):
        model = TimingModel(dispatch_width=2, commit_width=8, rob_size=64, rs_entries=64)
        ops = [op(i) for i in range(5)]
        schedule = EventScheduler(model).schedule(ops)
        assert schedule.dispatch == [0, 0, 1, 1, 2]

    def test_rob_stall_blocks_dispatch(self):
        model = TimingModel(dispatch_width=8, commit_width=1, rob_size=2, rs_entries=8)
        ops = [op(i, latency=1) for i in range(4)]
        schedule = EventScheduler(model).schedule(ops)
        # Only two ops can be in flight; later dispatches wait for retirement.
        assert schedule.dispatch[0] == 0 and schedule.dispatch[1] == 0
        assert schedule.dispatch[2] >= schedule.retire[0]
        assert schedule.dispatch[3] >= schedule.retire[1]

    def test_rs_freed_at_completion_not_retirement(self):
        model = TimingModel(dispatch_width=8, commit_width=1, rob_size=64, rs_entries=2)
        ops = [op(i, latency=1) for i in range(4)]
        schedule = EventScheduler(model).schedule(ops)
        assert schedule.dispatch[2] == schedule.complete[0]

    def test_fence_serializes_both_directions(self):
        ops = [
            op(0, writes=["a"], latency=10),
            op(1, kind="fence"),
            op(2, writes=["b"]),
        ]
        schedule = EventScheduler(WIDE).schedule(ops)
        assert schedule.issue[1] >= schedule.complete[0] + 1  # waits for older
        assert schedule.issue[2] >= schedule.complete[1] + 1  # younger waits

    def test_retirement_is_in_order(self):
        ops = [op(0, latency=100), op(1, latency=1)]
        schedule = EventScheduler(WIDE).schedule(ops)
        assert schedule.complete[1] < schedule.complete[0]
        assert schedule.retire[1] > schedule.retire[0] or (
            schedule.retire[1] == schedule.retire[0]
        )
        assert schedule.retire[0] >= schedule.complete[0] + 1


class TestWindowTiming:
    def test_squash_and_transmit_cycles(self):
        ops = [
            op(0, writes=["f"], latency=200, kind="load"),  # slow authorization data
            op(1, reads=["f"], kind="branch"),  # trigger
            op(2, writes=["s"], latency=4, kind="load", transient=True, window=0),
            op(3, reads=["s"], kind="load", transient=True, window=0, is_send=True),
        ]
        window = WindowRecord(window_id=0, trigger_seq=1, kind="branch", outcome="squash")
        window.transient_seqs = [2, 3]
        schedule = EventScheduler(WIDE).schedule(ops)
        trace = build_trace(ops, [window], schedule, WIDE, miss_latency=200)
        timing = trace.windows[0]
        assert timing.resolve_cycle == schedule.complete[1]  # branch kind: no delay
        assert timing.squash_cycle == timing.resolve_cycle + WIDE.squash_penalty
        assert timing.transmit_cycle == schedule.issue[3]
        assert timing.leaked_in_time  # send issued long before the late squash
        assert trace.transmit_beats_squash

    def test_fault_window_gets_resolution_delay(self):
        ops = [op(0, writes=["x"], latency=4, kind="load")]
        window = WindowRecord(window_id=0, trigger_seq=0, kind="fault", outcome="squash")
        schedule = EventScheduler(WIDE).schedule(ops)
        trace = build_trace(ops, [window], schedule, WIDE, miss_latency=200)
        assert trace.windows[0].resolve_cycle == schedule.complete[0] + 200

    def test_no_send_means_no_leak(self):
        ops = [
            op(0, kind="branch"),
            op(1, transient=True, window=0, blocked=True),
        ]
        window = WindowRecord(window_id=0, trigger_seq=0, kind="branch", outcome="squash")
        window.transient_seqs = [1]
        schedule = EventScheduler(WIDE).schedule(ops)
        trace = build_trace(ops, [window], schedule, WIDE, miss_latency=200)
        assert trace.windows[0].transmit_cycle is None
        assert not trace.transmit_beats_squash

    def test_committed_window_has_no_squash_cycle(self):
        ops = [op(0, kind="branch"), op(1, transient=True, window=0)]
        window = WindowRecord(window_id=0, trigger_seq=0, kind="branch", outcome="commit")
        window.transient_seqs = [1]
        schedule = EventScheduler(WIDE).schedule(ops)
        trace = build_trace(ops, [window], schedule, WIDE, miss_latency=200)
        assert trace.windows[0].squash_cycle is None


# ---------------------------------------------------------------------------
# Differential testing: the event engine must equal the rescan baseline
# ---------------------------------------------------------------------------
REGS = ["a", "b", "c", "d", "e", "FLAGS"]


def random_stream(rng: random.Random, length: int):
    ops = []
    for seq in range(length):
        kind = rng.choice(["alu", "alu", "alu", "load", "store", "fence", "nop"])
        reads = tuple(rng.sample(REGS, rng.randint(0, 2)))
        writes = tuple(rng.sample(REGS, rng.randint(0, 1)))
        latency = rng.choice([1, 1, 2, 4, 200]) if kind == "load" else rng.randint(1, 3)
        ops.append(op(seq, reads=reads, writes=writes, latency=latency, kind=kind))
    return ops


@pytest.mark.parametrize("seed", range(8))
def test_event_equals_rescan_on_random_streams(seed):
    rng = random.Random(seed)
    ops = random_stream(rng, rng.randint(1, 60))
    model = TimingModel(
        dispatch_width=rng.randint(1, 4),
        commit_width=rng.randint(1, 4),
        rob_size=rng.randint(4, 48),
        rs_entries=rng.randint(2, 32),
    )
    assert EventScheduler(model).schedule(ops) == RescanScheduler(model).schedule(ops)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    length=st.integers(min_value=1, max_value=40),
    width=st.integers(min_value=1, max_value=4),
    rob=st.integers(min_value=2, max_value=24),
    rs=st.integers(min_value=1, max_value=16),
)
def test_event_equals_rescan_property(seed, length, width, rob, rs):
    rng = random.Random(seed)
    ops = random_stream(rng, length)
    model = TimingModel(dispatch_width=width, commit_width=width, rob_size=rob, rs_entries=rs)
    event = EventScheduler(model).schedule(ops)
    rescan = RescanScheduler(model).schedule(ops)
    assert event == rescan
    assert event.cycles == rescan.cycles
