"""Tests for the OoO timing schedulers (event-driven vs rescan baseline).

The contention sections pin the PR-4 specification: per-kind functional-unit
ports and a width-limited common data bus with deterministic oldest-first
arbitration, implemented independently in both schedulers.  The unbounded
configuration must reproduce the pre-contention schedules byte-for-byte
(property-tested below), so existing traces cannot regress.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.exploits.harness import EXPLOITS
from repro.uarch.timing import (
    CONTENDED_MODEL,
    DEFAULT_MODEL,
    SERIALIZED_MODEL,
    DynamicOp,
    EventScheduler,
    RescanScheduler,
    TimingCPU,
    TimingModel,
    WindowRecord,
    build_trace,
)


def op(seq, reads=(), writes=(), latency=1, kind="alu", **extra):
    return DynamicOp(
        seq=seq,
        pc=seq,
        text=kind,
        kind=kind,
        reads=tuple(reads),
        writes=tuple(writes),
        latency=latency,
        **extra,
    )


WIDE = TimingModel(dispatch_width=8, commit_width=8, rob_size=64, rs_entries=64)


class TestEventSchedulerBasics:
    def test_empty_stream(self):
        schedule = EventScheduler().schedule([])
        assert schedule.cycles == 0

    def test_independent_ops_overlap(self):
        ops = [op(0, writes=["a"]), op(1, writes=["b"]), op(2, writes=["c"])]
        schedule = EventScheduler(WIDE).schedule(ops)
        assert schedule.dispatch == [0, 0, 0]
        assert schedule.issue == [1, 1, 1]
        assert schedule.complete == [2, 2, 2]

    def test_dependency_chain_serializes(self):
        ops = [
            op(0, writes=["a"], latency=3),
            op(1, reads=["a"], writes=["b"], latency=2),
            op(2, reads=["b"], writes=["c"]),
        ]
        schedule = EventScheduler(WIDE).schedule(ops)
        # op0: issue 1, complete 4; op1 wakes at 5, completes 7; op2 at 8.
        assert schedule.issue == [1, 5, 8]
        assert schedule.complete == [4, 7, 9]

    def test_long_latency_producer_delays_consumer(self):
        ops = [op(0, writes=["x"], latency=200, kind="load"), op(1, reads=["x"])]
        schedule = EventScheduler(WIDE).schedule(ops)
        assert schedule.complete[0] == 201
        assert schedule.issue[1] == 202

    def test_rat_renames_to_youngest_writer(self):
        ops = [
            op(0, writes=["a"], latency=50),
            op(1, writes=["a"], latency=1),
            op(2, reads=["a"]),
        ]
        schedule = EventScheduler(WIDE).schedule(ops)
        # op2 depends on op1 (the youngest writer), not the slow op0.
        assert schedule.issue[2] == schedule.complete[1] + 1

    def test_dispatch_width_limits_per_cycle(self):
        model = TimingModel(dispatch_width=2, commit_width=8, rob_size=64, rs_entries=64)
        ops = [op(i) for i in range(5)]
        schedule = EventScheduler(model).schedule(ops)
        assert schedule.dispatch == [0, 0, 1, 1, 2]

    def test_rob_stall_blocks_dispatch(self):
        model = TimingModel(dispatch_width=8, commit_width=1, rob_size=2, rs_entries=8)
        ops = [op(i, latency=1) for i in range(4)]
        schedule = EventScheduler(model).schedule(ops)
        # Only two ops can be in flight; later dispatches wait for retirement.
        assert schedule.dispatch[0] == 0 and schedule.dispatch[1] == 0
        assert schedule.dispatch[2] >= schedule.retire[0]
        assert schedule.dispatch[3] >= schedule.retire[1]

    def test_rs_freed_at_completion_not_retirement(self):
        model = TimingModel(dispatch_width=8, commit_width=1, rob_size=64, rs_entries=2)
        ops = [op(i, latency=1) for i in range(4)]
        schedule = EventScheduler(model).schedule(ops)
        assert schedule.dispatch[2] == schedule.complete[0]

    def test_fence_serializes_both_directions(self):
        ops = [
            op(0, writes=["a"], latency=10),
            op(1, kind="fence"),
            op(2, writes=["b"]),
        ]
        schedule = EventScheduler(WIDE).schedule(ops)
        assert schedule.issue[1] >= schedule.complete[0] + 1  # waits for older
        assert schedule.issue[2] >= schedule.complete[1] + 1  # younger waits

    def test_retirement_is_in_order(self):
        ops = [op(0, latency=100), op(1, latency=1)]
        schedule = EventScheduler(WIDE).schedule(ops)
        assert schedule.complete[1] < schedule.complete[0]
        assert schedule.retire[1] > schedule.retire[0] or (
            schedule.retire[1] == schedule.retire[0]
        )
        assert schedule.retire[0] >= schedule.complete[0] + 1


class TestWindowTiming:
    def test_squash_and_transmit_cycles(self):
        ops = [
            op(0, writes=["f"], latency=200, kind="load"),  # slow authorization data
            op(1, reads=["f"], kind="branch"),  # trigger
            op(2, writes=["s"], latency=4, kind="load", transient=True, window=0),
            op(3, reads=["s"], kind="load", transient=True, window=0, is_send=True),
        ]
        window = WindowRecord(window_id=0, trigger_seq=1, kind="branch", outcome="squash")
        window.transient_seqs = [2, 3]
        schedule = EventScheduler(WIDE).schedule(ops)
        trace = build_trace(ops, [window], schedule, WIDE, miss_latency=200)
        timing = trace.windows[0]
        assert timing.resolve_cycle == schedule.complete[1]  # branch kind: no delay
        assert timing.squash_cycle == timing.resolve_cycle + WIDE.squash_penalty
        assert timing.transmit_cycle == schedule.issue[3]
        assert timing.leaked_in_time  # send issued long before the late squash
        assert trace.transmit_beats_squash

    def test_fault_window_gets_resolution_delay(self):
        ops = [op(0, writes=["x"], latency=4, kind="load")]
        window = WindowRecord(window_id=0, trigger_seq=0, kind="fault", outcome="squash")
        schedule = EventScheduler(WIDE).schedule(ops)
        trace = build_trace(ops, [window], schedule, WIDE, miss_latency=200)
        assert trace.windows[0].resolve_cycle == schedule.complete[0] + 200

    def test_no_send_means_no_leak(self):
        ops = [
            op(0, kind="branch"),
            op(1, transient=True, window=0, blocked=True),
        ]
        window = WindowRecord(window_id=0, trigger_seq=0, kind="branch", outcome="squash")
        window.transient_seqs = [1]
        schedule = EventScheduler(WIDE).schedule(ops)
        trace = build_trace(ops, [window], schedule, WIDE, miss_latency=200)
        assert trace.windows[0].transmit_cycle is None
        assert not trace.transmit_beats_squash

    def test_committed_window_has_no_squash_cycle(self):
        ops = [op(0, kind="branch"), op(1, transient=True, window=0)]
        window = WindowRecord(window_id=0, trigger_seq=0, kind="branch", outcome="commit")
        window.transient_seqs = [1]
        schedule = EventScheduler(WIDE).schedule(ops)
        trace = build_trace(ops, [window], schedule, WIDE, miss_latency=200)
        assert trace.windows[0].squash_cycle is None


# ---------------------------------------------------------------------------
# Differential testing: the event engine must equal the rescan baseline
# ---------------------------------------------------------------------------
REGS = ["a", "b", "c", "d", "e", "FLAGS"]


def random_stream(rng: random.Random, length: int):
    ops = []
    for seq in range(length):
        kind = rng.choice(
            ["alu", "alu", "alu", "load", "store", "fence", "nop",
             "mul", "branch", "jump"]
        )
        reads = tuple(rng.sample(REGS, rng.randint(0, 2)))
        writes = tuple(rng.sample(REGS, rng.randint(0, 1)))
        latency = rng.choice([1, 1, 2, 4, 200]) if kind == "load" else rng.randint(1, 4)
        ops.append(op(seq, reads=reads, writes=writes, latency=latency, kind=kind))
    return ops


def random_contended_model(rng: random.Random) -> TimingModel:
    """A random port/CDB configuration (including unbounded pools)."""
    def limit():
        return rng.choice([None, 1, 1, 2, 3])

    return TimingModel(
        dispatch_width=rng.randint(1, 4),
        commit_width=rng.randint(1, 4),
        rob_size=rng.randint(4, 48),
        rs_entries=rng.randint(2, 32),
        alu_ports=limit(),
        load_store_ports=limit(),
        branch_ports=limit(),
        mul_ports=limit(),
        cdb_width=limit(),
    )


@pytest.mark.parametrize("seed", range(8))
def test_event_equals_rescan_on_random_streams(seed):
    rng = random.Random(seed)
    ops = random_stream(rng, rng.randint(1, 60))
    model = TimingModel(
        dispatch_width=rng.randint(1, 4),
        commit_width=rng.randint(1, 4),
        rob_size=rng.randint(4, 48),
        rs_entries=rng.randint(2, 32),
    )
    assert EventScheduler(model).schedule(ops) == RescanScheduler(model).schedule(ops)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    length=st.integers(min_value=1, max_value=40),
    width=st.integers(min_value=1, max_value=4),
    rob=st.integers(min_value=2, max_value=24),
    rs=st.integers(min_value=1, max_value=16),
)
def test_event_equals_rescan_property(seed, length, width, rob, rs):
    rng = random.Random(seed)
    ops = random_stream(rng, length)
    model = TimingModel(dispatch_width=width, commit_width=width, rob_size=rob, rs_entries=rs)
    event = EventScheduler(model).schedule(ops)
    rescan = RescanScheduler(model).schedule(ops)
    assert event == rescan
    assert event.cycles == rescan.cycles


# ---------------------------------------------------------------------------
# Contention: the TimingModel surface
# ---------------------------------------------------------------------------
class TestTimingModelContention:
    def test_default_model_is_uncontended(self):
        assert not DEFAULT_MODEL.contended
        for pool in ("alu", "load_store", "branch", "mul"):
            assert DEFAULT_MODEL.port_limit(pool) is None

    def test_reference_models_are_contended(self):
        assert CONTENDED_MODEL.contended
        assert SERIALIZED_MODEL.contended
        assert SERIALIZED_MODEL.port_limit("alu") == 1
        assert CONTENDED_MODEL.port_limit("load_store") == 2
        assert CONTENDED_MODEL.cdb_width == 2

    def test_any_single_bound_makes_the_model_contended(self):
        assert TimingModel(mul_ports=1).contended
        assert TimingModel(cdb_width=1).contended

    def test_portless_kinds_have_no_limit(self):
        assert SERIALIZED_MODEL.port_limit(None) is None

    @pytest.mark.parametrize(
        "field", ["alu_ports", "load_store_ports", "branch_ports", "mul_ports",
                  "cdb_width"]
    )
    def test_zero_or_negative_limits_are_rejected(self, field):
        with pytest.raises(ValueError):
            TimingModel(**{field: 0})
        with pytest.raises(ValueError):
            TimingModel(**{field: -1})


# ---------------------------------------------------------------------------
# Contention: pinned unit semantics
# ---------------------------------------------------------------------------
ONE_ALU_PORT = TimingModel(
    dispatch_width=8, commit_width=8, rob_size=64, rs_entries=64, alu_ports=1
)


class TestPortContention:
    @pytest.mark.parametrize("scheduler_cls", [EventScheduler, RescanScheduler])
    def test_single_alu_port_serializes_independent_ops(self, scheduler_cls):
        ops = [op(0, writes=["a"]), op(1, writes=["b"]), op(2, writes=["c"])]
        schedule = scheduler_cls(ONE_ALU_PORT).schedule(ops)
        # All data-ready at cycle 1; the single port issues them one per
        # completion, oldest first.
        assert schedule.ready == [1, 1, 1]
        assert schedule.issue == [1, 2, 3]
        assert schedule.complete == [2, 3, 4]

    @pytest.mark.parametrize("scheduler_cls", [EventScheduler, RescanScheduler])
    def test_other_pools_do_not_contend_for_the_alu_port(self, scheduler_cls):
        ops = [
            op(0, writes=["a"]),
            op(1, writes=["b"], kind="load", latency=4),
            op(2, writes=["c"], kind="mul", latency=4),
        ]
        schedule = scheduler_cls(ONE_ALU_PORT).schedule(ops)
        assert schedule.issue == [1, 1, 1]  # load and mul pools are unbounded

    @pytest.mark.parametrize("scheduler_cls", [EventScheduler, RescanScheduler])
    def test_port_held_for_the_whole_execution(self, scheduler_cls):
        # Units are not pipelined: a long op blocks the pool until broadcast.
        ops = [op(0, writes=["a"], latency=10), op(1, writes=["b"])]
        schedule = scheduler_cls(ONE_ALU_PORT).schedule(ops)
        assert schedule.issue[1] == schedule.complete[0]

    @pytest.mark.parametrize("scheduler_cls", [EventScheduler, RescanScheduler])
    def test_fences_and_nops_need_no_port(self, scheduler_cls):
        model = TimingModel(
            dispatch_width=8, commit_width=8, rob_size=64, rs_entries=64,
            alu_ports=1, load_store_ports=1, branch_ports=1, mul_ports=1,
        )
        ops = [op(0, kind="nop"), op(1, kind="nop"), op(2, kind="nop")]
        schedule = scheduler_cls(model).schedule(ops)
        assert schedule.issue == [1, 1, 1]  # no serialization

    @pytest.mark.parametrize("scheduler_cls", [EventScheduler, RescanScheduler])
    def test_cdb_width_limits_broadcasts_per_cycle(self, scheduler_cls):
        model = TimingModel(
            dispatch_width=8, commit_width=8, rob_size=64, rs_entries=64,
            cdb_width=1,
        )
        ops = [op(0, writes=["a"]), op(1, writes=["b"]), op(2, writes=["c"])]
        schedule = scheduler_cls(model).schedule(ops)
        # All finish execution at cycle 2; the width-1 bus broadcasts one per
        # cycle, oldest first.
        assert schedule.issue == [1, 1, 1]
        assert schedule.complete == [2, 3, 4]

    @pytest.mark.parametrize("scheduler_cls", [EventScheduler, RescanScheduler])
    def test_cdb_loser_keeps_port_until_broadcast(self, scheduler_cls):
        model = TimingModel(
            dispatch_width=8, commit_width=8, rob_size=64, rs_entries=64,
            alu_ports=1, cdb_width=1,
        )
        ops = [
            op(0, writes=["a"], kind="load", latency=2),  # finishes at 3
            op(1, writes=["b"]),  # ALU, issues 1, finishes 2, broadcasts 2
            op(2, writes=["c"]),  # ALU, waits for op1's port
            op(3, writes=["d"], kind="load", latency=2),  # finishes at 3 too
        ]
        schedule = scheduler_cls(model).schedule(ops)
        # At cycle 3 ops 0, 2 and 3 have all finished execution; the width-1
        # bus drains them oldest first over cycles 3, 4 and 5.
        assert schedule.complete == [3, 2, 4, 5]

    def test_unlimited_model_skips_the_contended_path(self):
        # The router must keep the unbounded fast path for uncontended models.
        ops = [op(0, writes=["a"]), op(1, reads=["a"])]
        assert EventScheduler(DEFAULT_MODEL).schedule(ops) == EventScheduler(
            DEFAULT_MODEL
        )._schedule_unbounded(ops)


class TestWorkedExample:
    """The pinned 6-op schedule: 1 ALU port + width-1 CDB, hand-computed.

    Ops 0-3 and 5 are independent single-cycle ALU ops, op 4 a 2-cycle load
    (its pool is unbounded).  Dispatch width 4.  The interesting moments:

    * cycle 1: ops 0-3 are data-ready; the single ALU port issues op 0.
    * cycle 2: op 0 broadcasts and frees the port; op 1 issues.  The load
      (op 4, dispatched at 1) issues on its own pool, finishing at 4.
    * cycle 4: op 2 broadcasts (it won the width-1 bus); op 4 also finished
      this cycle but is younger, so its broadcast defers.  Op 3 takes the
      freed ALU port.
    * cycle 5: op 3 (finished this cycle) beats the still-deferred op 4 on
      the bus again -- oldest-first is by seq, not by how long you waited.
      Op 5 finally gets the ALU port, three cycles after it became ready.
    * cycle 6: op 4 broadcasts, two cycles after its execution finished.
    * cycle 7: op 5 broadcasts; everything retires in order by cycle 8.
    """

    MODEL = TimingModel(
        dispatch_width=4, commit_width=4, rob_size=64, rs_entries=64,
        alu_ports=1, cdb_width=1,
    )
    OPS = staticmethod(lambda: [
        op(0, writes=["a"]),
        op(1, writes=["b"]),
        op(2, writes=["c"]),
        op(3, writes=["d"]),
        op(4, writes=["e"], latency=2, kind="load"),
        op(5, writes=["f"]),
    ])

    @pytest.mark.parametrize("scheduler_cls", [EventScheduler, RescanScheduler])
    def test_hand_computed_schedule(self, scheduler_cls):
        schedule = scheduler_cls(self.MODEL).schedule(self.OPS())
        assert schedule.dispatch == [0, 0, 0, 0, 1, 1]
        assert schedule.ready == [1, 1, 1, 1, 2, 2]
        assert schedule.issue == [1, 2, 3, 4, 2, 5]
        assert schedule.complete == [2, 3, 4, 5, 6, 7]
        assert schedule.retire == [3, 4, 5, 6, 7, 8]
        assert schedule.cycles == 9

    def test_stall_provenance_of_the_example(self):
        schedule = EventScheduler(self.MODEL).schedule(self.OPS())
        trace = build_trace(self.OPS(), [], schedule, self.MODEL, miss_latency=200)
        by_seq = {row.op.seq: row for row in trace.ops}
        # Op 5 waited 3 cycles for the ALU port; op 4's finished result
        # waited 2 cycles for a broadcast slot.
        assert by_seq[5].port_stall == 3 and by_seq[5].port == "alu"
        assert by_seq[4].cdb_stall == 2 and by_seq[4].port == "load_store"
        assert by_seq[0].port_stall == 0 and by_seq[0].cdb_stall == 0
        # Ops 1-3 wait 1, 2, 3 cycles for the ALU port and op 5 waits 3.
        assert trace.port_stall_cycles == 1 + 2 + 3 + 3
        # Op 4 defers 2 broadcast cycles, op 5 one (op 4 outranks it at 6).
        assert trace.cdb_stall_cycles == 2 + 1

    def test_port_occupancy_never_exceeds_the_limit(self):
        schedule = EventScheduler(self.MODEL).schedule(self.OPS())
        trace = build_trace(self.OPS(), [], schedule, self.MODEL, miss_latency=200)
        occupancy = trace.port_occupancy()
        assert max(occupancy["alu"].values()) == 1
        assert max(occupancy["load_store"].values()) == 1


# ---------------------------------------------------------------------------
# Contention: no regression for unbounded configurations (property test)
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    length=st.integers(min_value=1, max_value=40),
    width=st.integers(min_value=1, max_value=4),
    rob=st.integers(min_value=2, max_value=24),
    rs=st.integers(min_value=1, max_value=16),
)
def test_unbounded_contended_path_matches_unlimited_scheduler(
    seed, length, width, rob, rs
):
    """With every limit ``None`` the arbitrated path is byte-identical to the
    original unlimited scheduler -- existing traces cannot regress."""
    rng = random.Random(seed)
    ops = random_stream(rng, length)
    model = TimingModel(
        dispatch_width=width, commit_width=width, rob_size=rob, rs_entries=rs
    )
    scheduler = EventScheduler(model)
    assert scheduler._schedule_contended(ops) == scheduler._schedule_unbounded(ops)


@pytest.mark.parametrize("seed", range(6))
def test_huge_finite_limits_match_unbounded(seed):
    """Limits that can never bind must not move a single cycle."""
    rng = random.Random(seed)
    ops = random_stream(rng, rng.randint(1, 50))
    base = TimingModel(dispatch_width=4, commit_width=4, rob_size=48, rs_entries=32)
    huge = TimingModel(
        dispatch_width=4, commit_width=4, rob_size=48, rs_entries=32,
        alu_ports=10**6, load_store_ports=10**6, branch_ports=10**6,
        mul_ports=10**6, cdb_width=10**6,
    )
    assert huge.contended
    assert EventScheduler(huge).schedule(ops) == EventScheduler(base).schedule(ops)
    assert RescanScheduler(huge).schedule(ops) == RescanScheduler(base).schedule(ops)


# ---------------------------------------------------------------------------
# Contention: event engine == rescan oracle (differential)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(20))
def test_event_equals_rescan_under_contention(seed):
    rng = random.Random(seed)
    ops = random_stream(rng, rng.randint(1, 60))
    model = random_contended_model(rng)
    assert EventScheduler(model).schedule(ops) == RescanScheduler(model).schedule(ops)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    length=st.integers(min_value=1, max_value=40),
)
def test_event_equals_rescan_under_contention_property(seed, length):
    rng = random.Random(seed)
    ops = random_stream(rng, length)
    model = random_contended_model(rng)
    event = EventScheduler(model).schedule(ops)
    rescan = RescanScheduler(model).schedule(ops)
    assert event == rescan
    assert event.cycles == rescan.cycles


@pytest.mark.parametrize("name", sorted(EXPLOITS))
@pytest.mark.parametrize(
    "model", [CONTENDED_MODEL, SERIALIZED_MODEL], ids=["contended", "serialized"]
)
def test_event_equals_rescan_on_exploit_corpus(name, model):
    """Differential check on the real dynamic-op streams of every exploit."""
    from repro.uarch import UarchConfig

    result_cpu = []

    class RecordingCPU(TimingCPU):
        def __init__(self, program, config=UarchConfig(), **kwargs):
            super().__init__(program, config, **kwargs)
            result_cpu.append(self)

    EXPLOITS[name](UarchConfig(), 0x5A, cpu_cls=RecordingCPU)
    streams = [cpu.last_ops for cpu in result_cpu if cpu.last_ops]
    assert streams, "exploit recorded no dynamic ops"
    for ops in streams:
        assert (
            EventScheduler(model).schedule(ops)
            == RescanScheduler(model).schedule(ops)
        )
