"""Tests for the cache covert channels (Section II-C)."""

from __future__ import annotations

import pytest

from repro.channels import (
    CHANNEL_TAXONOMY,
    CacheCollisionChannel,
    CacheTimingSurface,
    EvictTimeChannel,
    FlushReloadChannel,
    Granularity,
    PrimeProbeChannel,
    Signal,
    classify,
    taxonomy_rows,
)
from repro.uarch import SetAssociativeCache

PROBE_BASE = 0x100_0000


@pytest.fixture
def cache():
    return SetAssociativeCache(sets=64, ways=8, line_size=64, hit_latency=4, miss_latency=200)


@pytest.fixture
def surface(cache):
    return CacheTimingSurface(cache)


class TestFlushReload:
    def test_roundtrip_recovers_the_sent_value(self, surface):
        channel = FlushReloadChannel(surface, PROBE_BASE, entries=32)
        for value in (0, 7, 31):
            observation = channel.transmit(value)
            assert observation.detected and observation.value == value

    def test_no_send_means_no_signal(self, surface):
        channel = FlushReloadChannel(surface, PROBE_BASE, entries=16)
        channel.prepare()
        observation = channel.receive()
        assert observation.value is None
        assert all(latency >= channel.hit_threshold for latency in observation.latencies)

    def test_exclude_filters_known_architectural_accesses(self, surface):
        channel = FlushReloadChannel(surface, PROBE_BASE, entries=16)
        channel.prepare()
        channel.send(0)
        channel.send(9)
        observation = channel.receive(exclude={0})
        assert observation.value == 9

    def test_exclude_everything_returns_no_signal(self, surface):
        channel = FlushReloadChannel(surface, PROBE_BASE, entries=4)
        channel.prepare()
        channel.send(1)
        assert channel.receive(exclude=set(range(4))).value is None

    def test_partitioned_surface_defeats_the_channel(self, cache):
        isolated = CacheTimingSurface(cache, sender_partition=0, receiver_partition=1)
        channel = FlushReloadChannel(isolated, PROBE_BASE, entries=16)
        observation = channel.transmit(5)
        assert observation.value is None

    def test_value_out_of_range_rejected(self, surface):
        channel = FlushReloadChannel(surface, PROBE_BASE, entries=8)
        with pytest.raises(ValueError):
            channel.entry_address(8)

    def test_bad_geometry_rejected(self, surface):
        with pytest.raises(ValueError):
            FlushReloadChannel(surface, PROBE_BASE, entries=0)

    def test_measure_length(self, surface):
        channel = FlushReloadChannel(surface, PROBE_BASE, entries=10)
        channel.prepare()
        assert len(channel.measure()) == 10


class TestPrimeProbe:
    def test_roundtrip_recovers_the_set_index(self, cache):
        channel = PrimeProbeChannel(cache)
        for value in (3, 17, 63):
            observation = channel.transmit(value)
            assert observation.value == value

    def test_no_send_means_no_signal(self, cache):
        channel = PrimeProbeChannel(cache)
        channel.prepare()
        assert channel.receive().value is None

    def test_value_wraps_to_set_count(self, cache):
        channel = PrimeProbeChannel(cache)
        observation = channel.transmit(64 + 5)
        assert observation.value == 5

    def test_partitioned_cache_defeats_prime_probe(self, cache):
        channel = PrimeProbeChannel(cache, sender_partition=0, receiver_partition=1)
        observation = channel.transmit(12)
        assert observation.value is None


class TestEvictTime:
    def _victim(self, cache, addresses):
        def operation() -> int:
            return sum(cache.access(address, partition=0).latency for address in addresses)

        return operation

    def test_detects_the_set_the_victim_uses(self, cache):
        victim_address = 0x5000
        channel = EvictTimeChannel(cache, self._victim(cache, [victim_address]))
        measurement = channel.measure_set(cache.set_index(victim_address))
        assert measurement.victim_uses_set

    def test_unused_set_shows_no_slowdown(self, cache):
        victim_address = 0x5000
        channel = EvictTimeChannel(cache, self._victim(cache, [victim_address]))
        other_set = (cache.set_index(victim_address) + 1) % cache.sets
        assert not channel.measure_set(other_set).victim_uses_set

    def test_receive_finds_the_hottest_set(self, cache):
        victim_address = 0x5000
        channel = EvictTimeChannel(cache, self._victim(cache, [victim_address]))
        observation = channel.receive()
        assert observation.value == cache.set_index(victim_address)


class TestCacheCollision:
    def test_recovers_the_victim_secret(self, cache):
        secret = 13
        table_base = 0x9000

        def victim_operation() -> int:
            return cache.access(table_base + secret * 64, partition=0).latency

        channel = CacheCollisionChannel(
            cache, victim_operation, table_base=table_base, entries=32, stride=64
        )
        observation = channel.receive()
        assert observation.value == secret


class TestTaxonomy:
    def test_four_classes_cover_the_two_by_two_grid(self):
        assert len(CHANNEL_TAXONOMY) == 4
        cells = {(c.signal, c.granularity) for c in CHANNEL_TAXONOMY}
        assert len(cells) == 4

    def test_classify_lookup(self):
        assert classify(Signal.HIT, Granularity.ACCESS).name == "Flush+Reload"
        assert classify(Signal.MISS, Granularity.ACCESS).name == "Prime+Probe"
        assert classify(Signal.MISS, Granularity.OPERATION).name == "Evict+Time"
        assert classify(Signal.HIT, Granularity.OPERATION).name == "Cache collision"

    def test_only_flush_reload_needs_shared_memory(self):
        sharing = {c.name: c.needs_shared_memory for c in CHANNEL_TAXONOMY}
        assert sharing["Flush+Reload"] is True
        assert sharing["Prime+Probe"] is False

    def test_taxonomy_rows(self):
        rows = taxonomy_rows()
        assert len(rows) == 4
        assert ("Flush+Reload", "hit", "access", "yes") in rows
