"""Tests for programs and data symbols."""

from __future__ import annotations

import pytest

from repro.isa import DataSymbol, Halt, Load, Mov, Nop, Program, ProgramError, imm, mem, reg


class TestSymbols:
    def test_declare_and_lookup(self):
        program = Program()
        program.declare("secret", 0x1000, 8, protected=True, kernel=True)
        symbol = program.symbol("secret")
        assert symbol.address == 0x1000 and symbol.protected and symbol.kernel

    def test_duplicate_symbol_rejected(self):
        program = Program()
        program.declare("a", 0x1000, 8)
        with pytest.raises(ProgramError):
            program.declare("a", 0x2000, 8)

    def test_overlapping_symbols_rejected(self):
        program = Program()
        program.declare("a", 0x1000, 64)
        with pytest.raises(ProgramError, match="overlaps"):
            program.declare("b", 0x1020, 64)

    def test_adjacent_symbols_allowed(self):
        program = Program()
        program.declare("a", 0x1000, 64)
        program.declare("b", 0x1040, 64)
        assert len(program.symbols) == 2

    def test_symbol_at(self):
        program = Program()
        program.declare("a", 0x1000, 64)
        assert program.symbol_at(0x1003).name == "a"
        assert program.symbol_at(0x2000) is None

    def test_protected_symbols(self):
        program = Program()
        program.declare("public", 0x1000, 8)
        program.declare("secret", 0x2000, 8, protected=True)
        assert [symbol.name for symbol in program.protected_symbols()] == ["secret"]

    def test_unknown_symbol(self):
        with pytest.raises(ProgramError):
            Program().symbol("nope")

    def test_symbol_contains(self):
        symbol = DataSymbol("a", 0x1000, 16)
        assert symbol.contains(0x1000) and symbol.contains(0x100F)
        assert not symbol.contains(0x1010)


class TestInstructionsAndLabels:
    def test_append_and_iterate(self):
        program = Program()
        program.extend([Mov(reg("rax"), imm(1)), Halt()])
        assert len(program) == 2
        assert isinstance(program[1], Halt)

    def test_label_resolution(self):
        program = Program()
        program.append(Mov(reg("rax"), imm(1)))
        program.append(Halt(label="end"))
        assert program.label_index("end") == 1

    def test_duplicate_label_rejected(self):
        program = Program()
        program.append(Nop(label="x"))
        with pytest.raises(ProgramError):
            program.append(Nop(label="x"))

    def test_unknown_label(self):
        with pytest.raises(ProgramError):
            Program().label_index("missing")

    def test_static_address_resolution(self):
        program = Program()
        program.declare("table", 0x4000, 64)
        operand = mem(symbol="table", displacement=8)
        assert program.static_address(operand) == 0x4008
        assert program.static_address(mem(base="rax")) is None

    def test_listing_contains_symbols_and_instructions(self, listing1_program):
        text = listing1_program.listing()
        assert "victim_array" in text
        assert "cmp rdx" in text
        assert "protected" in text
