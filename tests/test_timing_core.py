"""Tests for the cycle-accurate TimingCPU and its traces."""

from __future__ import annotations

import json

import pytest

from repro.exploits import programs
from repro.exploits.programs import (
    SECRET_ADDR,
    SECRET_OFFSET,
    VICTIM_ARRAY_LEN,
    VICTIM_SIZE_ADDR,
)
from repro.uarch import SimDefense, TimingCPU, UarchConfig
from repro.uarch.timing import TimingModel
from repro.uarch.timing.validate import timed_exploit


def spectre_v1_victim_run(config=None, scheduler="event"):
    """Drive the Listing-1 attack by hand and return the victim run's result."""
    cpu = TimingCPU(
        programs.spectre_v1_program(),
        config if config is not None else UarchConfig(),
        scheduler=scheduler,
    )
    cpu.write_memory(SECRET_ADDR, 0x5A, 1)
    cpu.write_memory(VICTIM_SIZE_ADDR, VICTIM_ARRAY_LEN, 8)
    for _ in range(4):
        cpu.set_register("rdx", 1)
        cpu.run("victim")
    cpu.context_switch(1)
    cpu.flush_symbol("victim_size")
    cpu.set_register("rdx", SECRET_OFFSET)
    return cpu, cpu.run("victim")


class TestTimingCPU:
    def test_unknown_scheduler_is_rejected(self):
        with pytest.raises(ValueError):
            TimingCPU(programs.spectre_v1_program(), scheduler="magic")

    def test_training_runs_open_no_window(self):
        cpu = TimingCPU(programs.spectre_v1_program())
        cpu.write_memory(VICTIM_SIZE_ADDR, VICTIM_ARRAY_LEN, 8)
        cpu.set_register("rdx", 1)
        result = cpu.run("victim")
        assert result.trace is not None
        assert result.trace.windows == []
        assert not result.transmit_beats_squash

    def test_spectre_v1_race_is_measured(self):
        _, result = spectre_v1_victim_run()
        trace = result.trace
        assert len(trace.windows) == 1
        window = trace.windows[0]
        assert window.kind == "branch"
        assert window.outcome == "squash"
        # The covert send issued before the squash landed: the paper's race.
        assert window.transmit_cycle is not None
        assert window.squash_cycle is not None
        assert window.transmit_cycle <= window.squash_cycle
        assert result.transmit_beats_squash
        assert result.leaked_transiently  # functional verdict agrees
        # The measured window spans from speculative dispatch to the squash.
        assert window.window_cycles > 0

    def test_transient_ops_are_marked(self):
        cpu, result = spectre_v1_victim_run()
        transient = [row for row in result.trace.ops if row.op.transient]
        assert len(transient) == 4  # load S, shl, send load R, halt
        sends = [row for row in transient if row.op.is_send]
        assert len(sends) == 1
        assert sends[0].op.kind == "load"

    def test_prevent_speculative_loads_blocks_the_send(self):
        config = UarchConfig().with_defenses(SimDefense.PREVENT_SPECULATIVE_LOADS)
        _, result = spectre_v1_victim_run(config)
        trace = result.trace
        assert len(trace.windows) == 1
        assert trace.windows[0].transmit_cycle is None
        assert not result.transmit_beats_squash
        assert not result.leaked_transiently

    def test_rescan_scheduler_produces_identical_trace(self):
        _, event_result = spectre_v1_victim_run(scheduler="event")
        _, rescan_result = spectre_v1_victim_run(scheduler="rescan")
        assert rescan_result.trace.scheduler == "rescan"
        event_rows = [row.to_dict() for row in event_result.trace.ops]
        rescan_rows = [row.to_dict() for row in rescan_result.trace.ops]
        assert event_rows == rescan_rows
        assert (
            event_result.trace.windows[0].to_dict()
            == rescan_result.trace.windows[0].to_dict()
        )

    def test_meltdown_fault_window(self):
        result = timed_exploit("meltdown")
        trace = result.timing
        window = trace.windows[0]
        assert window.kind == "fault"
        # The authorization (permission check) resolves a memory round-trip
        # after the data was forwarded; the transmit wins by a wide margin.
        assert window.resolve_cycle > window.transmit_cycle
        assert result.success

    def test_return_window_resolution_is_delayed(self):
        result = timed_exploit("spectre_rsb")
        window = result.timing.windows[0]
        assert window.kind == "return"
        assert window.transmit_cycle <= window.squash_cycle

    def test_store_bypass_window(self):
        result = timed_exploit("spectre_v4")
        window = result.timing.windows[0]
        assert window.kind == "fault"  # address disambiguation delay
        assert result.timing.transmit_beats_squash

    def test_traces_accumulate_per_run(self):
        cpu, _ = spectre_v1_victim_run()
        assert len(cpu.traces) == 5  # four training runs + the victim run
        assert cpu.last_trace is cpu.traces[-1]

    def test_trace_serializes_to_json(self):
        _, result = spectre_v1_victim_run()
        payload = json.dumps(result.trace.to_dict(include_ops=True))
        decoded = json.loads(payload)
        assert decoded["transmit_beats_squash"] is True
        assert decoded["window_timings"][0]["outcome"] == "squash"
        assert decoded["op_rows"]

    def test_key_events_are_cycle_ordered(self):
        _, result = spectre_v1_victim_run()
        events = result.trace.key_events()
        assert [e.cycle for e in events] == sorted(e.cycle for e in events)
        kinds = [e.kind for e in events]
        assert "window_open" in kinds and "transmit" in kinds and "squash" in kinds

    def test_custom_model_changes_the_squash_cycle(self):
        tight = TimingModel(squash_penalty=0)
        cpu = TimingCPU(programs.spectre_v1_program(), model=tight)
        assert cpu.model.squash_penalty == 0
