"""Tests for ISA operands."""

from __future__ import annotations

import pytest

from repro.isa import Immediate, Label, MemoryOperand, Register, imm, mem, reg
from repro.isa.operands import ALL_REGISTERS, FLAGS, FP_REGISTERS, GP_REGISTERS


class TestRegister:
    def test_known_register(self):
        assert reg("rax").name == "rax"

    def test_unknown_register_rejected(self):
        with pytest.raises(ValueError):
            Register("zax")

    def test_fp_classification(self):
        assert Register("xmm0").is_fp
        assert not Register("rax").is_fp

    def test_register_sets_are_disjoint_and_complete(self):
        assert set(GP_REGISTERS).isdisjoint(FP_REGISTERS)
        assert set(ALL_REGISTERS) == set(GP_REGISTERS) | {FLAGS} | set(FP_REGISTERS)


class TestImmediateAndLabel:
    def test_immediate_value(self):
        assert imm(42).value == 42

    def test_immediate_str_hex_for_large_values(self):
        assert str(Immediate(4096)) == "0x1000"
        assert str(Immediate(5)) == "5"

    def test_label(self):
        assert str(Label("target")) == "target"


class TestMemoryOperand:
    def test_registers_collected_from_base_and_index(self):
        operand = mem(base="rbx", index="rax", scale=8)
        assert operand.registers == frozenset({"rbx", "rax"})

    def test_symbol_only_operand(self):
        operand = mem(symbol="probe_array")
        assert operand.registers == frozenset()
        assert operand.symbol == "probe_array"

    def test_empty_operand_rejected(self):
        with pytest.raises(ValueError):
            MemoryOperand()

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            mem(base="rax", index="rbx", scale=3)

    def test_str_rendering(self):
        operand = mem(base="rbx", index="rax", scale=8, displacement=16, symbol="table")
        rendered = str(operand)
        assert "table" in rendered and "rbx" in rendered and "rax*8" in rendered and "16" in rendered
