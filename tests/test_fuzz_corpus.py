"""The fuzzing corpus: ingestion mechanics and the pinned regression set.

The second half auto-loads ``corpus/fuzz/`` -- every disagreement fixture
ever pinned by a campaign replays against both oracles: the generator must
still build the exact pinned program (sha match), the recorded injection
must still split the oracles, and the *clean* oracles must still agree on
the same program.  A fixture, once written, is a regression test forever.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.engine import Engine
from repro.fuzz import (
    DISAGREEMENT_SCHEMA,
    FuzzCorpus,
    fixture_from_entry,
)
from repro.fuzz.generator import dual_verdict

pytestmark = pytest.mark.fuzz

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus" / "fuzz"


def _campaign_data(count: int = 30):
    return Engine().run_fuzz_campaign(
        seed=0, count=count, inject="no_flush"
    ).data


class TestIngestion:
    def test_ingest_writes_one_fixture_per_unique_sha(self, tmp_path):
        data = _campaign_data()
        corpus = FuzzCorpus(tmp_path / "corpus")
        summary = corpus.ingest(data)
        assert summary["written"] == len(corpus.fixture_paths())
        assert summary["written"] >= 1
        # Shrunk disagreements collapse onto their minimal program: far
        # fewer fixtures than raw disagreement rows.
        assert summary["written"] <= data["disagreed"]

    def test_reingest_is_idempotent_on_fixtures(self, tmp_path):
        data = _campaign_data()
        corpus = FuzzCorpus(tmp_path / "corpus")
        corpus.ingest(data)
        before = {path.name for path in corpus.fixture_paths()}
        again = corpus.ingest(data)
        assert again["written"] == 0
        assert again["novel_buckets"] == 0
        assert {path.name for path in corpus.fixture_paths()} == before

    def test_coverage_census_accumulates(self, tmp_path):
        corpus = FuzzCorpus(tmp_path / "corpus")
        corpus.ingest({"disagreements": [], "coverage": {"a/b/fence=none": 2}})
        summary = corpus.ingest(
            {"disagreements": [], "coverage": {"a/b/fence=none": 3, "c/d/fence=none": 1}}
        )
        assert summary["novel_buckets"] == 1
        assert corpus.coverage() == {"a/b/fence=none": 5, "c/d/fence=none": 1}

    def test_unshrunk_rows_pin_their_flat_shape(self, tmp_path):
        row = {
            "seed": 0, "index": 3, "sha": "ab" * 32,
            "source": "bounds_check", "delay": 2,
            "channel": "aliased", "fence": "none",
            "inject": "no_flush",
        }
        corpus = FuzzCorpus(tmp_path / "corpus")
        corpus.ingest({"disagreements": [row], "coverage": {}})
        (entry,) = corpus.load_fixtures()
        assert entry["shape"] == {
            "source": "bounds_check", "delay": 2,
            "channel": "aliased", "fence": "none",
        }
        rebuilt = fixture_from_entry(entry)
        assert rebuilt.shape.channel == "aliased"

    def test_unknown_schema_is_rejected(self, tmp_path):
        corpus = FuzzCorpus(tmp_path / "corpus")
        path = corpus.write_disagreement(
            {"sha": "cd" * 32, "seed": 0, "index": 0,
             "shape": {"source": "bounds_check", "delay": 0,
                       "channel": "direct", "fence": "none"}}
        )
        tampered = json.loads(path.read_text())
        tampered["schema"] = "bogus/v0"
        path.write_text(json.dumps(tampered))
        with pytest.raises(ValueError, match="schema"):
            list(corpus.load_fixtures())

    def test_missing_corpus_is_empty_not_an_error(self, tmp_path):
        corpus = FuzzCorpus(tmp_path / "nowhere")
        assert corpus.fixture_paths() == []
        assert corpus.coverage() == {}
        assert list(corpus.load_fixtures()) == []


# ---------------------------------------------------------------------------
# The committed regression corpus.
# ---------------------------------------------------------------------------

COMMITTED = list(FuzzCorpus(CORPUS_DIR).load_fixtures())


def test_the_committed_corpus_is_not_empty():
    """The repo ships at least one pinned disagreement reproducer."""
    assert COMMITTED, f"no fixtures under {CORPUS_DIR}"
    assert FuzzCorpus(CORPUS_DIR).coverage()


@pytest.mark.parametrize(
    "entry", COMMITTED, ids=[str(e["sha"])[:12] for e in COMMITTED]
)
class TestCommittedFixtures:
    def test_generator_still_builds_the_pinned_program(self, entry):
        case = fixture_from_entry(entry)
        assert case.sha == entry["sha"], (
            "generator drift: the corpus pins a program the generator no "
            "longer builds at these coordinates"
        )
        if "listing" in entry:
            assert case.program.listing() == entry["listing"]

    def test_recorded_injection_still_reproduces_the_disagreement(self, entry):
        assert entry.get("schema") == DISAGREEMENT_SCHEMA
        case = fixture_from_entry(entry)
        verdict = dual_verdict(case, inject=entry.get("inject"))
        assert not verdict.agrees, (
            "the pinned disagreement no longer reproduces under "
            f"inject={entry.get('inject')!r}"
        )

    def test_clean_oracles_agree_on_the_same_program(self, entry):
        case = fixture_from_entry(entry)
        assert dual_verdict(case).agrees, (
            "the clean oracles disagree on a corpus program -- a real "
            "soundness regression, not an injected one"
        )
