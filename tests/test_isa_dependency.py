"""Tests for static dependency extraction."""

from __future__ import annotations

import pytest

from repro.core import DependencyKind
from repro.isa import (
    all_dependencies,
    assemble,
    control_dependencies,
    dependency_summary,
    fence_dependencies,
    memory_dependencies,
    register_data_dependencies,
)


@pytest.fixture
def simple_program():
    return assemble(
        """
        .text
        mov rax, 1
        add rax, 2
        mov rbx, rax
        hlt
        """,
        name="simple",
    )


class TestDataDependencies:
    def test_raw_chain(self, simple_program):
        deps = {(d.source, d.target) for d in register_data_dependencies(simple_program)}
        assert (0, 1) in deps  # add reads rax written by mov
        assert (1, 2) in deps  # mov rbx, rax reads the add's result

    def test_latest_writer_wins(self):
        program = assemble(".text\nmov rax, 1\nmov rax, 2\nmov rbx, rax\nhlt")
        deps = {(d.source, d.target) for d in register_data_dependencies(program)}
        assert (1, 2) in deps and (0, 2) not in deps

    def test_listing1_secret_chain(self, listing1_program):
        """Load S (index 4) feeds the shift (5) which feeds Load R (6)."""
        deps = {(d.source, d.target) for d in register_data_dependencies(listing1_program)}
        assert (4, 5) in deps
        assert (5, 6) in deps

    def test_address_dependencies_tagged(self, listing1_program):
        from repro.isa import address_dependencies

        address_deps = address_dependencies(listing1_program)
        assert any(
            dep.target == 6 and dep.kind is DependencyKind.ADDRESS for dep in address_deps
        )


class TestControlDependencies:
    def test_instructions_after_branch_depend_on_it(self, listing1_program):
        deps = control_dependencies(listing1_program)
        branch_index = 3
        targets = {dep.target for dep in deps if dep.source == branch_index}
        assert {4, 5, 6, 7} <= targets

    def test_no_control_dependencies_without_branches(self, simple_program):
        assert control_dependencies(simple_program) == []


class TestMemoryAndFences:
    def test_store_to_load_same_symbol(self):
        program = assemble(".text\nmov [buffer], rax\nmov rbx, [buffer]\nhlt")
        deps = memory_dependencies(program)
        assert any(dep.source == 0 and dep.target == 1 for dep in deps)

    def test_store_to_load_different_symbols_not_dependent(self):
        program = assemble(".text\nmov [a], rax\nmov rbx, [b]\nhlt")
        assert memory_dependencies(program) == []

    def test_unknown_address_aliases_everything(self):
        program = assemble(".text\nmov [rax], rbx\nmov rcx, [buffer]\nhlt")
        assert memory_dependencies(program)

    def test_fence_orders_before_and_after(self):
        program = assemble(".text\nmov rax, 1\nlfence\nmov rbx, 2\nhlt")
        deps = fence_dependencies(program)
        pairs = {(d.source, d.target) for d in deps}
        assert (0, 1) in pairs  # before the fence
        assert (1, 2) in pairs and (1, 3) in pairs  # after the fence

    def test_all_dependencies_deduplicated(self, listing1_program):
        deps = all_dependencies(listing1_program)
        keys = {(d.source, d.target, d.kind) for d in deps}
        assert len(keys) == len(deps)

    def test_dependency_summary_counts(self, listing1_program):
        summary = dependency_summary(listing1_program)
        assert summary["data"] >= 2
        assert summary["control"] >= 4
