"""The batch timing plane: differential identities and hot-path bug pins.

Three families of guarantees from the batch PR live here:

* **Masked arbitration == per-op walk.**  Both schedulers now arbitrate
  each cycle's ready ops in one integer-bitmask pass;
  :class:`ReferenceRescanScheduler` below is the *verbatim* pre-mask
  rescan walk, kept as the fixed point the refactor is differentially
  tested against (both schedulers, random contended models, the paper's
  exploit corpus).
* **Batch == per-point.**  ``Engine.simulate_batch`` envelopes are
  byte-identical (``Result.to_json``) to the same points served one
  :meth:`Engine.run` at a time on an equivalent session.
* **Closure backends agree.**  The numpy word-chunk closure sweep and the
  stdlib big-int sweep produce bit-identical ancestor/descendant masks
  and the same racing-pair list, on random DAGs, via either entry point.

Plus regression pins for the satellite bugfixes: the ``stats()["runs"]``
counter (real executions only, never store-warm serves), the
``ProgressLine`` division-artifact clamp, and the ``repro perf --check``
stale-record gate.
"""

from __future__ import annotations

import io
import json
import random
from typing import Dict, List, Optional, Sequence, Set

import pytest
from hypothesis import given, settings, strategies as st

from test_timing_scheduler import random_contended_model, random_stream

from repro import perf
from repro.core.tsg import TopologicalSortGraph, _np, closure_backend
from repro.engine import Engine, _batch_point_spec
from repro.obs.progress import MIN_MEASURABLE_SECONDS, ProgressLine
from repro.scenario import ScenarioSpec
from repro.store import DiskStore
from repro.uarch.defenses import SimDefense
from repro.uarch.timing import (
    DEFAULT_MODEL,
    EventScheduler,
    RescanScheduler,
    Schedule,
    TimingModel,
)
from repro.uarch.timing.ops import PORT_POOLS, port_kind
from repro.uarch.timing.scheduler import _dependencies
from repro.uarch.timing.validate import SCENARIOS

pytestmark = pytest.mark.batch


class ReferenceRescanScheduler:
    """The pre-mask rescan walk, verbatim -- the differential fixed point.

    This is the :class:`~repro.uarch.timing.scheduler.RescanScheduler`
    exactly as it stood before the bitmask refactor: per-op producer-set
    walks, a sorted scan of the executing list for CDB arbitration, and
    Python-set bookkeeping.  Do not modernize it; its whole value is that
    it did not change when the production schedulers did.
    """

    def __init__(self, model: TimingModel = DEFAULT_MODEL) -> None:
        self.model = model

    def schedule(self, ops) -> Schedule:
        model = self.model
        n = len(ops)
        dispatch = [0] * n
        issue = [0] * n
        complete = [0] * n
        retire = [0] * n
        ready = [0] * n
        if n == 0:
            return Schedule(dispatch, issue, complete, retire, ready)

        rat: Dict[str, int] = {}
        last_fence: Optional[int] = None
        deps: Dict[int, Set[int]] = {}
        waiting: List[int] = []  # dispatched, not yet issued (ascending seq)
        executing: List[int] = []  # issued, not yet completed (broadcast)
        finish: Dict[int, int] = {}  # seq -> cycle its execution finishes
        ready_seen: Set[int] = set()
        done: Set[int] = set()
        in_flight: Set[int] = set()

        pools = [port_kind(op.kind) for op in ops]
        limits = {pool: model.port_limit(pool) for pool in PORT_POOLS}
        port_used = {pool: 0 for pool in PORT_POOLS}
        cdb_width = model.cdb_width

        next_dispatch = 0
        head = 0
        rob_used = 0
        rs_used = 0
        cycle = 0

        while head < n:
            finished = sorted(seq for seq in executing if finish[seq] <= cycle)
            if cdb_width is not None:
                finished = finished[:cdb_width]
            if finished:
                granted = set(finished)
                executing = [seq for seq in executing if seq not in granted]
                for seq in finished:
                    complete[seq] = cycle
                    done.add(seq)
                    in_flight.discard(seq)
                    rs_used -= 1
                    pool = pools[seq]
                    if pool is not None and limits[pool] is not None:
                        port_used[pool] -= 1

            retired = 0
            while (
                head < n
                and head in done
                and complete[head] <= cycle - 1
                and retired < model.commit_width
            ):
                retire[head] = cycle
                rob_used -= 1
                head += 1
                retired += 1

            dispatched = 0
            while (
                next_dispatch < n
                and dispatched < model.dispatch_width
                and rob_used < model.rob_size
                and rs_used < model.rs_entries
            ):
                op = ops[next_dispatch]
                seq = next_dispatch
                dispatch[seq] = cycle
                rob_used += 1
                rs_used += 1
                in_flight.add(seq)
                op_deps = _dependencies(op, rat, last_fence)
                if op.kind == "fence":
                    op_deps |= in_flight - done - {seq}
                    last_fence = seq
                deps[seq] = op_deps
                for name in op.writes:
                    rat[name] = seq
                waiting.append(seq)
                next_dispatch += 1
                dispatched += 1

            still_waiting = []
            for seq in waiting:
                producers = deps[seq]
                data_ready = dispatch[seq] <= cycle - 1 and all(
                    producer in done and complete[producer] <= cycle - 1
                    for producer in producers
                )
                if not data_ready:
                    still_waiting.append(seq)
                    continue
                if seq not in ready_seen:
                    ready_seen.add(seq)
                    ready[seq] = cycle
                pool = pools[seq]
                limit = limits[pool] if pool is not None else None
                if limit is not None and port_used[pool] >= limit:
                    still_waiting.append(seq)
                    continue
                if limit is not None:
                    port_used[pool] += 1
                issue[seq] = cycle
                finish[seq] = cycle + max(1, ops[seq].latency)
                executing.append(seq)
            waiting = still_waiting

            cycle += 1

        return Schedule(dispatch, issue, complete, retire, ready)


# ---------------------------------------------------------------------------
# Masked arbitration == the reference per-op walk
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(12))
def test_masked_schedulers_equal_reference_walk(seed):
    """Seeded sweep: both mask-pass schedulers match the verbatim old walk."""
    rng = random.Random(seed)
    ops = random_stream(rng, rng.randint(1, 80))
    model = random_contended_model(rng)
    reference = ReferenceRescanScheduler(model).schedule(ops)
    assert RescanScheduler(model).schedule(ops) == reference
    assert EventScheduler(model).schedule(ops) == reference


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    length=st.integers(min_value=1, max_value=48),
)
def test_masked_schedulers_equal_reference_walk_property(seed, length):
    rng = random.Random(seed)
    ops = random_stream(rng, length)
    model = random_contended_model(rng)
    reference = ReferenceRescanScheduler(model).schedule(ops)
    assert RescanScheduler(model).schedule(ops) == reference
    assert EventScheduler(model).schedule(ops) == reference


def test_reference_walk_on_exploit_corpus():
    """The corpus programs, under real contention, match the reference."""
    from repro.exploits.harness import EXPLOITS
    from repro.uarch import UarchConfig
    from repro.uarch.timing import TimingCPU
    from repro.uarch.timing.scheduler import CONTENDED_MODEL, SERIALIZED_MODEL

    recorded = []

    class RecordingCPU(TimingCPU):
        def __init__(self, program, config=UarchConfig(), **kwargs):
            super().__init__(program, config, **kwargs)
            recorded.append(self)

    for name in sorted(EXPLOITS)[:4]:
        EXPLOITS[name](UarchConfig(), 0x5A, cpu_cls=RecordingCPU)
    streams = [cpu.last_ops for cpu in recorded if cpu.last_ops]
    assert streams, "exploit corpus recorded no dynamic ops"
    for ops in streams:
        for model in (CONTENDED_MODEL, SERIALIZED_MODEL):
            reference = ReferenceRescanScheduler(model).schedule(ops)
            assert RescanScheduler(model).schedule(ops) == reference
            assert EventScheduler(model).schedule(ops) == reference


# ---------------------------------------------------------------------------
# Batch == per-point: envelope byte-identity
# ---------------------------------------------------------------------------
_ATTACKS = sorted(SCENARIOS)
_DEFENSES = sorted(defense.name for defense in SimDefense)


@st.composite
def batch_points(draw):
    """A small campaign: attacks, optionally defended, as batch points."""
    count = draw(st.integers(min_value=1, max_value=4))
    points = []
    for _ in range(count):
        attack = draw(st.sampled_from(_ATTACKS))
        defenses = draw(
            st.lists(st.sampled_from(_DEFENSES), max_size=2, unique=True)
        )
        if defenses:
            points.append({"attack": attack, "defenses": tuple(defenses)})
        else:
            points.append(attack)
    return points


@settings(max_examples=15, deadline=None)
@given(points=batch_points())
def test_batch_envelopes_byte_identical_to_per_point(points):
    """``simulate_batch`` payload envelopes == the per-point loop, bytewise."""
    batch = Engine().simulate_batch(points)
    loop_engine = Engine()
    loop = [loop_engine.run(_batch_point_spec(point)) for point in points]
    assert [result.to_json() for result in batch.payload] == [
        result.to_json() for result in loop
    ]
    assert batch.data["rows"] == [result.data for result in loop]
    assert batch.data["points"] == len(points)


def test_parallel_batch_rows_match_serial():
    """Pool-served batch rows are identical to the serial serve."""
    points = [
        "spectre_v1",
        {"attack": "meltdown", "defenses": ("PREVENT_SPECULATIVE_LOADS",)},
        "spectre_v2",
        "spectre_v1",
        "lvi",
        "spectre_rsb",
    ]
    serial = Engine().simulate_batch(points)
    with Engine() as engine:
        parallel = engine.simulate_batch(points, parallel=2)
    assert parallel.data["rows"] == serial.data["rows"]
    assert parallel.data["leaking"] == serial.data["leaking"]
    assert parallel.data["unique_simulations"] == serial.data["unique_simulations"]


def test_batch_point_spec_rejects_malformed_points():
    with pytest.raises(TypeError):
        _batch_point_spec(42)
    with pytest.raises(ValueError):
        _batch_point_spec({"attack": "spectre_v1", "bogus": 1})
    with pytest.raises(ValueError):
        _batch_point_spec({"defenses": ("LFENCE",)})


def test_batch_spans_emitted_per_point(tmp_path):
    """Parallel batch workers emit one ``worker.point`` span per cold point."""
    from repro.obs.trace import Tracer

    trace_file = tmp_path / "trace.jsonl"
    with Tracer(sink=trace_file) as tracer:
        with Engine(tracer=tracer) as engine:
            engine.simulate_batch(
                ["spectre_v1", "meltdown", "spectre_v2", "lvi"], parallel=2
            )
    records = [
        json.loads(line) for line in trace_file.read_text().splitlines() if line
    ]
    worker_spans = [r for r in records if r.get("name") == "worker.point"]
    assert len(worker_spans) == 4
    assert all(
        span.get("attrs", {}).get("kind") == "simulate" for span in worker_spans
    )


def test_supervised_batch_matches_unsupervised():
    """Routing batch prewarm through the failure policy changes nothing on a
    clean run -- same rows, same envelope, supervision is pure insurance."""
    from repro.engine import FailurePolicy

    points = ["spectre_v1", "meltdown", "spectre_v1", "lvi"]
    plain = Engine().simulate_batch(points)
    with Engine(policy=FailurePolicy(timeout=60.0, retries=1)) as engine:
        supervised = engine.simulate_batch(points, parallel=2)
    assert supervised.data == plain.data
    assert supervised.ok == plain.ok


def test_supervised_batch_quarantines_a_poisoned_point():
    """A point that keeps crashing is quarantined, not fatal: the rest of
    the batch still serves, the envelope flags the failure, and the grid
    stats carry the retry/quarantine accounting."""
    from repro.engine import FailurePolicy
    from repro.faults import FaultPlan, FaultSpec

    plan = FaultPlan(
        faults=(FaultSpec(kind="exception", match="attack='spectre_rsb'"),),
        seed=0,
    )
    with Engine(
        policy=FailurePolicy(timeout=60.0, retries=1), faults=plan
    ) as engine:
        result = engine.simulate_batch(
            ["spectre_v1", "spectre_rsb", "meltdown"], parallel=2
        )
    assert not result.ok
    assert result.data["quarantined"] == 1
    rows = result.data["rows"]
    assert len(rows) == 3
    healthy = [row for row in rows if "error" not in row]
    assert len(healthy) == 2
    grid = engine.stats()["grid"]
    assert grid["quarantined"] == 1
    assert grid["retried"] >= 1


def test_unsupervised_batch_counts_in_grid_stats():
    """Batch shards ride the same grid accounting as every other grid."""
    engine = Engine()
    engine.simulate_batch(["spectre_v1", "meltdown"])
    assert engine.stats()["runs"].get("simulate_batch", 0) == 1


# ---------------------------------------------------------------------------
# Closure backends agree (numpy word chunks vs stdlib big ints)
# ---------------------------------------------------------------------------
def _random_dag(rng: random.Random, vertices: int, edges: int):
    graph = TopologicalSortGraph()
    for i in range(vertices):
        graph.add_vertex(f"v{i}")
    for _ in range(edges):
        a, b = sorted(rng.sample(range(vertices), 2))
        graph.add_edge(f"v{a}", f"v{b}")
    return graph


@pytest.mark.skipif(_np is None, reason="numpy not installed")
@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    vertices=st.integers(min_value=2, max_value=130),
)
def test_closure_backends_bit_identical(seed, vertices):
    """numpy and stdlib sweeps build the same closure and racing pairs."""
    rng = random.Random(seed)
    graph = _random_dag(rng, vertices, rng.randint(0, 3 * vertices))
    order = graph.topological_order()
    graph._rebuild_closure_python(order)
    anc, desc = list(graph._anc), list(graph._desc)
    pairs = graph.all_racing_pairs()
    graph._rebuild_closure_numpy(order)
    assert graph._anc == anc
    assert graph._desc == desc
    assert graph.all_racing_pairs() == pairs


@pytest.mark.skipif(_np is None, reason="numpy not installed")
def test_backend_env_gate(monkeypatch):
    monkeypatch.setenv("REPRO_TSG_BACKEND", "python")
    assert closure_backend() == "python"
    monkeypatch.setenv("REPRO_TSG_BACKEND", "numpy")
    assert closure_backend() == "numpy"
    monkeypatch.setenv("REPRO_TSG_BACKEND", "auto")
    assert closure_backend() == "numpy"


def test_remove_edge_keeps_closure_consistent_across_backends(monkeypatch):
    """``remove_edge`` (the `_rebuild_closure` entry point) is backend-stable."""
    results = []
    backends = ["python"] + (["auto"] if _np is not None else [])
    for backend in backends:
        monkeypatch.setenv("REPRO_TSG_BACKEND", backend)
        graph = _random_dag(random.Random(3), 80, 200)
        victim = graph.edges[0]
        graph.remove_edge(victim.source, victim.target)
        results.append((list(graph._anc), list(graph._desc), graph.all_racing_pairs()))
    assert all(entry == results[0] for entry in results)


# ---------------------------------------------------------------------------
# Satellite pins: runs counter, progress clamp, stale perf records
# ---------------------------------------------------------------------------
def test_store_warm_serves_do_not_count_as_runs(tmp_path):
    """``stats()["runs"]`` counts real executions, not store-warm envelopes."""
    spec = ScenarioSpec("simulate", attack="spectre_v1")
    store = DiskStore(tmp_path / "store")
    engine = Engine(store=store)
    first = engine.run(spec)
    assert first.cache == "cold"
    assert engine.stats()["runs"].get("simulate") == 1
    second = engine.run(spec)
    assert second.cache == "warm"
    assert engine.stats()["runs"].get("simulate") == 1  # unchanged
    # A fresh session on the same store serves warm without any run at all.
    rewarmed = Engine(store=DiskStore(tmp_path / "store"))
    assert rewarmed.run(spec).cache == "warm"
    assert "simulate" not in rewarmed.stats()["runs"]


def test_progress_rate_clamped_below_measurable_elapsed():
    """Sub-millisecond elapsed renders ``--`` instead of a division artifact."""
    progress = ProgressLine(total=10, stream=io.StringIO())
    progress.done = 5
    line = progress.line(now=progress._t0 + MIN_MEASURABLE_SECONDS / 10)
    assert "-- pts/s" in line
    assert "ETA --" in line
    # Past the clamp the real rate and ETA come back.
    line = progress.line(now=progress._t0 + 1.0)
    assert "5.0 pts/s" in line
    assert "ETA 1s" in line
    # A finished grid always reports ETA 0s, measurable or not.
    progress.done = 10
    line = progress.line(now=progress._t0)
    assert "ETA 0s" in line and "-- pts/s" in line


def _fake_trajectory(tmp_path, commit: str):
    path = tmp_path / "BENCH.json"
    path.write_text(
        json.dumps({"benchmark": "x", "runs": [{"commit": commit, "results": [1]}]})
    )
    return path


def test_perf_check_fails_on_stale_commit(tmp_path, monkeypatch, capsys):
    """A record stamped by a non-HEAD commit fails unless --allow-stale."""
    monkeypatch.setattr(perf, "_git_commit", lambda: "headheadhead")
    monkeypatch.setattr(perf, "check_thresholds", lambda trajectory: [])
    monkeypatch.setattr(perf, "threshold_report", lambda trajectory: [])
    stale_path = _fake_trajectory(tmp_path, "oldoldold")
    assert perf.run_check(str(stale_path)) == 1
    assert "FAIL" in capsys.readouterr().out
    assert perf.run_check(str(stale_path), allow_stale=True) == 0
    out = capsys.readouterr().out
    assert "WARNING (stale, tolerated)" in out
    fresh_path = _fake_trajectory(tmp_path, "headheadhead")
    assert perf.run_check(str(fresh_path)) == 0
    assert "all perf thresholds hold" in capsys.readouterr().out


def test_stale_records_empty_when_head_unknown(monkeypatch):
    monkeypatch.setattr(perf, "_git_commit", lambda: "unknown")
    assert perf.stale_records({"runs": [{"commit": "abc", "results": [1]}]}) == []
