"""Property tests for the TSG reachability index (bitset transitive closure).

The closure is an *index*: every answer it gives must agree with a from-
scratch BFS over the adjacency sets.  These tests pin that equivalence on
random DAGs, including after edge removal (which rebuilds the closure), and
pin the downset-DP ordering counter against explicit enumeration.
"""

from __future__ import annotations

from collections import deque
from itertools import combinations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import TopologicalSortGraph, has_race
from repro.core.race import find_races


def bfs_reachable(graph: TopologicalSortGraph, source: str) -> set:
    """Reference reachability: plain BFS over the successor sets."""
    seen = set()
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for nxt in graph.successors(node):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


@st.composite
def random_dags(draw, max_vertices: int = 10):
    """Random DAGs built by only adding forward edges over a vertex ordering."""
    count = draw(st.integers(min_value=2, max_value=max_vertices))
    names = [f"v{i}" for i in range(count)]
    graph = TopologicalSortGraph(name="random")
    for name in names:
        graph.add_vertex(name)
    possible_edges = list(combinations(range(count), 2))
    chosen = draw(
        st.lists(st.sampled_from(possible_edges), unique=True, max_size=len(possible_edges))
    )
    for source, target in chosen:
        graph.add_edge(names[source], names[target])
    return graph


@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_closure_matches_bfs_reachability(graph):
    """has_path / descendants / ancestors must equal BFS answers for all pairs."""
    reach = {name: bfs_reachable(graph, name) for name in graph.vertices}
    for source in graph.vertices:
        assert graph.descendants(source) == reach[source]
        for target in graph.vertices:
            expected = source == target or target in reach[source]
            assert graph.has_path(source, target) == expected
    for target in graph.vertices:
        expected_anc = {u for u in graph.vertices if u != target and target in reach[u]}
        assert graph.ancestors(target) == expected_anc


@given(random_dags())
@settings(max_examples=40, deadline=None)
def test_closure_survives_edge_removal(graph):
    """Removing an edge rebuilds the closure to match BFS again."""
    edges = graph.edges
    if not edges:
        return
    victim = edges[len(edges) // 2]
    graph.remove_edge(victim.source, victim.target)
    reach = {name: bfs_reachable(graph, name) for name in graph.vertices}
    for source in graph.vertices:
        assert graph.descendants(source) == reach[source]
        assert graph.ancestors(source) == {
            u for u in graph.vertices if u != source and source in reach[u]
        }


@given(random_dags(max_vertices=12))
@settings(max_examples=40, deadline=None)
def test_dp_ordering_count_matches_enumeration(graph):
    """The downset-DP counter equals the backtracking enumerator exactly.

    Both sides are capped at the same limit so sparse 12-vertex graphs
    (up to 12! extensions) stay cheap; under the cap the counts must agree
    exactly, at the cap both must saturate to it.
    """
    cap = 20000
    enumerated = sum(1 for _ in graph.all_orderings(limit=cap))
    assert graph.count_orderings(limit=cap) == enumerated


@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_batch_racing_pairs_match_pairwise_check(graph):
    """all_racing_pairs must equal the pairwise Theorem 1 check."""
    batch = set(map(frozenset, graph.all_racing_pairs()))
    pairwise = {
        frozenset((u, v))
        for u, v in combinations(graph.vertices, 2)
        if has_race(graph, u, v)
    }
    assert batch == pairwise
    assert {frozenset(r.as_pair()) for r in find_races(graph)} == pairwise


@given(random_dags())
@settings(max_examples=40, deadline=None)
def test_racing_partners_consistent_with_batch(graph):
    pairs = graph.all_racing_pairs()
    by_vertex = {name: set() for name in graph.vertices}
    for u, v in pairs:
        by_vertex[u].add(v)
        by_vertex[v].add(u)
    for name in graph.vertices:
        assert graph.racing_partners(name) == by_vertex[name]


@given(random_dags(), st.integers(min_value=1, max_value=20))
@settings(max_examples=40, deadline=None)
def test_count_orderings_limit_contract(graph, limit):
    """With a cap, the counter returns min(exact, cap), as the enumerator did."""
    exact = graph.count_orderings(limit=None)
    assert graph.count_orderings(limit=limit) == min(exact, limit)


def test_capped_count_bounds_work_on_wide_antichains():
    """A capped count on a pathological downset lattice stays fast (DP falls
    back to the bounded enumerator instead of exploring 2^40 states)."""
    graph = TopologicalSortGraph(name="star")
    graph.add_vertex("root")
    for i in range(40):
        graph.add_vertex(f"leaf{i}")
        graph.add_edge("root", f"leaf{i}")
    assert graph.count_orderings(limit=100) == 100


def test_find_races_among_unknown_vertex_raises():
    graph = TopologicalSortGraph()
    graph.add_vertex("A")
    graph.add_vertex("B")
    with pytest.raises(KeyError, match="Unknown vertex"):
        find_races(graph, among=["A", "missing"])


def test_copy_has_independent_closure():
    graph = TopologicalSortGraph()
    for name in "ABC":
        graph.add_vertex(name)
    graph.add_edge("A", "B")
    clone = graph.copy()
    clone.add_edge("B", "C")
    assert clone.has_path("A", "C")
    assert not graph.has_path("A", "C")
    assert graph.racing_partners("C") == {"A", "B"}
