"""Property-based tests for the simulator substrate and channels."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.channels import CacheTimingSurface, FlushReloadChannel
from repro.uarch import RegisterFile, SetAssociativeCache
from repro.uarch.registers import Flags

addresses = st.integers(min_value=0, max_value=0xFFFF_FFFF)


@given(st.lists(addresses, min_size=1, max_size=64))
@settings(max_examples=50, deadline=None)
def test_cache_accessed_addresses_are_present_until_evicted(address_list):
    """After an access, the line is present unless a later fill evicted it."""
    cache = SetAssociativeCache(sets=8, ways=2, line_size=64)
    for address in address_list:
        cache.access(address)
        assert cache.contains(address)


@given(st.lists(addresses, min_size=1, max_size=64))
@settings(max_examples=50, deadline=None)
def test_cache_flush_all_empties_the_cache(address_list):
    cache = SetAssociativeCache(sets=8, ways=2, line_size=64)
    for address in address_list:
        cache.access(address)
    cache.flush_all()
    assert cache.occupancy() == 0
    for address in address_list:
        assert not cache.contains(address)


@given(st.lists(addresses, min_size=1, max_size=32), addresses)
@settings(max_examples=50, deadline=None)
def test_cache_occupancy_never_exceeds_capacity(address_list, extra):
    cache = SetAssociativeCache(sets=4, ways=2, line_size=64)
    for address in address_list + [extra]:
        cache.access(address)
    assert cache.occupancy() <= cache.sets * cache.ways


@given(st.integers(min_value=0, max_value=255))
@settings(max_examples=60, deadline=None)
def test_flush_reload_roundtrip_recovers_any_byte(value):
    """The Flush+Reload channel is lossless for every byte value."""
    cache = SetAssociativeCache(sets=64, ways=8, line_size=64)
    channel = FlushReloadChannel(CacheTimingSurface(cache), 0x100_0000, entries=256)
    assert channel.transmit(value).value == value


@given(
    st.dictionaries(
        st.sampled_from(["rax", "rbx", "rcx", "rdx", "r8"]),
        st.integers(min_value=0, max_value=2**64 - 1),
        max_size=5,
    )
)
@settings(max_examples=50, deadline=None)
def test_register_file_snapshot_restore_roundtrip(values):
    registers = RegisterFile()
    for name, value in values.items():
        registers.write(name, value, slow=bool(value % 2))
    snapshot = registers.snapshot()
    for name in values:
        registers.write(name, 0)
    registers.restore(snapshot)
    for name, value in values.items():
        assert registers.read(name) == value
        assert registers.is_slow(name) == bool(value % 2)


@given(st.integers(min_value=0, max_value=2**64 - 1), st.integers(min_value=0, max_value=2**64 - 1))
@settings(max_examples=100, deadline=None)
def test_flags_condition_pairs_are_consistent(lhs, rhs):
    """Branch conditions and their complements never both hold."""
    flags = Flags(lhs=lhs, rhs=rhs)
    assert flags.evaluate("ja") != flags.evaluate("jbe")
    assert flags.evaluate("jae") != flags.evaluate("jb")
    assert flags.evaluate("je") != flags.evaluate("jne")
    assert flags.evaluate("je") == (lhs == rhs)
