"""Tests for the full-report generator."""

from __future__ import annotations

import pytest

from repro.analysis import attack_section, defense_matrix_section, full_report
from repro.attacks import get
from repro.defenses import get as get_defense


class TestAttackSection:
    def test_section_contains_key_facts(self):
        text = attack_section(get("spectre_v1"))
        assert "### Spectre v1" in text
        assert "CVE-2017-5753" in text
        assert "missing security dependencies" in text
        assert "Load S" in text

    def test_meltdown_section_mentions_microops(self):
        text = attack_section(get("meltdown"))
        assert "intra-instruction micro-ops" in text


class TestDefenseMatrixSection:
    def test_restricted_matrix(self):
        text = defense_matrix_section(
            defenses=[get_defense("lfence"), get_defense("kpti")],
            attacks=[get("spectre_v1"), get("meltdown")],
        )
        lines = text.splitlines()
        assert len(lines) == 4  # header + separator + 2 defenses
        assert "defeats" in text and "-" in text


class TestFullReport:
    def test_report_without_matrix(self):
        text = full_report(include_matrix=False)
        assert "## Table I" in text
        assert "## Attack graphs" in text
        assert "### Cacheout" in text
        assert "## Defense x attack evaluation" not in text

    def test_report_with_matrix(self):
        text = full_report(include_matrix=True)
        assert "## Defense x attack evaluation" in text
        assert "InvisiSpec" in text
