"""Cross-layer integration tests.

These tests check that the three layers of the reproduction agree with each
other: the abstract attack-graph model (core / attacks / defenses), the
program-level tool (isa / graphtool), and the executable substrate
(uarch / channels / exploits).
"""

from __future__ import annotations

import pytest

from repro.attacks import get as get_attack
from repro.defenses import DefenseStrategy, evaluate_defense, get as get_defense
from repro.exploits import EXPLOITS
from repro.graphtool import analyze_program, patch_program
from repro.isa import assemble
from repro.uarch import DEFENSE_STRATEGY, SimDefense, SpeculativeCPU, UarchConfig


#: Graph-model attacks paired with their simulator exploit and a simulator
#: defense implementing each paper strategy that should (or should not) work.
MODEL_TO_SIM = {
    "spectre_v1": "spectre_v1",
    "spectre_v2": "spectre_v2",
    "spectre_rsb": "spectre_rsb",
    "spectre_v4": "spectre_v4",
    "meltdown": "meltdown",
    "foreshadow": "foreshadow",
    "spectre_v3a": "spectre_v3a",
    "lazy_fp": "lazy_fp",
}


class TestModelMatchesSimulator:
    @pytest.mark.parametrize("attack_key", sorted(MODEL_TO_SIM))
    def test_vulnerable_model_means_leaking_simulator(self, attack_key):
        """Every attack the graph model flags as vulnerable actually leaks."""
        graph = get_attack(attack_key).build_graph()
        assert graph.is_vulnerable()
        result = EXPLOITS[MODEL_TO_SIM[attack_key]]()
        assert result.success

    def test_strategy2_agrees_across_layers_for_spectre(self):
        """NDA-style 'prevent use' defeats Spectre v1 in the model and on the simulator."""
        model_verdict = evaluate_defense(get_defense("nda"), get_attack("spectre_v1")).effective
        sim_verdict = not EXPLOITS["spectre_v1"](
            UarchConfig().with_defenses(SimDefense.NO_SPECULATIVE_FORWARDING)
        ).success
        assert model_verdict and sim_verdict

    def test_strategy3_agrees_across_layers_for_meltdown(self):
        """InvisiSpec-style 'prevent send' defeats Meltdown in the model and on the simulator."""
        model_verdict = evaluate_defense(get_defense("invisispec"), get_attack("meltdown")).effective
        sim_verdict = not EXPLOITS["meltdown"](
            UarchConfig().with_defenses(SimDefense.INVISIBLE_SPECULATION)
        ).success
        assert model_verdict and sim_verdict

    def test_strategy4_agrees_across_layers(self):
        """Predictor clearing defeats Spectre v2 but not Meltdown, in both layers."""
        assert evaluate_defense(get_defense("ibpb"), get_attack("spectre_v2")).effective
        assert not EXPLOITS["spectre_v2"](
            UarchConfig().with_defenses(SimDefense.FLUSH_PREDICTORS)
        ).success
        assert not evaluate_defense(get_defense("ibpb"), get_attack("meltdown")).effective
        assert EXPLOITS["meltdown"](
            UarchConfig().with_defenses(SimDefense.FLUSH_PREDICTORS)
        ).success

    def test_wrong_place_defense_agrees_across_layers(self):
        """KPTI (prevent access to unmapped kernel pages) stops Meltdown but not
        Foreshadow -- in the graph model via the L1-cache source, and on the
        simulator via the L1TF behaviour."""
        assert not EXPLOITS["meltdown"](
            UarchConfig().with_defenses(SimDefense.KERNEL_ISOLATION)
        ).success
        assert EXPLOITS["foreshadow"](
            UarchConfig().with_defenses(SimDefense.KERNEL_ISOLATION)
        ).success
        kpti = get_defense("kpti")
        assert not kpti.applies_to(get_attack("foreshadow"))

    def test_every_sim_defense_strategy_has_a_model_counterpart(self):
        assert set(DEFENSE_STRATEGY.values()) == set(DefenseStrategy)


class TestToolMatchesSimulator:
    SPECTRE_TEXT = """
    .data
    probe:  address=0x1000000 size=1048576 shared
    arr:    address=0x200000  size=16
    size:   address=0x210000  size=8
    secret: address=0x200048  size=1 protected
    .text
    victim:
    cmp rdx, [size]
    ja done
    mov rax, byte [arr + rdx]
    shl rax, 12
    mov rbx, [probe + rax]
    done:
    hlt
    """

    def _leak(self, program_text: str) -> bool:
        """Train, flush, run the program on the simulator; did it leak transiently?"""
        program = assemble(program_text, name="victim")
        cpu = SpeculativeCPU(program, UarchConfig())
        cpu.write_memory(0x210000, 16, 8)
        cpu.write_memory(0x200048, 0x5A, 1)
        for _ in range(3):
            cpu.set_register("rdx", 1)
            cpu.run("victim")
        cpu.flush_range(0x1000000, 256 * 4096)
        cpu.flush_symbol("size")
        cpu.set_register("rdx", 0x48)
        cpu.run("victim")
        return cpu.cache.contains(0x1000000 + 0x5A * 4096)

    def test_tool_flags_the_program_that_leaks(self):
        program = assemble(self.SPECTRE_TEXT, name="victim")
        assert analyze_program(program).vulnerable
        assert self._leak(self.SPECTRE_TEXT)

    def test_tool_patch_stops_the_leak_on_the_simulator(self):
        """The fence the tool inserts actually prevents the transient leak."""
        program = assemble(self.SPECTRE_TEXT, name="victim")
        patch = patch_program(program)
        assert not patch.report_after.vulnerable
        patched_listing = self.SPECTRE_TEXT.replace("ja done\n", "ja done\n    lfence\n")
        assert not self._leak(patched_listing)

    def test_tool_classification_matches_registry(self):
        """The tool's Spectre-type / Meltdown-type decision matches the catalog."""
        spectre_report = analyze_program(assemble(self.SPECTRE_TEXT, name="victim"))
        assert spectre_report.is_meltdown_type == get_attack("spectre_v1").is_meltdown_type

        meltdown_text = """
        .data
        probe:   address=0x1000000 size=1048576 shared
        ksecret: address=0xffff0000 size=64 kernel protected
        .text
        mov rax, byte [ksecret]
        shl rax, 12
        mov rbx, [probe + rax]
        hlt
        """
        meltdown_report = analyze_program(assemble(meltdown_text, name="meltdown"))
        assert meltdown_report.is_meltdown_type == get_attack("meltdown").is_meltdown_type
