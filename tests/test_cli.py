"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main

LISTING1 = """
.data
probe_array:  address=0x1000000 size=1048576 shared
victim_array: address=0x200000  size=16
victim_size:  address=0x210000  size=8
secret:       address=0x200048  size=1 protected
.text
    cmp rdx, [victim_size]
    ja done
    mov rax, byte [victim_array + rdx]
    shl rax, 12
    mov rbx, [probe_array + rax]
done:
    hlt
"""


@pytest.fixture
def listing_file(tmp_path):
    path = tmp_path / "victim.s"
    path.write_text(LISTING1)
    return str(path)


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for argv in (["tables"], ["attacks"], ["attack", "spectre_v1"],
                     ["defenses"], ["evaluate", "lfence", "spectre_v1"],
                     ["exploit", "meltdown"], ["ablation", "spectre_v1"], ["report"],
                     ["serve", "--port", "0"],
                     ["request", "--url", "http://127.0.0.1:1", "--stats"]):
            args = parser.parse_args(argv)
            assert callable(args.handler)

    def test_version_flag_prints_version_and_commit(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["--version"])
        assert exit_info.value.code == 0
        banner = capsys.readouterr().out.strip()
        assert banner.startswith("repro ")

    def test_build_info_degrades_to_version_only(self):
        from repro import __version__, build_info

        banner = build_info()
        assert banner.startswith(f"repro {__version__}")


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Spectre v1" in out and "KAISER" in out and "Kernel privilege check" in out

    def test_attacks_listing(self, capsys):
        assert main(["attacks"]) == 0
        out = capsys.readouterr().out
        assert "spectre_v4" in out and "meltdown-type" in out

    def test_attack_description(self, capsys):
        assert main(["attack", "spectre_v1"]) == 0
        out = capsys.readouterr().out
        assert "Load S" in out and "missing security dependencies" in out

    def test_attack_dot_output(self, capsys):
        assert main(["attack", "meltdown", "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_defenses_listing(self, capsys):
        assert main(["defenses"]) == 0
        assert "InvisiSpec" in capsys.readouterr().out

    def test_evaluate_effective_defense_returns_zero(self, capsys):
        assert main(["evaluate", "lfence", "spectre_v1"]) == 0
        assert "defeats the attack" in capsys.readouterr().out

    def test_evaluate_ineffective_defense_returns_one(self, capsys):
        assert main(["evaluate", "lfence", "meltdown"]) == 1
        assert "does NOT defeat" in capsys.readouterr().out

    def test_analyze_vulnerable_program_returns_one(self, listing_file, capsys):
        assert main(["analyze", listing_file]) == 1
        assert "missing security dependencies" in capsys.readouterr().out

    def test_analyze_json_emits_result_envelope(self, listing_file, capsys):
        assert main(["analyze", "--json", listing_file]) == 1
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["kind"] == "analyze"
        assert envelope["ok"] is False
        assert envelope["data"]["vulnerable"] is True
        assert envelope["data"]["findings"]

    def test_evaluate_json_emits_result_envelope(self, capsys):
        assert main(["evaluate", "--json", "lfence", "spectre_v1"]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["kind"] == "evaluate"
        assert envelope["ok"] is True
        assert envelope["data"]["defense"] == "lfence"
        assert envelope["data"]["attack"] == "spectre_v1"

    def test_patch_program(self, listing_file, capsys):
        assert main(["patch", listing_file]) == 0
        out = capsys.readouterr().out
        assert "lfence" in out

    def test_exploit_leaks_returns_one(self, capsys):
        assert main(["exploit", "spectre_v1"]) == 1
        assert "LEAKED" in capsys.readouterr().out

    def test_exploit_with_defense_returns_zero(self, capsys):
        assert main(["exploit", "meltdown", "--defense", "kernel_isolation"]) == 0
        assert "no leak" in capsys.readouterr().out

    def test_exploit_unknown_name(self):
        with pytest.raises(SystemExit):
            main(["exploit", "rowhammer"])

    def test_exploit_unknown_defense(self):
        with pytest.raises(SystemExit):
            main(["exploit", "meltdown", "--defense", "tinfoil_hat"])

    def test_ablation(self, capsys):
        assert main(["ablation", "spectre_v1"]) == 0
        out = capsys.readouterr().out
        assert "(no defense)" in out and "defeated" in out

    def test_report_to_file(self, tmp_path, capsys):
        output = tmp_path / "report.md"
        assert main(["report", "--no-matrix", "-o", str(output)]) == 0
        text = output.read_text()
        assert "# Speculative execution attack-graph model" in text
        assert "### Spectre v1" in text
        assert "Table III" in text


class TestSimulateCommand:
    def test_simulate_leaking_attack_returns_one(self, capsys):
        assert main(["simulate", "spectre_v1"]) == 1
        out = capsys.readouterr().out
        assert "TRANSMIT WINS" in out and "theorem 1" in out and "agrees" in out

    def test_simulate_defended_returns_zero(self, capsys):
        assert main(["simulate", "spectre_v1", "--defense",
                     "prevent_speculative_loads"]) == 0
        assert "no covert transmit" in capsys.readouterr().out

    def test_simulate_json_envelope(self, capsys):
        assert main(["simulate", "--json", "meltdown"]) == 1
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["kind"] == "simulate"
        assert envelope["data"]["transmit_beats_squash"] is True
        assert envelope["data"]["transmit_cycle"] < envelope["data"]["squash_cycle"]

    def test_simulate_validate(self, capsys):
        assert main(["simulate", "--validate"]) == 0
        assert "attacks agree with Theorem 1" in capsys.readouterr().out

    def test_simulate_validate_json(self, capsys):
        assert main(["simulate", "--validate", "--json"]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["ok"] is True
        assert envelope["data"]["disagreeing"] == []

    def test_simulate_validate_contended(self, capsys):
        """Acceptance criterion: Theorem-1 agreement for all registry attacks
        under the contended (bounded ports + CDB) timing model."""
        assert main(["simulate", "--validate", "--contended", "--json"]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["ok"] is True
        assert envelope["data"]["contended"] is True
        assert envelope["data"]["disagreeing"] == []

    def test_simulate_contended_single_attack(self, capsys):
        assert main(["simulate", "spectre_v1", "--contended"]) == 1
        assert "TRANSMIT WINS" in capsys.readouterr().out

    def test_simulate_ablate_window_json_smoke(self, capsys):
        assert main(["simulate", "spectre_v1", "--ablate-window", "--json"]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["kind"] == "window_ablation"
        assert envelope["data"]["attacks"] == 1
        rows = envelope["data"]["rows"]
        assert len(rows) == envelope["data"]["models"]
        # The measurable FU-contention transmit: nonzero cycle delta under
        # the bounded port configs, zero on the unbounded machine.
        channel = {row["ports"]: row for row in envelope["data"]["contention_channel"]}
        assert channel["unbounded"]["cycle_delta"] == 0
        assert channel["contended"]["cycle_delta"] > 0
        assert channel["serialized"]["detected"] is True
        # The window ablation bites: the smallest ROB/RS point flips the race.
        smallest = [row for row in rows if row["rob_size"] == 4]
        assert smallest and all(not row["transmit_beats_squash"] for row in smallest)

    def test_simulate_ablate_window_table(self, capsys):
        assert main(["simulate", "spectre_v1", "--ablate-window"]) == 0
        out = capsys.readouterr().out
        assert "FU-contention covert channel" in out
        assert "TRANSMITS" in out and "no signal" in out

    def test_simulate_without_name_or_mode_exits(self):
        with pytest.raises(SystemExit):
            main(["simulate"])

    def test_ablate_window_rejects_contended(self):
        # The ablation sweeps port configurations itself; silently ignoring
        # the flag would misreport what ran.
        with pytest.raises(SystemExit):
            main(["simulate", "spectre_v1", "--ablate-window", "--contended"])

    def test_ablate_window_rejects_defense(self):
        # Same contract: the ablation is undefended by construction.
        with pytest.raises(SystemExit):
            main(["simulate", "spectre_v1", "--ablate-window",
                  "--defense", "kernel_isolation"])

    @pytest.mark.parametrize("modes", [
        ["--sweep", "--validate"],
        ["--sweep", "--ablate-window"],
        ["--validate", "--ablate-window"],
    ])
    def test_simulate_modes_are_mutually_exclusive(self, modes):
        with pytest.raises(SystemExit):
            main(["simulate", *modes])

    def test_simulate_unknown_defense_exits(self):
        with pytest.raises(SystemExit):
            main(["simulate", "spectre_v1", "--defense", "tinfoil_hat"])

    @pytest.mark.slow
    def test_simulate_sweep_table(self, capsys):
        assert main(["simulate", "--sweep"]) == 0
        out = capsys.readouterr().out
        assert "spectre_v1" in out and "defended" in out and "LEAKS" in out

    @pytest.mark.slow
    def test_simulate_full_ablation_sweep(self, capsys):
        """The full registry-wide window ablation (excluded from tier-1)."""
        assert main(["simulate", "--ablate-window", "--json"]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["data"]["attacks"] == 19
        assert envelope["data"]["runs"] == 19 * envelope["data"]["models"]


class TestJsonEnvelopes:
    def test_patch_json(self, listing_file, capsys):
        assert main(["patch", "--json", listing_file]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["kind"] == "patch"
        assert envelope["data"]["fences_inserted"]
        assert "lfence" in envelope["data"]["patched_listing"]

    def test_ablation_json(self, capsys):
        assert main(["ablation", "--json", "spectre_v1"]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["kind"] == "ablation"
        assert envelope["data"]["baseline_leaks"] is True
        assert envelope["data"]["rows"]


#: A healthy service-throughput record for synthetic perf trajectories:
#: perfect single-flight dedup (computed == unique) over the 50%-overlap load.
GOOD_SERVICE_RECORD = {
    "benchmark": "service-throughput",
    "clients": 8,
    "requests": 80,
    "unique_specs": 45,
    "computed": 45,
    "perfect_dedup": True,
    "dedup_hit_rate": 0.4375,
}


class TestPerfCheck:
    def test_perf_quick_smoke_and_check_roundtrip(self, tmp_path, capsys):
        output = tmp_path / "bench.json"
        assert main(["perf", "--quick", "-o", str(output)]) == 0
        out = capsys.readouterr().out
        assert "timing scheduler" in out and "event queue" in out
        assert "contended timing scheduler" in out
        trajectory = json.loads(output.read_text())
        records = trajectory["runs"][-1]["timing_results"]
        # Default runs keep the demoted 200-instruction rescan baseline
        # (the timing-batch record counts points, not instructions).
        assert all(
            record["instructions"] <= 200
            for record in records
            if "instructions" in record
        )
        by_name = {record["benchmark"]: record for record in records}
        assert by_name["timing-event-queue"]["speedup_event_vs_rescan"] > 5
        assert by_name["timing-event-queue-contended"]["speedup_event_vs_rescan"] > 5
        assert by_name["timing-event-queue-contended"]["contended"] is True
        assert by_name["timing-batch"]["speedup_batch_vs_per_point"] > 1

    def test_perf_check_fails_on_regression(self, tmp_path, capsys, monkeypatch):
        # Pin the stale-record gate out of the way: these fabricated runs
        # carry no commit stamp, and staleness has its own tests.
        monkeypatch.setattr("repro.perf._git_commit", lambda: "unknown")
        bad = {
            "runs": [{
                "results": [{"graph": "layered-200v", "speedup_all_pairs": 2.0}],
                "engine_results": [
                    {"benchmark": "engine-analyze-warm-cache", "speedup_warm": 1.0},
                    {"benchmark": "engine-attack-space-sharded",
                     "speedup_sharded_vs_serial": 0.5},
                    {"benchmark": "engine-disk-warm-run",
                     "speedup_warm_disk": 2.0},
                    {"benchmark": "grid-resume-overhead", "points": 200,
                     "plain_seconds": 1.5, "checkpoint_seconds": 2.25,
                     "overhead_fraction": 0.5, "resume_seconds": 0.9,
                     "resume_recomputed": 3, "speedup_resume": 1.7,
                     "trace_off_seconds": 1.875,
                     "trace_off_overhead_fraction": 0.25},
                    {"benchmark": "service-throughput", "clients": 8,
                     "requests": 80, "unique_specs": 45, "computed": 80,
                     "perfect_dedup": False, "dedup_hit_rate": 0.0},
                ],
                "timing_results": [
                    {"benchmark": "timing-event-queue", "instructions": 500,
                     "speedup_event_vs_rescan": 1.5},
                    {"benchmark": "timing-event-queue-contended",
                     "instructions": 500, "speedup_event_vs_rescan": 1.5},
                    {"benchmark": "timing-batch", "points": 380,
                     "speedup_batch_vs_per_point": 2.0},
                ],
                "fuzz_results": [
                    {"benchmark": "fuzz-throughput", "count": 96,
                     "executed": 96, "seconds": 96.0,
                     "points_per_second": 1.0, "buckets": 1,
                     "disagreed": 2, "quarantined": 1},
                ],
            }]
        }
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad))
        assert main(["perf", "--check", "-o", str(path)]) == 1
        out = capsys.readouterr().out
        assert out.count("FAIL:") == 15
        assert "PASS" not in out  # every floor violated: the table agrees
        assert "contended event-queue scheduler" in out
        assert "warm DiskStore run" in out
        assert "service dedup hit-rate" in out
        assert "single-flight" in out
        assert "disabled-tracer grid overhead" in out
        assert "tracing-off grid overhead" in out
        assert "fuzz campaign 1 programs/s" in out
        assert "2 oracle disagreement(s)" in out

    def test_perf_check_flags_missing_contended_benchmark(self, tmp_path, capsys):
        stale = {
            "runs": [{
                "results": [{"graph": "layered-200v", "speedup_all_pairs": 1000.0}],
                "engine_results": [
                    {"benchmark": "engine-analyze-warm-cache", "speedup_warm": 30.0},
                    {"benchmark": "engine-attack-space-sharded",
                     "speedup_sharded_vs_serial": 4.0},
                    {"benchmark": "engine-disk-warm-run",
                     "speedup_warm_disk": 100.0},
                    {"benchmark": "grid-resume-overhead", "points": 200,
                     "plain_seconds": 1.5, "checkpoint_seconds": 1.53,
                     "overhead_fraction": 0.02, "resume_seconds": 0.04,
                     "resume_recomputed": 0, "speedup_resume": 37.0,
                     "trace_off_seconds": 1.515,
                     "trace_off_overhead_fraction": 0.01},
                    dict(GOOD_SERVICE_RECORD),
                ],
                "timing_results": [
                    {"benchmark": "timing-event-queue", "instructions": 500,
                     "speedup_event_vs_rescan": 100.0},
                ],
            }]
        }
        path = tmp_path / "stale.json"
        path.write_text(json.dumps(stale))
        assert main(["perf", "--check", "-o", str(path)]) == 1
        assert "no contended event-scheduler benchmark" in capsys.readouterr().out

    def test_perf_check_flags_missing_disk_store_benchmark(self, tmp_path, capsys):
        stale = {
            "runs": [{
                "results": [{"graph": "layered-200v", "speedup_all_pairs": 1000.0}],
                "engine_results": [
                    {"benchmark": "engine-analyze-warm-cache", "speedup_warm": 30.0},
                    {"benchmark": "engine-attack-space-sharded",
                     "speedup_sharded_vs_serial": 4.0},
                    {"benchmark": "grid-resume-overhead", "points": 200,
                     "plain_seconds": 1.5, "checkpoint_seconds": 1.53,
                     "overhead_fraction": 0.02, "resume_seconds": 0.04,
                     "resume_recomputed": 0, "speedup_resume": 37.0,
                     "trace_off_seconds": 1.515,
                     "trace_off_overhead_fraction": 0.01},
                    dict(GOOD_SERVICE_RECORD),
                ],
                "timing_results": [
                    {"benchmark": "timing-event-queue", "instructions": 500,
                     "speedup_event_vs_rescan": 100.0},
                    {"benchmark": "timing-event-queue-contended",
                     "instructions": 500, "speedup_event_vs_rescan": 80.0},
                ],
            }]
        }
        path = tmp_path / "stale.json"
        path.write_text(json.dumps(stale))
        assert main(["perf", "--check", "-o", str(path)]) == 1
        assert "no disk-store" in capsys.readouterr().out

    def test_perf_check_passes_on_healthy_trajectory(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setattr("repro.perf._git_commit", lambda: "unknown")
        good = {
            "runs": [{
                "results": [{"graph": "layered-200v", "speedup_all_pairs": 1000.0}],
                "engine_results": [
                    {"benchmark": "engine-analyze-warm-cache", "speedup_warm": 30.0},
                    {"benchmark": "engine-attack-space-sharded",
                     "speedup_sharded_vs_serial": 4.0},
                    {"benchmark": "engine-disk-warm-run",
                     "speedup_warm_disk": 100.0},
                    {"benchmark": "grid-resume-overhead", "points": 200,
                     "plain_seconds": 1.5, "checkpoint_seconds": 1.53,
                     "overhead_fraction": 0.02, "resume_seconds": 0.04,
                     "resume_recomputed": 0, "speedup_resume": 37.0,
                     "trace_off_seconds": 1.515,
                     "trace_off_overhead_fraction": 0.01},
                    dict(GOOD_SERVICE_RECORD),
                ],
                "timing_results": [
                    {"benchmark": "timing-event-queue", "instructions": 500,
                     "speedup_event_vs_rescan": 100.0},
                    {"benchmark": "timing-event-queue-contended",
                     "instructions": 500, "speedup_event_vs_rescan": 80.0},
                    {"benchmark": "timing-batch", "points": 380,
                     "speedup_batch_vs_per_point": 15.0},
                ],
                "fuzz_results": [
                    {"benchmark": "fuzz-throughput", "count": 96,
                     "executed": 96, "seconds": 0.16,
                     "points_per_second": 600.0, "buckets": 30,
                     "disagreed": 0, "quarantined": 0},
                ],
            }]
        }
        path = tmp_path / "good.json"
        path.write_text(json.dumps(good))
        assert main(["perf", "--check", "-o", str(path)]) == 0
        assert "all perf thresholds hold" in capsys.readouterr().out

    def test_perf_quick_and_full_are_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main(["perf", "--quick", "--full"])

    def test_perf_full_selects_the_500_instruction_baseline(self, monkeypatch, capsys):
        """--full restores the demoted 500-instruction rescan run (plumbing
        test: the suite itself is too expensive for tier-1)."""
        from repro import perf

        captured = {}

        def fake_suite(**kwargs):
            captured.update(kwargs)
            return {"commit": "test", "timestamp": "now", "results": []}

        monkeypatch.setattr(perf, "run_perf_suite", fake_suite)
        monkeypatch.setattr(perf, "append_run", lambda path, run: run)
        assert main(["perf", "--full", "-o", "ignored.json"]) == 0
        capsys.readouterr()
        assert captured["timing_instructions"] == 500
        captured.clear()
        assert main(["perf", "-o", "ignored.json"]) == 0
        capsys.readouterr()
        assert captured["timing_instructions"] == 200

    def test_perf_check_missing_file(self, tmp_path, capsys):
        assert main(["perf", "--check", "-o", str(tmp_path / "absent.json")]) == 1
        assert "does not exist" in capsys.readouterr().out

    def test_perf_check_flags_missing_grid_resume_benchmark(self, tmp_path, capsys):
        stale = {
            "runs": [{
                "results": [{"graph": "layered-200v", "speedup_all_pairs": 1000.0}],
                "engine_results": [
                    {"benchmark": "engine-analyze-warm-cache", "speedup_warm": 30.0},
                    {"benchmark": "engine-attack-space-sharded",
                     "speedup_sharded_vs_serial": 4.0},
                    {"benchmark": "engine-disk-warm-run",
                     "speedup_warm_disk": 100.0},
                    dict(GOOD_SERVICE_RECORD),
                ],
                "timing_results": [
                    {"benchmark": "timing-event-queue", "instructions": 500,
                     "speedup_event_vs_rescan": 100.0},
                    {"benchmark": "timing-event-queue-contended",
                     "instructions": 500, "speedup_event_vs_rescan": 80.0},
                ],
            }]
        }
        path = tmp_path / "stale.json"
        path.write_text(json.dumps(stale))
        assert main(["perf", "--check", "-o", str(path)]) == 1
        assert "no grid-resume" in capsys.readouterr().out

    def test_perf_check_flags_missing_service_benchmark(self, tmp_path, capsys):
        stale = {
            "runs": [{
                "results": [{"graph": "layered-200v", "speedup_all_pairs": 1000.0}],
                "engine_results": [
                    {"benchmark": "engine-analyze-warm-cache", "speedup_warm": 30.0},
                    {"benchmark": "engine-attack-space-sharded",
                     "speedup_sharded_vs_serial": 4.0},
                    {"benchmark": "engine-disk-warm-run",
                     "speedup_warm_disk": 100.0},
                    {"benchmark": "grid-resume-overhead", "points": 200,
                     "plain_seconds": 1.5, "checkpoint_seconds": 1.53,
                     "overhead_fraction": 0.02, "resume_seconds": 0.05,
                     "resume_recomputed": 0, "speedup_resume": 30.0,
                     "trace_off_seconds": 1.515,
                     "trace_off_overhead_fraction": 0.01},
                ],
                "timing_results": [
                    {"benchmark": "timing-event-queue", "instructions": 500,
                     "speedup_event_vs_rescan": 100.0},
                    {"benchmark": "timing-event-queue-contended",
                     "instructions": 500, "speedup_event_vs_rescan": 80.0},
                ],
            }]
        }
        path = tmp_path / "stale.json"
        path.write_text(json.dumps(stale))
        assert main(["perf", "--check", "-o", str(path)]) == 1
        assert "no service-throughput" in capsys.readouterr().out


@pytest.mark.service
class TestRequestCommand:
    """`repro request` against a live in-process service."""

    def test_request_summary_json_stats_and_error_paths(self, tmp_path, capsys):
        from repro.engine import Engine
        from repro.service import ServiceConfig, ServiceThread
        from repro.store import DiskStore

        engine = Engine(store=DiskStore(root=str(tmp_path), version="cli"))
        point = ["--kind", "exploit", "--param", "exploit=spectre_v1",
                 "--param", "secret=0x41"]
        with ServiceThread(engine=engine, config=ServiceConfig()) as handle:
            assert main(["request", "--url", handle.url, *point]) == 0
            summary = capsys.readouterr().out
            assert "[computed]" in summary
            assert "exploit" in summary

            assert main(["request", "--url", handle.url, *point, "--json"]) == 0
            envelope = json.loads(capsys.readouterr().out)
            assert envelope["hit"] == "disk"  # warm repeat of the same spec
            assert envelope["ok"] is True

            assert main(["request", "--url", handle.url, "--stats"]) == 0
            stats = json.loads(capsys.readouterr().out)
            assert stats["service"]["requests"] == 2

            assert main(["request", "--url", handle.url, "--kind", "warp"]) == 2
            captured = capsys.readouterr()
            error = json.loads(captured.err)
            assert error["ok"] is False
            assert error["error"]["code"] == "bad-spec"
        engine.close()

    def test_request_refuses_grid_specs(self, tmp_path):
        grid = tmp_path / "grid.json"
        grid.write_text(json.dumps(
            {"kind": "exploit", "axes": {"secret": [1, 2]}}
        ))
        with pytest.raises(SystemExit, match="point specs"):
            main(["request", "--url", "http://127.0.0.1:1",
                  "--spec", str(grid)])

    def test_request_unreachable_server_exits_cleanly(self, ephemeral_port):
        with pytest.raises(SystemExit, match="cannot reach"):
            main(["request", "--url", f"http://127.0.0.1:{ephemeral_port}",
                  "--stats"])


class TestRunCommand:
    """The declarative `repro run` subcommand (specs, grids, stores)."""

    def test_run_kind_simulate_json(self, capsys):
        assert main(["run", "--kind", "simulate",
                     "--param", "attack=spectre_v1", "--json"]) == 1
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["kind"] == "simulate"
        assert envelope["data"]["transmit_beats_squash"] is True

    def test_run_kind_simulate_text(self, capsys):
        assert main(["run", "--kind", "simulate",
                     "--param", "attack=spectre_v1"]) == 1
        assert "TRANSMIT WINS" in capsys.readouterr().out

    def test_run_parses_hex_and_none_values(self, capsys):
        assert main(["run", "--kind", "simulate", "--param", "attack=spectre_v1",
                     "--param", "secret=0x41", "--param", "model=none",
                     "--json"]) == 1
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["data"]["recovered"] == 0x41

    def test_run_analyze_program_path(self, listing_file, capsys):
        assert main(["run", "--kind", "analyze",
                     "--param", f"program_path={listing_file}", "--json"]) == 1
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["kind"] == "analyze"
        assert envelope["data"]["vulnerable"] is True
        assert envelope["data"]["program"] == listing_file

    def test_run_axis_builds_a_grid(self, capsys):
        assert main(["run", "--kind", "simulate", "--param", "attack=spectre_v1",
                     "--axis", 'defenses=[null,["PREVENT_SPECULATIVE_LOADS"]]',
                     "--json"]) == 1  # the undefended point leaks -> not ok
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["kind"] == "simulate_grid"
        assert envelope["data"]["points"] == 2
        verdicts = [row["data"]["transmit_beats_squash"]
                    for row in envelope["data"]["rows"]]
        assert verdicts == [True, False]

    def test_run_spec_file(self, tmp_path, listing_file, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "kind": "analyze",
            "params": {"program_path": listing_file},
        }))
        assert main(["run", "--spec", str(plan), "--json"]) == 1
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["data"]["vulnerable"] is True

    def test_run_grid_spec_file(self, tmp_path, capsys):
        plan = tmp_path / "grid.json"
        plan.write_text(json.dumps({
            "kind": "exploit",
            "base": {"secret": 33},
            "axes": {"exploit": ["spectre_v1", "meltdown"]},
        }))
        assert main(["run", "--spec", str(plan), "--json"]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["kind"] == "exploit_grid"
        assert [row["data"]["recovered"] for row in envelope["data"]["rows"]] == [33, 33]

    def test_run_requires_spec_or_kind(self):
        with pytest.raises(SystemExit):
            main(["run"])

    def test_run_unknown_kind_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "--kind", "rowhammer"])

    def test_run_unknown_param_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "--kind", "simulate", "--param", "warp=9"])

    def test_run_malformed_param_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "--kind", "simulate", "--param", "attack"])


class TestStoreFlag:
    """--store is threaded through every engine-backed subcommand."""

    def test_second_invocation_is_served_from_disk(self, tmp_path, capsys):
        store = str(tmp_path / "cache")
        argv = ["run", "--kind", "simulate", "--param", "attack=spectre_v1",
                "--store", store, "--json"]
        assert main(argv) == 1
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 1  # a fresh engine: only the disk store is shared
        second = json.loads(capsys.readouterr().out)
        assert (first["cache"], second["cache"]) == ("cold", "warm")
        assert second["data"] == first["data"]

    def test_analyze_store_roundtrip(self, tmp_path, listing_file, capsys):
        store = str(tmp_path / "cache")
        assert main(["analyze", listing_file, "--store", store, "--json"]) == 1
        cold = json.loads(capsys.readouterr().out)
        assert main(["analyze", listing_file, "--store", store, "--json"]) == 1
        warm = json.loads(capsys.readouterr().out)
        assert cold["cache"] == "cold" and warm["cache"] == "warm"
        assert warm["data"] == cold["data"]

    def test_memory_store_selector_parses(self, capsys):
        assert main(["simulate", "spectre_v1", "--store", "memory", "--json"]) == 1
        assert json.loads(capsys.readouterr().out)["kind"] == "simulate"

    def test_store_flag_on_every_engine_subcommand(self):
        parser = build_parser()
        for argv in (
            ["evaluate", "lfence", "spectre_v1"],
            ["analyze", "victim.s"],
            ["patch", "victim.s"],
            ["exploit", "meltdown"],
            ["ablation", "spectre_v1"],
            ["simulate", "spectre_v1"],
            ["run", "--kind", "simulate"],
            ["report"],
        ):
            args = parser.parse_args([argv[0], "--store", "disk", *argv[1:]])
            assert args.store == "disk"


class TestResumeAndFaults:
    """--resume / --timeout / --retries / --faults on `repro run`."""

    GRID = ["run", "--kind", "simulate", "--param", "attack=spectre_v1",
            "--axis", "secret=1,2,3", "--json"]

    def test_resume_serves_a_completed_grid_from_checkpoints(self, tmp_path, capsys):
        store = str(tmp_path / "cache")
        assert main([*self.GRID, "--store", store]) == 1
        cold = json.loads(capsys.readouterr().out)
        assert main([*self.GRID, "--store", store, "--resume"]) == 1
        captured = capsys.readouterr()
        warm = json.loads(captured.out)
        assert warm["data"] == cold["data"]  # byte-identical envelope
        assert ("resume: 3/3 points served from checkpoints, "
                "0 recomputed, 0 quarantined") in captured.err

    def test_resume_accounting_for_a_partial_store(self, tmp_path, capsys):
        store = str(tmp_path / "cache")
        single = ["run", "--kind", "simulate", "--param", "attack=spectre_v1",
                  "--param", "secret=2", "--store", store, "--json"]
        assert main(single) == 1  # checkpoint one of the three points
        capsys.readouterr()
        assert main([*self.GRID, "--store", store, "--resume"]) == 1
        captured = capsys.readouterr()
        assert ("resume: 1/3 points served from checkpoints, "
                "2 recomputed, 0 quarantined") in captured.err

    def test_resume_single_spec_reports_checkpoint_state(self, tmp_path, capsys):
        store = str(tmp_path / "cache")
        argv = ["run", "--kind", "simulate", "--param", "attack=spectre_v1",
                "--store", store, "--resume", "--json"]
        assert main(argv) == 1
        assert "resume: recomputed" in capsys.readouterr().err
        assert main(argv) == 1
        assert "resume: served from checkpoint" in capsys.readouterr().err

    def test_faults_plan_quarantines_a_point_end_to_end(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "faults": [{"kind": "exception", "match": "secret=2"}],
        }))
        argv = [*self.GRID, "--faults", str(plan), "--retries", "1"]
        assert main(argv) == 1
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["data"]["quarantined"] == 1
        failed = [row for row in envelope["data"]["rows"]
                  if row["data"].get("quarantined")]
        assert len(failed) == 1
        assert failed[0]["data"]["error"] == "FaultInjected"

    def test_unreadable_fault_plan_exits_cleanly(self, tmp_path):
        missing = tmp_path / "absent.json"
        with pytest.raises(SystemExit, match="run failed"):
            main([*self.GRID, "--faults", str(missing)])

    def test_invalid_fault_plan_exits_cleanly(self, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({"faults": [{"kind": "meteor"}]}))
        with pytest.raises(SystemExit, match="unknown fault kind"):
            main([*self.GRID, "--faults", str(plan)])

    def test_policy_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--kind", "simulate",
                                  "--timeout", "2.5", "--retries", "3"])
        assert args.timeout == 2.5 and args.retries == 3
