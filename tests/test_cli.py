"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main

LISTING1 = """
.data
probe_array:  address=0x1000000 size=1048576 shared
victim_array: address=0x200000  size=16
victim_size:  address=0x210000  size=8
secret:       address=0x200048  size=1 protected
.text
    cmp rdx, [victim_size]
    ja done
    mov rax, byte [victim_array + rdx]
    shl rax, 12
    mov rbx, [probe_array + rax]
done:
    hlt
"""


@pytest.fixture
def listing_file(tmp_path):
    path = tmp_path / "victim.s"
    path.write_text(LISTING1)
    return str(path)


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for argv in (["tables"], ["attacks"], ["attack", "spectre_v1"],
                     ["defenses"], ["evaluate", "lfence", "spectre_v1"],
                     ["exploit", "meltdown"], ["ablation", "spectre_v1"], ["report"]):
            args = parser.parse_args(argv)
            assert callable(args.handler)


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Spectre v1" in out and "KAISER" in out and "Kernel privilege check" in out

    def test_attacks_listing(self, capsys):
        assert main(["attacks"]) == 0
        out = capsys.readouterr().out
        assert "spectre_v4" in out and "meltdown-type" in out

    def test_attack_description(self, capsys):
        assert main(["attack", "spectre_v1"]) == 0
        out = capsys.readouterr().out
        assert "Load S" in out and "missing security dependencies" in out

    def test_attack_dot_output(self, capsys):
        assert main(["attack", "meltdown", "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_defenses_listing(self, capsys):
        assert main(["defenses"]) == 0
        assert "InvisiSpec" in capsys.readouterr().out

    def test_evaluate_effective_defense_returns_zero(self, capsys):
        assert main(["evaluate", "lfence", "spectre_v1"]) == 0
        assert "defeats the attack" in capsys.readouterr().out

    def test_evaluate_ineffective_defense_returns_one(self, capsys):
        assert main(["evaluate", "lfence", "meltdown"]) == 1
        assert "does NOT defeat" in capsys.readouterr().out

    def test_analyze_vulnerable_program_returns_one(self, listing_file, capsys):
        assert main(["analyze", listing_file]) == 1
        assert "missing security dependencies" in capsys.readouterr().out

    def test_analyze_json_emits_result_envelope(self, listing_file, capsys):
        assert main(["analyze", "--json", listing_file]) == 1
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["kind"] == "analyze"
        assert envelope["ok"] is False
        assert envelope["data"]["vulnerable"] is True
        assert envelope["data"]["findings"]

    def test_evaluate_json_emits_result_envelope(self, capsys):
        assert main(["evaluate", "--json", "lfence", "spectre_v1"]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["kind"] == "evaluate"
        assert envelope["ok"] is True
        assert envelope["data"]["defense"] == "lfence"
        assert envelope["data"]["attack"] == "spectre_v1"

    def test_patch_program(self, listing_file, capsys):
        assert main(["patch", listing_file]) == 0
        out = capsys.readouterr().out
        assert "lfence" in out

    def test_exploit_leaks_returns_one(self, capsys):
        assert main(["exploit", "spectre_v1"]) == 1
        assert "LEAKED" in capsys.readouterr().out

    def test_exploit_with_defense_returns_zero(self, capsys):
        assert main(["exploit", "meltdown", "--defense", "kernel_isolation"]) == 0
        assert "no leak" in capsys.readouterr().out

    def test_exploit_unknown_name(self):
        with pytest.raises(SystemExit):
            main(["exploit", "rowhammer"])

    def test_exploit_unknown_defense(self):
        with pytest.raises(SystemExit):
            main(["exploit", "meltdown", "--defense", "tinfoil_hat"])

    def test_ablation(self, capsys):
        assert main(["ablation", "spectre_v1"]) == 0
        out = capsys.readouterr().out
        assert "(no defense)" in out and "defeated" in out

    def test_report_to_file(self, tmp_path, capsys):
        output = tmp_path / "report.md"
        assert main(["report", "--no-matrix", "-o", str(output)]) == 0
        text = output.read_text()
        assert "# Speculative execution attack-graph model" in text
        assert "### Spectre v1" in text
        assert "Table III" in text
