"""Tests for the declarative scenario layer (ScenarioSpec / ScenarioGrid)."""

from __future__ import annotations

import json
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.defenses import get as get_defense
from repro.engine import Engine
from repro.isa import assemble
from repro.scenario import (
    KINDS,
    ScenarioGrid,
    ScenarioSpec,
    decode_config,
    decode_model,
    decode_secret,
    decode_sim_defense,
    load,
    stable_repr,
)

LISTING1 = """
.data
probe_array:  address=0x1000000 size=1048576 shared
victim_array: address=0x200000  size=16
victim_size:  address=0x210000  size=8
secret:       address=0x200048  size=1 protected
.text
    cmp rdx, [victim_size]
    ja done
    mov rax, byte [victim_array + rdx]
    shl rax, 12
    mov rbx, [probe_array + rax]
done:
    hlt
"""


# ---------------------------------------------------------------------------
# Spec canonicalization and identity
# ---------------------------------------------------------------------------
class TestScenarioSpec:
    def test_parameter_order_is_irrelevant(self):
        one = ScenarioSpec("simulate", attack="spectre_v1", secret=0x41)
        two = ScenarioSpec("simulate", secret=0x41, attack="spectre_v1")
        assert one == two
        assert one.content_hash() == two.content_hash()
        assert hash(one) == hash(two)

    def test_none_parameters_are_dropped(self):
        explicit = ScenarioSpec("simulate", attack="spectre_v1", secret=None)
        implicit = ScenarioSpec("simulate", attack="spectre_v1")
        assert explicit == implicit
        assert "secret" not in explicit.params

    def test_lists_normalize_to_tuples(self):
        spec = ScenarioSpec("simulate_sweep", attacks=["a", "b"])
        assert spec.get("attacks") == ("a", "b")
        assert spec == ScenarioSpec("simulate_sweep", attacks=("a", "b"))

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown scenario kind"):
            ScenarioSpec("rowhammer")

    def test_unknown_parameter_raises(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            ScenarioSpec("simulate", attack="spectre_v1", warp_factor=9)

    def test_missing_required_parameter_raises(self):
        with pytest.raises(ValueError, match="requires parameter"):
            ScenarioSpec("analyze")

    def test_specs_are_immutable(self):
        spec = ScenarioSpec("simulate", attack="spectre_v1")
        with pytest.raises(AttributeError):
            spec.kind = "exploit"

    def test_replace_builds_a_new_point(self):
        spec = ScenarioSpec("simulate", attack="spectre_v1", secret=1)
        other = spec.replace(secret=2)
        assert other.get("secret") == 2 and spec.get("secret") == 1
        assert spec.replace(secret=None) == ScenarioSpec("simulate", attack="spectre_v1")

    def test_content_hash_differs_on_parameter_change(self):
        base = ScenarioSpec("simulate", attack="spectre_v1")
        assert base.content_hash() != base.replace(secret=7).content_hash()
        assert base.content_hash() != ScenarioSpec("exploit", exploit="spectre_v1").content_hash()

    def test_program_parameters_hash_by_program_content(self):
        one = ScenarioSpec("analyze", program=assemble(LISTING1, name="victim"))
        two = ScenarioSpec("analyze", program=assemble(LISTING1, name="victim"))
        renamed = ScenarioSpec("analyze", program=assemble(LISTING1, name="other"))
        assert one.content_hash() == two.content_hash()
        assert one.content_hash() != renamed.content_hash()

    def test_rich_objects_render_stably(self):
        """Defense dataclasses carry no memory addresses in the content key."""
        spec = ScenarioSpec(
            "evaluate", defense=get_defense("lfence"), attack="spectre_v1"
        )
        assert "0x" not in spec.content_key()
        again = ScenarioSpec(
            "evaluate", defense=get_defense("lfence"), attack="spectre_v1"
        )
        assert spec.content_hash() == again.content_hash()

    def test_callable_rendering_has_no_address(self):
        from repro.attacks import get as get_attack

        variant = get_attack("spectre_v1")  # carries a graph_builder callable
        assert "at 0x" not in stable_repr(variant)

    def test_specs_pickle_round_trip(self):
        spec = ScenarioSpec("simulate", attack="spectre_v1", defenses=("KERNEL_ISOLATION",))
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec and clone.content_hash() == spec.content_hash()

    def test_json_round_trip_preserves_identity(self):
        spec = ScenarioSpec(
            "simulate_sweep", attacks=("spectre_v1",), defenses=(None, "KERNEL_ISOLATION")
        )
        clone = ScenarioSpec.from_json(spec.to_json())
        assert clone == spec

    def test_bare_string_sequence_params_are_wrapped(self):
        """`attacks="spectre_v1"` means one attack, not ten one-letter ones."""
        spec = ScenarioSpec("simulate_sweep", attacks="spectre_v1")
        assert spec.get("attacks") == ("spectre_v1",)
        assert spec == ScenarioSpec("simulate_sweep", attacks=["spectre_v1"])
        result = Engine().run(spec.replace(defenses="PREVENT_SPECULATIVE_LOADS"))
        assert result.data["attacks"] == 1 and result.data["defenses"] == 1

    def test_grid_kinds_are_flagged(self):
        assert ScenarioSpec("matrix").is_grid
        assert not ScenarioSpec("simulate", attack="spectre_v1").is_grid
        assert set(KINDS) >= {"analyze", "simulate", "matrix", "window_ablation"}


# ---------------------------------------------------------------------------
# Grid expansion
# ---------------------------------------------------------------------------
class TestScenarioGrid:
    def test_cartesian_expansion_order(self):
        grid = ScenarioGrid(
            "simulate",
            base={"secret": 1},
            axes={"attack": ["a", "b"], "defenses": [None, ("KERNEL_ISOLATION",)]},
        )
        specs = grid.specs()
        assert len(grid) == len(specs) == 4
        assert [spec.get("attack") for spec in specs] == ["a", "a", "b", "b"]
        assert [spec.get("defenses") for spec in specs] == [
            None, ("KERNEL_ISOLATION",), None, ("KERNEL_ISOLATION",)
        ]
        assert all(spec.get("secret") == 1 for spec in specs)

    def test_axis_value_none_means_parameter_absent(self):
        grid = ScenarioGrid("simulate", base={"attack": "a"}, axes={"secret": [None, 7]})
        absent, present = grid.specs()
        assert "secret" not in absent.params and present.get("secret") == 7

    def test_base_axis_overlap_rejected(self):
        with pytest.raises(ValueError, match="both base and axes"):
            ScenarioGrid("simulate", base={"attack": "a"}, axes={"attack": ["b"]})

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            ScenarioGrid("simulate", axes={"warp": [1]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            ScenarioGrid("simulate", axes={"attack": []})

    def test_explicit_grid(self):
        specs = [
            ScenarioSpec("exploit", exploit="spectre_v1"),
            ScenarioSpec("exploit", exploit="meltdown"),
        ]
        grid = ScenarioGrid.explicit(specs)
        assert grid.specs() == specs and len(grid) == 2

    def test_explicit_grid_rejects_mixed_kinds(self):
        with pytest.raises(ValueError, match="mixes kinds"):
            ScenarioGrid.explicit([
                ScenarioSpec("exploit", exploit="spectre_v1"),
                ScenarioSpec("simulate", attack="spectre_v1"),
            ])

    def test_grid_dict_round_trip(self):
        grid = ScenarioGrid("simulate", base={"secret": 3}, axes={"attack": ["a", "b"]})
        clone = ScenarioGrid.from_dict(grid.to_dict())
        assert clone.specs() == grid.specs()
        assert clone.content_hash() == grid.content_hash()

    def test_grid_hash_differs_on_axis_change(self):
        one = ScenarioGrid("simulate", axes={"attack": ["a"]})
        two = ScenarioGrid("simulate", axes={"attack": ["a", "b"]})
        assert one.content_hash() != two.content_hash()


# ---------------------------------------------------------------------------
# Loading declarative plans from disk
# ---------------------------------------------------------------------------
class TestLoad:
    def test_load_spec_with_program_path(self, tmp_path):
        program = tmp_path / "victim.s"
        program.write_text(LISTING1)
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps(
            {"kind": "analyze", "params": {"program_path": "victim.s"}}
        ))
        spec = load(plan)
        assert isinstance(spec, ScenarioSpec)
        assert spec.get("program") == LISTING1
        assert spec.get("name") == "victim.s"
        result = Engine().run(spec)
        assert result.kind == "analyze" and not result.ok  # Listing 1 leaks

    def test_load_grid(self, tmp_path):
        plan = tmp_path / "grid.json"
        plan.write_text(json.dumps({
            "kind": "simulate",
            "base": {"secret": 90},
            "axes": {"attack": ["spectre_v1", "meltdown"]},
        }))
        grid = load(plan)
        assert isinstance(grid, ScenarioGrid) and len(grid) == 2

    def test_load_explicit_specs_resolve_program_paths(self, tmp_path):
        program = tmp_path / "victim.s"
        program.write_text(LISTING1)
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "kind": "analyze",
            "specs": [{"kind": "analyze", "params": {"program_path": "victim.s"}}],
        }))
        grid = load(plan)
        assert isinstance(grid, ScenarioGrid)
        assert grid.specs()[0].get("program") == LISTING1

    def test_load_rejects_non_object(self, tmp_path):
        plan = tmp_path / "bad.json"
        plan.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            load(plan)


# ---------------------------------------------------------------------------
# Declarative decoders
# ---------------------------------------------------------------------------
class TestDecoders:
    def test_decode_model_presets_and_dicts(self):
        from repro.uarch.timing import CONTENDED_MODEL, DEFAULT_MODEL, TimingModel

        assert decode_model(None) is None
        assert decode_model("contended") == CONTENDED_MODEL
        assert decode_model("default") == DEFAULT_MODEL
        assert decode_model({"squash_penalty": 99}) == TimingModel(squash_penalty=99)
        with pytest.raises(ValueError, match="unknown timing model"):
            decode_model("warp")

    def test_decode_config_dict_with_defenses(self):
        from repro.uarch import SimDefense, UarchConfig

        config = decode_config({"cache_miss_latency": 123, "defenses": ["kernel_isolation"]})
        assert isinstance(config, UarchConfig)
        assert config.cache_miss_latency == 123
        assert config.has(SimDefense.KERNEL_ISOLATION)

    def test_decode_sim_defense_errors(self):
        with pytest.raises(ValueError, match="unknown simulator defense"):
            decode_sim_defense("tinfoil_hat")

    def test_decode_secret(self):
        assert decode_secret("0x5a") == 0x5A
        assert decode_secret(7) == 7
        assert decode_secret(None) is None


class TestDecoderProperties:
    """Hypothesis companions to the decoders: hostile dicts cannot escape.

    The service request decoder (``repro.service.protocol``) leans on
    these contracts: every failure out of ``ScenarioSpec.from_dict`` is a
    ``KeyError`` / ``TypeError`` / ``ValueError`` it can map to a 400.
    """

    _json = st.recursive(
        st.none()
        | st.booleans()
        | st.integers(min_value=-(2**40), max_value=2**40)
        | st.text(max_size=16),
        lambda children: st.lists(children, max_size=3)
        | st.dictionaries(st.text(max_size=8), children, max_size=3),
        max_leaves=10,
    )

    @settings(max_examples=150, deadline=None)
    @given(payload=st.dictionaries(st.text(max_size=8), _json, max_size=4))
    def test_from_dict_raises_only_mappable_errors(self, payload):
        try:
            spec = ScenarioSpec.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            pass  # exactly the family the service decoder maps to 400s
        else:
            assert isinstance(spec, ScenarioSpec)

    @settings(max_examples=100, deadline=None)
    @given(secret=st.integers(min_value=0, max_value=2**32))
    def test_decode_secret_accepts_ints_and_their_hex_spellings(self, secret):
        assert decode_secret(secret) == secret
        assert decode_secret(hex(secret)) == secret
        assert decode_secret(str(secret)) == secret

    @settings(max_examples=100, deadline=None)
    @given(
        secret=st.integers(min_value=0, max_value=255),
        exploit=st.sampled_from(["spectre_v1", "meltdown"]),
    )
    def test_spec_dict_round_trip_preserves_identity(self, secret, exploit):
        spec = ScenarioSpec("exploit", exploit=exploit, secret=secret)
        decoded = ScenarioSpec.from_dict(json.loads(spec.to_json()))
        assert decoded == spec
        assert decoded.content_hash() == spec.content_hash()


# ---------------------------------------------------------------------------
# run(spec) / run_grid(grid) — the engine spine
# ---------------------------------------------------------------------------
class TestRunSpine:
    def test_run_spec_equals_legacy_method(self):
        with Engine() as engine:
            via_spec = engine.run(ScenarioSpec("simulate", attack="spectre_v1"))
        with Engine() as engine:
            via_method = engine.simulate("spectre_v1")
        assert via_spec.data == via_method.data
        assert via_spec.kind == via_method.kind == "simulate"

    def test_run_declarative_analyze_from_source_text(self):
        result = Engine().run(
            ScenarioSpec("analyze", program=LISTING1, name="victim")
        )
        assert result.kind == "analyze"
        assert result.data["vulnerable"] is True
        assert result.data["program"] == "victim"

    def test_legacy_methods_route_through_run(self):
        """Acceptance criterion: every named workload is a spec execution."""
        with Engine() as engine:
            program = assemble(LISTING1, name="victim")
            engine.analyze(program)
            engine.evaluate(get_defense("lfence"), __import__("repro").attacks.get("spectre_v1"))
            engine.simulate("spectre_v1")
            engine.exploit("spectre_v1")
            engine.patch(program)
            engine.ablation("spectre_v1", defenses=[])
            runs = engine.stats()["runs"]
        assert runs["analyze"] == 3  # patch re-analyzes (before + after) via run()
        assert runs["evaluate"] == 1
        assert runs["simulate"] == 1
        assert runs["patch"] == 1
        assert runs["ablation"] == 1
        assert runs["exploit"] >= 2  # the direct run + the ablation baseline

    def test_grid_runs_route_through_run(self):
        with Engine() as engine:
            engine.simulate_sweep(attacks=["spectre_v1"], defenses=[None])
            engine.evaluate_matrix(
                [get_defense("lfence")],
                [__import__("repro").attacks.get("spectre_v1")],
            )
            runs = engine.stats()["runs"]
        assert runs["simulate_sweep"] == 1
        assert runs["matrix"] == 1
        assert runs["simulate"] == 1   # the sweep's row went through run() too
        assert runs["evaluate"] == 1

    def test_run_grid_parallel_matches_serial(self):
        grid = ScenarioGrid(
            "simulate",
            axes={"attack": ["spectre_v1", "meltdown"],
                  "defenses": [None, ("PREVENT_SPECULATIVE_LOADS",)]},
        )
        serial = Engine().run_grid(grid)
        with Engine() as session:
            parallel = session.run_grid(grid, parallel=2)
        assert serial.data == parallel.data
        assert serial.kind == "simulate_grid"
        assert serial.data["points"] == 4

    def test_run_grid_envelope_shape(self):
        grid = ScenarioGrid("exploit", base={"secret": 0x21},
                            axes={"exploit": ["spectre_v1", "meltdown"]})
        result = Engine().run_grid(grid)
        assert result.ok  # both exploits leak (= succeed) undefended
        assert [row["data"]["secret"] for row in result.data["rows"]] == [0x21, 0x21]
        json.loads(result.to_json())

    def test_run_grid_with_memory_store_serves_points_warm(self):
        from repro.store import MemoryStore

        grid = ScenarioGrid("simulate", axes={"attack": ["spectre_v1", "meltdown"]})
        with Engine(store=MemoryStore()) as engine:
            first = engine.run_grid(grid)
            before = engine.stats()["store"]["hits"]
            second = engine.run_grid(grid)
            assert engine.stats()["store"]["hits"] >= before + 2
        assert first.data == second.data

    def test_unknown_exploit_still_raises_through_spec(self):
        with pytest.raises(KeyError):
            Engine().run(ScenarioSpec("exploit", exploit="rowhammer"))
