"""Fuzzing the service wire format: a request can fail, the server cannot.

Two layers:

* pure decoder fuzz (hypothesis, no sockets) -- ``decode_spec_body`` /
  ``decode_spec_payload`` must turn *any* input into either a
  :class:`ScenarioSpec` or a :class:`BadRequest` with a stable machine
  code, never a bare exception;
* the HTTP face -- malformed JSON, unknown kinds, grids, oversized and
  truncated bodies, garbage request lines all come back as structured 4xx
  envelopes, and the server answers ``/healthz`` afterwards.
"""

from __future__ import annotations

import json
import socket

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import Engine
from repro.scenario import ScenarioSpec
from repro.service import (
    BadRequest,
    PayloadTooLarge,
    RequestError,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceThread,
    decode_spec_payload,
)
from repro.service.protocol import decode_spec_body
from repro.store import MemoryStore


#: Arbitrary JSON documents, shallow enough to stay fast.
JSON_VALUES = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**40), max_value=2**40)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=12,
)


# ---------------------------------------------------------------------------
# Decoder fuzz (pure functions, no sockets)
# ---------------------------------------------------------------------------
class TestDecoderFuzz:
    @settings(max_examples=200, deadline=None)
    @given(body=st.binary(max_size=256))
    def test_arbitrary_bytes_never_escape_as_bare_exceptions(self, body):
        try:
            spec = decode_spec_body(body)
        except BadRequest as exc:
            assert exc.status == 400
            assert exc.code in {"bad-encoding", "bad-json", "bad-shape", "bad-spec"}
            assert exc.envelope("req-x")["error"]["code"] == exc.code
        else:
            assert isinstance(spec, ScenarioSpec)

    @settings(max_examples=200, deadline=None)
    @given(payload=JSON_VALUES)
    def test_arbitrary_json_decodes_or_raises_bad_request(self, payload):
        try:
            spec = decode_spec_payload(payload)
        except BadRequest as exc:
            assert exc.status == 400
            envelope = exc.envelope("req-y")
            assert envelope["ok"] is False
            assert envelope["error"]["status"] == 400
        else:
            assert isinstance(spec, ScenarioSpec)

    @settings(max_examples=100, deadline=None)
    @given(kind=st.text(min_size=1, max_size=20))
    def test_unknown_kinds_are_named_in_the_error(self, kind):
        try:
            decode_spec_payload({"kind": kind, "params": {}})
        except BadRequest as exc:
            assert exc.code == "bad-spec"
        else:  # pragma: no cover - only a registered kind with no required
            pass  # params would land here; either way, nothing escaped.

    def test_valid_payload_round_trips_to_the_same_hash(self):
        spec = ScenarioSpec("exploit", exploit="spectre_v1", secret=0x41)
        decoded = decode_spec_payload(spec.to_dict())
        assert decoded.content_hash() == spec.content_hash()

    @pytest.mark.parametrize(
        "payload, code",
        [
            ("just a string", "bad-shape"),
            ([1, 2, 3], "bad-shape"),
            (None, "bad-shape"),
            ({"kind": "exploit", "axes": {}}, "grid-request"),
            ({"kind": "exploit", "specs": []}, "grid-request"),
            ({"params": {}}, "bad-spec"),
            ({"kind": "nope", "params": {}}, "bad-spec"),
            ({"kind": "exploit", "params": "not a mapping"}, "bad-spec"),
        ],
    )
    def test_stable_codes_for_canonical_bad_shapes(self, payload, code):
        with pytest.raises(BadRequest) as failure:
            decode_spec_payload(payload)
        assert failure.value.code == code

    def test_deep_nesting_is_a_bad_request_not_a_crash(self):
        blob = '{"params":' * 4000 + "0" + "}" * 4000
        with pytest.raises(BadRequest):
            decode_spec_body(blob.encode("utf-8"))


# ---------------------------------------------------------------------------
# The HTTP face under hostile input
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def live_service():
    engine = Engine(store=MemoryStore())
    with ServiceThread(
        engine=engine, config=ServiceConfig(max_body_bytes=4096)
    ) as handle:
        yield ServiceClient(handle.url)
    engine.close()


@pytest.mark.service
class TestHttpFuzz:
    def test_malformed_json_is_a_structured_400(self, live_service):
        with pytest.raises(ServiceError) as failure:
            live_service.post_bytes("/run", b'{"kind": "exploit", ')
        assert failure.value.status == 400
        assert failure.value.code == "bad-json"
        assert failure.value.envelope["ok"] is False
        assert live_service.healthy()

    def test_unknown_kind_is_a_structured_400(self, live_service):
        with pytest.raises(ServiceError) as failure:
            live_service.run({"kind": "warp-drive", "params": {}})
        assert failure.value.status == 400
        assert failure.value.code == "bad-spec"
        assert "warp-drive" in str(failure.value)

    def test_grid_body_is_refused_with_its_own_code(self, live_service):
        with pytest.raises(ServiceError) as failure:
            live_service.run({"kind": "exploit", "axes": {"secret": [1, 2]}})
        assert failure.value.status == 400
        assert failure.value.code == "grid-request"

    def test_oversized_body_is_413_before_the_body_is_read(self, live_service):
        with pytest.raises(ServiceError) as failure:
            live_service.post_bytes("/run", b"{}", content_length=1 << 30)
        assert failure.value.status == 413
        assert failure.value.code == "payload-too-large"
        assert live_service.healthy()

    def test_truncated_body_is_a_structured_400(self, live_service):
        # A client that promises 64 bytes, sends 2 and hangs up: the EOF
        # must come back as a 400, not wedge the handler.
        request = b"POST /run HTTP/1.1\r\nContent-Length: 64\r\n\r\n{}"
        with socket.create_connection(
            (live_service.host, live_service.port), timeout=30
        ) as raw:
            raw.sendall(request)
            raw.shutdown(socket.SHUT_WR)
            response = b""
            while chunk := raw.recv(4096):
                response += chunk
        assert b"400" in response.split(b"\r\n", 1)[0]
        assert b"shorter than Content-Length" in response
        assert live_service.healthy()

    def test_garbage_request_line_gets_an_error_envelope(self, live_service):
        with socket.create_connection(
            (live_service.host, live_service.port), timeout=30
        ) as raw:
            raw.sendall(b"\x00\xffTOTAL GARBAGE\r\n\r\n")
            raw.shutdown(socket.SHUT_WR)
            response = b""
            while chunk := raw.recv(4096):
                response += chunk
        assert b"400" in response.split(b"\r\n", 1)[0]
        assert live_service.healthy()

    @settings(max_examples=25, deadline=None)
    @given(body=st.binary(max_size=200))
    def test_random_bodies_always_get_structured_envelopes(
        self, live_service, body
    ):
        try:
            envelope = live_service.post_bytes("/run", body)
        except ServiceError as exc:
            assert 400 <= exc.status < 500
            error = exc.envelope.get("error")
            assert isinstance(error, dict) and "code" in error
        else:
            assert envelope["ok"] in (True, False)

    def test_server_survives_the_whole_gauntlet(self, live_service):
        """Runs last in the class: the service still does real work."""
        envelope = live_service.run(
            {"kind": "exploit", "params": {"exploit": "spectre_v1", "secret": 9}}
        )
        assert envelope["ok"] is True


# ---------------------------------------------------------------------------
# Error-type plumbing
# ---------------------------------------------------------------------------
class TestErrorEnvelopes:
    def test_retry_after_surfaces_in_envelope_and_header(self):
        error = RequestError("busy", status=503, code="overloaded", retry_after=2.5)
        envelope = error.envelope("req-1")
        assert envelope["error"]["retry_after"] == 2.5
        assert error.headers() == {"Retry-After": "2"}

    def test_payload_too_large_defaults(self):
        error = PayloadTooLarge("too big")
        assert error.status == 413
        assert error.envelope(None)["error"]["code"] == "payload-too-large"

    def test_envelope_is_json_serializable(self):
        envelope = BadRequest("nope", code="bad-spec").envelope("req-2")
        assert json.loads(json.dumps(envelope)) == envelope
