"""Tests for the attack catalog (Tables I and III)."""

from __future__ import annotations

import pytest

from repro.attacks import (
    ALL_VARIANTS,
    AttackCategory,
    get,
    keys,
    meltdown_type,
    spectre_type,
    table1_rows,
    table3_rows,
    variants,
)
from repro.core import OperationType


class TestRegistry:
    def test_nineteen_variants_registered(self):
        assert len(ALL_VARIANTS) == 19

    def test_lookup_by_key(self):
        assert get("spectre_v1").name == "Spectre v1"
        assert get("meltdown").cve == "CVE-2017-5754"

    def test_unknown_key_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="spectre_v1"):
            get("spectre_v99")

    def test_keys_in_table_order(self):
        ordered = keys()
        assert ordered[0] == "spectre_v1"
        assert ordered[4] == "meltdown"
        assert ordered[-1] == "spoiler"

    def test_category_filters_partition_the_registry(self):
        spectre = {variant.key for variant in spectre_type()}
        meltdown = {variant.key for variant in meltdown_type()}
        assert spectre | meltdown == set(keys())
        assert not (spectre & meltdown)

    def test_category_filter_via_variants(self):
        assert all(
            variant.category is AttackCategory.SPECTRE_TYPE
            for variant in variants(AttackCategory.SPECTRE_TYPE)
        )


class TestTable1:
    def test_thirteen_first_published_attacks(self):
        assert len(table1_rows()) == 13

    def test_known_rows_present(self):
        rows = {row[0]: row for row in table1_rows()}
        assert rows["Spectre v1"][1] == "CVE-2017-5753"
        assert rows["Meltdown (Spectre v3)"][2] == "Kernel content leakage to unprivileged attacker"
        assert rows["Spoiler"][1] == "CVE-2019-0162"
        assert rows["Spectre v1.2"][1] == "N/A"

    def test_newer_attacks_not_in_table1(self):
        names = {row[0] for row in table1_rows()}
        assert "RIDL" not in names
        assert "LVI" not in names


class TestTable3:
    def test_eighteen_rows(self):
        assert len(table3_rows()) == 18

    def test_authorization_and_access_columns(self):
        rows = {row[0]: row for row in table3_rows()}
        assert rows["Spectre v1"][1] == "Boundary-check branch resolution"
        assert rows["Spectre v1"][2] == "Read out-of-bounds memory"
        assert rows["Meltdown (Spectre v3)"][1] == "Kernel privilege check"
        assert rows["Spectre v4"][2] == "Read stale data"
        assert rows["Fallout"][2] == "Forward data from store buffer"
        assert rows["TAA"][1] == "TSX Asynchronous Abort Completion"

    def test_spoiler_excluded_from_table3(self):
        assert "Spoiler" not in {row[0] for row in table3_rows()}


class TestCategoryClaims:
    """Insight 6: Spectre-type vs Meltdown-type classification."""

    def test_spectre_family_is_spectre_type(self):
        for key in ("spectre_v1", "spectre_v1_1", "spectre_v2", "spectre_v4", "spectre_rsb"):
            assert get(key).category is AttackCategory.SPECTRE_TYPE

    def test_faulting_access_family_is_meltdown_type(self):
        for key in ("meltdown", "foreshadow", "ridl", "zombieload", "fallout", "lvi", "taa",
                    "cacheout", "lazy_fp", "spectre_v3a"):
            assert get(key).category is AttackCategory.MELTDOWN_TYPE

    def test_graph_granularity_matches_category(self):
        for variant in ALL_VARIANTS.values():
            graph = variant.build_graph()
            assert graph.is_meltdown_type == variant.is_meltdown_type, variant.key


class TestEveryGraph:
    @pytest.mark.parametrize("key", list(ALL_VARIANTS))
    def test_graph_builds_and_is_well_formed(self, key):
        graph = get(key).build_graph()
        assert graph.validate() == []
        assert len(graph) >= 8
        assert len(graph.edges) >= 7

    @pytest.mark.parametrize("key", list(ALL_VARIANTS))
    def test_graph_has_missing_security_dependency(self, key):
        """Every published attack corresponds to at least one race (vulnerability)."""
        graph = get(key).build_graph()
        assert graph.is_vulnerable()
        assert graph.secret_reachable_before_authorization()

    @pytest.mark.parametrize("key", list(ALL_VARIANTS))
    def test_graph_contains_all_required_steps(self, key):
        graph = get(key).build_graph()
        steps = {step.name for step in graph.steps_present()}
        assert {"SETUP", "DELAYED_AUTHORIZATION", "SECRET_ACCESS", "USE_AND_SEND", "RECEIVE"} <= steps

    @pytest.mark.parametrize("key", list(ALL_VARIANTS))
    def test_speculative_window_is_nonempty(self, key):
        graph = get(key).build_graph()
        assert graph.speculative_window

    def test_table1_row_accessor(self):
        variant = get("spectre_v1")
        assert variant.table1_row == ("Spectre v1", "CVE-2017-5753", "Boundary check bypass")

    def test_str_includes_cve(self):
        assert "CVE-2017-5754" in str(get("meltdown"))
