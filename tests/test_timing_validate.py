"""Theorem-1 cross-validation: measured cycle races vs TSG verdicts.

The acceptance property of the timing subsystem: for every attack in the
registry, the timing core's measured race outcome (did the covert transmit
issue before the squash landed?) matches the TSG's path-based race verdict.
"""

from __future__ import annotations

import pytest

from repro.attacks.registry import keys
from repro.engine import Engine
from repro.uarch import SimDefense, UarchConfig
from repro.uarch.timing import CONTENDED_MODEL, SERIALIZED_MODEL
from repro.uarch.timing.validate import (
    SCENARIOS,
    check_attack,
    cross_validate,
    timed_exploit,
    validation_report,
)


class TestScenarioCoverage:
    def test_every_registry_attack_has_a_scenario(self):
        assert set(keys()) <= set(SCENARIOS)

    def test_unknown_attack_is_rejected(self):
        with pytest.raises(KeyError):
            cross_validate(["rowhammer"])

    def test_unknown_scenario_is_rejected(self):
        with pytest.raises(KeyError):
            timed_exploit("rowhammer")


class TestTheorem1CrossValidation:
    def test_registry_wide_agreement(self):
        """For every attack: TSG race verdict == measured transmit-vs-squash."""
        checks = cross_validate()
        assert len(checks) == len(keys())
        disagreeing = [check.attack for check in checks if not check.agrees]
        assert disagreeing == []
        # All published attacks leak undefended, on both sides of the check.
        assert all(check.tsg_leaks for check in checks)
        assert all(check.transmit_beats_squash for check in checks)
        # Every measured race is cycle-stamped.
        for check in checks:
            assert check.transmit_cycle is not None
            assert check.squash_cycle is not None
            assert check.transmit_cycle <= check.squash_cycle
            assert check.window_cycles and check.window_cycles > 0

    def test_single_attack_check(self):
        check = check_attack("spectre_v1")
        assert check.scenario == "spectre_v1"
        assert check.agrees and check.functional_leak

    def test_defense_flips_the_measured_race(self):
        config = UarchConfig().with_defenses(SimDefense.PREVENT_SPECULATIVE_LOADS)
        result = timed_exploit("spectre_v1", config)
        assert not result.success
        assert not result.timing.transmit_beats_squash

    def test_validation_report_renders(self):
        checks = cross_validate(["spectre_v1", "meltdown"])
        text = validation_report(checks)
        assert "2/2 attacks agree" in text
        assert "spectre_v1" in text and "meltdown" in text

    def test_engine_validate_timing_envelope(self):
        result = Engine().validate_timing()
        assert result.kind == "simulate"
        assert result.ok is True
        assert result.data["agreeing"] == result.data["attacks"] == len(keys())
        assert result.data["disagreeing"] == []

    def test_cross_validate_through_engine_map_matches_serial(self):
        with Engine() as engine:
            sharded = cross_validate(
                ["spectre_v1", "meltdown", "ridl"], engine=engine, parallel=2
            )
        serial = cross_validate(["spectre_v1", "meltdown", "ridl"])
        assert [check.to_dict() for check in sharded] == [
            check.to_dict() for check in serial
        ]


class TestTheorem1UnderContention:
    """Theorem 1 must survive a contended timing plane (acceptance criterion)."""

    def test_registry_wide_agreement_under_contention(self):
        """All 19 registry attacks agree with the TSG verdict on the contended
        reference core (bounded FU ports + CDB)."""
        checks = cross_validate(model=CONTENDED_MODEL)
        assert len(checks) == len(keys())
        assert [check.attack for check in checks if not check.agrees] == []
        assert all(check.transmit_beats_squash for check in checks)

    def test_serialized_ports_close_the_spectre_v2_race(self):
        """Collapsing memory-level parallelism to one load port serializes
        Spectre v2's two overlapping misses: the transmit slips past the
        squash and the measured race flips to safe while the (structural)
        TSG verdict still says leaks -- the contention ablation's headline
        data point."""
        check = check_attack("spectre_v2", model=SERIALIZED_MODEL)
        assert check.tsg_leaks
        assert not check.transmit_beats_squash
        assert not check.agrees
        assert check.transmit_cycle > check.squash_cycle

    def test_contention_delays_but_preserves_the_spectre_v1_race(self):
        base = check_attack("spectre_v1")
        contended = check_attack("spectre_v1", model=CONTENDED_MODEL)
        assert contended.agrees
        assert contended.transmit_cycle >= base.transmit_cycle

    def test_engine_validate_timing_contended_envelope(self):
        result = Engine().validate_timing(model=CONTENDED_MODEL)
        assert result.ok is True
        assert result.data["contended"] is True
        assert result.data["disagreeing"] == []


@pytest.mark.slow
class TestFullTimingSweep:
    """The long (attack x defense) timing sweep, excluded from tier-1."""

    def test_sweep_covers_the_grid_and_matches_serial(self):
        with Engine() as engine:
            sharded = engine.simulate_sweep(parallel=2)
        serial = Engine().simulate_sweep()
        assert sharded.data == serial.data
        grid = len(SCENARIOS) * (len(SimDefense) + 1)
        assert sharded.data["runs"] == grid
        # Undefended rows all leak; at least one defense defeats each attack.
        rows = sharded.data["rows"]
        undefended = [row for row in rows if not row["defenses"]]
        assert all(row["transmit_beats_squash"] for row in undefended)
