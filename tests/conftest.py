"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.attacks import get as get_attack
from repro.core import figure2_example
from repro.isa import assemble
from repro.uarch import UarchConfig


LISTING1_TEXT = """
.data
probe_array:  address=0x1000000 size=1048576 shared
victim_array: address=0x200000  size=16
victim_size:  address=0x210000  size=8
secret:       address=0x200048  size=1 protected
.text
    clflush [probe_array]
    mov rdx, 0x48
    cmp rdx, [victim_size]
    ja done
    mov rax, byte [victim_array + rdx]
    shl rax, 12
    mov rbx, [probe_array + rax]
done:
    hlt
"""

LISTING2_TEXT = """
.data
probe_array:   address=0x1000000  size=1048576 shared
kernel_secret: address=0xffff0000 size=64 kernel protected
.text
    clflush [probe_array]
    mov rax, byte [kernel_secret]
    shl rax, 12
    mov rbx, [probe_array + rax]
    hlt
"""


@pytest.fixture
def figure2():
    """The TSG of the paper's Figure 2."""
    return figure2_example()


@pytest.fixture
def spectre_v1_graph():
    """The Figure 1 attack graph of Spectre v1."""
    return get_attack("spectre_v1").build_graph()


@pytest.fixture
def meltdown_graph():
    """The Figure 3 attack graph of Meltdown."""
    return get_attack("meltdown").build_graph()


@pytest.fixture
def listing1_program():
    """The paper's Listing 1 (Spectre v1) as a tiny-ISA program."""
    return assemble(LISTING1_TEXT, name="listing1")


@pytest.fixture
def listing2_program():
    """The paper's Listing 2 (Meltdown) as a tiny-ISA program."""
    return assemble(LISTING2_TEXT, name="listing2")


@pytest.fixture
def base_config():
    """The default (undefended) simulator configuration."""
    return UarchConfig()
