"""Shared fixtures for the test suite."""

from __future__ import annotations

import signal
import socket

import pytest

from repro.attacks import get as get_attack
from repro.core import figure2_example
from repro.isa import assemble
from repro.uarch import UarchConfig


LISTING1_TEXT = """
.data
probe_array:  address=0x1000000 size=1048576 shared
victim_array: address=0x200000  size=16
victim_size:  address=0x210000  size=8
secret:       address=0x200048  size=1 protected
.text
    clflush [probe_array]
    mov rdx, 0x48
    cmp rdx, [victim_size]
    ja done
    mov rax, byte [victim_array + rdx]
    shl rax, 12
    mov rbx, [probe_array + rax]
done:
    hlt
"""

LISTING2_TEXT = """
.data
probe_array:   address=0x1000000  size=1048576 shared
kernel_secret: address=0xffff0000 size=64 kernel protected
.text
    clflush [probe_array]
    mov rax, byte [kernel_secret]
    shl rax, 12
    mov rbx, [probe_array + rax]
    hlt
"""


#: Wall-clock ceiling for a single ``faults``- or ``service``-marked test.
#: Fault-injection tests exercise hangs, kills, and pool respawns; service
#: tests run socket servers and subprocesses -- a regression in either shows
#: up as a stuck test, so the guard turns it into a loud failure instead.
FAULT_TEST_TIMEOUT_SECONDS = 90.0

#: Markers whose tests run under the SIGALRM wall-clock guard.
GUARDED_MARKERS = ("faults", "service", "obs", "batch", "fuzz")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Abort any guarded-marker test that overruns its wall-clock budget."""
    marker = next(
        (
            found
            for name in GUARDED_MARKERS
            if (found := item.get_closest_marker(name)) is not None
        ),
        None,
    )
    if marker is None or not hasattr(signal, "SIGALRM"):
        yield
        return
    limit = float(marker.kwargs.get("timeout", FAULT_TEST_TIMEOUT_SECONDS))

    def _expired(signum, frame):
        raise TimeoutError(
            f"{marker.name} test exceeded its {limit:.0f}s wall-clock guard"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, limit)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def ephemeral_port():
    """A free TCP port on loopback for service subprocesses.

    In-process servers bind ``port=0`` and read the port back; subprocess
    servers (``repro serve``) need the number up front, so probe one here.
    The tiny close-to-bind race is acceptable for loopback tests.
    """
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


@pytest.fixture
def figure2():
    """The TSG of the paper's Figure 2."""
    return figure2_example()


@pytest.fixture
def spectre_v1_graph():
    """The Figure 1 attack graph of Spectre v1."""
    return get_attack("spectre_v1").build_graph()


@pytest.fixture
def meltdown_graph():
    """The Figure 3 attack graph of Meltdown."""
    return get_attack("meltdown").build_graph()


@pytest.fixture
def listing1_program():
    """The paper's Listing 1 (Spectre v1) as a tiny-ISA program."""
    return assemble(LISTING1_TEXT, name="listing1")


@pytest.fixture
def listing2_program():
    """The paper's Listing 2 (Meltdown) as a tiny-ISA program."""
    return assemble(LISTING2_TEXT, name="listing2")


@pytest.fixture
def base_config():
    """The default (undefended) simulator configuration."""
    return UarchConfig()
