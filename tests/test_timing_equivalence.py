"""Functional/timing equivalence: TimingCPU must match SpeculativeCPU.

The timing core adds a cycle-accurate plane on top of the interpreter's
functional semantics; these property tests pin the contract that the timing
plane never changes *what* executes -- final architectural state, simulator
statistics and leak verdicts are identical across the exploit corpus and
random straight-line programs.  The contract extends to contended timing
models (bounded FU ports / CDB width): port arbitration may only move cycle
counts, never architectural state or leak verdicts.
"""

from __future__ import annotations

import random
from functools import partial

import pytest

from repro.exploits.harness import EXPLOITS
from repro.isa.instructions import Alu, Clflush, Cmp, Fence, Halt, Load, Mov, Rdtsc, Store
from repro.isa.operands import imm, mem, reg
from repro.isa.program import Program
from repro.uarch import SimDefense, SpeculativeCPU, TimingCPU, UarchConfig
from repro.uarch.timing import CONTENDED_MODEL, DEFAULT_MODEL, SERIALIZED_MODEL

DATA_BASE = 0x0030_0000
DATA_SIZE = 256

CONFIGS = {
    "undefended": UarchConfig(),
    "no_spec_loads": UarchConfig().with_defenses(SimDefense.PREVENT_SPECULATIVE_LOADS),
    "flush_predictors": UarchConfig().with_defenses(SimDefense.FLUSH_PREDICTORS),
    "kernel_isolation": UarchConfig().with_defenses(SimDefense.KERNEL_ISOLATION),
}

#: Timing-plane resource configurations the equivalence contract must hold
#: under: the unlimited PR-3 machine and the two contended reference cores.
MODELS = {
    "unbounded": DEFAULT_MODEL,
    "contended": CONTENDED_MODEL,
    "serialized": SERIALIZED_MODEL,
}


def final_state(cpu):
    """Everything architectural (and statistical) a run can be compared on."""
    memory = [cpu.read_memory(DATA_BASE + offset) for offset in range(DATA_SIZE)]
    return {
        "registers": cpu.registers.as_dict(),
        "flags": (cpu.flags.lhs, cpu.flags.rhs),
        "memory": memory,
        "stats": cpu.stats.summary(),
        "cache_occupancy": cpu.cache.occupancy(),
    }


# ---------------------------------------------------------------------------
# Exploit corpus equivalence
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(EXPLOITS))
@pytest.mark.parametrize("config_key", sorted(CONFIGS))
@pytest.mark.parametrize("model_key", sorted(MODELS))
def test_exploit_corpus_equivalence(name, config_key, model_key):
    config = CONFIGS[config_key]
    timing_cls = partial(TimingCPU, model=MODELS[model_key])
    functional = EXPLOITS[name](config, 0x5A, cpu_cls=SpeculativeCPU)
    timed = EXPLOITS[name](config, 0x5A, cpu_cls=timing_cls)
    assert timed.success == functional.success
    assert timed.recovered == functional.recovered
    assert timed.stats.summary() == functional.stats.summary()
    # The functional leak verdict (any speculative load executed) agrees.
    leaked_functional = functional.stats.speculative_loads > 0
    leaked_timed = timed.stats.speculative_loads > 0
    assert leaked_timed == leaked_functional
    # Only the timing run carries a trace.
    assert functional.timing is None
    assert timed.timing is not None


@pytest.mark.parametrize("name", sorted(EXPLOITS))
def test_contention_moves_only_cycles(name):
    """Port/CDB limits may move cycle counts but nothing the TSG reasons about.

    The TSG leak verdict is a structural property of the attack graph; the
    functional plane (windows, transient instructions, recovered secret) must
    be bit-identical across timing models, so Theorem 1 compares the same
    functional race under every port configuration.
    """
    config = UarchConfig()
    baseline = EXPLOITS[name](config, 0x5A, cpu_cls=TimingCPU)
    for model in (CONTENDED_MODEL, SERIALIZED_MODEL):
        contended = EXPLOITS[name](
            config, 0x5A, cpu_cls=partial(TimingCPU, model=model)
        )
        assert contended.success == baseline.success
        assert contended.recovered == baseline.recovered
        assert contended.stats.summary() == baseline.stats.summary()
        # Same dynamic-op stream, window structure and covert sends...
        base_trace, cont_trace = baseline.timing, contended.timing
        assert len(cont_trace.ops) == len(base_trace.ops)
        assert [row.op.kind for row in cont_trace.ops] == [
            row.op.kind for row in base_trace.ops
        ]
        assert [w.outcome for w in cont_trace.windows] == [
            w.outcome for w in base_trace.windows
        ]
        assert [len(w.sends) for w in cont_trace.windows] == [
            len(w.sends) for w in base_trace.windows
        ]
        # ... while issue cycles may only move later (added arbitration
        # stalls never accelerate anything).
        assert all(
            cont.issue >= base.issue
            for cont, base in zip(cont_trace.ops, base_trace.ops)
        )


# ---------------------------------------------------------------------------
# Random straight-line programs
# ---------------------------------------------------------------------------
REGS = ["rax", "rbx", "rcx", "rdx", "rsi", "rdi"]
ALU_OPS = ["add", "sub", "and", "or", "xor", "imul"]


def random_program(rng: random.Random, length: int) -> Program:
    """A random straight-line program over a small data region."""
    program = Program(name=f"random-{rng.random():.6f}")
    program.declare("data", DATA_BASE, DATA_SIZE)
    for _ in range(length):
        choice = rng.random()
        dst = reg(rng.choice(REGS))
        offset = rng.randrange(0, DATA_SIZE - 8, 8)
        if choice < 0.25:
            program.append(Mov(dst, imm(rng.randrange(0, 1 << 16))))
        elif choice < 0.45:
            src = imm(rng.randrange(1, 64)) if rng.random() < 0.5 else reg(rng.choice(REGS))
            program.append(Alu(rng.choice(ALU_OPS), dst, src))
        elif choice < 0.62:
            program.append(Load(dst, mem(symbol="data", displacement=offset)))
        elif choice < 0.78:
            src = imm(rng.randrange(0, 256)) if rng.random() < 0.5 else reg(rng.choice(REGS))
            program.append(Store(mem(symbol="data", displacement=offset), src, size=8))
        elif choice < 0.88:
            rhs = (
                reg(rng.choice(REGS))
                if rng.random() < 0.5
                else mem(symbol="data", displacement=offset)
            )
            program.append(Cmp(reg(rng.choice(REGS)), rhs))
        elif choice < 0.94:
            program.append(Clflush(mem(symbol="data", displacement=offset)))
        elif choice < 0.97:
            program.append(Fence(kind="lfence"))
        else:
            program.append(Rdtsc(dst))
    program.append(Halt())
    return program


@pytest.mark.parametrize("seed", range(20))
@pytest.mark.parametrize("model_key", sorted(MODELS))
def test_random_program_equivalence(seed, model_key):
    rng = random.Random(seed)
    program = random_program(rng, rng.randint(1, 40))
    seeds = [(name, rng.randrange(0, 1 << 32)) for name in REGS]

    functional = SpeculativeCPU(program)
    timed = TimingCPU(program, model=MODELS[model_key])
    for cpu in (functional, timed):
        for name, value in seeds:
            cpu.set_register(name, value)
    result_functional = functional.run()
    result_timed = timed.run()

    assert result_timed.halted == result_functional.halted
    assert result_timed.instructions == result_functional.instructions
    assert result_timed.leaked_transiently == result_functional.leaked_transiently
    assert final_state(timed) == final_state(functional)
    # The timing plane produced a consistent schedule for every executed op.
    trace = result_timed.trace
    assert len(trace.ops) == result_timed.instructions
    for row in trace.ops:
        assert row.dispatch <= row.issue < row.complete < row.retire
