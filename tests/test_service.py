"""The analysis service: single-flight dedup, backpressure, HTTP, drain.

In-process tests drive :class:`AnalysisService` directly on an event loop
(deterministic interleavings, no sockets); the ``service``-marked tests run
the real HTTP face through :class:`ServiceThread` + :class:`ServiceClient`,
and the acceptance test runs ``repro serve`` as a subprocess, SIGTERMs it
mid-load and verifies the restarted server warm-serves from the DiskStore.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.engine import Engine
from repro.scenario import ScenarioSpec
from repro.service import (
    AnalysisService,
    Overloaded,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceThread,
)
from repro.service.protocol import ExecutionFailed
from repro.store import DiskStore, MemoryStore, store_label


def _spec(secret: int = 0x41) -> ScenarioSpec:
    return ScenarioSpec("exploit", exploit="spectre_v1", secret=secret)


def _cli_env() -> dict:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


# ---------------------------------------------------------------------------
# Single-flight dedup (in-process, deterministic)
# ---------------------------------------------------------------------------
class TestSingleFlight:
    def test_concurrent_identical_specs_compute_once(self):
        """N waiters on one spec: one engine run, N identical envelopes."""
        fanout = 8

        async def body():
            engine = Engine(store=MemoryStore())
            service = AnalysisService(engine, ServiceConfig(batch_window=0.01))
            await service.start(listen=False)
            envelopes = await asyncio.gather(
                *(service.request(_spec()) for _ in range(fanout))
            )
            await service.drain()
            return engine.stats()["runs"], service.stats_view.hits, envelopes

        runs, hits, envelopes = asyncio.run(body())
        assert runs.get("exploit") == 1
        assert hits["computed"] == 1
        assert hits["in-flight"] == fanout - 1
        assert len(envelopes) == fanout
        datas = {json.dumps(e["result"]["data"], sort_keys=True) for e in envelopes}
        assert len(datas) == 1
        hashes = {e["spec"]["content_hash"] for e in envelopes}
        assert len(hashes) == 1
        ids = {e["request_id"] for e in envelopes}
        assert len(ids) == fanout  # same result, distinct request ids

    def test_distinct_specs_each_compute(self):
        async def body():
            engine = Engine(store=MemoryStore())
            service = AnalysisService(engine, ServiceConfig(batch_window=0.01))
            await service.start(listen=False)
            envelopes = await asyncio.gather(
                *(service.request(_spec(secret)) for secret in (1, 2, 3))
            )
            await service.drain()
            return engine.stats()["runs"], envelopes

        runs, envelopes = asyncio.run(body())
        assert runs.get("exploit") == 3
        assert all(e["hit"] == "computed" for e in envelopes)
        # Three specs of one kind coalesced into one micro-batched grid.
        assert runs.get("grid", 0) >= 1

    def test_cancelling_one_waiter_keeps_shared_computation_alive(self):
        """A cancelled client abandons its waiter, not the computation."""

        async def body():
            engine = Engine(store=MemoryStore())
            service = AnalysisService(engine, ServiceConfig(batch_window=0.02))
            await service.start(listen=False)
            tasks = [
                asyncio.get_running_loop().create_task(service.request(_spec()))
                for _ in range(4)
            ]
            await asyncio.sleep(0)  # every admission lands before dispatch
            tasks[0].cancel()
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            await service.drain()
            return engine.stats()["runs"], outcomes

        runs, outcomes = asyncio.run(body())
        assert isinstance(outcomes[0], asyncio.CancelledError)
        survivors = outcomes[1:]
        assert all(isinstance(out, dict) for out in survivors)
        assert all(out["ok"] for out in survivors)
        assert runs.get("exploit") == 1  # the shared compute still ran once

    def test_repeat_of_completed_spec_is_a_store_hit(self):
        async def body():
            engine = Engine(store=MemoryStore())
            service = AnalysisService(engine, ServiceConfig(batch_window=0.0))
            await service.start(listen=False)
            first = await service.request(_spec())
            second = await service.request(_spec())
            await service.drain()
            return engine.stats()["runs"], first, second

        runs, first, second = asyncio.run(body())
        assert first["hit"] == "computed"
        assert second["hit"] == "memory"  # warm from the MemoryStore
        assert runs.get("exploit") == 1
        assert second["result"]["data"] == first["result"]["data"]


# ---------------------------------------------------------------------------
# Backpressure and drain admission
# ---------------------------------------------------------------------------
class TestAdmission:
    def test_full_queue_rejects_new_specs_but_attach_is_free(self):
        """503 + Retry-After for new work; attaching never rejected."""

        async def body():
            engine = Engine(store=MemoryStore())
            # No start(): the dispatcher never drains, the queue is stable.
            service = AnalysisService(
                engine, ServiceConfig(queue_depth=2, retry_after=1.0)
            )
            service._admit(_spec(1))
            service._admit(_spec(2))
            with pytest.raises(Overloaded) as rejected:
                service._admit(_spec(3))
            waiter, attached = service._admit(_spec(1))  # duplicate of queued
            service._engine_pool.shutdown(wait=False)
            return rejected.value, attached, service.stats_view

        rejection, attached, stats_view = asyncio.run(body())
        assert rejection.status == 503
        assert rejection.code == "overloaded"
        assert rejection.retry_after == 1.0
        assert rejection.headers() == {"Retry-After": "1"}
        assert attached is True
        assert stats_view.rejected == 1
        assert stats_view.hits["in-flight"] == 1

    def test_draining_rejects_new_specs_with_stable_code(self):
        async def body():
            engine = Engine(store=MemoryStore())
            service = AnalysisService(engine, ServiceConfig())
            service._admit(_spec(1))
            service._draining = True
            with pytest.raises(Overloaded) as rejected:
                service._admit(_spec(2))
            # Mid-drain attach to in-flight work is still allowed.
            _, attached = service._admit(_spec(1))
            service._engine_pool.shutdown(wait=False)
            return rejected.value, attached

        rejection, attached = asyncio.run(body())
        assert rejection.code == "draining"
        assert attached is True

    def test_executor_failure_fails_every_waiter_structurally(self):
        """A raising engine surfaces as ExecutionFailed, never a hang."""

        async def body():
            engine = Engine(store=MemoryStore())
            service = AnalysisService(engine, ServiceConfig(batch_window=0.01))
            await service.start(listen=False)

            def boom(grid, parallel=None):
                raise RuntimeError("engine exploded")

            engine.iter_grid = boom
            failures = await asyncio.gather(
                *(service.request(_spec()) for _ in range(3)),
                return_exceptions=True,
            )
            await service.drain()
            return failures, service.stats_view.errors

        failures, errors = asyncio.run(body())
        assert all(isinstance(f, ExecutionFailed) for f in failures)
        assert all("engine exploded" in str(f) for f in failures)
        assert all(f.status == 500 for f in failures)
        assert errors == 1  # one shared entry failed, three waiters notified


# ---------------------------------------------------------------------------
# Observability plumbing (Engine hooks + store counters)
# ---------------------------------------------------------------------------
class TestObservability:
    def test_engine_stats_gains_service_section(self):
        engine = Engine(store=MemoryStore())
        AnalysisService(engine, ServiceConfig())
        report = engine.stats()
        assert report["service"]["requests"] == 0
        assert "completed" in report["service"]

    def test_register_stats_rejects_reserved_names(self):
        engine = Engine(store=MemoryStore())
        with pytest.raises(ValueError):
            engine.register_stats("runs", lambda: {})
        engine.register_stats("custom", lambda: {"value": 7})
        assert engine.stats()["custom"] == {"value": 7}
        engine.unregister_stats("custom")
        assert "custom" not in engine.stats()

    def test_stats_snapshot_and_delta(self):
        engine = Engine(store=MemoryStore())
        before = engine.stats_snapshot()
        engine.run(_spec())
        delta = Engine.stats_delta(before, engine.stats_snapshot())
        assert delta["runs"].get("exploit") == 1
        # A second delta over no work is all zeros for the runs table.
        flat = Engine.stats_delta(engine.stats_snapshot(), engine.stats_snapshot())
        assert all(value == 0 for value in flat["runs"].values())

    def test_store_put_counters(self, tmp_path):
        store = DiskStore(root=str(tmp_path), version="counters")
        assert store.put("good", {"ok": True}) is True
        assert store.put("bad", lambda: None) is False  # unpicklable
        stats = store.stats()
        assert stats["puts"] == 1
        assert stats["put_failures"] == 1

    def test_store_label(self, tmp_path):
        assert store_label(MemoryStore()) == "memory"
        assert store_label(DiskStore(root=str(tmp_path), version="l")) == "disk"
        assert store_label(None) == "none"


# ---------------------------------------------------------------------------
# The HTTP face (real sockets, background server thread)
# ---------------------------------------------------------------------------
@pytest.mark.service
class TestHttpService:
    def test_round_trip_computed_then_disk(self, tmp_path):
        engine = Engine(store=DiskStore(root=str(tmp_path), version="svc"))
        payload = {
            "kind": "exploit",
            "params": {"exploit": "spectre_v1", "secret": 0x41},
        }
        with ServiceThread(engine=engine, config=ServiceConfig()) as handle:
            client = ServiceClient(handle.url)
            assert client.healthy()
            first = client.run(payload)
            second = client.run(payload)
            stats = client.stats()
        engine.close()

        assert first["ok"] is True
        assert first["hit"] == "computed"
        assert second["hit"] == "disk"
        assert second["result"]["data"] == first["result"]["data"]
        assert second["spec"]["content_hash"] == first["spec"]["content_hash"]
        for envelope in (first, second):
            latency = envelope["latency_ms"]
            assert set(latency) == {"queue", "compute", "total"}
            assert all(value >= 0 for value in latency.values())

        service = stats["service"]
        assert service["requests"] == 2
        assert service["hits"]["computed"] == 1
        assert service["hits"]["disk"] == 1
        assert service["hit_rate"] == pytest.approx(0.5)
        assert service["latency_ms"]["samples"] == 2
        assert service["latency_ms"]["p99"] >= service["latency_ms"]["p50"]
        assert stats["engine"]["service"]["requests"] == 2
        assert stats["window"]["runs"].get("exploit") == 1

    def test_concurrent_http_clients_share_one_compute(self, tmp_path):
        engine = Engine(store=DiskStore(root=str(tmp_path), version="svc"))
        payload = {
            "kind": "exploit",
            "params": {"exploit": "spectre_v1", "secret": 0x77},
        }
        clients = 6
        envelopes = [None] * clients
        with ServiceThread(engine=engine, config=ServiceConfig()) as handle:
            barrier = threading.Barrier(clients)

            def body(index):
                barrier.wait()
                envelopes[index] = ServiceClient(handle.url).run(payload)

            threads = [
                threading.Thread(target=body, args=(i,)) for i in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        runs = engine.stats()["runs"]
        engine.close()

        assert runs.get("exploit") == 1  # the acceptance dedup observable
        assert all(envelope is not None for envelope in envelopes)
        assert all(envelope["ok"] for envelope in envelopes)
        datas = {
            json.dumps(envelope["result"]["data"], sort_keys=True)
            for envelope in envelopes
        }
        assert len(datas) == 1

    def test_healthz_and_unknown_routes(self):
        engine = Engine(store=MemoryStore())
        with ServiceThread(engine=engine, config=ServiceConfig()) as handle:
            client = ServiceClient(handle.url)
            health = client.get("/healthz")
            assert health["ok"] is True
            assert health["draining"] is False
            with pytest.raises(ServiceError) as missing:
                client.get("/nope")
            with pytest.raises(ServiceError) as wrong_method:
                client.post_bytes("/stats", b"{}")
        engine.close()
        assert missing.value.status == 404
        assert missing.value.code == "not-found"
        assert wrong_method.value.status == 405
        assert wrong_method.value.code == "method-not-allowed"


# ---------------------------------------------------------------------------
# Kill-and-restart acceptance: SIGTERM drains, restart serves from disk
# ---------------------------------------------------------------------------
@pytest.mark.service
class TestServeSubprocess:
    @staticmethod
    def _spawn(store_dir: str, port: int) -> subprocess.Popen:
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--store",
                store_dir,
                "--host",
                "127.0.0.1",
                "--port",
                str(port),
            ],
            env=_cli_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )

    @staticmethod
    def _wait_listening(proc: subprocess.Popen) -> str:
        line = proc.stdout.readline()
        assert "listening on" in line, f"unexpected banner: {line!r}"
        return line.split()[-1]

    def test_sigterm_mid_load_drains_then_restart_serves_from_disk(
        self, tmp_path, ephemeral_port
    ):
        store_dir = str(tmp_path / "store")
        workload = [
            {
                "kind": "exploit",
                "params": {"exploit": "spectre_v1", "secret": 0x30 + index},
            }
            for index in range(4)
        ]

        proc = self._spawn(store_dir, ephemeral_port)
        try:
            url = self._wait_listening(proc)
            client = ServiceClient(url, timeout=60)
            client.wait_ready()

            outcomes = [None] * len(workload)

            def body(index):
                try:
                    outcomes[index] = client.run_with_retry(workload[index])
                except (ServiceError, OSError) as exc:
                    outcomes[index] = exc

            threads = [
                threading.Thread(target=body, args=(i,))
                for i in range(len(workload))
            ]
            for thread in threads:
                thread.start()
            # SIGTERM lands while requests are in flight: the drain must
            # complete admitted work, refuse the rest, and exit cleanly.
            while not any(isinstance(out, dict) for out in outcomes):
                time.sleep(0.01)
            proc.send_signal(signal.SIGTERM)
            for thread in threads:
                thread.join(timeout=60)
            stdout, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

        assert proc.returncode == 0, f"serve exited {proc.returncode}: {stderr}"
        assert "draining" in stderr
        assert "drained" in stderr
        completed = [out for out in outcomes if isinstance(out, dict)]
        assert completed, "no request completed before the SIGTERM"
        for envelope in completed:
            assert envelope["ok"] is True
        # Nothing hung: every client either completed or was refused.
        assert all(out is not None for out in outcomes)

        # The restarted server must serve completed specs warm from disk --
        # the store checkpointed every point before its waiter saw it.
        proc = self._spawn(store_dir, ephemeral_port)
        try:
            url = self._wait_listening(proc)
            client = ServiceClient(url, timeout=60)
            client.wait_ready()
            for envelope in completed:
                index = next(
                    i
                    for i, out in enumerate(outcomes)
                    if out is envelope
                )
                replay = client.run(workload[index])
                assert replay["hit"] == "disk", replay
                assert replay["result"]["data"] == envelope["result"]["data"]
            runs = client.stats()["engine"]["runs"]
            assert runs.get("exploit", 0) == 0  # zero recompute after restart
            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, f"restarted serve exited: {stderr}"
