"""Kill-and-resume acceptance tests: a campaign must survive its process.

Two-subprocess tests: the first ``repro run`` is killed mid-grid (SIGKILL --
nothing gets to clean up; and SIGINT -- the graceful path), the second is
relaunched with ``--resume`` against the same store and must recompute only
the points the first never checkpointed.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

pytestmark = pytest.mark.faults

#: Grid axis: eight attacks, executed serially in listed order.  The hang
#: fault pins the fifth, so exactly four points are durable when the first
#: process dies.
ATTACKS = [
    "foreshadow",
    "lazy_fp",
    "mds",
    "meltdown",
    "spectre_rsb",
    "spectre_v1",
    "spectre_v2",
    "spectre_v4",
]
HANG_AT = ATTACKS[4]
CHECKPOINTED = 4


def _cli_env() -> dict:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _grid_argv(store_dir: str, *extra: str) -> list:
    return [
        sys.executable, "-m", "repro.cli", "run",
        "--kind", "simulate",
        "--axis", "attack=" + ",".join(ATTACKS),
        "--store", store_dir,
        "--json",
        *extra,
    ]


def _write_hang_plan(tmp_path: Path) -> Path:
    plan = tmp_path / "hang.json"
    plan.write_text(json.dumps({
        "faults": [
            {"kind": "hang", "match": f"attack='{HANG_AT}'", "hang_seconds": 120.0},
        ],
    }))
    return plan


def _entries(store_dir: str) -> int:
    return len(list(Path(store_dir).rglob("*.pkl")))


def _spawn_until_checkpointed(tmp_path, store_dir: str) -> subprocess.Popen:
    """Launch the grid with the hang plan; return once 4 points are durable."""
    plan = _write_hang_plan(tmp_path)
    process = subprocess.Popen(
        _grid_argv(store_dir, "--faults", str(plan)),
        env=_cli_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if _entries(store_dir) >= CHECKPOINTED:
            return process
        if process.poll() is not None:
            out, err = process.communicate()
            raise AssertionError(
                f"grid process exited early (rc={process.returncode}): {err}"
            )
        time.sleep(0.05)
    process.kill()
    raise AssertionError("grid never reached the checkpoint watermark")


def _resume(tmp_path, store_dir: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        _grid_argv(store_dir, "--resume"),
        env=_cli_env(),
        capture_output=True,
        text=True,
        timeout=120,
    )


class TestKillAndResume:
    def test_sigkilled_grid_resumes_with_only_missing_points_recomputed(
        self, tmp_path
    ):
        store_dir = str(tmp_path / "cache")
        process = _spawn_until_checkpointed(tmp_path, store_dir)
        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=30)
        assert _entries(store_dir) == CHECKPOINTED  # died mid-grid, 4 durable

        completed = _resume(tmp_path, store_dir)
        # simulate envelopes report ok=False for leaking attacks, so the
        # exit code carries the verdict, not the campaign's health -- the
        # envelope and the resume accounting are the contract.
        envelope = json.loads(completed.stdout)
        assert envelope["data"]["points"] == len(ATTACKS)
        assert len(envelope["data"]["rows"]) == len(ATTACKS)
        assert "quarantined" not in envelope["data"]
        recomputed = len(ATTACKS) - CHECKPOINTED
        assert (
            f"resume: {CHECKPOINTED}/{len(ATTACKS)} points served from "
            f"checkpoints, {recomputed} recomputed, 0 quarantined"
        ) in completed.stderr
        # Cache accounting pins the recompute count: the resumed store must
        # show exactly one durable entry per grid point, no rewrites of the
        # four checkpoints that survived the kill.
        assert _entries(store_dir) == len(ATTACKS)

    def test_sigint_exits_resumably_instead_of_a_traceback(self, tmp_path):
        store_dir = str(tmp_path / "cache")
        process = _spawn_until_checkpointed(tmp_path, store_dir)
        os.kill(process.pid, signal.SIGINT)
        out, err = process.communicate(timeout=30)
        assert process.returncode == 130
        assert "Traceback" not in err
        assert "--resume" in err  # tells the user how to continue
        assert _entries(store_dir) == CHECKPOINTED  # checkpoints survived

        completed = _resume(tmp_path, store_dir)
        envelope = json.loads(completed.stdout)
        assert envelope["data"]["points"] == len(ATTACKS)
        assert (
            f"resume: {CHECKPOINTED}/{len(ATTACKS)} points served from"
        ) in completed.stderr
