"""The unified tracing + metrics plane (``repro.obs``).

Unit tests cover the tracer (span stacks, detached spans, collect/absorb,
the JSONL sink) and the metrics registry (integer preservation, label
series, Prometheus rendering); the ``obs``-marked tests drive real pool
workers and the in-process analysis service, including the acceptance
test that reconstructs a 50-point campaign's request -> worker critical
path from one trace file.
"""

from __future__ import annotations

import asyncio
import io
import json
import os
from types import SimpleNamespace

import pytest

from repro.cli import main
from repro.engine import Engine
from repro.obs import (
    MetricsRegistry,
    ProgressLine,
    Tracer,
    critical_path,
    read_trace,
    render_registries,
    summarize,
    summarize_file,
)
from repro.obs.trace import NULL_SPAN
from repro.scenario import ScenarioGrid, ScenarioSpec
from repro.service import AnalysisService, ServiceClient, ServiceConfig, ServiceThread
from repro.store import MemoryStore


def _spec(secret: int = 0x41) -> ScenarioSpec:
    return ScenarioSpec("exploit", exploit="spectre_v1", secret=secret)


def _grid(points: int = 6) -> ScenarioGrid:
    return ScenarioGrid(
        "exploit",
        base={"exploit": "spectre_v1"},
        axes={"secret": list(range(points))},
    )


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------
class TestTracer:
    def test_nested_spans_parent_on_the_thread_stack(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=str(sink))
        with tracer.span("outer", kind="demo") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        tracer.close()
        records = {r["name"]: r for r in read_trace(sink)}
        assert records["inner"]["parent"] == records["outer"]["span"]
        assert records["outer"]["parent"] is None
        assert records["outer"]["attrs"] == {"kind": "demo"}
        assert records["outer"]["trace"] == records["inner"]["trace"]
        assert records["inner"]["dur_ms"] >= 0.0

    def test_detached_spans_never_join_the_stack(self):
        tracer = Tracer()  # collect mode
        with tracer.span("root") as root:
            detached = tracer.span("detached", detached=True)
            # The stack still points at root: a sibling opened now must
            # not parent on the detached span.
            with tracer.span("sibling") as sibling:
                assert sibling.parent_id == root.span_id
            assert detached.parent_id == root.span_id
            tracer.finish(detached)
        assert len(tracer.drain()) == 3

    def test_collect_mode_drain_and_absorb_roundtrip(self, tmp_path):
        worker = Tracer(trace_id="abc123", )
        ctx_parent = None
        with worker.span("worker.point", parent=ctx_parent, key="k1"):
            pass
        harvested = worker.drain()
        assert worker.drain() == []  # drained exactly once

        sink = tmp_path / "absorbed.jsonl"
        parent = Tracer(sink=str(sink))
        assert parent.absorb(harvested) == 1
        parent.close()
        records = read_trace(sink)
        assert [r["name"] for r in records] == ["worker.point"]
        assert records[0]["trace"] == "abc123"

    def test_disabled_tracer_costs_nothing_and_emits_nothing(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", attr=1)
        assert span is NULL_SPAN
        with span:
            assert span.set(more=2) is NULL_SPAN
        assert tracer.current_context() is None
        assert tracer.emitted == 0
        assert tracer.drain() == []

    def test_exception_inside_span_records_error_attr(self, tmp_path):
        sink = tmp_path / "err.jsonl"
        tracer = Tracer(sink=str(sink))
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        tracer.close()
        (record,) = read_trace(sink)
        assert record["attrs"]["error"] == "RuntimeError"

    def test_buffer_flushes_at_limit_without_close(self, tmp_path):
        sink = tmp_path / "buffered.jsonl"
        tracer = Tracer(sink=str(sink), buffer_limit=2)
        with tracer.span("one"):
            pass
        assert not sink.exists() or sink.read_text() == ""
        with tracer.span("two"):
            pass
        assert len(read_trace(sink)) == 2  # limit hit: flushed pre-close
        tracer.close()

    def test_current_context_without_open_span_still_names_the_trace(self):
        tracer = Tracer(trace_id="t1")
        context = tracer.current_context()
        assert context.trace_id == "t1"
        assert context.parent_id is None


class TestTracerSampling:
    def test_rate_zero_drops_every_tree(self):
        tracer = Tracer(sample_rate=0.0)
        for _ in range(10):
            with tracer.span("root"):
                with tracer.span("child"):
                    pass
        assert tracer.emitted == 0
        assert tracer.drain() == []

    def test_rate_one_keeps_every_tree(self):
        tracer = Tracer(sample_rate=1.0)
        for _ in range(5):
            with tracer.span("root"):
                with tracer.span("child"):
                    pass
        assert tracer.emitted == 10

    def test_trees_are_kept_or_dropped_atomically(self):
        """Half-rate sampling keeps whole trees: every kept root arrives
        with exactly its children, never a child without its root."""
        tracer = Tracer(sample_rate=0.5, sample_seed=42)
        trees = 200
        for index in range(trees):
            with tracer.span("root", index=index):
                with tracer.span("child"):
                    with tracer.span("grandchild"):
                        pass
        records = tracer.drain()
        roots = [r for r in records if r["name"] == "root"]
        children = [r for r in records if r["name"] == "child"]
        grandchildren = [r for r in records if r["name"] == "grandchild"]
        assert 0 < len(roots) < trees  # actually sampled
        assert len(children) == len(grandchildren) == len(roots)
        by_id = {r["span"]: r for r in records}
        for child in children + grandchildren:
            assert child["parent"] in by_id  # no orphans, ever

    def test_sample_seed_makes_decisions_reproducible(self):
        def kept(seed):
            tracer = Tracer(sample_rate=0.5, sample_seed=seed)
            decisions = []
            for index in range(64):
                with tracer.span("root", index=index):
                    pass
            return [r["attrs"]["index"] for r in tracer.drain()]

        assert kept(7) == kept(7)
        assert kept(7) != kept(8)

    def test_dropped_tree_ships_no_cross_process_context(self):
        """Inside a sampled-out tree the hop context is None: workers run
        untraced rather than orphan half a tree."""
        tracer = Tracer(sample_rate=0.0)
        with tracer.span("root"):
            assert tracer.current_context() is None
            detached = tracer.span("shard", detached=True)
            assert detached.context() is None
            tracer.finish(detached)
        # Once the dropped tree closes, sampling decides afresh.
        context = tracer.current_context()
        assert context is not None and context.parent_id is None

    def test_drop_depth_survives_out_of_order_finishes(self):
        tracer = Tracer(sample_rate=0.0)
        root = tracer.span("root")
        child = tracer.span("child")
        root.__exit__(None, None, None)
        child.__exit__(None, None, None)
        child.__exit__(None, None, None)  # double-finish is a no-op
        with tracer.span("next"):  # still a cleanly dropped fresh tree
            pass
        assert tracer.emitted == 0

    def test_invalid_rate_is_rejected(self):
        with pytest.raises(ValueError, match="sample_rate"):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError, match="sample_rate"):
            Tracer(sample_rate=-0.1)

    def test_explicitly_parented_spans_bypass_head_sampling(self):
        """A span parented on a shipped context is never a tree root: the
        worker side must honor the parent's keep decision, not re-draw."""
        from repro.obs.trace import TraceContext

        tracer = Tracer(sample_rate=0.0)
        context = TraceContext("t1", "parent-span")
        with tracer.span("worker.point", parent=context):
            pass
        (record,) = tracer.drain()
        assert record["parent"] == "parent-span"


# ---------------------------------------------------------------------------
# Metrics registry + Prometheus rendering
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_counter_integer_increments_stay_integers(self):
        counter = MetricsRegistry().counter("c_total", labelnames=("kind",))
        counter.inc(kind="a")
        counter.inc(2, kind="a")
        value = counter.value(kind="a")
        assert value == 3 and isinstance(value, int)

    def test_counter_rejects_negative_and_wrong_labels(self):
        counter = MetricsRegistry().counter("c_total", labelnames=("kind",))
        with pytest.raises(ValueError):
            counter.inc(-1, kind="a")
        with pytest.raises(ValueError):
            counter.inc(bogus="a")

    def test_registry_get_or_create_is_idempotent_but_conflict_safe(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", labelnames=("k",))
        assert registry.counter("x_total", labelnames=("k",)) is first
        with pytest.raises(ValueError):
            registry.gauge("x_total")
        with pytest.raises(ValueError):
            registry.counter("x_total", labelnames=("other",))

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 4

    def test_histogram_renders_cumulative_le_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_ms", buckets=(1, 10, 100))
        for value in (0.5, 5, 5, 500):
            histogram.observe(value)
        text = registry.render()
        assert 'lat_ms_bucket{le="1.0"} 1' in text
        assert 'lat_ms_bucket{le="10.0"} 3' in text
        assert 'lat_ms_bucket{le="100.0"} 3' in text
        assert 'lat_ms_bucket{le="+Inf"} 4' in text
        assert "lat_ms_count 4" in text
        assert "lat_ms_sum 510.5" in text

    def test_render_prometheus_text_shape(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "repro_demo_total", help="demo counter", labelnames=("kind",)
        )
        counter.inc(kind='quo"ted')
        text = registry.render()
        assert "# HELP repro_demo_total demo counter" in text
        assert "# TYPE repro_demo_total counter" in text
        assert 'repro_demo_total{kind="quo\\"ted"} 1' in text
        assert text.endswith("\n")

    def test_render_registries_dedupes_names_and_runs_collectors(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("shared_total").inc()
        second.counter("shared_total").inc(100)
        pulled = second.gauge("pulled")
        second.register_collector(lambda: pulled.set(7))
        text = render_registries(first, second)
        assert text.count("# TYPE shared_total counter") == 1
        assert "shared_total 1" in text  # first registry wins
        assert "shared_total 100" not in text
        assert "pulled 7" in text  # collector ran on scrape


# ---------------------------------------------------------------------------
# Engine tracing through real pool workers
# ---------------------------------------------------------------------------
@pytest.mark.obs
class TestEngineTracing:
    def test_serial_run_emits_run_and_store_put_spans(self, tmp_path):
        sink = tmp_path / "run.jsonl"
        tracer = Tracer(sink=str(sink))
        engine = Engine(store=MemoryStore(), tracer=tracer)
        result = engine.run(_spec())
        engine.close()
        assert result.ok
        records = {r["name"]: r for r in read_trace(sink)}
        run = records["engine.run"]
        assert run["attrs"]["kind"] == "exploit"
        assert run["attrs"]["cache"] == result.cache
        assert records["store.put"]["parent"] == run["span"]

    def test_sharded_grid_harvests_worker_spans_across_processes(self, tmp_path):
        sink = tmp_path / "grid.jsonl"
        tracer = Tracer(sink=str(sink))
        engine = Engine(store=MemoryStore(), parallel=2, tracer=tracer)
        result = engine.run_grid(_grid(6))
        engine.close()
        assert result.ok
        records = read_trace(sink)
        grid_span = next(r for r in records if r["name"] == "engine.iter_grid")
        shards = {r["span"]: r for r in records if r["name"] == "engine.shard"}
        workers = [r for r in records if r["name"] == "worker.point"]
        assert len(workers) == 6
        for record in workers:
            assert record["parent"] in shards
            assert shards[record["parent"]]["parent"] == grid_span["span"]
        # The spans crossed a process boundary and still share one trace.
        assert any(record["pid"] != os.getpid() for record in workers)
        assert {record["trace"] for record in records} == {tracer.trace_id}

    def test_untraced_engine_matches_traced_results(self, tmp_path):
        plain = Engine(store=MemoryStore())
        plain_result = plain.run_grid(_grid(3))
        plain.close()
        tracer = Tracer(sink=str(tmp_path / "t.jsonl"))
        traced = Engine(store=MemoryStore(), tracer=tracer)
        traced_result = traced.run_grid(_grid(3))
        traced.close()
        assert traced_result.data == plain_result.data


# ---------------------------------------------------------------------------
# The acceptance test: 50 points through the service, one trace file
# ---------------------------------------------------------------------------
@pytest.mark.obs
class TestServiceTraceAcceptance:
    def test_fifty_point_campaign_reconstructs_request_to_worker_path(
        self, tmp_path
    ):
        trace_path = tmp_path / "campaign.jsonl"
        points = 50

        async def body():
            engine = Engine(store=MemoryStore(), parallel=2)
            service = AnalysisService(
                engine,
                ServiceConfig(
                    batch_size=16, batch_window=0.01, trace_path=str(trace_path)
                ),
            )
            await service.start(listen=False)
            envelopes = await asyncio.gather(
                *(service.request(_spec(secret)) for secret in range(points))
            )
            await service.drain()
            engine.close()
            return envelopes

        envelopes = asyncio.run(body())
        assert len(envelopes) == points
        assert all(envelope["ok"] for envelope in envelopes)

        records = read_trace(trace_path)
        by_id = {r["span"]: r for r in records}
        by_name: dict = {}
        for record in records:
            by_name.setdefault(record["name"], []).append(record)

        # Every request produced its admission spans.
        assert len(by_name["service.request"]) == points
        assert len(by_name["service.entry"]) == points
        assert len(by_name["service.queue"]) == points
        assert by_name["service.batch"]  # micro-batches dispatched
        assert by_name["engine.iter_grid"]

        # Walk one pool-worker span back to the HTTP-facing request span:
        # worker.point -> engine.shard -> engine.iter_grid -> service.batch
        # -> service.entry -> service.request, crossing a process boundary.
        worker = by_name["worker.point"][0]
        chain = [worker]
        while chain[-1].get("parent"):
            chain.append(by_id[chain[-1]["parent"]])
        names = [record["name"] for record in chain]
        assert names == [
            "worker.point",
            "engine.shard",
            "engine.iter_grid",
            "service.batch",
            "service.entry",
            "service.request",
        ]
        assert chain[0]["pid"] != chain[-1]["pid"]
        assert len({record["trace"] for record in chain}) == 1

        # The digest agrees: multiple processes, a non-empty critical path.
        digest = summarize(records)
        assert digest["spans"] == len(records)
        assert digest["processes"] >= 2
        assert digest["phases"]["worker-point"]["count"] >= 1
        assert critical_path(records)

    def test_service_trace_records_hit_provenance(self, tmp_path):
        """Dedup'd requests trace too: the entry span carries the hit."""
        trace_path = tmp_path / "dedup.jsonl"

        async def body():
            engine = Engine(store=MemoryStore())
            service = AnalysisService(
                engine,
                ServiceConfig(batch_window=0.01, trace_path=str(trace_path)),
            )
            await service.start(listen=False)
            first = await service.request(_spec(7))
            second = await service.request(_spec(7))
            await service.drain()
            engine.close()
            return first, second

        first, second = asyncio.run(body())
        assert first["hit"] == "computed"
        assert second["hit"] in ("memory", "disk")
        entries = [
            r for r in read_trace(trace_path) if r["name"] == "service.entry"
        ]
        assert sorted(e["attrs"]["hit"] for e in entries) == sorted(
            (first["hit"], second["hit"])
        )


# ---------------------------------------------------------------------------
# /metrics over HTTP
# ---------------------------------------------------------------------------
@pytest.mark.obs
@pytest.mark.service
class TestMetricsEndpoint:
    def test_metrics_scrape_is_prometheus_text(self):
        engine = Engine(store=MemoryStore())
        with ServiceThread(engine=engine, config=ServiceConfig()) as handle:
            client = ServiceClient(handle.url)
            envelope = client.run(_spec(0x41).to_dict())
            assert envelope["ok"]
            text = client.metrics()
        engine.close()
        assert "# TYPE repro_service_requests_total counter" in text
        assert "repro_service_requests_total 1" in text
        assert "# TYPE repro_service_request_latency_ms histogram" in text
        assert 'le="+Inf"' in text
        assert "# TYPE repro_engine_runs_total counter" in text
        assert 'repro_engine_runs_total{kind="exploit"} 1' in text
        assert 'repro_engine_store_ops_total{op="puts"} 1' in text
        assert "repro_service_queue_depth 0" in text


# ---------------------------------------------------------------------------
# Load-generator latency breakdown by hit source (satellite)
# ---------------------------------------------------------------------------
@pytest.mark.obs
@pytest.mark.service
class TestLoadgenLatencyBreakdown:
    def test_report_splits_latency_by_hit_source(self):
        from repro.service.loadgen import overlapping_workload, run_load

        engine = Engine(store=MemoryStore())
        workload, unique = overlapping_workload(2, 4, overlap=0.5)
        with ServiceThread(engine=engine, config=ServiceConfig()) as handle:
            report = run_load(handle.url, workload, unique)
        engine.close()
        assert report.completed == 8
        assert report.latency_by_source  # at least the computed source
        assert set(report.latency_by_source) == set(report.hits)
        total = sum(
            entry["count"] for entry in report.latency_by_source.values()
        )
        assert total == report.completed
        for source, entry in report.latency_by_source.items():
            assert entry["count"] == report.hits[source]
            assert 0.0 <= entry["p50_ms"] <= entry["p99_ms"]
            assert entry["mean_ms"] >= 0.0


# ---------------------------------------------------------------------------
# CLI: --trace / --progress / trace summarize
# ---------------------------------------------------------------------------
@pytest.mark.obs
class TestTraceCli:
    def test_run_trace_progress_and_summarize(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main([
            "run", "--kind", "exploit", "--param", "exploit=spectre_v1",
            "--axis", "secret=1,2,3,4", "--parallel", "2",
            "--trace", str(trace), "--progress",
        ]) == 0
        err = capsys.readouterr().err
        assert "[grid] 4/4 points (100%)" in err
        assert "spans written to" in err

        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Phase breakdown" in out
        assert "worker-point" in out
        assert "Critical path" in out

        assert main(["trace", "summarize", str(trace), "--json"]) == 0
        digest = json.loads(capsys.readouterr().out)
        assert digest["spans"] == len(read_trace(trace))
        assert digest["processes"] >= 2
        assert digest == json.loads(
            json.dumps(summarize_file(str(trace)), sort_keys=True, default=str)
        )

    def test_trace_summarize_rejects_missing_and_empty_files(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["trace", "summarize", str(tmp_path / "absent.jsonl")])
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(SystemExit, match="no spans"):
            main(["trace", "summarize", str(empty)])


class TestProgressLine:
    def test_counts_rate_eta_and_quarantines(self):
        stream = io.StringIO()
        progress = ProgressLine(4, stream=stream, min_interval=0.0)
        good = SimpleNamespace(result=SimpleNamespace(kind="exploit"))
        bad = SimpleNamespace(result=SimpleNamespace(kind="error"))
        for point in (good, good, bad, good):
            progress.update(point)
        line = progress.line()
        assert "4/4 points (100%)" in line
        assert "quarantined 1" in line
        assert "ETA 0s" in line
        progress.finish()
        assert stream.getvalue().endswith("\n")

    def test_untyped_updates_count_without_quarantine(self):
        progress = ProgressLine(2, stream=io.StringIO(), min_interval=0.0)
        progress.update()
        progress.update(None)
        assert progress.done == 2
        assert progress.quarantined == 0
        assert "2/2" in progress.line()


# ---------------------------------------------------------------------------
# Engine.stats_delta with provider hooks coming and going (satellite)
# ---------------------------------------------------------------------------
class TestStatsDeltaProviders:
    def test_provider_appearing_between_snapshots_counts_from_zero(self):
        engine = Engine()
        try:
            before = engine.stats_snapshot()
            engine.register_stats(
                "custom", lambda: {"events": 3, "label": "x"}
            )
            delta = Engine.stats_delta(before, engine.stats())
            # Numeric leaves count from zero; non-numeric pass through.
            assert delta["custom"] == {"events": 3, "label": "x"}
        finally:
            engine.close()

    def test_provider_disappearing_between_snapshots_drops_its_section(self):
        engine = Engine()
        try:
            engine.register_stats("custom", lambda: {"events": 2})
            before = engine.stats_snapshot()
            engine.unregister_stats("custom")
            delta = Engine.stats_delta(before, engine.stats())
            assert "custom" not in delta
            assert "runs" in delta  # engine sections survive the unregister
        finally:
            engine.close()

    def test_provider_window_is_differenced_like_engine_counters(self):
        ledger = {"events": 5}
        engine = Engine()
        try:
            engine.register_stats("custom", lambda: dict(ledger))
            before = engine.stats_snapshot()
            ledger["events"] = 9
            delta = Engine.stats_delta(before, engine.stats())
            assert delta["custom"]["events"] == 4
        finally:
            engine.close()
