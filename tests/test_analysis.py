"""Tests for the reporting layer (table regeneration and graph rendering)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    ascii_graph,
    classification_table,
    defense_strategy_table,
    dot_graph,
    format_table,
    race_report,
    table1,
    table2,
    table3,
)
from repro.attacks import Nodes
from repro.defenses import apply_prevent_access


class TestFormatTable:
    def test_columns_aligned_and_rows_present(self):
        text = format_table(("a", "bb"), [("1", "2"), ("333", "4")])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "333" in lines[2] or "333" in lines[3]

    def test_header_separator(self):
        text = format_table(("x",), [("y",)])
        assert "-" in text.splitlines()[1]


class TestPaperTables:
    def test_table1_contains_thirteen_attacks(self):
        text = table1()
        assert "Spectre v1" in text
        assert "CVE-2017-5754" in text
        assert "Spoiler" in text
        assert len(text.splitlines()) == 2 + 13

    def test_table2_contains_industry_defenses_and_strategies(self):
        text = table2()
        assert "KAISER" in text
        assert "Retpoline" in text
        assert "clearing predictions" in text
        assert "prevent access before authorization" in text

    def test_table3_contains_authorization_and_access_columns(self):
        text = table3()
        assert "Boundary-check branch resolution" in text
        assert "Forward data from store buffer" in text
        assert len(text.splitlines()) == 2 + 18

    def test_defense_strategy_table_lists_academia_defenses(self):
        text = defense_strategy_table()
        assert "InvisiSpec" in text and "academia" in text

    def test_classification_table_distinguishes_types(self):
        text = classification_table()
        assert "intra-instruction micro-ops" in text
        assert "inter-instruction" in text


class TestGraphRendering:
    def test_ascii_graph_lists_vertices_in_topological_order(self, spectre_v1_graph):
        text = ascii_graph(spectre_v1_graph)
        assert Nodes.LOAD_S in text
        assert "(speculative)" in text
        assert text.index(Nodes.BRANCH) < text.index(Nodes.LOAD_S)

    def test_dot_graph_marks_security_edges(self, spectre_v1_graph):
        defended = apply_prevent_access(spectre_v1_graph)
        dot = dot_graph(defended)
        assert "digraph" in dot
        assert 'color="red"' in dot

    def test_race_report_counts_and_lists(self, spectre_v1_graph):
        text = race_report(spectre_v1_graph)
        assert "racing pairs" in text
        assert "missing security dependencies" in text

    def test_race_report_on_defended_graph(self, spectre_v1_graph):
        defended = apply_prevent_access(spectre_v1_graph)
        assert "attack defeated" in race_report(defended)
