"""Tests for predictors, the store buffer, fill buffer, load port and registers."""

from __future__ import annotations

import pytest

from repro.uarch import (
    BranchTargetBuffer,
    FPUState,
    Flags,
    LineFillBuffer,
    LoadPort,
    PredictorSuite,
    RegisterFile,
    ReturnStackBuffer,
    SpecialRegisters,
    StoreBuffer,
    TwoBitPredictor,
)


class TestTwoBitPredictor:
    def test_default_has_no_entry(self):
        predictor = TwoBitPredictor()
        assert not predictor.has_entry(10)

    def test_training_creates_entry_and_direction(self):
        predictor = TwoBitPredictor()
        for _ in range(3):
            predictor.train(10, taken=False)
        assert predictor.has_entry(10)
        assert predictor.predict(10) is False
        for _ in range(3):
            predictor.train(10, taken=True)
        assert predictor.predict(10) is True

    def test_counter_saturates(self):
        predictor = TwoBitPredictor()
        for _ in range(10):
            predictor.train(5, taken=True)
        assert predictor.counter(5) == TwoBitPredictor.STRONG_TAKEN
        for _ in range(10):
            predictor.train(5, taken=False)
        assert predictor.counter(5) == TwoBitPredictor.STRONG_NOT_TAKEN

    def test_flush_removes_entries(self):
        predictor = TwoBitPredictor()
        predictor.train(10, taken=False)
        predictor.flush()
        assert not predictor.has_entry(10)

    def test_invalid_initial_counter(self):
        with pytest.raises(ValueError):
            TwoBitPredictor(initial=7)

    def test_misprediction_counter(self):
        predictor = TwoBitPredictor()
        predictor.record_outcome(predicted=True, actual=False)
        predictor.record_outcome(predicted=True, actual=True)
        assert predictor.mispredictions == 1


class TestBTBAndRSB:
    def test_btb_train_and_predict(self):
        btb = BranchTargetBuffer()
        assert btb.predict(4) is None
        btb.train(4, 17)
        assert btb.predict(4) == 17
        btb.flush()
        assert btb.predict(4) is None

    def test_rsb_lifo(self):
        rsb = ReturnStackBuffer(depth=4)
        rsb.push(1)
        rsb.push(2)
        assert rsb.pop() == 2
        assert rsb.pop() == 1

    def test_rsb_underflow(self):
        rsb = ReturnStackBuffer()
        assert rsb.pop() is None
        assert rsb.underflows == 1

    def test_rsb_overflow_drops_oldest(self):
        rsb = ReturnStackBuffer(depth=2)
        rsb.push(1)
        rsb.push(2)
        rsb.push(3)
        assert rsb.pop() == 3
        assert rsb.pop() == 2
        assert rsb.pop() is None

    def test_rsb_poison_and_stuff(self):
        rsb = ReturnStackBuffer()
        rsb.push(10)
        rsb.poison(99)
        assert rsb.pop() == 99
        rsb.stuff(7)
        assert len(rsb) == rsb.depth
        assert rsb.pop() == 7

    def test_suite_flush_all(self):
        suite = PredictorSuite()
        suite.direction.train(1, True)
        suite.btb.train(1, 2)
        suite.rsb.push(3)
        suite.flush_all()
        assert not suite.direction.has_entry(1)
        assert suite.btb.predict(1) is None
        assert len(suite.rsb) == 0


class TestStoreBuffer:
    def test_forwarding_from_resolved_store(self):
        buffer = StoreBuffer()
        buffer.add(0x42, 1, address=0x1000)
        entry = buffer.forward(0x1000)
        assert entry is not None and entry.value == 0x42

    def test_unresolved_store_not_forwarded(self):
        buffer = StoreBuffer()
        entry = buffer.add(0x42, 1, address=None)
        assert buffer.forward(0x1000) is None
        assert buffer.has_unresolved()
        buffer.resolve(entry, 0x1000)
        assert not buffer.has_unresolved()
        assert buffer.forward(0x1000) is entry

    def test_youngest_store_wins(self):
        buffer = StoreBuffer()
        buffer.add(1, 1, address=0x1000)
        buffer.add(2, 1, address=0x1000)
        assert buffer.forward(0x1000).value == 2

    def test_drain_removes_resolved_only(self):
        buffer = StoreBuffer()
        buffer.add(1, 1, address=0x1000)
        buffer.add(2, 1, address=None)
        drained = buffer.drain()
        assert len(drained) == 1 and len(buffer) == 1

    def test_capacity_bound(self):
        buffer = StoreBuffer(capacity=2)
        for value in range(4):
            buffer.add(value, 1, address=value * 8)
        assert len(buffer) == 2

    def test_latest_values(self):
        buffer = StoreBuffer()
        for value in (1, 2, 3):
            buffer.add(value, 1, address=value)
        assert buffer.latest_values(2) == [2, 3]


class TestFillBufferAndLoadPort:
    def test_fill_buffer_keeps_recent_values(self):
        lfb = LineFillBuffer(capacity=2)
        lfb.record_fill(0x1000, 0xAA)
        lfb.record_fill(0x2000, 0xBB)
        lfb.record_fill(0x3000, 0xCC)
        assert lfb.stale_values() == [0xBB, 0xCC]
        assert lfb.most_recent() == 0xCC
        lfb.clear()
        assert lfb.most_recent() is None

    def test_load_port_records_values(self):
        port = LoadPort(ports=2)
        port.record(1)
        port.record(2)
        port.record(3)
        assert set(port.stale_values()) == {2, 3}
        port.clear()
        assert port.stale_values() == []


class TestRegisters:
    def test_slow_tracking(self):
        registers = RegisterFile()
        registers.write("rax", 5, slow=True)
        assert registers.is_slow("rax")
        registers.write("rax", 6)
        assert not registers.is_slow("rax")

    def test_snapshot_restore(self):
        registers = RegisterFile()
        registers.write("rax", 5, slow=True)
        snapshot = registers.snapshot()
        registers.write("rax", 99)
        registers.write("rbx", 1)
        registers.restore(snapshot)
        assert registers.read("rax") == 5 and registers.is_slow("rax")
        assert registers.read("rbx") == 0

    def test_values_masked_to_64_bits(self):
        registers = RegisterFile()
        registers.write("rax", 1 << 70)
        assert registers.read("rax") == (1 << 70) % (1 << 64)

    def test_flags_conditions(self):
        flags = Flags(lhs=5, rhs=3)
        assert flags.evaluate("ja") and flags.evaluate("jae") and flags.evaluate("jne")
        assert not flags.evaluate("jb") and not flags.evaluate("je")
        equal = Flags(lhs=4, rhs=4)
        assert equal.evaluate("je") and equal.evaluate("jae") and equal.evaluate("jbe")

    def test_flags_signed_conditions(self):
        negative = Flags(lhs=(1 << 64) - 1, rhs=1)  # -1 vs 1
        assert negative.evaluate("jl") and not negative.evaluate("jg")
        assert negative.evaluate("ja")  # unsigned comparison sees a huge value

    def test_flags_unknown_condition(self):
        with pytest.raises(ValueError):
            Flags().evaluate("jz")

    def test_special_registers(self):
        msrs = SpecialRegisters({0x10: 0xABCD})
        assert msrs.read(0x10) == 0xABCD
        assert msrs.read(0x99) == 0
        msrs.write(0x99, 7)
        assert msrs.read(0x99) == 7

    def test_fpu_lazy_vs_eager_switch(self):
        fpu = FPUState()
        fpu.write("xmm0", 0x55)
        fpu.switch_owner(1)
        assert fpu.read("xmm0") == 0x55  # lazy switch leaves stale state
        fpu.switch_owner(2, eager=True)
        assert fpu.read("xmm0") == 0
