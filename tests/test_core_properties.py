"""Property-based tests (hypothesis) for the core graph model.

The central property is Theorem 1 itself: on arbitrary DAGs, the path-based
race check must agree with the definition-based (ordering-enumeration) check.
"""

from __future__ import annotations

from itertools import combinations

from hypothesis import given, settings, strategies as st

from repro.core import (
    TopologicalSortGraph,
    find_races,
    has_race,
    has_race_by_enumeration,
    race_free,
    verify_theorem1,
)


@st.composite
def random_dags(draw, max_vertices: int = 7):
    """Random DAGs built by only adding forward edges over a vertex ordering."""
    count = draw(st.integers(min_value=2, max_value=max_vertices))
    names = [f"v{i}" for i in range(count)]
    graph = TopologicalSortGraph(name="random")
    for name in names:
        graph.add_vertex(name)
    possible_edges = list(combinations(range(count), 2))
    chosen = draw(
        st.lists(st.sampled_from(possible_edges), unique=True, max_size=len(possible_edges))
    )
    for source, target in chosen:
        graph.add_edge(names[source], names[target])
    return graph


@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_theorem1_on_random_dags(graph):
    """Theorem 1: no race between u and v iff a directed path connects them."""
    assert verify_theorem1(graph, ordering_limit=5000).holds


@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_every_topological_order_is_valid(graph):
    assert graph.is_valid_ordering(graph.topological_order())


@given(random_dags())
@settings(max_examples=40, deadline=None)
def test_adding_an_edge_never_creates_new_races(graph):
    """Edges only constrain orderings, so the set of races can only shrink."""
    races_before = {frozenset(race.as_pair()) for race in find_races(graph)}
    for u, v in combinations(graph.vertices, 2):
        if not graph.has_edge(u, v) and not graph.has_path(v, u):
            graph.add_edge(u, v)
            break
    races_after = {frozenset(race.as_pair()) for race in find_races(graph)}
    assert races_after <= races_before


@given(random_dags())
@settings(max_examples=40, deadline=None)
def test_race_free_iff_unique_topological_order(graph):
    """A TSG is race free exactly when it admits a single valid ordering."""
    unique = graph.count_orderings(limit=5000) == 1
    assert race_free(graph) == unique


@given(random_dags())
@settings(max_examples=40, deadline=None)
def test_race_check_is_symmetric_and_irreflexive(graph):
    for u, v in combinations(graph.vertices, 2):
        assert has_race(graph, u, v) == has_race(graph, v, u)
    for u in graph.vertices:
        assert not has_race(graph, u, u)


@given(random_dags(max_vertices=6), st.integers(min_value=0, max_value=100))
@settings(max_examples=40, deadline=None)
def test_enumeration_check_matches_on_sampled_pair(graph, seed):
    vertices = graph.vertices
    u = vertices[seed % len(vertices)]
    v = vertices[(seed // len(vertices)) % len(vertices)]
    if u == v:
        return
    assert has_race(graph, u, v) == has_race_by_enumeration(graph, u, v, limit=5000)
