"""Tests for the set-associative cache."""

from __future__ import annotations

import pytest

from repro.uarch import SetAssociativeCache


@pytest.fixture
def cache():
    return SetAssociativeCache(sets=4, ways=2, line_size=64, hit_latency=4, miss_latency=200)


class TestBasicBehaviour:
    def test_first_access_misses_then_hits(self, cache):
        assert not cache.access(0x1000).hit
        assert cache.access(0x1000).hit

    def test_latencies(self, cache):
        assert cache.access(0x1000).latency == 200
        assert cache.access(0x1000).latency == 4

    def test_same_line_different_offsets_hit(self, cache):
        cache.access(0x1000)
        assert cache.access(0x103F).hit
        assert not cache.access(0x1040).hit

    def test_contains_has_no_side_effects(self, cache):
        assert not cache.contains(0x1000)
        assert not cache.access(0x1000).hit

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(sets=0)
        with pytest.raises(ValueError):
            SetAssociativeCache(line_size=48)

    def test_set_index_and_tag(self, cache):
        assert cache.set_index(0x1000) != cache.set_index(0x1040)
        assert cache.tag(0x1000) == cache.tag(0x1000 + 1)

    def test_stats(self, cache):
        cache.access(0x1000)
        cache.access(0x1000)
        cache.flush_address(0x1000)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.flushes == 1
        assert 0 < cache.stats.hit_rate < 1


class TestEviction:
    def test_lru_eviction_within_a_set(self, cache):
        set_stride = cache.sets * cache.line_size
        first, second, third = 0x0, set_stride, 2 * set_stride  # same set, different tags
        cache.access(first)
        cache.access(second)
        cache.access(first)  # refresh first so second is LRU
        cache.access(third)  # evicts second
        assert cache.contains(first)
        assert not cache.contains(second)
        assert cache.contains(third)

    def test_occupancy_bounded_by_ways(self, cache):
        set_stride = cache.sets * cache.line_size
        for way in range(5):
            cache.access(way * set_stride)
        assert len(cache.resident_addresses_in_set(0)) == cache.ways


class TestFlushing:
    def test_flush_address(self, cache):
        cache.access(0x1000)
        cache.flush_address(0x1000)
        assert not cache.contains(0x1000)

    def test_flush_range_covers_all_lines(self, cache):
        for offset in range(0, 256, 64):
            cache.access(0x2000 + offset)
        cache.flush_range(0x2000, 256)
        for offset in range(0, 256, 64):
            assert not cache.contains(0x2000 + offset)

    def test_flush_all(self, cache):
        cache.access(0x1000)
        cache.access(0x2000)
        cache.flush_all()
        assert cache.occupancy() == 0


class TestPartitioning:
    def test_partitions_do_not_share_hits(self, cache):
        cache.access(0x1000, partition=0)
        assert not cache.access(0x1000, partition=1).hit
        assert cache.access(0x1000, partition=0).hit

    def test_partition_fills_do_not_evict_other_partition(self, cache):
        set_stride = cache.sets * cache.line_size
        cache.access(0x0, partition=0)
        # Fill partition 1 well past the way count of the set.
        for way in range(4):
            cache.access(way * set_stride, partition=1)
        assert cache.contains(0x0, partition=0)

    def test_flush_removes_all_partitions(self, cache):
        cache.access(0x1000, partition=0)
        cache.access(0x1000, partition=1)
        cache.flush_address(0x1000)
        assert not cache.contains(0x1000, partition=0)
        assert not cache.contains(0x1000, partition=1)


class TestSpeculativeFills:
    def test_invalidate_speculative_only_removes_marked_lines(self, cache):
        cache.access(0x1000, speculative=False)
        cache.access(0x2000, speculative=True)
        removed = cache.invalidate_speculative()
        assert removed == 1
        assert cache.contains(0x1000)
        assert not cache.contains(0x2000)

    def test_invalidate_with_address_filter(self, cache):
        cache.access(0x2000, speculative=True)
        cache.access(0x3000, speculative=True)
        removed = cache.invalidate_speculative({0x2000})
        assert removed == 1
        assert cache.contains(0x3000)

    def test_commit_clears_speculative_marks(self, cache):
        cache.access(0x2000, speculative=True)
        cache.commit_speculative()
        assert cache.invalidate_speculative() == 0
        assert cache.contains(0x2000)

    def test_no_fill_access_leaves_cache_unchanged(self, cache):
        cache.access(0x1000, fill=False)
        assert not cache.contains(0x1000)
