"""Tests for the Section V-C attack-graph construction tool."""

from __future__ import annotations

import pytest

from repro.core import OperationType, ProtectionPoint
from repro.graphtool import (
    AuthorizationKind,
    analyze_program,
    build_attack_graph,
    find_authorizations,
    find_secret_accesses,
    instruction_node_name,
    patch_program,
    requires_microarch_modelling,
)
from repro.isa import assemble


class TestClassify:
    def test_listing1_authorizations(self, listing1_program):
        kinds = {site.kind for site in find_authorizations(listing1_program)}
        assert AuthorizationKind.BOUNDS_CHECK_BRANCH in kinds

    def test_listing1_secret_access_guarded_by_branch(self, listing1_program):
        sites = find_secret_accesses(listing1_program)
        guarded = [site for site in sites
                   if site.authorization_kind is AuthorizationKind.BOUNDS_CHECK_BRANCH]
        assert guarded and guarded[0].index == 4 and guarded[0].authorization_index == 3

    def test_listing2_secret_access_is_intra_instruction(self, listing2_program):
        sites = find_secret_accesses(listing2_program)
        assert sites
        site = sites[0]
        assert site.authorization_kind is AuthorizationKind.PAGE_PRIVILEGE_CHECK
        assert site.authorization_index == site.index

    def test_modelling_level_decision(self, listing1_program, listing2_program):
        """Figure 9's first decision: faulty access -> micro-architectural modelling."""
        assert not requires_microarch_modelling(listing1_program)
        assert requires_microarch_modelling(listing2_program)

    def test_rdmsr_and_fp_access_detected(self):
        program = assemble(".text\nrdmsr rax, 0x10\nmovd rbx, xmm0\nhlt")
        kinds = {site.authorization_kind for site in find_secret_accesses(program)}
        assert AuthorizationKind.MSR_PRIVILEGE_CHECK in kinds
        assert AuthorizationKind.FPU_OWNER_CHECK in kinds

    def test_store_bypass_detected(self):
        program = assemble(".text\nmov [r10], rax\nmov rbx, [r11]\nhlt")
        kinds = {site.authorization_kind for site in find_secret_accesses(program)}
        assert AuthorizationKind.STORE_LOAD_DISAMBIGUATION in kinds

    def test_unguarded_static_load_is_not_a_secret_access(self):
        program = assemble(
            ".data\npublic: address=0x1000 size=8\n.text\nmov rax, [public]\nhlt"
        )
        assert find_secret_accesses(program) == []


class TestBuilder:
    def test_listing1_graph_races(self, listing1_program):
        build = build_attack_graph(listing1_program)
        graph = build.graph
        assert not build.is_meltdown_type
        vulnerabilities = graph.find_vulnerabilities()
        protected = {v.dependency.protected for v in vulnerabilities}
        load_s = instruction_node_name(4, listing1_program[4])
        send = instruction_node_name(6, listing1_program[6])
        assert load_s in protected
        assert send in protected

    def test_listing1_send_node_detected_via_taint(self, listing1_program):
        build = build_attack_graph(listing1_program)
        send_nodes = build.graph.send_nodes
        assert any("probe_array" in name for name in send_nodes)

    def test_listing2_graph_expands_micro_ops(self, listing2_program):
        build = build_attack_graph(listing2_program)
        assert build.is_meltdown_type
        assert any("permission check" in name for name in build.graph.vertices)
        assert any("read data" in name for name in build.graph.vertices)

    def test_clflush_is_setup(self, listing1_program):
        build = build_attack_graph(listing1_program)
        assert any("clflush" in name for name in build.graph.setup_nodes)

    def test_fenced_program_has_no_access_race(self):
        program = assemble(
            """
            .data
            probe_array:  address=0x1000000 size=1048576 shared
            victim_array: address=0x200000  size=16
            victim_size:  address=0x210000  size=8
            .text
            cmp rdx, [victim_size]
            ja done
            lfence
            mov rax, byte [victim_array + rdx]
            shl rax, 12
            mov rbx, [probe_array + rax]
            done:
            hlt
            """,
            name="fenced",
        )
        report = analyze_program(program)
        assert not report.vulnerable


class TestAnalyzer:
    def test_listing1_report(self, listing1_program):
        report = analyze_program(listing1_program)
        assert report.vulnerable
        assert not report.is_meltdown_type
        assert report.access_findings and report.send_findings
        assert all(finding.software_patchable for finding in report.access_findings)
        assert "missing security dependencies" in report.summary()

    def test_listing2_report_requires_hardware_defense(self, listing2_program):
        report = analyze_program(listing2_program)
        assert report.vulnerable
        assert report.is_meltdown_type
        assert all(not finding.software_patchable for finding in report.findings)

    def test_point_restriction(self, listing1_program):
        report = analyze_program(listing1_program, points=[ProtectionPoint.SEND])
        assert report.findings
        assert all(finding.point is ProtectionPoint.SEND for finding in report.findings)

    def test_extra_protected_symbols_widen_the_analysis(self):
        program = assemble(
            ".data\ndata: address=0x1000 size=8\n.text\nmov rax, [data]\nhlt",
            name="widened",
        )
        assert not analyze_program(program).vulnerable
        assert analyze_program(program, protected_symbols=["data"]).vulnerable


class TestPatcher:
    def test_patch_listing1_inserts_fence_and_removes_races(self, listing1_program):
        result = patch_program(listing1_program)
        assert result.fences_inserted == (3,)
        assert result.report_before.vulnerable
        assert not result.report_after.vulnerable
        assert result.access_vulnerabilities_removed
        assert len(result.patched) == len(listing1_program) + 1

    def test_patch_preserves_original_program(self, listing1_program):
        original_length = len(listing1_program)
        patch_program(listing1_program)
        assert len(listing1_program) == original_length

    def test_meltdown_findings_reported_unpatchable(self, listing2_program):
        result = patch_program(listing2_program)
        assert result.fences_inserted == ()
        assert result.unpatchable_findings
        assert "hardware" in result.summary() or result.unpatchable_findings

    def test_safe_program_needs_no_patch(self):
        program = assemble(".text\nmov rax, 1\nadd rax, 2\nhlt", name="safe")
        result = patch_program(program)
        assert result.fences_inserted == ()
        assert not result.report_before.vulnerable
