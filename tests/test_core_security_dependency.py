"""Tests for security dependencies (Definition 2)."""

from __future__ import annotations

import pytest

from repro.attacks import Nodes
from repro.core import (
    DependencyKind,
    OperationType,
    ProtectionPoint,
    SecurityDependency,
    enforce,
    is_vulnerable,
    missing_security_dependencies,
)


class TestSecurityDependency:
    def test_as_dependency_is_a_security_edge(self):
        dependency = SecurityDependency("auth", "access")
        edge = dependency.as_dependency()
        assert edge.kind is DependencyKind.SECURITY
        assert edge.source == "auth" and edge.target == "access"

    def test_enforced_by_direct_edge(self, spectre_v1_graph):
        dependency = SecurityDependency(Nodes.BRANCH_RESOLUTION, Nodes.LOAD_S)
        assert dependency.is_missing(spectre_v1_graph)
        patched = enforce(spectre_v1_graph, dependency)
        assert dependency.is_enforced(patched)

    def test_enforced_by_indirect_path(self, spectre_v1_graph):
        """Any directed path from authorization to the protected vertex suffices."""
        access_dep = SecurityDependency(Nodes.BRANCH_RESOLUTION, Nodes.LOAD_S)
        send_dep = SecurityDependency(Nodes.BRANCH_RESOLUTION, Nodes.LOAD_R, ProtectionPoint.SEND)
        patched = enforce(spectre_v1_graph, access_dep)
        # Ordering the access behind authorization transitively orders the send too.
        assert send_dep.is_enforced(patched)

    def test_original_graph_not_mutated_by_enforce(self, spectre_v1_graph):
        dependency = SecurityDependency(Nodes.BRANCH_RESOLUTION, Nodes.LOAD_S)
        enforce(spectre_v1_graph, dependency)
        assert dependency.is_missing(spectre_v1_graph)


class TestMissingDependencies:
    def test_spectre_graph_misses_access_use_and_send_dependencies(self, spectre_v1_graph):
        missing = missing_security_dependencies(spectre_v1_graph)
        points = {dep.point for dep in missing}
        assert points == {ProtectionPoint.ACCESS, ProtectionPoint.USE, ProtectionPoint.SEND}

    def test_missing_dependencies_name_the_speculative_operations(self, spectre_v1_graph):
        protected = {dep.protected for dep in missing_security_dependencies(spectre_v1_graph)}
        assert Nodes.LOAD_S in protected
        assert Nodes.COMPUTE_R in protected
        assert Nodes.LOAD_R in protected

    def test_point_filter(self, spectre_v1_graph):
        only_send = missing_security_dependencies(
            spectre_v1_graph, points=[ProtectionPoint.SEND]
        )
        assert {dep.point for dep in only_send} == {ProtectionPoint.SEND}
        assert {dep.protected for dep in only_send} == {Nodes.LOAD_R}

    def test_vulnerability_removed_by_enforcement(self, spectre_v1_graph):
        assert is_vulnerable(spectre_v1_graph)
        patched = spectre_v1_graph
        for dependency in missing_security_dependencies(spectre_v1_graph):
            patched = enforce(patched, dependency)
        assert not is_vulnerable(patched)

    def test_meltdown_graph_authorization_is_a_micro_op(self, meltdown_graph):
        missing = missing_security_dependencies(meltdown_graph)
        authorizations = {dep.authorization for dep in missing}
        assert Nodes.PERMISSION_CHECK in authorizations or Nodes.AUTH_RESOLVED in authorizations
