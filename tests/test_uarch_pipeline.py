"""Tests for the speculative pipeline simulator."""

from __future__ import annotations

import pytest

from repro.isa import assemble
from repro.uarch import SimDefense, SpeculativeCPU, UarchConfig


def make_cpu(text: str, config: UarchConfig = UarchConfig(), **kwargs) -> SpeculativeCPU:
    return SpeculativeCPU(assemble(text, name="test"), config, **kwargs)


class TestArchitecturalExecution:
    def test_mov_and_alu(self):
        cpu = make_cpu(".text\nmov rax, 5\nadd rax, 3\nshl rax, 2\nhlt")
        result = cpu.run()
        assert result.halted
        assert cpu.get_register("rax") == 32

    def test_all_alu_ops(self):
        cpu = make_cpu(
            ".text\nmov rax, 12\nsub rax, 2\nand rax, 0xf\nor rax, 0x20\nxor rax, 1\n"
            "imul rax, 2\nshr rax, 1\nhlt"
        )
        cpu.run()
        assert cpu.get_register("rax") == ((((12 - 2) & 0xF) | 0x20) ^ 1) * 2 >> 1

    def test_mov_symbol_loads_address(self):
        cpu = make_cpu(".data\ntable: address=0x4000 size=8\n.text\nmov rbx, table\nhlt")
        cpu.run()
        assert cpu.get_register("rbx") == 0x4000

    def test_store_then_load(self):
        cpu = make_cpu(
            ".data\nslot: address=0x4000 size=8\n.text\nmov rax, 0x77\nmov [slot], rax\n"
            "mov rbx, [slot]\nhlt"
        )
        cpu.run()
        assert cpu.get_register("rbx") == 0x77

    def test_branch_taken_and_not_taken(self):
        taken = make_cpu(".text\nmov rax, 9\ncmp rax, 5\nja skip\nmov rbx, 1\nskip:\nhlt")
        taken.run()
        assert taken.get_register("rbx") == 0

        not_taken = make_cpu(".text\nmov rax, 3\ncmp rax, 5\nja skip\nmov rbx, 1\nskip:\nhlt")
        not_taken.run()
        assert not_taken.get_register("rbx") == 1

    def test_unconditional_jump(self):
        cpu = make_cpu(".text\njmp end\nmov rax, 1\nend:\nhlt")
        cpu.run()
        assert cpu.get_register("rax") == 0

    def test_call_and_ret(self):
        cpu = make_cpu(".text\ncall func\nmov rbx, 2\nhlt\nfunc:\nmov rax, 1\nret")
        cpu.run()
        assert cpu.get_register("rax") == 1
        assert cpu.get_register("rbx") == 2

    def test_indirect_jump_with_known_target(self):
        cpu = make_cpu(".text\nmov r11, 3\njmp r11\nmov rax, 1\nhlt")
        cpu.run()
        assert cpu.get_register("rax") == 0

    def test_rdtsc_monotonic(self):
        cpu = make_cpu(".data\nbuf: address=0x4000 size=64\n.text\nrdtsc r8\nmov rax, [buf]\nrdtsc r9\nhlt")
        cpu.run()
        assert cpu.get_register("r9") > cpu.get_register("r8")

    def test_clflush_evicts_line(self):
        cpu = make_cpu(
            ".data\nbuf: address=0x4000 size=64\n.text\nmov rax, [buf]\nclflush [buf]\nhlt"
        )
        cpu.run()
        assert not cpu.cache.contains(0x4000)

    def test_max_instruction_budget(self):
        cpu = make_cpu(".text\nstart:\nmov rax, 1\njmp start", UarchConfig(max_instructions=50))
        result = cpu.run()
        assert not result.halted
        assert result.instructions == 50

    def test_cache_miss_marks_register_slow_and_hit_does_not(self):
        cpu = make_cpu(".data\nbuf: address=0x4000 size=64\n.text\nmov rax, [buf]\nmov rbx, [buf]\nhlt")
        cpu.run()
        assert not cpu.registers.is_slow("rbx")

    def test_supervisor_can_read_kernel_memory(self):
        cpu = make_cpu(
            ".data\nksym: address=0xffff0000 size=64 kernel\n.text\nmov rax, byte [ksym]\nhlt",
            supervisor=True,
        )
        cpu.write_memory(0xFFFF0000, 0x33, 1)
        cpu.run()
        assert cpu.get_register("rax") == 0x33
        assert cpu.stats.faults == 0


class TestSpeculationAndTransientLeaks:
    SPECTRE_TEXT = """
    .data
    probe:  address=0x1000000 size=1048576 shared
    arr:    address=0x200000  size=16
    size:   address=0x210000  size=8
    secret: address=0x200048  size=1 protected
    .text
    victim:
    cmp rdx, [size]
    ja done
    mov rax, byte [arr + rdx]
    shl rax, 12
    mov rbx, [probe + rax]
    done:
    hlt
    """

    def _trained_cpu(self, config=UarchConfig()):
        cpu = SpeculativeCPU(assemble(self.SPECTRE_TEXT, name="spectre"), config)
        cpu.write_memory(0x210000, 16, 8)
        cpu.write_memory(0x200048, 0x5A, 1)
        for _ in range(3):
            cpu.set_register("rdx", 1)
            cpu.run("victim")
        return cpu

    def _attack(self, cpu):
        cpu.flush_range(0x1000000, 256 * 4096)
        cpu.flush_symbol("size")
        cpu.set_register("rdx", 0x48)
        cpu.run("victim")

    def test_untrained_branch_does_not_speculate(self):
        cpu = SpeculativeCPU(assemble(self.SPECTRE_TEXT, name="spectre"), UarchConfig())
        cpu.write_memory(0x210000, 16, 8)
        cpu.set_register("rdx", 0x48)
        cpu.run("victim")
        assert cpu.stats.speculative_windows == 0
        assert not cpu.cache.contains(0x1000000 + 0x5A * 4096)

    def test_transient_leak_fills_secret_indexed_line(self):
        cpu = self._trained_cpu()
        self._attack(cpu)
        assert cpu.stats.speculative_windows == 1
        assert cpu.stats.squashes == 1
        assert cpu.cache.contains(0x1000000 + 0x5A * 4096)
        # Architectural state was rolled back: rax is untouched by the squash.
        assert cpu.get_register("rbx") == 0

    def test_architectural_result_out_of_bounds_branch_taken(self):
        cpu = self._trained_cpu()
        self._attack(cpu)
        assert cpu.get_register("rax") != 0x5A

    def test_correct_prediction_commits_without_squash(self):
        cpu = self._trained_cpu()
        cpu.flush_symbol("size")
        cpu.set_register("rdx", 1)  # in bounds: prediction (not taken) is correct
        cpu.run("victim")
        assert cpu.stats.speculative_windows == 1
        assert cpu.stats.squashes == 0

    def test_prevent_speculative_loads_blocks_the_leak(self):
        config = UarchConfig().with_defenses(SimDefense.PREVENT_SPECULATIVE_LOADS)
        cpu = self._trained_cpu(config)
        self._attack(cpu)
        assert not cpu.cache.contains(0x1000000 + 0x5A * 4096)
        assert cpu.stats.speculative_loads_blocked > 0

    def test_no_forwarding_blocks_the_send(self):
        config = UarchConfig().with_defenses(SimDefense.NO_SPECULATIVE_FORWARDING)
        cpu = self._trained_cpu(config)
        self._attack(cpu)
        assert not cpu.cache.contains(0x1000000 + 0x5A * 4096)

    def test_invisible_speculation_leaves_no_cache_trace(self):
        config = UarchConfig().with_defenses(SimDefense.INVISIBLE_SPECULATION)
        cpu = self._trained_cpu(config)
        self._attack(cpu)
        assert not cpu.cache.contains(0x1000000 + 0x5A * 4096)

    def test_cleanup_on_squash_rolls_back_fills(self):
        config = UarchConfig().with_defenses(SimDefense.CLEANUP_ON_SQUASH)
        cpu = self._trained_cpu(config)
        self._attack(cpu)
        assert not cpu.cache.contains(0x1000000 + 0x5A * 4096)
        assert cpu.stats.speculative_fills_rolled_back > 0

    def test_fence_in_program_stops_transient_window(self):
        text = self.SPECTRE_TEXT.replace("ja done\n", "ja done\n    lfence\n")
        cpu = SpeculativeCPU(assemble(text, name="fenced"), UarchConfig())
        cpu.write_memory(0x210000, 16, 8)
        cpu.write_memory(0x200048, 0x5A, 1)
        for _ in range(3):
            cpu.set_register("rdx", 1)
            cpu.run("victim")
        cpu.flush_range(0x1000000, 256 * 4096)
        cpu.flush_symbol("size")
        cpu.set_register("rdx", 0x48)
        cpu.run("victim")
        assert not cpu.cache.contains(0x1000000 + 0x5A * 4096)


class TestFaultingLoads:
    MELTDOWN_TEXT = """
    .data
    probe:  address=0x1000000 size=1048576 shared
    ksecret: address=0xffff0000 size=64 kernel protected
    .text
    attack:
    mov rax, byte [ksecret]
    shl rax, 12
    mov rbx, [probe + rax]
    recover:
    hlt
    """

    def _cpu(self, config=UarchConfig()):
        cpu = SpeculativeCPU(assemble(self.MELTDOWN_TEXT, name="meltdown"), config)
        cpu.write_memory(0xFFFF0000, 0x41, 1)
        cpu.set_fault_handler("recover")
        return cpu

    def test_fault_recorded_and_suppressed(self):
        cpu = self._cpu()
        result = cpu.run("attack")
        assert result.halted
        assert cpu.stats.faults == 1
        assert cpu.stats.faults_suppressed == 1
        assert cpu.get_register("rax") == 0  # architectural result of the faulting load

    def test_transient_leak_through_the_cache(self):
        cpu = self._cpu()
        cpu.run("attack")
        assert cpu.cache.contains(0x1000000 + 0x41 * 4096)

    def test_unsuppressed_fault_terminates(self):
        config = UarchConfig(suppress_faults=False)
        cpu = self._cpu(config)
        result = cpu.run("attack")
        assert result.instructions == 1
        assert cpu.stats.faults == 1

    def test_kernel_isolation_removes_the_leak(self):
        config = UarchConfig().with_defenses(SimDefense.KERNEL_ISOLATION)
        cpu = self._cpu(config)
        cpu.run("attack")
        assert not cpu.cache.contains(0x1000000 + 0x41 * 4096)

    def test_fault_handler_skips_the_rest_of_the_attack_block(self):
        cpu = self._cpu()
        cpu.run("attack")
        # rbx would have been written by the probe load had execution continued
        # architecturally past the fault.
        assert cpu.get_register("rbx") == 0


class TestStoreBypassAndContextSwitch:
    V4_TEXT = """
    .data
    probe:    address=0x1000000 size=1048576 shared
    slot_ptr: address=0x300000 size=8
    slot:     address=0x400000 size=8 protected
    .text
    victim:
    mov r10, [slot_ptr]
    mov [r10], 0
    mov rax, byte [slot]
    shl rax, 12
    mov rbx, [probe + rax]
    hlt
    """

    def _cpu(self, config=UarchConfig()):
        cpu = SpeculativeCPU(assemble(self.V4_TEXT, name="v4"), config)
        cpu.write_memory(0x300000, 0x400000, 8)
        cpu.write_memory(0x400000, 0x66, 1)
        cpu.flush_symbol("slot_ptr")
        return cpu

    def test_store_bypass_leaks_stale_value(self):
        cpu = self._cpu()
        cpu.run("victim")
        assert cpu.stats.store_bypasses == 1
        assert cpu.cache.contains(0x1000000 + 0x66 * 4096)
        # Architecturally the load sees the store's value.
        assert cpu.get_register("rax") == 0
        assert cpu.read_memory(0x400000, 1) == 0

    def test_ssbb_blocks_the_bypass(self):
        config = UarchConfig().with_defenses(SimDefense.NO_STORE_BYPASS)
        cpu = self._cpu(config)
        cpu.run("victim")
        assert cpu.stats.store_bypasses == 0
        assert not cpu.cache.contains(0x1000000 + 0x66 * 4096)

    def test_context_switch_flushes_predictors_only_with_defense(self):
        cpu = self._cpu()
        cpu.predictors.direction.train(3, True)
        cpu.context_switch(1)
        assert cpu.predictors.direction.has_entry(3)

        defended = self._cpu(UarchConfig().with_defenses(SimDefense.FLUSH_PREDICTORS))
        defended.predictors.direction.train(3, True)
        defended.context_switch(1)
        assert not defended.predictors.direction.has_entry(3)

    def test_partitioned_cache_hides_fills_from_receiver_probes(self):
        config = UarchConfig().with_defenses(SimDefense.PARTITIONED_CACHE)
        cpu = self._cpu(config)
        cpu.run("victim")
        leaked_line = 0x1000000 + 0x66 * 4096
        assert cpu.cache.contains(leaked_line, partition=SpeculativeCPU.VICTIM_PARTITION)
        assert cpu.probe(leaked_line) >= config.hit_threshold
