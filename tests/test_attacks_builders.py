"""Tests for the attack-graph builders (Figures 1, 3, 4, 5, 6, 7)."""

from __future__ import annotations

import pytest

from repro.attacks import (
    FAULTING_LOAD_SOURCES,
    LVI_SOURCES,
    Nodes,
    build_branch_speculation_graph,
    build_faulting_load_graph,
    build_lvi_graph,
    build_special_register_graph,
    build_store_bypass_graph,
    get,
)
from repro.core import ExecutionLevel, OperationType, has_race


class TestFigure1BranchGraph:
    def test_races_the_paper_identifies(self, spectre_v1_graph):
        """'Load S' and 'Load R' both race with 'Branch resolution'."""
        assert has_race(spectre_v1_graph, Nodes.BRANCH_RESOLUTION, Nodes.LOAD_S)
        assert has_race(spectre_v1_graph, Nodes.BRANCH_RESOLUTION, Nodes.LOAD_R)
        assert has_race(spectre_v1_graph, Nodes.BRANCH_RESOLUTION, Nodes.COMPUTE_R)

    def test_branch_precedes_speculative_path(self, spectre_v1_graph):
        assert spectre_v1_graph.has_path(Nodes.BRANCH, Nodes.LOAD_S)
        assert spectre_v1_graph.has_path(Nodes.LOAD_S, Nodes.LOAD_R)

    def test_receiver_after_send_and_window(self, spectre_v1_graph):
        assert spectre_v1_graph.has_path(Nodes.LOAD_R, Nodes.MEASURE)
        assert spectre_v1_graph.has_path(Nodes.SQUASH, Nodes.RELOAD)
        assert spectre_v1_graph.has_path(Nodes.FLUSH, Nodes.RELOAD)

    def test_mistrain_feeds_the_branch(self, spectre_v1_graph):
        assert spectre_v1_graph.has_edge(Nodes.MISTRAIN, Nodes.BRANCH)

    def test_speculative_window_contents(self, spectre_v1_graph):
        assert set(spectre_v1_graph.speculative_window) == {
            Nodes.LOAD_S,
            Nodes.COMPUTE_R,
            Nodes.LOAD_R,
        }

    def test_mistrain_optional(self):
        graph = build_branch_speculation_graph(name="no-mistrain", mistrain=False)
        assert Nodes.MISTRAIN not in graph
        assert graph.validate() == []

    def test_all_vertices_architectural(self, spectre_v1_graph):
        assert all(
            op.level is ExecutionLevel.ARCHITECTURAL for op in spectre_v1_graph.operations
        )


class TestFigure3And4FaultingLoad:
    def test_meltdown_single_source(self, meltdown_graph):
        assert Nodes.read_from("memory") in meltdown_graph
        assert meltdown_graph.operation(Nodes.read_from("memory")).op_type is (
            OperationType.SECRET_ACCESS
        )

    def test_micro_op_vertices_are_microarchitectural(self, meltdown_graph):
        assert (
            meltdown_graph.operation(Nodes.PERMISSION_CHECK).level
            is ExecutionLevel.MICROARCHITECTURAL
        )

    def test_access_races_with_permission_check(self, meltdown_graph):
        assert has_race(meltdown_graph, Nodes.AUTH_RESOLVED, Nodes.read_from("memory"))
        assert has_race(meltdown_graph, Nodes.AUTH_RESOLVED, Nodes.LOAD_R)

    def test_figure4_has_all_five_sources(self):
        graph = build_faulting_load_graph(name="figure4", sources=FAULTING_LOAD_SOURCES)
        for source in FAULTING_LOAD_SOURCES:
            assert Nodes.read_from(source) in graph
        assert len(graph.secret_access_nodes) == 5

    def test_each_source_feeds_compute_r(self):
        graph = build_faulting_load_graph(name="figure4", sources=FAULTING_LOAD_SOURCES)
        for source in FAULTING_LOAD_SOURCES:
            assert graph.has_edge(Nodes.read_from(source), Nodes.COMPUTE_R)

    def test_mds_variants_use_their_buffers(self):
        assert Nodes.read_from("store buffer") in get("fallout").build_graph()
        assert Nodes.read_from("line fill buffer") in get("zombieload").build_graph()
        ridl = get("ridl").build_graph()
        assert Nodes.read_from("load port") in ridl
        assert Nodes.read_from("line fill buffer") in ridl

    def test_foreshadow_reads_from_cache(self):
        assert Nodes.read_from("cache") in get("foreshadow").build_graph()


class TestFigure5SpecialRegister:
    def test_spectre_v3a_reads_special_register(self):
        graph = get("spectre_v3a").build_graph()
        assert Nodes.read_from("special register") in graph
        assert has_race(graph, Nodes.AUTH_RESOLVED, Nodes.read_from("special register"))

    def test_lazy_fp_reads_fpu(self):
        graph = get("lazy_fp").build_graph()
        assert Nodes.read_from("FPU") in graph

    def test_register_access_is_expanded(self):
        graph = build_special_register_graph()
        assert Nodes.REGISTER_ACCESS in graph
        assert graph.is_meltdown_type


class TestFigure6StoreBypass:
    def test_authorization_is_disambiguation(self):
        graph = build_store_bypass_graph()
        assert graph.operation(Nodes.DISAMBIGUATION).op_type is OperationType.AUTHORIZATION
        assert has_race(graph, Nodes.AUTH_RESOLVED, Nodes.READ_S)

    def test_store_precedes_disambiguation(self):
        graph = build_store_bypass_graph()
        assert graph.has_path(Nodes.STORE, Nodes.DISAMBIGUATION)
        assert graph.has_path(Nodes.LOAD_INSTRUCTION, Nodes.READ_S)


class TestFigure7LVI:
    def test_injection_sources_feed_the_diversion(self):
        graph = build_lvi_graph()
        for source in LVI_SOURCES:
            assert graph.has_edge(Nodes.read_m_from(source), Nodes.DIVERT)

    def test_diverted_flow_reaches_the_send(self):
        graph = build_lvi_graph()
        assert graph.has_path(Nodes.DIVERT, Nodes.LOAD_R)
        assert graph.has_path(Nodes.PLANT_BUFFER, Nodes.LOAD_R)

    def test_injection_races_with_fault_check(self):
        graph = build_lvi_graph()
        for source in LVI_SOURCES:
            assert has_race(graph, Nodes.AUTH_RESOLVED, Nodes.read_m_from(source))
