"""Tests for the two-pass assembler."""

from __future__ import annotations

import pytest

from repro.isa import (
    Alu,
    AssemblerError,
    Branch,
    Clflush,
    Cmp,
    Fence,
    Halt,
    IndirectJmp,
    Jmp,
    Load,
    Mov,
    Rdmsr,
    Rdtsc,
    Store,
    assemble,
)


class TestDataSection:
    def test_symbol_attributes_parsed(self, listing1_program):
        secret = listing1_program.symbol("secret")
        assert secret.protected and not secret.kernel
        probe = listing1_program.symbol("probe_array")
        assert probe.shared and probe.size == 1048576

    def test_kernel_flag(self, listing2_program):
        assert listing2_program.symbol("kernel_secret").kernel

    def test_missing_address_rejected(self):
        with pytest.raises(AssemblerError, match="address"):
            assemble(".data\nbad: size=8\n.text\nhlt")

    def test_unknown_section_rejected(self):
        with pytest.raises(AssemblerError, match="section"):
            assemble(".bss\nhlt")


class TestInstructionParsing:
    def test_listing1_shape(self, listing1_program):
        kinds = [type(instruction).__name__ for instruction in listing1_program]
        assert kinds == ["Clflush", "Mov", "Cmp", "Branch", "Load", "Alu", "Load", "Halt"]

    def test_byte_size_marker(self, listing1_program):
        load = listing1_program[4]
        assert isinstance(load, Load) and load.size == 1

    def test_label_attached_to_following_instruction(self, listing1_program):
        assert listing1_program.label_index("done") == 7

    def test_mov_variants(self):
        program = assemble(
            ".text\nmov rax, 5\nmov rbx, rax\nmov rcx, table\nmov [rbx], rax\nmov rdx, [rbx]\nhlt",
        )
        assert isinstance(program[0], Mov)
        assert isinstance(program[3], Store)
        assert isinstance(program[4], Load)

    def test_scaled_index_memory_operand(self):
        program = assemble(".text\nmov rax, [rbx + rcx*8 + 16]\nhlt")
        operand = program[0].memory_read
        assert operand.index.name == "rcx" and operand.scale == 8 and operand.displacement == 16

    def test_symbol_plus_register_operand(self):
        program = assemble(".text\nmov rax, [table + rdx]\nhlt")
        operand = program[0].memory_read
        assert operand.symbol == "table" and operand.base.name == "rdx"

    def test_fences_and_misc(self):
        program = assemble(".text\nlfence\nmfence\nrdtsc r8\nrdmsr rax, 0x10\nclflush [rbx]\nnop\nhlt")
        assert isinstance(program[0], Fence) and program[0].kind == "lfence"
        assert isinstance(program[1], Fence) and program[1].kind == "mfence"
        assert isinstance(program[2], Rdtsc)
        assert isinstance(program[3], Rdmsr) and program[3].msr == 0x10
        assert isinstance(program[4], Clflush)

    def test_branches(self):
        program = assemble(".text\ntarget:\ncmp rax, 5\nja target\njmp target\njmp rbx\nhlt")
        assert isinstance(program[1], Branch) and program[1].condition == "ja"
        assert isinstance(program[2], Jmp)
        assert isinstance(program[3], IndirectJmp)

    def test_al_aliases_rax(self):
        program = assemble(".text\nmov al, byte [rbx]\nhlt")
        assert program[0].dst.name == "rax" and program[0].size == 1

    def test_comments_stripped(self):
        program = assemble(".text\nnop ; trailing comment\n# full line\n// another\nhlt")
        assert len(program) == 2

    def test_trailing_label_becomes_nop(self):
        program = assemble(".text\nnop\nend:")
        assert program.label_index("end") == 1


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble(".text\nfrobnicate rax\n")

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblerError, match="line 3"):
            assemble(".text\nnop\nbadinstr\n")

    def test_memory_to_memory_move_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".text\nmov [rax], [rbx]\n")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".text\nx:\nnop\nx:\nnop\n")
