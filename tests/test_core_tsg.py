"""Tests for the Topological Sort Graph substrate."""

from __future__ import annotations

import pytest

from repro.core import (
    CycleError,
    Dependency,
    DependencyKind,
    Operation,
    OperationType,
    TopologicalSortGraph,
)


def build_chain(*names: str) -> TopologicalSortGraph:
    graph = TopologicalSortGraph(name="chain")
    for name in names:
        graph.add_vertex(name)
    for source, target in zip(names, names[1:]):
        graph.add_edge(source, target)
    return graph


class TestConstruction:
    def test_add_vertex_and_lookup(self):
        graph = TopologicalSortGraph()
        graph.add_vertex("A", op_type=OperationType.SETUP)
        assert "A" in graph
        assert graph.operation("A").op_type is OperationType.SETUP

    def test_add_same_operation_twice_is_idempotent(self):
        graph = TopologicalSortGraph()
        operation = Operation("A", op_type=OperationType.SETUP)
        graph.add_operation(operation)
        graph.add_operation(operation)
        assert len(graph) == 1

    def test_conflicting_redefinition_rejected(self):
        graph = TopologicalSortGraph()
        graph.add_vertex("A", op_type=OperationType.SETUP)
        with pytest.raises(ValueError, match="already exists"):
            graph.add_vertex("A", op_type=OperationType.SEND)

    def test_empty_operation_name_rejected(self):
        with pytest.raises(ValueError):
            Operation("")

    def test_edge_requires_known_vertices(self):
        graph = TopologicalSortGraph()
        graph.add_vertex("A")
        with pytest.raises(KeyError):
            graph.add_edge("A", "missing")

    def test_self_edge_rejected(self):
        with pytest.raises(ValueError):
            Dependency("A", "A")

    def test_cycle_rejected(self):
        graph = build_chain("A", "B", "C")
        with pytest.raises(CycleError):
            graph.add_edge("C", "A")

    def test_duplicate_edge_is_idempotent(self):
        graph = build_chain("A", "B")
        graph.add_edge("A", "B")
        assert len(graph.edges) == 1

    def test_remove_edge(self):
        graph = build_chain("A", "B")
        graph.remove_edge("A", "B")
        assert not graph.has_edge("A", "B")
        assert not graph.has_path("A", "B")

    def test_edge_kinds_preserved(self):
        graph = build_chain("A", "B")
        graph.add_vertex("C")
        graph.add_edge("B", "C", kind=DependencyKind.SECURITY)
        assert graph.edge("B", "C").kind is DependencyKind.SECURITY
        assert graph.edge("B", "C").is_security


class TestReachability:
    def test_path_exists_along_chain(self):
        graph = build_chain("A", "B", "C", "D")
        assert graph.has_path("A", "D")
        assert not graph.has_path("D", "A")

    def test_vertex_reaches_itself(self):
        graph = build_chain("A", "B")
        assert graph.has_path("A", "A")

    def test_path_query_unknown_vertex(self):
        graph = build_chain("A", "B")
        with pytest.raises(KeyError):
            graph.has_path("A", "missing")

    def test_descendants_and_ancestors(self, figure2):
        assert figure2.descendants("C") == {"D", "E", "F", "G"}
        assert figure2.ancestors("F") == {"A", "B", "C", "D", "E"}

    def test_degrees(self, figure2):
        assert figure2.in_degree("A") == 0
        assert figure2.out_degree("A") == 2
        assert figure2.in_degree("F") == 2


class TestOrderings:
    def test_paper_valid_orderings(self, figure2):
        """The two orderings the paper calls valid, and the one it calls invalid."""
        assert figure2.is_valid_ordering(list("ABCDEFG"))
        assert figure2.is_valid_ordering(list("ACEBDFG"))
        assert not figure2.is_valid_ordering(list("ABDECFG"))

    def test_wrong_length_is_invalid(self, figure2):
        assert not figure2.is_valid_ordering(list("ABC"))
        assert not figure2.is_valid_ordering(list("ABCDEFGG"))

    def test_topological_order_is_valid(self, figure2):
        assert figure2.is_valid_ordering(figure2.topological_order())

    def test_prefer_late_defers_vertex(self, figure2):
        late_d = figure2.topological_order(prefer_late="D")
        position = {name: index for index, name in enumerate(late_d)}
        assert position["E"] < position["D"]

    def test_all_orderings_are_valid_and_unique(self, figure2):
        orderings = list(figure2.all_orderings())
        assert len(orderings) == len({tuple(order) for order in orderings})
        assert all(figure2.is_valid_ordering(order) for order in orderings)

    def test_all_orderings_respects_limit(self, figure2):
        assert len(list(figure2.all_orderings(limit=3))) == 3

    def test_count_orderings_chain_is_one(self):
        graph = build_chain("A", "B", "C", "D", "E")
        assert graph.count_orderings() == 1

    def test_count_orderings_independent_vertices_is_factorial(self):
        graph = TopologicalSortGraph()
        for name in "ABCD":
            graph.add_vertex(name)
        assert graph.count_orderings() == 24


class TestDerivation:
    def test_copy_is_independent(self, figure2):
        clone = figure2.copy()
        clone.add_vertex("H")
        clone.add_edge("G", "H")
        assert "H" not in figure2
        assert "H" in clone

    def test_subgraph_keeps_internal_edges_only(self, figure2):
        sub = figure2.subgraph({"A", "B", "D"})
        assert set(sub.vertices) == {"A", "B", "D"}
        assert sub.has_edge("A", "B")
        assert sub.has_edge("B", "D")
        assert not sub.has_edge("A", "C")

    def test_to_networkx_roundtrip(self, figure2):
        nx_graph = figure2.to_networkx()
        assert nx_graph.number_of_nodes() == len(figure2)
        assert nx_graph.number_of_edges() == len(figure2.edges)

    def test_to_dot_mentions_vertices_and_edges(self, figure2):
        dot = figure2.to_dot()
        assert '"A"' in dot and '"G"' in dot
        assert '"A" -> "B"' in dot

    def test_operations_of_type(self):
        graph = TopologicalSortGraph()
        graph.add_vertex("auth", op_type=OperationType.AUTHORIZATION)
        graph.add_vertex("load", op_type=OperationType.SECRET_ACCESS)
        assert [op.name for op in graph.operations_of_type(OperationType.AUTHORIZATION)] == ["auth"]
