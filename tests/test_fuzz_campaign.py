"""The differential fuzzing campaign plane.

Covers the two new spec kinds end to end: ``fuzz_point`` envelopes (both
oracle verdicts, sha drift detection, warm store hits), ``fuzz_campaign``
envelopes (coverage census, budget stop, metrics and spans, shrunk
disagreements under an injected oracle fault), and the kill-and-resume
acceptance path -- a 500-program campaign SIGKILLed mid-run resumes via
``repro fuzz --resume`` recomputing only the points never checkpointed,
with zero disagreements.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.engine import Engine
from repro.fuzz import (
    FUZZ_EVENTS,
    FuzzCampaign,
    fuzz_events_counter,
    make_case,
    point_spec,
)
from repro.obs import Tracer
from repro.scenario import ScenarioSpec
from repro.store import MemoryStore

pytestmark = pytest.mark.fuzz


def _events(engine) -> dict:
    counter = fuzz_events_counter(engine.metrics)
    return {labels[0]: value for labels, value in counter.series().items()}


class TestFuzzPointSpec:
    def test_point_envelope_carries_both_verdicts(self):
        result = Engine().run(ScenarioSpec("fuzz_point", seed=4, index=2))
        data = result.data
        assert result.kind == "fuzz_point"
        assert result.ok and data["agrees"]
        assert data["tsg_leaks"] == data["transmit_beats_squash"]
        assert {"seed", "index", "sha", "bucket", "source", "delay",
                "channel", "fence"} <= set(data)
        assert data["sha"] == make_case(4, 2).sha

    def test_points_checkpoint_and_serve_warm(self):
        engine = Engine(store=MemoryStore())
        spec = point_spec(4, 2)
        cold = engine.run(spec)
        warm = engine.run(spec)
        assert cold.cache == "cold"
        assert warm.cache == "warm"
        assert warm.data == cold.data

    def test_sha_pin_detects_generator_drift(self):
        stale = point_spec(4, 2, sha="0" * 64)
        with pytest.raises(ValueError, match="generator drift"):
            Engine().run(stale)

    def test_secret_threads_through_to_the_recovered_byte(self):
        engine = Engine()
        for index in range(8):
            result = engine.run(
                ScenarioSpec("fuzz_point", seed=4, index=index, secret=0x7F)
            )
            if result.data["tsg_leaks"]:
                assert result.data["recovered"] == 0x7F
                assert result.data["leaked_secret"]
                return
        pytest.fail("no leaking point in the sampled slice")


class TestFuzzCampaign:
    def test_clean_campaign_envelope(self):
        engine = Engine()
        result = engine.run(ScenarioSpec("fuzz_campaign", seed=0, count=20))
        data = result.data
        assert result.ok
        assert data["generated"] == data["executed"] == 20
        assert data["agreed"] == 20
        assert data["disagreed"] == data["quarantined"] == 0
        assert data["buckets"] == len(data["coverage"])
        assert sum(data["coverage"].values()) == 20
        events = _events(engine)
        assert events["generated"] == 20
        assert events["agreed"] == 20
        assert events["novel"] == data["buckets"]
        assert events["disagreed"] == events["shrunk"] == 0

    def test_campaign_envelope_is_warm_on_replay(self):
        engine = Engine(store=MemoryStore())
        cold = engine.run_fuzz_campaign(seed=1, count=12)
        warm = engine.run_fuzz_campaign(seed=1, count=12)
        assert cold.cache == "none"  # aggregate envelope, computed live
        assert warm.cache == "warm"
        assert warm.data == cold.data

    def test_refresh_resumes_from_point_checkpoints(self):
        engine = Engine(store=MemoryStore())
        cold = engine.run_fuzz_campaign(seed=1, count=12)
        seen = []
        resumed = engine.run_fuzz_campaign(
            seed=1, count=12, refresh=True, on_point=seen.append
        )
        assert resumed.cache == "none"  # the aggregate was recomputed ...
        assert engine.stats()["grid"]["resumed"] == 12  # ... the points not
        assert len(seen) == 12
        assert resumed.data["coverage"] == cold.data["coverage"]

    def test_budget_zero_stops_before_the_first_chunk(self):
        result = Engine().run_fuzz_campaign(seed=0, count=50, budget=0.0)
        assert result.data["executed"] == 0
        assert result.data["budget_exhausted"]
        assert result.ok  # nothing disagreed, nothing quarantined

    def test_sharded_campaign_matches_serial(self):
        stable = (
            "seed", "count", "generated", "executed", "agreed", "disagreed",
            "quarantined", "coverage", "buckets",
        )
        serial = Engine().run_fuzz_campaign(seed=2, count=12)
        sharded = Engine().run_fuzz_campaign(seed=2, count=12, parallel=2)
        assert {k: serial.data[k] for k in stable} == {
            k: sharded.data[k] for k in stable
        }

    def test_campaign_emits_generate_and_point_spans(self):
        engine = Engine()
        tracer = Tracer()  # collect mode
        engine.tracer = tracer
        engine.run_fuzz_campaign(seed=0, count=6, refresh=True)
        names = [record["name"] for record in tracer.drain()]
        assert "fuzz.generate" in names
        assert names.count("fuzz.point") == 6

    def test_events_counter_is_pretouched_and_idempotent(self):
        engine = Engine()
        first = fuzz_events_counter(engine.metrics)
        assert first is fuzz_events_counter(engine.metrics)
        assert set(_events(engine)) == set(FUZZ_EVENTS)
        assert all(value == 0 for value in _events(engine).values())

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError, match="count"):
            FuzzCampaign(Engine(), seed=0, count=0)


class TestInjectedDisagreements:
    def test_no_flush_campaign_pins_shrunk_disagreements(self):
        engine = Engine()
        result = engine.run_fuzz_campaign(seed=0, count=30, inject="no_flush")
        data = result.data
        assert not result.ok
        assert data["disagreed"] > 0
        assert data["shrunk"] == min(data["disagreed"], 8)
        events = _events(engine)
        assert events["disagreed"] == data["disagreed"]
        assert events["shrunk"] == data["shrunk"]
        for row in data["disagreements"]:
            assert row["tsg_leaks"] and not row["transmit_beats_squash"]
            assert row["source"] == "bounds_check"  # no_flush only splits these
            shrunk = row.get("shrunk")
            if shrunk:
                assert shrunk["instructions"] <= row["instructions"]
                assert shrunk["shape"]["delay"] == 0
                assert "mov" in shrunk["listing"]

    def test_injection_is_part_of_the_cache_key(self):
        engine = Engine(store=MemoryStore())
        clean = engine.run_fuzz_campaign(seed=0, count=10)
        injected = engine.run_fuzz_campaign(seed=0, count=10, inject="no_flush")
        assert injected.cache != "warm"  # never served the clean envelope
        assert clean.ok and not injected.ok


# ---------------------------------------------------------------------------
# Kill-and-resume acceptance: the ISSUE's two-subprocess scenario.
# ---------------------------------------------------------------------------

CAMPAIGN_SEED = 9
CAMPAIGN_COUNT = 500
HANG_INDEX = 120


def _cli_env() -> dict:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _fuzz_argv(store_dir: str, *extra: str) -> list:
    return [
        sys.executable, "-m", "repro.cli", "fuzz",
        "--seed", str(CAMPAIGN_SEED),
        "--count", str(CAMPAIGN_COUNT),
        "--store", store_dir,
        "--json",
        *extra,
    ]


def _write_hang_plan(tmp_path: Path) -> Path:
    """A plan that hangs the campaign at one fuzz point, forever.

    The match pins the spec *coordinates*, not the program sha -- distinct
    indexes drawing the same shape build the identical program, so a sha
    match would fire at the first duplicate instead.
    """
    plan = tmp_path / "hang.json"
    plan.write_text(json.dumps({
        "faults": [{
            "kind": "hang",
            "match": f"index={HANG_INDEX};seed={CAMPAIGN_SEED};",
            "hang_seconds": 120.0,
        }],
    }))
    return plan


def _entries(store_dir: str) -> int:
    return len(list(Path(store_dir).rglob("*.pkl")))


@pytest.mark.fuzz(timeout=180.0)
class TestKillAndResume:
    def test_sigkilled_campaign_resumes_with_zero_disagreements(self, tmp_path):
        store_dir = str(tmp_path / "cache")
        process = subprocess.Popen(
            _fuzz_argv(store_dir, "--faults", str(_write_hang_plan(tmp_path))),
            env=_cli_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        # The campaign runs its points in index order and hangs at
        # HANG_INDEX, so exactly that many checkpoints become durable.
        deadline = time.monotonic() + 90.0
        while time.monotonic() < deadline:
            if _entries(store_dir) >= HANG_INDEX:
                break
            if process.poll() is not None:
                out, err = process.communicate()
                raise AssertionError(
                    f"campaign exited early (rc={process.returncode}): {err}"
                )
            time.sleep(0.05)
        else:
            process.kill()
            raise AssertionError("campaign never reached the hang watermark")
        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=30)
        assert _entries(store_dir) == HANG_INDEX

        completed = subprocess.run(
            _fuzz_argv(store_dir, "--resume"),
            env=_cli_env(),
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        envelope = json.loads(completed.stdout)
        data = envelope["data"]
        assert data["executed"] == CAMPAIGN_COUNT
        assert data["disagreed"] == 0
        assert data["quarantined"] == 0
        recomputed = CAMPAIGN_COUNT - HANG_INDEX
        assert (
            f"resume: {HANG_INDEX}/{CAMPAIGN_COUNT} points served from "
            f"checkpoints, {recomputed} recomputed, 0 quarantined"
        ) in completed.stderr
        # One durable envelope per point plus the campaign envelope itself:
        # the checkpoints that survived the kill were never rewritten.
        assert _entries(store_dir) == CAMPAIGN_COUNT + 1
