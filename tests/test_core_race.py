"""Tests for race conditions and Theorem 1."""

from __future__ import annotations

import pytest

from repro.core import (
    Race,
    TopologicalSortGraph,
    figure2_example,
    find_races,
    has_race,
    has_race_by_enumeration,
    race_free,
    verify_theorem1,
    witness_orderings,
)


class TestFigure2Races:
    def test_d_and_e_race(self, figure2):
        """The race the paper calls out explicitly."""
        assert has_race(figure2, "D", "E")

    def test_connected_pairs_do_not_race(self, figure2):
        assert not has_race(figure2, "A", "G")
        assert not has_race(figure2, "C", "F")
        assert not has_race(figure2, "B", "D")

    def test_b_races_with_c_and_e(self, figure2):
        assert has_race(figure2, "B", "C")
        assert has_race(figure2, "B", "E")

    def test_race_is_symmetric(self, figure2):
        assert has_race(figure2, "E", "D") == has_race(figure2, "D", "E")

    def test_vertex_does_not_race_with_itself(self, figure2):
        assert not has_race(figure2, "D", "D")

    def test_find_races_lists_every_racing_pair(self, figure2):
        races = {frozenset(race.as_pair()) for race in find_races(figure2)}
        assert frozenset({"D", "E"}) in races
        assert frozenset({"B", "C"}) in races
        assert frozenset({"A", "G"}) not in races

    def test_find_races_among_subset(self, figure2):
        races = find_races(figure2, among=["D", "E", "F"])
        assert [race.as_pair() for race in races] == [("D", "E")]

    def test_race_involves(self):
        race = Race("D", "E")
        assert race.involves("D") and race.involves("E")
        assert not race.involves("F")


class TestTheorem1:
    def test_theorem_holds_on_figure2(self, figure2):
        check = verify_theorem1(figure2)
        assert check.holds
        assert check.pairs_checked == 21  # C(7, 2)

    def test_theorem_holds_on_chain(self):
        graph = TopologicalSortGraph()
        for name in "ABCDE":
            graph.add_vertex(name)
        for source, target in zip("ABCD", "BCDE"):
            graph.add_edge(source, target)
        assert verify_theorem1(graph).holds

    def test_theorem_holds_on_disconnected_vertices(self):
        graph = TopologicalSortGraph()
        for name in "ABCD":
            graph.add_vertex(name)
        assert verify_theorem1(graph).holds

    def test_enumeration_and_path_checks_agree(self, figure2):
        for u in figure2.vertices:
            for v in figure2.vertices:
                if u < v:
                    assert has_race(figure2, u, v) == has_race_by_enumeration(figure2, u, v)

    def test_adding_the_missing_edge_removes_the_race(self, figure2):
        """Inserting a (security) dependency between racing vertices removes the race."""
        assert has_race(figure2, "D", "E")
        figure2.add_edge("E", "D")
        assert not has_race(figure2, "D", "E")
        assert verify_theorem1(figure2).holds


class TestWitnesses:
    def test_witness_orderings_flip_the_racing_pair(self, figure2):
        witnesses = witness_orderings(figure2, "D", "E")
        assert witnesses is not None
        first, second = witnesses
        assert figure2.is_valid_ordering(first)
        assert figure2.is_valid_ordering(second)
        first_pos = {name: index for index, name in enumerate(first)}
        second_pos = {name: index for index, name in enumerate(second)}
        assert (first_pos["D"] < first_pos["E"]) != (second_pos["D"] < second_pos["E"])

    def test_no_witness_for_ordered_pair(self, figure2):
        assert witness_orderings(figure2, "A", "G") is None


class TestRaceFree:
    def test_total_order_is_race_free(self):
        graph = TopologicalSortGraph()
        for name in "ABC":
            graph.add_vertex(name)
        graph.add_edge("A", "B")
        graph.add_edge("B", "C")
        assert race_free(graph)

    def test_figure2_is_not_race_free(self, figure2):
        assert not race_free(figure2)

    def test_figure2_factory_returns_fresh_graphs(self):
        first = figure2_example()
        second = figure2_example()
        first.add_edge("E", "D")
        assert has_race(second, "D", "E")
