"""Tests for defense evaluation on the attack-graph model."""

from __future__ import annotations

import pytest

from repro.attacks import FAULTING_LOAD_SOURCES, Nodes, build_faulting_load_graph, get as get_attack
from repro.defenses import (
    ALL_DEFENSES,
    DefenseStrategy,
    attack_succeeds,
    evaluate_defense,
    evaluate_matrix,
    get,
    insufficient_defense_demo,
    leaking_sources,
    source_projections,
)


class TestLeakCondition:
    def test_baseline_graphs_leak(self, spectre_v1_graph, meltdown_graph):
        assert attack_succeeds(spectre_v1_graph)
        assert attack_succeeds(meltdown_graph)

    def test_leaking_sources_of_multi_source_graph(self):
        graph = build_faulting_load_graph(name="fig4", sources=FAULTING_LOAD_SOURCES)
        sources = leaking_sources(graph)
        assert len(sources) == len(FAULTING_LOAD_SOURCES)

    def test_source_projections_single_source_graph_is_itself(self, spectre_v1_graph):
        projections = source_projections(spectre_v1_graph)
        assert len(projections) == 1
        assert projections[0][1] is spectre_v1_graph

    def test_source_projections_expand_alternatives(self):
        graph = build_faulting_load_graph(name="fig4", sources=("memory", "cache", "store buffer"))
        projections = source_projections(graph)
        assert len(projections) == 3
        for chosen, projection in projections:
            assert len(chosen) == 1
            assert len(projection.secret_access_nodes) == 1
            assert projection.validate() == []


class TestEvaluations:
    def test_lfence_defeats_spectre_v1(self):
        evaluation = evaluate_defense(get("lfence"), get_attack("spectre_v1"))
        assert evaluation.applicable and evaluation.effective
        assert evaluation.security_edges_added >= 1

    def test_lfence_not_applicable_to_meltdown(self):
        evaluation = evaluate_defense(get("lfence"), get_attack("meltdown"))
        assert not evaluation.applicable and not evaluation.effective

    def test_kpti_defeats_meltdown(self):
        assert evaluate_defense(get("kpti"), get_attack("meltdown")).effective

    def test_ibpb_defeats_spectre_v2_but_not_meltdown(self):
        assert evaluate_defense(get("ibpb"), get_attack("spectre_v2")).effective
        assert not evaluate_defense(get("ibpb"), get_attack("meltdown")).effective

    def test_rsb_stuffing_defeats_spectre_rsb(self):
        assert evaluate_defense(get("rsb_stuffing"), get_attack("spectre_rsb")).effective

    def test_ssbb_defeats_spectre_v4(self):
        assert evaluate_defense(get("ssbb"), get_attack("spectre_v4")).effective

    @pytest.mark.parametrize("defense_key", ["stt", "invisispec", "nda", "context", "cleanupspec"])
    @pytest.mark.parametrize("attack_key", ["spectre_v1", "meltdown", "foreshadow", "fallout", "lvi"])
    def test_generic_hardware_defenses_defeat_everything(self, defense_key, attack_key):
        """Strategy 2/3 defenses protect every variant in the graph model."""
        evaluation = evaluate_defense(get(defense_key), get_attack(attack_key))
        assert evaluation.effective, f"{defense_key} should defeat {attack_key}"

    def test_every_attack_has_at_least_one_effective_defense(self):
        from repro.attacks import ALL_VARIANTS, variants

        matrix = evaluate_matrix(ALL_DEFENSES, variants())
        by_attack = {}
        for evaluation in matrix:
            by_attack.setdefault(evaluation.attack_key, []).append(evaluation)
        for attack_key, evaluations in by_attack.items():
            assert any(evaluation.effective for evaluation in evaluations), attack_key

    def test_evaluation_str_mentions_verdict(self):
        evaluation = evaluate_defense(get("lfence"), get_attack("spectre_v1"))
        assert "defeats" in str(evaluation)


class TestInsufficientDefense:
    """The Section V-B discussion: a fence on the memory path alone is not enough."""

    def test_reproduces_paper_conclusion(self):
        report = insufficient_defense_demo()
        assert report.reproduces_paper

    def test_partial_fence_leaks_through_the_cache(self):
        report = insufficient_defense_demo()
        assert report.baseline_leaks
        assert report.fenced_memory_only_leaks
        assert any(
            "cache" in source for chosen in report.fenced_memory_leaking_sources for source in chosen
        )

    def test_complete_fence_and_prevent_use_both_work(self):
        report = insufficient_defense_demo()
        assert not report.fenced_all_sources_leaks
        assert not report.prevent_use_leaks

    def test_partial_defense_via_defense_object(self):
        """A Defense with protected_sources only covering memory is insufficient for L1TF."""
        from repro.defenses.base import Defense, DefenseOrigin

        partial = Defense(
            key="memory_only_fence",
            name="Fence on the memory path only",
            origin=DefenseOrigin.INDUSTRY,
            strategy=DefenseStrategy.PREVENT_ACCESS,
            description="hypothetical partial defense",
            protected_sources=("memory",),
        )
        graph = build_faulting_load_graph(
            name="meltdown-cached", sources=("memory", "cache")
        )
        defended = partial.apply(graph)
        assert attack_succeeds(defended)
