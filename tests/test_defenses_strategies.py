"""Tests for the four defense strategies as graph transformations."""

from __future__ import annotations

import pytest

from repro.attacks import FAULTING_LOAD_SOURCES, Nodes, build_faulting_load_graph
from repro.core import ProtectionPoint, has_race
from repro.defenses import (
    FLUSH_PREDICTOR_NODE,
    DefenseStrategy,
    apply_clear_predictions,
    apply_prevent_access,
    apply_prevent_send,
    apply_prevent_use,
    apply_strategy,
    attack_succeeds,
    setup_neutralized,
)


class TestStrategy1PreventAccess:
    def test_access_race_closed(self, spectre_v1_graph):
        defended = apply_prevent_access(spectre_v1_graph)
        assert not has_race(defended, Nodes.BRANCH_RESOLUTION, Nodes.LOAD_S)

    def test_downstream_races_closed_transitively(self, spectre_v1_graph):
        defended = apply_prevent_access(spectre_v1_graph)
        assert not has_race(defended, Nodes.BRANCH_RESOLUTION, Nodes.LOAD_R)
        assert not attack_succeeds(defended)

    def test_original_graph_untouched(self, spectre_v1_graph):
        apply_prevent_access(spectre_v1_graph)
        assert has_race(spectre_v1_graph, Nodes.BRANCH_RESOLUTION, Nodes.LOAD_S)

    def test_source_restriction_protects_only_named_sources(self):
        graph = build_faulting_load_graph(name="fig4", sources=("memory", "cache"))
        defended = apply_prevent_access(graph, sources=("memory",))
        assert not has_race(defended, Nodes.AUTH_RESOLVED, Nodes.read_from("memory"))
        assert has_race(defended, Nodes.AUTH_RESOLVED, Nodes.read_from("cache"))

    def test_security_edges_marked(self, spectre_v1_graph):
        defended = apply_prevent_access(spectre_v1_graph)
        added = [edge for edge in defended.edges if edge.is_security]
        assert added and all(edge.source == Nodes.BRANCH_RESOLUTION for edge in added)


class TestStrategy2PreventUse:
    def test_use_race_closed_access_race_remains(self, spectre_v1_graph):
        defended = apply_prevent_use(spectre_v1_graph)
        assert not has_race(defended, Nodes.BRANCH_RESOLUTION, Nodes.COMPUTE_R)
        # The looser model: the secret may still be accessed...
        assert has_race(defended, Nodes.BRANCH_RESOLUTION, Nodes.LOAD_S)
        # ...but it can no longer be sent out.
        assert not attack_succeeds(defended)

    def test_works_for_every_faulting_load_source(self):
        graph = build_faulting_load_graph(name="fig4", sources=FAULTING_LOAD_SOURCES)
        defended = apply_prevent_use(graph)
        assert not attack_succeeds(defended)


class TestStrategy3PreventSend:
    def test_send_race_closed_use_race_remains(self, spectre_v1_graph):
        defended = apply_prevent_send(spectre_v1_graph)
        assert not has_race(defended, Nodes.BRANCH_RESOLUTION, Nodes.LOAD_R)
        assert has_race(defended, Nodes.BRANCH_RESOLUTION, Nodes.COMPUTE_R)
        assert not attack_succeeds(defended)

    def test_meltdown_send_protected(self, meltdown_graph):
        defended = apply_prevent_send(meltdown_graph)
        assert not attack_succeeds(defended)


class TestStrategy4ClearPredictions:
    def test_flush_predictor_vertex_inserted(self, spectre_v1_graph):
        defended = apply_clear_predictions(spectre_v1_graph)
        assert FLUSH_PREDICTOR_NODE in defended
        assert defended.has_path(Nodes.MISTRAIN, FLUSH_PREDICTOR_NODE)
        assert defended.has_path(FLUSH_PREDICTOR_NODE, Nodes.BRANCH)
        assert setup_neutralized(defended)

    def test_noop_for_attacks_without_mistraining(self, meltdown_graph):
        defended = apply_clear_predictions(meltdown_graph)
        assert FLUSH_PREDICTOR_NODE not in defended
        assert not setup_neutralized(defended)

    def test_does_not_close_the_authorization_race(self, spectre_v1_graph):
        defended = apply_clear_predictions(spectre_v1_graph)
        assert has_race(defended, Nodes.BRANCH_RESOLUTION, Nodes.LOAD_S)


class TestDispatch:
    @pytest.mark.parametrize(
        "strategy",
        [
            DefenseStrategy.PREVENT_ACCESS,
            DefenseStrategy.PREVENT_USE,
            DefenseStrategy.PREVENT_SEND,
            DefenseStrategy.CLEAR_PREDICTIONS,
        ],
    )
    def test_apply_strategy_dispatch(self, spectre_v1_graph, strategy):
        defended = apply_strategy(spectre_v1_graph, strategy)
        assert defended is not spectre_v1_graph
        assert len(defended) >= len(spectre_v1_graph)

    def test_figure8_numbers(self):
        assert DefenseStrategy.PREVENT_ACCESS.figure8_number == 1
        assert DefenseStrategy.PREVENT_USE.figure8_number == 2
        assert DefenseStrategy.PREVENT_SEND.figure8_number == 3
        assert DefenseStrategy.CLEAR_PREDICTIONS.figure8_number == 4
