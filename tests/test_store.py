"""Tests for the pluggable artifact stores (MemoryStore / DiskStore)."""

from __future__ import annotations

import json
import os
import pickle
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import Engine, Result
from repro.faults import FaultPlan, FaultSpec, FaultyDiskStore
from repro.scenario import ScenarioSpec
from repro.store import (
    CODE_VERSION,
    DiskStore,
    MemoryStore,
    open_store,
    store_from_ref,
    store_ref,
)


@pytest.fixture
def disk(tmp_path):
    return DiskStore(root=tmp_path, version="test")


def _envelope(tag: str = "x") -> Result:
    return Result(kind="simulate", subject=tag, ok=True, cache="cold",
                  data={"tag": tag}, payload=[tag])


# ---------------------------------------------------------------------------
# MemoryStore
# ---------------------------------------------------------------------------
class TestMemoryStore:
    def test_round_trip_and_stats(self):
        store = MemoryStore()
        assert store.get("k") is None
        assert store.put("k", {"v": 1})
        assert store.get("k") == {"v": 1}
        assert store.stats() == {
            "entries": 1,
            "hits": 1,
            "misses": 1,
            "puts": 1,
            "put_failures": 0,
            "evictions": 0,
        }
        assert store.clear() == 1
        assert store.get("k") is None

    def test_lru_eviction_order(self):
        store = MemoryStore(max_entries=2)
        store.put("a", 1)
        store.put("b", 2)
        assert store.get("a") == 1  # touch: "a" becomes most recent
        store.put("c", 3)           # evicts "b", the least recently used
        assert store.get("b") is None
        assert store.get("a") == 1 and store.get("c") == 3


# ---------------------------------------------------------------------------
# DiskStore
# ---------------------------------------------------------------------------
class TestDiskStore:
    def test_round_trip_and_layout(self, disk, tmp_path):
        key = "ab" + "0" * 62
        assert disk.put(key, _envelope("one"))
        loaded = disk.get(key)
        assert loaded.data == {"tag": "one"} and loaded.payload == ["one"]
        # Layout: <root>/<version>/<hh>/<hash>.pkl
        assert (tmp_path / "test" / "ab" / f"{key}.pkl").is_file()
        stats = disk.stats()
        assert stats["entries"] == 1 and stats["bytes"] > 0
        assert stats["hits"] == 1 and stats["misses"] == 0

    def test_missing_key_is_a_miss(self, disk):
        assert disk.get("f" * 64) is None
        assert disk.stats()["misses"] == 1

    def test_cross_instance_reuse(self, tmp_path):
        """Two store instances on one root see each other's entries --
        the in-process stand-in for two CLI processes sharing the cache."""
        key = "cd" + "1" * 62
        DiskStore(root=tmp_path, version="t").put(key, _envelope("shared"))
        other = DiskStore(root=tmp_path, version="t")
        assert other.get(key).data == {"tag": "shared"}

    def test_version_bump_invalidates(self, tmp_path):
        key = "ee" + "2" * 62
        DiskStore(root=tmp_path, version="v1").put(key, _envelope())
        assert DiskStore(root=tmp_path, version="v2").get(key) is None
        assert DiskStore(root=tmp_path, version="v1").get(key) is not None
        assert isinstance(CODE_VERSION, str) and CODE_VERSION

    def test_corrupted_pickle_is_a_miss_and_removed(self, disk, tmp_path):
        key = "aa" + "3" * 62
        disk.put(key, _envelope())
        path = tmp_path / "test" / "aa" / f"{key}.pkl"
        path.write_bytes(path.read_bytes()[:10])  # truncate mid-pickle
        assert disk.get(key) is None
        assert not path.exists()  # the damaged entry was dropped
        assert disk.stats()["misses"] == 1
        # A rewrite serves again.
        disk.put(key, _envelope("fresh"))
        assert disk.get(key).data == {"tag": "fresh"}

    def test_garbage_bytes_are_a_miss(self, disk, tmp_path):
        key = "bb" + "4" * 62
        target = tmp_path / "test" / "bb" / f"{key}.pkl"
        target.parent.mkdir(parents=True)
        target.write_bytes(b"not a pickle at all")
        assert disk.get(key) is None

    def test_eviction_drops_least_recently_used(self, tmp_path):
        store = DiskStore(root=tmp_path, version="t", max_entries=3)
        keys = [f"{i:02d}" + "5" * 62 for i in range(4)]
        for age, key in enumerate(keys[:3]):
            store.put(key, _envelope(key))
            # Pin distinct access times so LRU order is unambiguous.
            os.utime(store._path(key), ns=(age * 10 ** 9, age * 10 ** 9))
        store.put(keys[3], _envelope(keys[3]))  # over the limit: evict keys[0]
        assert store.get(keys[0]) is None
        for key in keys[1:]:
            assert store.get(key) is not None

    def test_get_touches_for_lru(self, tmp_path):
        store = DiskStore(root=tmp_path, version="t", max_entries=2)
        old, new = "aa" + "6" * 62, "bb" + "6" * 62
        store.put(old, _envelope("old"))
        store.put(new, _envelope("new"))
        os.utime(store._path(old), ns=(10 ** 9, 10 ** 9))
        os.utime(store._path(new), ns=(2 * 10 ** 9, 2 * 10 ** 9))
        assert store.get(old) is not None  # touch refreshes the mtime
        store.put("cc" + "6" * 62, _envelope())  # evicts `new`, not `old`
        assert store.get(new) is None and store.get(old) is not None

    def test_unpicklable_payload_falls_back_to_stripped_envelope(self, disk):
        key = "dd" + "7" * 62
        bad = Result(kind="exploit", subject="x", ok=True, cache="cold",
                     data={"fine": True}, payload=lambda: None)
        with pytest.raises(Exception):
            pickle.dumps(bad)
        assert disk.put(key, bad)
        loaded = disk.get(key)
        assert loaded.data == {"fine": True} and loaded.payload is None

    def test_hopeless_value_is_not_persisted(self, disk):
        assert not disk.put("ff" + "8" * 62, lambda: None)
        assert disk.stats()["entries"] == 0

    def test_clear(self, disk):
        for i in range(3):
            disk.put(f"{i:02d}" + "9" * 62, _envelope(str(i)))
        assert disk.clear() == 3
        assert disk.stats()["entries"] == 0

    def test_store_ref_round_trip(self, tmp_path):
        store = DiskStore(root=tmp_path, version="t", max_entries=7)
        rebuilt = store_from_ref(store_ref(store))
        assert rebuilt.root == store.root
        assert rebuilt.version == "t" and rebuilt.max_entries == 7
        assert store_ref(MemoryStore()) is None and store_from_ref(None) is None

    def test_disk_store_pickles(self, tmp_path):
        store = DiskStore(root=tmp_path, version="t", max_entries=5)
        clone = pickle.loads(pickle.dumps(store))
        assert clone.root == store.root and clone.version == "t"

    def test_env_var_overrides_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envroot"))
        assert DiskStore().root == tmp_path / "envroot"

    def test_open_store_selectors(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envroot"))
        assert open_store(None) is None
        assert isinstance(open_store("memory"), MemoryStore)
        assert isinstance(open_store("disk"), DiskStore)
        custom = open_store(str(tmp_path / "mine"))
        assert isinstance(custom, DiskStore) and custom.root == tmp_path / "mine"


# ---------------------------------------------------------------------------
# Engine integration: the spec-level persistent cache
# ---------------------------------------------------------------------------
class TestEngineStore:
    def test_fresh_session_serves_warm_from_disk(self, tmp_path):
        spec = ScenarioSpec("simulate", attack="spectre_v1")
        with Engine(store=DiskStore(root=tmp_path, version="t")) as cold_engine:
            cold = cold_engine.run(spec)
        with Engine(store=DiskStore(root=tmp_path, version="t")) as warm_engine:
            warm = warm_engine.run(spec)
            stats = warm_engine.stats()["store"]
        assert (cold.cache, warm.cache) == ("cold", "warm")
        assert warm.data == cold.data
        assert warm.to_dict()["data"] == cold.to_dict()["data"]  # byte-identical rows
        assert stats["hits"] == 1 and stats["misses"] == 0
        # The simulations artifact cache was never consulted on the warm side.
        assert warm_engine.stats()["simulations"]["misses"] == 0

    def test_mutating_a_warm_envelope_does_not_poison_the_store(self):
        from repro.store import MemoryStore

        spec = ScenarioSpec("simulate", attack="spectre_v1")
        with Engine(store=MemoryStore()) as engine:
            cold = engine.run(spec)
            cold.data["transmit_beats_squash"] = "POISONED"
            cold.data["defenses"].append("tampered")
            warm = engine.run(spec)
            assert warm.data["transmit_beats_squash"] is True
            assert warm.data["defenses"] == []
            # ... and mutating the warm copy leaves later hits pristine too.
            warm.data.clear()
            assert engine.run(spec).data["transmit_beats_squash"] is True

    def test_corrupted_entry_recomputes(self, tmp_path):
        spec = ScenarioSpec("simulate", attack="meltdown")
        store = DiskStore(root=tmp_path, version="t")
        with Engine(store=store) as engine:
            cold = engine.run(spec)
        store._path(spec.content_hash()).write_bytes(b"\x80corrupt")
        with Engine(store=DiskStore(root=tmp_path, version="t")) as engine:
            recomputed = engine.run(spec)
        assert recomputed.cache == "cold"
        assert recomputed.data == cold.data
        # The recompute rewrote a good entry.
        with Engine(store=DiskStore(root=tmp_path, version="t")) as engine:
            assert engine.run(spec).cache == "warm"

    def test_version_bump_recomputes(self, tmp_path):
        spec = ScenarioSpec("simulate", attack="spectre_v1")
        with Engine(store=DiskStore(root=tmp_path, version="v1")) as engine:
            engine.run(spec)
        with Engine(store=DiskStore(root=tmp_path, version="v2")) as engine:
            assert engine.run(spec).cache == "cold"

    def test_invalidate_store(self, tmp_path):
        spec = ScenarioSpec("simulate", attack="spectre_v1")
        with Engine(store=DiskStore(root=tmp_path, version="t")) as engine:
            engine.run(spec)
            assert engine.invalidate("store") >= 1
            assert engine.stats()["store"]["entries"] == 0
            # The in-memory simulations cache is a separate layer and still
            # serves the executor warm; drop it too for a full recompute.
            engine.invalidate("simulations")
            assert engine.run(spec).cache == "cold"

    def test_invalidate_everything_includes_the_store(self, tmp_path):
        spec = ScenarioSpec("simulate", attack="spectre_v1")
        with Engine(store=DiskStore(root=tmp_path, version="t")) as engine:
            engine.run(spec)
            assert engine.invalidate() >= 2  # simulations entry + store entry
            assert engine.stats()["store"]["entries"] == 0

    def test_composite_sweep_is_one_warm_hit(self, tmp_path):
        spec = ScenarioSpec("simulate_sweep", attacks=("spectre_v1", "meltdown"),
                            defenses=(None,))
        with Engine(store=DiskStore(root=tmp_path, version="t")) as engine:
            cold = engine.run(spec)
        with Engine(store=DiskStore(root=tmp_path, version="t")) as engine:
            warm = engine.run(spec)
            # One store get served the whole sweep: no timing run executed.
            assert engine.stats()["simulations"] == {
                "entries": 0, "hits": 0, "misses": 0
            }
        assert warm.cache == "warm" and warm.data == cold.data

    def test_sharded_grid_workers_share_the_disk_store(self, tmp_path):
        from repro.scenario import ScenarioGrid

        grid = ScenarioGrid(
            "simulate", axes={"attack": ["spectre_v1", "meltdown", "foreshadow"]}
        )
        with Engine(store=DiskStore(root=tmp_path, version="t")) as engine:
            first = engine.run_grid(grid, parallel=2)
        # Every point landed in the shared store (plus absorption by the
        # parent), so a fresh serial session is all warm hits.
        with Engine(store=DiskStore(root=tmp_path, version="t")) as engine:
            second = engine.run_grid(grid)
            assert engine.stats()["store"]["hits"] == 3
            assert engine.stats()["simulations"]["misses"] == 0
        assert first.data == second.data


# ---------------------------------------------------------------------------
# Acceptance: two *separate processes* share the persistent cache
# ---------------------------------------------------------------------------
class TestCrossProcess:
    def _run_cli(self, tmp_path, *argv: str) -> dict:
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-m", "repro.cli", *argv],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert completed.stdout, completed.stderr
        return json.loads(completed.stdout)

    def test_second_process_is_served_from_disk(self, tmp_path):
        store_dir = str(tmp_path / "cache")
        argv = ("run", "--kind", "simulate", "--param", "attack=spectre_v1",
                "--store", store_dir, "--json")
        first = self._run_cli(tmp_path, *argv)
        second = self._run_cli(tmp_path, *argv)
        assert first["cache"] == "cold"
        assert second["cache"] == "warm"
        assert second["data"] == first["data"]  # byte-identical rows
        assert DiskStore(root=store_dir).stats()["entries"] >= 1


# ---------------------------------------------------------------------------
# Crash-recovery properties: damaged entries heal, corruption never propagates
# ---------------------------------------------------------------------------
class TestCorruptionRecovery:
    """Hypothesis properties over the on-disk entry format.

    A killed writer (or a torn disk) can leave an entry truncated at *any*
    byte offset; the store must treat every such entry as a recomputable
    miss -- never return garbage, never wedge, and heal on the next put.
    """

    @given(frac=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_entry_truncated_at_any_offset_is_a_recoverable_miss(self, frac):
        key = "ab" + "7" * 62
        with tempfile.TemporaryDirectory() as root:
            store = DiskStore(root=root, version="t")
            assert store.put(key, _envelope("good"))
            path = Path(root) / "t" / key[:2] / f"{key}.pkl"
            blob = path.read_bytes()
            offset = min(len(blob) - 1, int(frac * len(blob)))
            path.write_bytes(blob[:offset])
            assert store.get(key) is None  # never the torn object
            assert not path.exists()  # the damaged entry was dropped
            # The next campaign recomputes and the store heals.
            assert store.put(key, _envelope("good"))
            healed = store.get(key)
            assert healed is not None and healed.data == {"tag": "good"}

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_injected_partial_write_never_propagates(self, seed):
        key = "cd" + "8" * 62
        with tempfile.TemporaryDirectory() as root:
            plan = FaultPlan(
                [FaultSpec(kind="partial_write", count=1)], seed=seed
            )
            faulty = FaultyDiskStore(root=root, plan=plan, version="t")
            assert faulty.put(key, _envelope("good"))  # sabotaged on disk
            reader = DiskStore(root=root, version="t")
            assert reader.get(key) is None  # detected, deleted, a plain miss
            assert reader.put(key, _envelope("good"))  # recompute + heal
            healed = reader.get(key)
            assert healed is not None and healed.data == {"tag": "good"}
            assert reader.get(key).data == {"tag": "good"}  # stable after heal


# ---------------------------------------------------------------------------
# Concurrent-eviction races: another process deleting under our feet
# ---------------------------------------------------------------------------
class TestConcurrentRaces:
    def test_get_survives_entry_touch_failure(self, disk, monkeypatch):
        key = "aa" + "4" * 62
        disk.put(key, _envelope("kept"))

        def flaky_utime(path, *args, **kwargs):
            raise OSError("entry evicted under the LRU touch")

        monkeypatch.setattr("repro.store.os.utime", flaky_utime)
        loaded = disk.get(key)  # the hit survives losing its LRU touch
        assert loaded is not None and loaded.data == {"tag": "kept"}

    def test_put_reports_failure_when_bucket_is_blocked(self, tmp_path):
        store = DiskStore(root=tmp_path, version="t")
        key = "ee" + "5" * 62
        (tmp_path / "t").mkdir()
        (tmp_path / "t" / key[:2]).write_text("not a directory")
        assert store.put(key, _envelope()) is False  # reported, not raised
        assert store.get(key) is None

    def test_put_retries_when_bucket_vanishes_mid_write(self, tmp_path, monkeypatch):
        store = DiskStore(root=tmp_path, version="t")
        key = "ff" + "6" * 62
        real_replace = os.replace
        raised = {"count": 0}

        def racing_replace(src, dst):
            if raised["count"] == 0:
                # A concurrent cleaner deleted the bucket between our
                # temp-file write and the atomic publish.
                raised["count"] += 1
                os.unlink(src)
                Path(dst).parent.rmdir()
                raise FileNotFoundError(dst)
            return real_replace(src, dst)

        monkeypatch.setattr("repro.store.os.replace", racing_replace)
        assert store.put(key, _envelope("raced")) is True  # second round wins
        assert raised["count"] == 1
        assert store.get(key).data == {"tag": "raced"}

    def test_eviction_walk_survives_entries_deleted_underneath(self, tmp_path):
        store = DiskStore(root=tmp_path, version="t", max_entries=2)
        keys = [f"{i:02x}" + "9" * 62 for i in range(4)]
        for key in keys[:3]:
            assert store.put(key, _envelope(key))
        # A concurrent evictor wipes the tree between two puts: the next
        # put's eviction walk sees dangling state and must not raise.
        for path in list(Path(tmp_path / "t").rglob("*.pkl")):
            path.unlink()
        assert store.put(keys[3], _envelope("last"))
        assert store.get(keys[3]).data == {"tag": "last"}

    def test_stats_and_clear_survive_a_vanishing_tree(self, tmp_path):
        store = DiskStore(root=tmp_path, version="t")
        key = "ab" + "a" * 62
        store.put(key, _envelope())
        shutil.rmtree(tmp_path / "t")
        stats = store.stats()  # walking a deleted tree is an empty store
        assert stats["entries"] == 0 and stats["bytes"] == 0
        assert store.clear() == 0
