"""Tests for the industry / academia defense catalog (Table II and Section V-B)."""

from __future__ import annotations

import pytest

from repro.attacks import get as get_attack
from repro.defenses import (
    ACADEMIA_DEFENSES,
    ALL_DEFENSES,
    INDUSTRY_DEFENSES,
    DefenseOrigin,
    DefenseStrategy,
    get,
    table2_rows,
)


class TestCatalogShape:
    def test_fifteen_industry_defenses(self):
        assert len(INDUSTRY_DEFENSES) == 15

    def test_fourteen_academic_defenses(self):
        assert len(ACADEMIA_DEFENSES) == 14

    def test_unique_keys(self):
        keys = [defense.key for defense in ALL_DEFENSES]
        assert len(keys) == len(set(keys))

    def test_lookup(self):
        assert get("lfence").name == "LFence"
        assert get("stt").origin is DefenseOrigin.ACADEMIA

    def test_unknown_defense(self):
        with pytest.raises(KeyError):
            get("magic_shield")


class TestPaperClaim:
    """Insight 3: every proposed defense falls under one of the four strategies."""

    def test_every_defense_has_a_strategy(self):
        for defense in ALL_DEFENSES:
            assert isinstance(defense.strategy, DefenseStrategy)

    def test_all_four_strategies_are_used(self):
        strategies = {defense.strategy for defense in ALL_DEFENSES}
        assert strategies == set(DefenseStrategy)

    def test_expected_strategy_assignments(self):
        expected = {
            "lfence": DefenseStrategy.PREVENT_ACCESS,
            "kpti": DefenseStrategy.PREVENT_ACCESS,
            "coarse_masking": DefenseStrategy.PREVENT_ACCESS,
            "ssbb": DefenseStrategy.PREVENT_ACCESS,
            "context_sensitive_fencing": DefenseStrategy.PREVENT_ACCESS,
            "sabc": DefenseStrategy.PREVENT_ACCESS,
            "nda": DefenseStrategy.PREVENT_USE,
            "spectreguard": DefenseStrategy.PREVENT_USE,
            "context": DefenseStrategy.PREVENT_USE,
            "specshield": DefenseStrategy.PREVENT_USE,
            "stt": DefenseStrategy.PREVENT_SEND,
            "invisispec": DefenseStrategy.PREVENT_SEND,
            "safespec": DefenseStrategy.PREVENT_SEND,
            "cleanupspec": DefenseStrategy.PREVENT_SEND,
            "conditional_speculation": DefenseStrategy.PREVENT_SEND,
            "dawg": DefenseStrategy.PREVENT_SEND,
            "ibpb": DefenseStrategy.CLEAR_PREDICTIONS,
            "retpoline": DefenseStrategy.CLEAR_PREDICTIONS,
            "rsb_stuffing": DefenseStrategy.CLEAR_PREDICTIONS,
        }
        for key, strategy in expected.items():
            assert get(key).strategy is strategy, key


class TestApplicability:
    def test_kpti_targets_meltdown_only(self):
        kpti = get("kpti")
        assert kpti.applies_to(get_attack("meltdown"))
        assert not kpti.applies_to(get_attack("spectre_v1"))
        assert not kpti.applies_to(get_attack("foreshadow"))

    def test_lfence_targets_spectre_not_meltdown(self):
        lfence = get("lfence")
        assert lfence.applies_to(get_attack("spectre_v1"))
        assert not lfence.applies_to(get_attack("meltdown"))

    def test_ssbb_targets_v4_only(self):
        ssbb = get("ssbb")
        assert ssbb.applies_to(get_attack("spectre_v4"))
        assert not ssbb.applies_to(get_attack("spectre_v1"))

    def test_rsb_stuffing_targets_rsb(self):
        assert get("rsb_stuffing").applies_to(get_attack("spectre_rsb"))
        assert not get("rsb_stuffing").applies_to(get_attack("spectre_v2"))

    def test_generic_academic_defense_applies_everywhere(self):
        stt = get("stt")
        for key in ("spectre_v1", "meltdown", "lvi", "fallout"):
            assert stt.applies_to(get_attack(key))


class TestTable2:
    def test_one_row_per_industry_defense(self):
        assert len(table2_rows()) == len(INDUSTRY_DEFENSES)

    def test_known_rows(self):
        rows = {row[2]: row for row in table2_rows()}
        assert rows["LFence"][0] == "Spectre"
        assert "Meltdown" in rows["KAISER"][0]
        assert "Spectre v4" in rows["Speculative Store Bypass Barrier (SSBB)"][0]

    def test_row_strategy_column_matches_defense(self):
        for defense in INDUSTRY_DEFENSES:
            category, strategy, name = defense.table2_row
            assert name == defense.name
            assert strategy == defense.strategy.value
