"""Tests for the unified Engine session API (cache + execution plane + envelope)."""

from __future__ import annotations

import json

import pytest

from repro.attacks import (
    CovertChannelKind,
    DelayMechanism,
    SecretSource,
    get as get_attack,
    novel_combinations,
)
from repro.defenses import evaluate_matrix, get as get_defense
from repro.engine import Engine, Result, default_engine, set_default_engine
from repro.graphtool import AttackGraphBuilder, analyze_program
from repro.graphtool.classify import AuthorizationKind
from repro.graphtool.expansion import expansion_for
from repro.isa import assemble
from repro.isa.instructions import Nop


@pytest.fixture
def engine():
    with Engine() as session:
        yield session


def _reciprocal(value):
    return 1 / value


# ---------------------------------------------------------------------------
# Program content hashing
# ---------------------------------------------------------------------------
class TestContentHash:
    def test_structurally_identical_programs_share_a_hash(self):
        one = assemble(LISTING1_TEXT, name="victim")
        two = assemble(LISTING1_TEXT, name="victim")
        assert one is not two
        assert one.content_hash() == two.content_hash()

    def test_hash_is_stable_across_calls(self, listing1_program):
        assert listing1_program.content_hash() == listing1_program.content_hash()

    def test_appending_an_instruction_changes_the_hash(self, listing1_program):
        before = listing1_program.content_hash()
        listing1_program.append(Nop())
        assert listing1_program.content_hash() != before

    def test_declaring_a_symbol_changes_the_hash(self):
        program = assemble(".data\na: address=0x1000 size=8\n.text\nhlt")
        before = program.content_hash()
        program.declare("b", 0x2000, 8)
        assert program.content_hash() != before

    def test_renaming_changes_the_hash(self):
        one = assemble(".text\nhlt", name="one")
        two = assemble(".text\nhlt", name="two")
        assert one.content_hash() != two.content_hash()


# ---------------------------------------------------------------------------
# The content-addressed analysis cache
# ---------------------------------------------------------------------------
class TestAnalysisCache:
    def test_warm_hit_returns_the_cold_result(self, engine, listing1_program):
        cold = engine.analyze(listing1_program)
        warm = engine.analyze(listing1_program)
        assert (cold.cache, warm.cache) == ("cold", "warm")
        assert warm.payload is cold.payload
        assert warm.data == cold.data
        stats = engine.stats()["analyses"]
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["entries"] == 1

    @pytest.mark.parametrize("text_name", ["listing1", "listing2"])
    def test_cache_hits_equal_cold_builds(self, engine, text_name, request):
        """Property: a warm engine report equals a fresh uncached analysis."""
        program = request.getfixturevalue(f"{text_name}_program")
        engine.analyze(program)  # prime
        warm = engine.analyze(program).payload
        from repro.graphtool.analyzer import analyze_build

        fresh = analyze_build(AttackGraphBuilder(program, None).build())
        assert warm.vulnerable == fresh.vulnerable
        assert warm.total_racing_pairs == fresh.total_racing_pairs
        assert [str(f) for f in warm.findings] == [str(f) for f in fresh.findings]

    def test_mutating_envelope_data_does_not_poison_the_cache(
        self, engine, listing1_program
    ):
        cold = engine.analyze(listing1_program)
        pristine_findings = len(cold.data["findings"])
        cold.data["findings"].clear()
        cold.data["vulnerable"] = "tampered"
        warm = engine.analyze(listing1_program)
        assert len(warm.data["findings"]) == pristine_findings
        assert warm.data["vulnerable"] is True

    def test_customized_defense_does_not_alias_catalog_cache_entry(self, engine):
        import dataclasses

        from repro.defenses import DefenseStrategy

        lfence = get_defense("lfence")
        attack = get_attack("spectre_v1")
        assert engine.evaluate(lfence, attack).ok
        tweaked = dataclasses.replace(
            lfence, strategy=DefenseStrategy.CLEAR_PREDICTIONS
        )
        tweaked_result = engine.evaluate(tweaked, attack)
        assert tweaked_result.cache == "cold"  # not served from lfence's entry
        assert tweaked_result.data["strategy"] == DefenseStrategy.CLEAR_PREDICTIONS.value

    def test_content_identical_programs_share_cache_entries(self, engine):
        one = assemble(LISTING1_TEXT, name="victim")
        two = assemble(LISTING1_TEXT, name="victim")
        assert engine.analyze(one).cache == "cold"
        assert engine.analyze(two).cache == "warm"

    def test_mutation_misses_the_cache(self, engine):
        program = assemble(LISTING1_TEXT, name="victim")
        engine.analyze(program)
        program.append(Nop())
        assert engine.analyze(program).cache == "cold"
        assert engine.stats()["analyses"]["entries"] == 2

    def test_protected_symbols_key_the_cache(self, engine):
        program = assemble(
            ".data\ndata: address=0x1000 size=8\n.text\nmov rax, [data]\nhlt"
        )
        assert engine.analyze(program).ok
        widened = engine.analyze(program, protected_symbols=["data"])
        assert widened.cache == "cold" and not widened.ok

    def test_invalidate_drops_entries(self, engine, listing1_program):
        engine.analyze(listing1_program)
        assert engine.invalidate() > 0
        assert engine.stats()["analyses"]["entries"] == 0
        assert engine.analyze(listing1_program).cache == "cold"

    def test_invalidate_single_cache_and_unknown_cache(self, engine, listing1_program):
        engine.analyze(listing1_program)
        assert engine.invalidate("analyses") == 1
        assert engine.stats()["builds"]["entries"] == 1  # untouched
        with pytest.raises(KeyError):
            engine.invalidate("nonsense")

    def test_cache_limit_evicts_oldest_entries(self):
        with Engine(cache_limit=2) as engine:
            programs = [
                assemble(".text\nhlt", name=f"p{i}") for i in range(3)
            ]
            for program in programs:
                engine.analyze(program)
            assert engine.stats()["analyses"]["entries"] == 2
            assert engine.analyze(programs[0]).cache == "cold"  # evicted
            assert engine.analyze(programs[2]).cache == "warm"  # retained

    def test_evaluation_cache(self, engine):
        defense, attack = get_defense("lfence"), get_attack("spectre_v1")
        cold = engine.evaluate(defense, attack)
        warm = engine.evaluate(defense, attack)
        assert (cold.cache, warm.cache) == ("cold", "warm")
        assert cold.ok and warm.payload is cold.payload


# ---------------------------------------------------------------------------
# Execution plane: parallel == serial, byte for byte
# ---------------------------------------------------------------------------
class TestExecutionPlane:
    SOURCES = [SecretSource.MAIN_MEMORY, SecretSource.L1_CACHE, SecretSource.STORE_BUFFER]
    DELAYS = [
        DelayMechanism.CONDITIONAL_BRANCH,
        DelayMechanism.KERNEL_PRIVILEGE_CHECK,
        DelayMechanism.TSX_ABORT,
    ]
    CHANNELS = [CovertChannelKind.FLUSH_RELOAD, CovertChannelKind.PRIME_PROBE]

    def test_map_preserves_order_serial_and_parallel(self, engine):
        items = list(range(20))
        assert engine.map(abs, items) == items
        assert engine.map(abs, items, parallel=4) == items

    def test_sharded_attack_space_is_byte_identical_to_serial(self, engine):
        serial = engine.synthesize(self.SOURCES, self.DELAYS, self.CHANNELS)
        parallel = engine.synthesize(
            self.SOURCES, self.DELAYS, self.CHANNELS, parallel=4
        )
        assert serial.data["combinations"] == 18
        assert parallel.to_json() == serial.to_json()

    def test_sharded_matrix_is_byte_identical_to_serial(self, engine):
        defenses = [get_defense(k) for k in ("lfence", "kpti", "invisispec")]
        attacks = [get_attack(k) for k in ("spectre_v1", "meltdown", "fallout")]
        serial = engine.evaluate_matrix(defenses, attacks)
        parallel = engine.evaluate_matrix(defenses, attacks, parallel=2)
        assert parallel.to_json() == serial.to_json()
        assert len(serial.payload) == 9

    def test_matrix_rows_are_key_sorted(self, engine):
        defenses = [get_defense(k) for k in ("ssbb", "lfence")]
        attacks = [get_attack(k) for k in ("spectre_v4", "spectre_v1")]
        rows = engine.evaluate_matrix(defenses, attacks).payload
        keys = [(row.defense_key, row.attack_key) for row in rows]
        assert keys == sorted(keys)

    def test_legacy_matrix_wrapper_matches_engine(self):
        defenses = [get_defense(k) for k in ("lfence", "kpti")]
        attacks = [get_attack(k) for k in ("spectre_v1", "meltdown")]
        legacy = evaluate_matrix(defenses, attacks)
        engine_rows = default_engine().evaluate_matrix(defenses, attacks).payload
        assert [(r.defense_key, r.attack_key, r.effective) for r in legacy] == [
            (r.defense_key, r.attack_key, r.effective) for r in engine_rows
        ]

    def test_novel_combinations_parallel_matches_serial(self):
        serial = novel_combinations(self.SOURCES, self.DELAYS, self.CHANNELS)
        parallel = novel_combinations(
            self.SOURCES, self.DELAYS, self.CHANNELS, parallel=3
        )
        assert serial == parallel
        assert all(not attack.is_published for attack in serial)

    def test_serial_matrix_warms_the_session_cache(self, engine):
        defenses = [get_defense(k) for k in ("lfence", "kpti")]
        attacks = [get_attack(k) for k in ("spectre_v1", "meltdown")]
        engine.evaluate_matrix(defenses, attacks)
        assert engine.stats()["evaluations"]["entries"] == 4
        assert engine.evaluate(defenses[0], attacks[0]).cache == "warm"

    def test_map_propagates_worker_exceptions(self, engine):
        with pytest.raises(ZeroDivisionError):
            engine.map(_reciprocal, [1, 2, 0, 4], parallel=2)

    def test_unpicklable_work_falls_back_to_serial(self, engine):
        double = lambda value: value * 2  # noqa: E731 - deliberately unpicklable
        assert engine.map(double, [1, 2, 3], parallel=2) == [2, 4, 6]

    def test_run_exploits_rejects_duplicate_names(self, engine):
        with pytest.raises(ValueError):
            engine.run_exploits(names=["spectre_v1", "spectre_v1"])

    def test_sharded_exploits_match_serial(self, engine):
        names = ["spectre_v1", "meltdown"]
        serial = engine.run_exploits(names=names)
        parallel = engine.run_exploits(names=names, parallel=2)
        assert serial.data["rows"] == parallel.data["rows"]
        assert serial.ok and parallel.ok  # both leak without defenses
        assert list(parallel.payload) == names

    def test_synth_verdicts_dedupe_structural_twins(self, engine):
        engine.synthesize(self.SOURCES, self.DELAYS, self.CHANNELS)
        stats = engine.stats()["synth_verdicts"]
        # 3 sources x 3 delays = 9 structures for 18 combinations.
        assert stats["misses"] == 9 and stats["hits"] == 9


# ---------------------------------------------------------------------------
# The Result envelope
# ---------------------------------------------------------------------------
class TestResultEnvelope:
    def test_analyze_envelope_round_trips_through_json(self, engine, listing1_program):
        result = engine.analyze(listing1_program)
        decoded = json.loads(result.to_json())
        assert decoded["kind"] == "analyze"
        assert decoded["ok"] is False
        assert decoded["data"]["classification"] == "spectre-type"
        assert decoded["data"]["findings"]

    def test_evaluate_envelope(self, engine):
        result = engine.evaluate(get_defense("lfence"), get_attack("meltdown"))
        decoded = json.loads(result.to_json())
        assert decoded["kind"] == "evaluate" and decoded["ok"] is False
        assert decoded["data"]["applicable"] is False

    def test_exploit_envelope(self, engine):
        result = engine.exploit("spectre_v1")
        decoded = json.loads(result.to_json())
        assert decoded["kind"] == "exploit"
        assert decoded["ok"] is True
        assert decoded["data"]["recovered"] == decoded["data"]["secret"]

    def test_unknown_exploit_raises(self, engine):
        with pytest.raises(KeyError):
            engine.exploit("rowhammer")

    def test_result_is_plain_data(self):
        result = Result(kind="analyze", subject="x", ok=True, cache="none", data={})
        assert result.to_dict() == {
            "kind": "analyze", "subject": "x", "ok": True, "cache": "none", "data": {},
        }


# ---------------------------------------------------------------------------
# Legacy wrappers share the default engine
# ---------------------------------------------------------------------------
class TestDefaultEngine:
    def test_analyze_program_routes_through_default_engine(self):
        fresh = Engine()
        previous = set_default_engine(fresh)
        try:
            program = assemble(LISTING1_TEXT, name="victim")
            report = analyze_program(program)
            assert report.vulnerable
            assert fresh.stats()["analyses"]["misses"] == 1
            assert analyze_program(program) is report  # warm hit
            assert fresh.stats()["analyses"]["hits"] == 1
        finally:
            set_default_engine(previous)

    def test_default_engine_is_a_singleton(self):
        assert default_engine() is default_engine()

    def test_set_default_engine_none_closes_the_replaced_session(self):
        previous = set_default_engine(None)
        try:
            engine = default_engine()
            engine.map(abs, [-1, 1], parallel=2)  # spin up a pool
            replaced = set_default_engine(None)
            assert replaced is engine
            assert engine.closed
            assert engine._executor is None  # the pool was shut down
        finally:
            set_default_engine(previous)

    def test_shims_do_not_resurrect_a_closed_engine(self):
        previous = set_default_engine(None)
        try:
            with default_engine() as engine:
                pass  # the context manager closes the session
            assert engine.closed
            fresh = default_engine()
            assert fresh is not engine and not fresh.closed
        finally:
            set_default_engine(previous)

    def test_closed_engine_still_answers_serially_without_a_pool(self):
        engine = Engine()
        engine.close()
        assert engine.map(abs, [-3, 2], parallel=4) == [3, 2]
        assert engine._executor is None  # parallel call did not respawn one
        assert engine.simulate("spectre_v1").kind == "simulate"


# ---------------------------------------------------------------------------
# Memoized micro-op expansion
# ---------------------------------------------------------------------------
class TestExpansionCache:
    def test_expansion_is_memoized_and_hashable(self):
        one = expansion_for(AuthorizationKind.PAGE_PRIVILEGE_CHECK)
        two = expansion_for(AuthorizationKind.PAGE_PRIVILEGE_CHECK)
        assert one is two
        assert hash(one) == hash(two)
        assert {one, two} == {one}

    def test_software_authorization_still_rejected(self):
        with pytest.raises(ValueError):
            expansion_for(AuthorizationKind.BOUNDS_CHECK_BRANCH)


LISTING1_TEXT = """
.data
probe_array:  address=0x1000000 size=1048576 shared
victim_array: address=0x200000  size=16
victim_size:  address=0x210000  size=8
secret:       address=0x200048  size=1 protected
.text
    clflush [probe_array]
    mov rdx, 0x48
    cmp rdx, [victim_size]
    ja done
    mov rax, byte [victim_array + rdx]
    shl rax, 12
    mov rbx, [probe_array + rax]
done:
    hlt
"""


# ---------------------------------------------------------------------------
# Timing simulation (PR 3): cached simulate, sharded sweeps, new envelopes
# ---------------------------------------------------------------------------
class TestEngineSimulate:
    def test_simulate_cold_then_warm(self, engine):
        cold = engine.simulate("spectre_v1")
        warm = engine.simulate("spectre_v1")
        assert cold.cache == "cold" and warm.cache == "warm"
        assert cold.data == warm.data
        stats = engine.stats()["simulations"]
        assert stats == {"entries": 1, "hits": 1, "misses": 1}

    def test_simulate_envelope_reports_both_verdicts(self, engine):
        result = engine.simulate("spectre_v1")
        assert result.kind == "simulate"
        assert result.data["leaked"] is True
        assert result.data["transmit_beats_squash"] is True
        assert result.data["tsg_leaks"] is True
        assert result.data["theorem1_agrees"] is True
        assert result.ok is False  # ok means the squash won
        json.loads(result.to_json())

    def test_simulate_key_includes_the_defenses(self, engine):
        from repro.uarch import SimDefense

        engine.simulate("spectre_v1")
        defended = engine.simulate(
            "spectre_v1", [SimDefense.PREVENT_SPECULATIVE_LOADS]
        )
        assert defended.cache == "cold"  # different config, different key
        assert defended.data["transmit_beats_squash"] is False
        assert defended.ok is True
        assert "tsg_leaks" not in defended.data  # only stated for undefended runs
        assert engine.stats()["simulations"]["entries"] == 2

    def test_simulate_accepts_exploit_names(self, engine):
        result = engine.simulate("mds")
        assert result.data["scenario"] == "mds"
        assert "tsg_leaks" not in result.data  # not a registry key

    def test_aliased_attacks_share_one_timing_run(self, engine):
        engine.simulate("ridl")
        warm = engine.simulate("zombieload")  # same mds scenario
        assert warm.cache == "warm"
        assert warm.data["attack"] == "zombieload"  # row still names the alias
        assert engine.stats()["simulations"]["entries"] == 1

    def test_simulate_model_reaches_the_timing_plane(self, engine):
        from repro.uarch.timing import TimingModel

        default = engine.simulate("spectre_v1")
        slow_recovery = engine.simulate(
            "spectre_v1", model=TimingModel(squash_penalty=1000)
        )
        assert slow_recovery.cache == "cold"  # model is part of the key
        assert (
            slow_recovery.data["squash_cycle"]
            == default.data["squash_cycle"] - 16 + 1000
        )

    def test_invalidate_simulations(self, engine):
        engine.simulate("spectre_v1")
        assert engine.invalidate("simulations") == 1
        assert engine.stats()["simulations"]["entries"] == 0

    def test_sweep_rows_are_key_sorted_and_cached(self, engine):
        from repro.uarch import SimDefense

        sweep = engine.simulate_sweep(
            attacks=["meltdown", "spectre_v1"],
            defenses=[None, SimDefense.PREVENT_SPECULATIVE_LOADS],
        )
        rows = sweep.data["rows"]
        assert [(row["attack"], tuple(row["defenses"])) for row in rows] == sorted(
            (row["attack"], tuple(row["defenses"])) for row in rows
        )
        assert sweep.data["runs"] == 4
        # Re-sweeping the same grid is pure cache hits.
        before = engine.stats()["simulations"]["misses"]
        engine.simulate_sweep(
            attacks=["meltdown", "spectre_v1"],
            defenses=[None, SimDefense.PREVENT_SPECULATIVE_LOADS],
        )
        assert engine.stats()["simulations"]["misses"] == before

    def test_sharded_sweep_matches_serial(self):
        from repro.uarch import SimDefense

        kwargs = dict(
            attacks=["spectre_v1", "meltdown"],
            defenses=[None, SimDefense.NO_SPECULATIVE_FORWARDING],
        )
        serial = Engine().simulate_sweep(**kwargs)
        with Engine() as session:
            sharded = session.simulate_sweep(parallel=2, **kwargs)
        assert sharded.data == serial.data

    def test_sweep_honors_the_timing_model(self, engine):
        """A contended model must reach every run of the sweep (and key the
        cache separately from the default-model sweep)."""
        from repro.uarch.timing import SERIALIZED_MODEL

        default = engine.simulate_sweep(attacks=["spectre_v2"], defenses=[None])
        serialized = engine.simulate_sweep(
            attacks=["spectre_v2"], defenses=[None], model=SERIALIZED_MODEL
        )
        assert default.data["contended"] is False
        assert serialized.data["contended"] is True
        # Serialized load ports collapse spectre_v2's overlapping misses.
        assert default.data["rows"][0]["transmit_beats_squash"] is True
        assert serialized.data["rows"][0]["transmit_beats_squash"] is False
        assert engine.stats()["simulations"]["entries"] == 2

    def test_sharded_sweep_with_model_matches_serial(self):
        from repro.uarch.timing import CONTENDED_MODEL

        kwargs = dict(
            attacks=["spectre_v1", "spectre_v2"],
            defenses=[None],
            model=CONTENDED_MODEL,
        )
        serial = Engine().simulate_sweep(**kwargs)
        with Engine() as session:
            sharded = session.simulate_sweep(parallel=2, **kwargs)
        assert sharded.data == serial.data


class TestEnginePatchAblation:
    def test_patch_envelope(self, engine, listing1_program):
        result = engine.patch(listing1_program)
        assert result.kind == "patch"
        assert result.ok is True
        assert result.data["fences_inserted"]
        assert "lfence" in result.data["patched_listing"]
        json.loads(result.to_json())

    def test_patch_runs_through_the_session_cache(self, engine, listing1_program):
        engine.analyze(listing1_program)
        engine.patch(listing1_program)
        assert engine.stats()["analyses"]["hits"] >= 1

    def test_ablation_envelope(self, engine):
        result = engine.ablation("spectre_v1")
        assert result.kind == "ablation"
        assert result.data["baseline_leaks"] is True
        assert result.data["effective"] >= 1
        assert result.data["rows"][0]["defense"] == "(no defense)"
        json.loads(result.to_json())

    def test_ablation_unknown_exploit(self, engine):
        with pytest.raises(KeyError):
            engine.ablation("rowhammer")

    def test_sharded_ablation_matches_serial(self):
        """ROADMAP open item: the exploit ablation shards over Engine.map
        (via its explicit exploit scenario grid) with identical rows."""
        serial = Engine().ablation("spectre_v1")
        with Engine() as session:
            sharded = session.ablation("spectre_v1", parallel=2)
        assert sharded.data == serial.data
        assert [row.defense for row in sharded.payload] == [
            row.defense for row in serial.payload
        ]

    def test_ablation_routes_through_the_exploit_grid(self, engine):
        from repro.uarch import SimDefense

        engine.ablation("spectre_v1", defenses=[SimDefense.KERNEL_ISOLATION])
        runs = engine.stats()["runs"]
        assert runs["ablation"] == 1
        assert runs["exploit"] == 2  # baseline + one defended point
        assert runs["grid"] == 2

    def test_ablation_respects_a_custom_config(self, engine):
        from repro.uarch import UarchConfig

        tiny = UarchConfig(speculative_window=1)
        result = engine.ablation("spectre_v1", defenses=[], config=tiny)
        assert result.data["baseline_leaks"] is False  # window too small

    def test_legacy_defense_ablation_wrapper_matches_engine(self):
        from repro.exploits.harness import defense_ablation
        from repro.uarch import SimDefense

        rows = defense_ablation("spectre_v1", [SimDefense.PREVENT_SPECULATIVE_LOADS])
        assert [row.leaked for row in rows] == [True, False]
        assert rows[0].defense is None


class TestAblateWindow:
    """The ROB/RS/port window-length ablation (paper's window ablation)."""

    GRID = [(4, 2), (16, 8)]
    PORTS = [
        ("unbounded", {}),
        ("contended", {"alu_ports": 2, "load_store_ports": 2,
                       "branch_ports": 1, "mul_ports": 1, "cdb_width": 2}),
    ]

    def test_default_port_configs_match_the_reference_models(self):
        """The ablation's literal port grids must not drift from the exported
        reference models."""
        from dataclasses import replace

        from repro.engine import DEFAULT_PORT_CONFIGS
        from repro.uarch.timing import CONTENDED_MODEL, DEFAULT_MODEL, SERIALIZED_MODEL

        configs = dict(DEFAULT_PORT_CONFIGS)
        assert replace(DEFAULT_MODEL, **configs["unbounded"]) == DEFAULT_MODEL
        assert replace(DEFAULT_MODEL, **configs["contended"]) == CONTENDED_MODEL
        assert replace(DEFAULT_MODEL, **configs["serialized"]) == SERIALIZED_MODEL

    def test_rows_cover_the_grid_sorted_and_cached(self, engine):
        result = engine.ablate_window(
            ["spectre_v1"], window_grid=self.GRID, port_configs=self.PORTS
        )
        assert result.kind == "window_ablation"
        rows = result.data["rows"]
        assert len(rows) == len(self.GRID) * len(self.PORTS)
        keys = [(r["attack"], r["rob_size"], r["rs_entries"], r["ports"]) for r in rows]
        assert keys == sorted(keys)
        json.loads(result.to_json())
        # Re-running the same grid is pure cache hits.
        before = engine.stats()["simulations"]["misses"]
        engine.ablate_window(
            ["spectre_v1"], window_grid=self.GRID, port_configs=self.PORTS
        )
        assert engine.stats()["simulations"]["misses"] == before

    def test_small_window_closes_the_spectre_v1_race(self, engine):
        """The paper's ablation reproduced in cycles: at (4, 2) the send can
        no longer issue before the stalled bounds check resolves."""
        result = engine.ablate_window(
            ["spectre_v1"], window_grid=self.GRID, port_configs=self.PORTS
        )
        by_key = {
            (r["rob_size"], r["rs_entries"], r["ports"]): r
            for r in result.data["rows"]
        }
        assert by_key[(16, 8, "contended")]["transmit_beats_squash"] is True
        assert by_key[(4, 2, "contended")]["transmit_beats_squash"] is False
        assert (
            by_key[(4, 2, "contended")]["window_cycles"]
            < by_key[(16, 8, "contended")]["window_cycles"]
        )

    def test_contention_channel_rows_show_a_measurable_transmit(self, engine):
        """Acceptance criterion: the contention channel's transmit is a
        nonzero cycle delta under every bounded port configuration, and
        exactly zero on the unbounded machine."""
        result = engine.ablate_window(
            ["spectre_v1"], window_grid=[(16, 8)], port_configs=self.PORTS
        )
        channel_rows = {row["ports"]: row for row in result.data["contention_channel"]}
        assert channel_rows["unbounded"]["cycle_delta"] == 0
        assert channel_rows["unbounded"]["detected"] is False
        assert channel_rows["contended"]["cycle_delta"] > 0
        assert channel_rows["contended"]["detected"] is True
        assert channel_rows["contended"]["recovered"] == channel_rows["contended"]["value"]

    def test_sharded_ablation_matches_serial(self):
        kwargs = dict(
            attacks=["spectre_v1", "meltdown"],
            window_grid=[(4, 2), (16, 8)],
            port_configs=[("unbounded", {}), ("serialized", {
                "alu_ports": 1, "load_store_ports": 1, "branch_ports": 1,
                "mul_ports": 1, "cdb_width": 1})],
        )
        serial = Engine().ablate_window(**kwargs)
        with Engine() as session:
            sharded = session.ablate_window(parallel=2, **kwargs)
        assert sharded.data == serial.data

    def test_aliased_attacks_share_ablation_runs(self):
        """ridl and zombieload share the mds scenario: the sharded ablation
        must ship (and cache) one simulation per unique key, not per alias."""
        with Engine() as session:
            result = session.ablate_window(
                ["ridl", "zombieload"],
                window_grid=self.GRID,
                port_configs=self.PORTS,
                parallel=2,
            )
        expected_models = len(self.GRID) * len(self.PORTS)
        assert len(result.data["rows"]) == 2 * expected_models
        assert session.stats()["simulations"]["entries"] == expected_models

    @pytest.mark.slow
    def test_full_registry_ablation(self):
        """The full 19-attack x default-grid sweep (excluded from tier-1)."""
        from repro.attacks.registry import keys as registry_keys
        from repro.engine import DEFAULT_PORT_CONFIGS, DEFAULT_WINDOW_GRID

        result = Engine().ablate_window()
        expected = (
            len(set(registry_keys()))
            * len(DEFAULT_WINDOW_GRID)
            * len(DEFAULT_PORT_CONFIGS)
        )
        assert result.data["runs"] == expected
        # Every attack leaks somewhere and the smallest window kills at
        # least the Spectre v1 family.
        leaking = {r["attack"] for r in result.data["rows"] if r["transmit_beats_squash"]}
        assert leaking == set(registry_keys())
        small = [
            r for r in result.data["rows"]
            if (r["rob_size"], r["rs_entries"]) == (4, 2) and r["attack"] == "spectre_v1"
        ]
        assert small and all(not r["transmit_beats_squash"] for r in small)
