"""Tests for the Section V-A attack-space generator."""

from __future__ import annotations

import pytest

from repro.attacks import (
    CovertChannelKind,
    DelayMechanism,
    SecretSource,
    SynthesizedAttack,
    enumerate_attack_space,
    novel_combinations,
    published_combinations,
)


class TestEnumeration:
    def test_full_space_size(self):
        expected = len(SecretSource) * len(DelayMechanism) * len(CovertChannelKind)
        assert sum(1 for _ in enumerate_attack_space()) == expected

    def test_restricted_enumeration(self):
        attacks = list(
            enumerate_attack_space(
                sources=[SecretSource.MAIN_MEMORY],
                delays=[DelayMechanism.KERNEL_PRIVILEGE_CHECK],
                channels=[CovertChannelKind.FLUSH_RELOAD, CovertChannelKind.PRIME_PROBE],
            )
        )
        assert len(attacks) == 2

    def test_published_combination_detected(self):
        meltdown_like = SynthesizedAttack(
            SecretSource.MAIN_MEMORY,
            DelayMechanism.KERNEL_PRIVILEGE_CHECK,
            CovertChannelKind.FLUSH_RELOAD,
        )
        assert meltdown_like.is_published

    def test_new_combination_detected(self):
        """Changing the covert channel of a known attack yields a new attack."""
        new_attack = SynthesizedAttack(
            SecretSource.MAIN_MEMORY,
            DelayMechanism.KERNEL_PRIVILEGE_CHECK,
            CovertChannelKind.FUNCTIONAL_UNIT,
        )
        assert not new_attack.is_published
        assert "NEW candidate" in new_attack.describe()

    def test_novel_combinations_exclude_published(self):
        novel = novel_combinations()
        assert all(not attack.is_published for attack in novel)
        published = published_combinations()
        assert all(attack.is_published for attack in published)
        assert novel and published

    def test_published_plus_novel_covers_space(self):
        total = sum(1 for _ in enumerate_attack_space())
        assert len(novel_combinations()) + len(published_combinations()) == total


class TestSynthesizedGraphs:
    def test_branch_delay_builds_spectre_style_graph(self):
        attack = SynthesizedAttack(
            SecretSource.OUT_OF_BOUNDS_MEMORY,
            DelayMechanism.CONDITIONAL_BRANCH,
            CovertChannelKind.FLUSH_RELOAD,
        )
        graph = attack.build_graph()
        assert not graph.is_meltdown_type
        assert graph.is_vulnerable()

    def test_fault_delay_builds_meltdown_style_graph(self):
        attack = SynthesizedAttack(
            SecretSource.LINE_FILL_BUFFER,
            DelayMechanism.TSX_ABORT,
            CovertChannelKind.PRIME_PROBE,
        )
        graph = attack.build_graph()
        assert graph.is_meltdown_type
        assert graph.is_vulnerable()
        assert any("line fill buffer" in name for name in graph.secret_access_nodes)

    def test_every_novel_combination_yields_a_vulnerable_graph(self):
        """The paper: any new combination of the three dimensions gives a new attack."""
        sample = novel_combinations(
            sources=[SecretSource.STORE_BUFFER, SecretSource.SPECIAL_REGISTER],
            delays=[DelayMechanism.CONDITIONAL_BRANCH, DelayMechanism.LOAD_FAULT_CHECK],
            channels=[CovertChannelKind.BTB, CovertChannelKind.FLUSH_RELOAD],
        )
        assert sample
        for attack in sample:
            assert attack.build_graph().is_vulnerable()
