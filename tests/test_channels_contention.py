"""Tests for the functional-unit contention covert channel.

The channel transmits through FU-port occupancy on the OoO timing plane:
contended ports stretch the receiver's probe burst by a deterministic,
linear number of cycles.  These tests pin the transmit/decode roundtrip, the
structural undetectability on an unbounded machine (the reason the
pre-contention timing plane could not model this family), and the
degradation under partial mitigation (port duplication).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.channels import ContentionChannel, PortContentionSurface
from repro.channels.contention import WIDE_WINDOW_MODEL
from repro.uarch.timing import TimingModel


def contended_surface(**overrides) -> PortContentionSurface:
    return PortContentionSurface(
        replace(WIDE_WINDOW_MODEL, mul_ports=1, cdb_width=1, **overrides)
    )


class TestPortContentionSurface:
    def test_default_surface_is_contended(self):
        surface = PortContentionSurface()
        assert surface.contended
        assert surface.pool == "mul"

    def test_mul_surface_latency_follows_the_config_knob(self):
        """The channel models the same multiplier pipe TimingCPU simulates,
        so its default op latency must come from the shared config knob."""
        from repro.uarch.config import DEFAULT_CONFIG

        assert PortContentionSurface().op_latency == DEFAULT_CONFIG.mul_latency
        assert PortContentionSurface(pool="alu").op_latency == 4  # burst shape

    def test_occupancy_delta_is_linear_in_sender_ops(self):
        surface = PortContentionSurface()
        unit = surface.occupancy_delta(1)
        assert unit == surface.op_latency
        for senders in range(8):
            assert surface.occupancy_delta(senders) == senders * unit

    def test_unbounded_pool_has_zero_delta(self):
        surface = PortContentionSurface(WIDE_WINDOW_MODEL)
        assert not surface.contended
        assert surface.occupancy_delta(6) == 0

    @pytest.mark.parametrize("pool", ["alu", "load_store", "branch", "mul"])
    def test_every_pool_can_carry_the_channel(self, pool):
        model = replace(WIDE_WINDOW_MODEL, **{f"{pool}_ports": 1})
        surface = PortContentionSurface(model, pool=pool)
        assert surface.occupancy_delta(3) == 3 * surface.op_latency

    def test_event_and_rescan_surfaces_measure_identically(self):
        event = PortContentionSurface(scheduler="event")
        rescan = PortContentionSurface(scheduler="rescan")
        for senders in range(6):
            assert event.probe(senders, 4) == rescan.probe(senders, 4)

    def test_unknown_pool_and_scheduler_are_rejected(self):
        with pytest.raises(ValueError):
            PortContentionSurface(pool="fpu")
        with pytest.raises(ValueError):
            PortContentionSurface(scheduler="magic")
        with pytest.raises(ValueError):
            PortContentionSurface().probe(0, 0)


class TestContentionChannel:
    def test_transmit_roundtrip_recovers_every_value(self):
        channel = ContentionChannel()
        for value in range(channel.entries):
            observation = channel.transmit(value)
            assert observation.detected
            assert observation.value == value

    def test_transmit_is_a_nonzero_cycle_delta(self):
        channel = ContentionChannel()
        observation = channel.transmit(5)
        baseline, measured = observation.latencies
        assert measured - baseline == 5 * channel.unit_delta
        assert channel.unit_delta > 0

    def test_unbounded_ports_defeat_the_channel(self):
        channel = ContentionChannel(PortContentionSurface(WIDE_WINDOW_MODEL))
        observation = channel.transmit(5)
        assert not observation.detected
        assert observation.value is None
        assert channel.unit_delta == 0

    def test_port_duplication_degrades_the_channel(self):
        """With two mul ports, sender ops pair up and the linear encoding
        breaks: values beyond one unit no longer decode faithfully."""
        channel = ContentionChannel(
            PortContentionSurface(replace(WIDE_WINDOW_MODEL, mul_ports=2))
        )
        decoded = [channel.transmit(value).value for value in range(6)]
        assert decoded != list(range(6))

    def test_out_of_range_values_are_rejected(self):
        channel = ContentionChannel(entries=4)
        with pytest.raises(ValueError):
            channel.send(4)
        with pytest.raises(ValueError):
            channel.send(-1)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ContentionChannel(entries=1)
        with pytest.raises(ValueError):
            ContentionChannel(unit_ops=0)
        with pytest.raises(ValueError):
            ContentionChannel(probe_ops=0)

    def test_receive_without_send_reads_the_baseline(self):
        channel = ContentionChannel()
        observation = channel.receive()
        assert observation.value == 0  # zero occupancy = value 0

    def test_receive_consumes_the_staged_burst(self):
        """Contention is not a persistent-state channel: a second receive
        without a new send must measure an idle machine, not replay the old
        value."""
        channel = ContentionChannel()
        assert channel.transmit(5).value == 5
        assert channel.receive().value == 0

    def test_wider_units_scale_the_signal(self):
        narrow = ContentionChannel(contended_surface(), unit_ops=1)
        wide = ContentionChannel(contended_surface(), unit_ops=3)
        narrow.prepare()
        wide.prepare()
        assert wide.unit_delta == 3 * narrow.unit_delta
        assert wide.transmit(7).value == 7

    def test_channel_works_on_a_custom_timing_model(self):
        model = TimingModel(
            dispatch_width=64, commit_width=64, rob_size=1024, rs_entries=1024,
            alu_ports=1, cdb_width=2,
        )
        channel = ContentionChannel(PortContentionSurface(model, pool="alu"))
        assert channel.transmit(9).value == 9
