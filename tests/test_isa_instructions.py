"""Tests for the tiny ISA instruction set."""

from __future__ import annotations

import pytest

from repro.isa import (
    Alu,
    Branch,
    Call,
    Clflush,
    Cmp,
    Fence,
    FpExtract,
    FpLoad,
    Halt,
    IndirectJmp,
    Jmp,
    Load,
    Mov,
    Nop,
    Rdmsr,
    Rdtsc,
    Ret,
    Store,
    imm,
    mem,
    reg,
)
from repro.isa.operands import FLAGS, Label


class TestDataflowSets:
    def test_mov_register_to_register(self):
        instruction = Mov(reg("rax"), reg("rbx"))
        assert instruction.reads_registers() == frozenset({"rbx"})
        assert instruction.writes_registers() == frozenset({"rax"})
        assert not instruction.is_load and not instruction.is_store

    def test_load_reads_address_registers(self):
        instruction = Load(reg("rax"), mem(base="rbx", index="rcx"))
        assert instruction.reads_registers() == frozenset({"rbx", "rcx"})
        assert instruction.writes_registers() == frozenset({"rax"})
        assert instruction.is_load and instruction.memory_read is not None

    def test_store_reads_address_and_value(self):
        instruction = Store(mem(base="rbx"), reg("rax"))
        assert instruction.reads_registers() == frozenset({"rbx", "rax"})
        assert instruction.is_store and instruction.memory_write is not None

    def test_alu_reads_and_writes_destination(self):
        instruction = Alu("shl", reg("rax"), imm(12))
        assert "rax" in instruction.reads_registers()
        assert instruction.writes_registers() == frozenset({"rax", FLAGS})
        assert instruction.mnemonic == "shl"

    def test_cmp_with_memory_operand_is_a_load(self):
        instruction = Cmp(reg("rdx"), mem(symbol="victim_size"))
        assert instruction.is_load
        assert instruction.writes_registers() == frozenset({FLAGS})

    def test_branch_reads_flags(self):
        instruction = Branch("ja", Label("done"))
        assert instruction.reads_registers() == frozenset({FLAGS})
        assert instruction.is_branch

    def test_indirect_jump_reads_target_register(self):
        instruction = IndirectJmp(reg("r11"))
        assert instruction.reads_registers() == frozenset({"r11"})
        assert instruction.is_branch

    def test_clflush_reads_address_registers(self):
        assert Clflush(mem(base="rdi")).reads_registers() == frozenset({"rdi"})

    def test_rdmsr_is_privileged(self):
        instruction = Rdmsr(reg("rax"), 0x10)
        assert instruction.is_privileged
        assert instruction.writes_registers() == frozenset({"rax"})

    def test_rdtsc_writes_destination(self):
        assert Rdtsc(reg("r8")).writes_registers() == frozenset({"r8"})

    def test_fp_instructions(self):
        load = FpLoad(reg("xmm0"), mem(symbol="data"))
        extract = FpExtract(reg("rax"), reg("xmm0"))
        assert load.is_load and load.writes_registers() == frozenset({"xmm0"})
        assert extract.reads_registers() == frozenset({"xmm0"})

    def test_control_instructions_have_no_dataflow(self):
        for instruction in (Jmp(Label("x")), Call(Label("x")), Ret(), Nop(), Halt()):
            assert instruction.reads_registers() == frozenset()
            assert instruction.writes_registers() == frozenset()


class TestValidation:
    def test_unknown_alu_op_rejected(self):
        with pytest.raises(ValueError):
            Alu("rot", reg("rax"), imm(1))

    def test_unknown_branch_condition_rejected(self):
        with pytest.raises(ValueError):
            Branch("jz", Label("x"))

    def test_unknown_fence_kind_rejected(self):
        with pytest.raises(ValueError):
            Fence(kind="sfence")

    def test_fp_load_requires_fp_destination(self):
        with pytest.raises(ValueError):
            FpLoad(reg("rax"), mem(symbol="data"))

    def test_fp_extract_requires_fp_source_and_gp_destination(self):
        with pytest.raises(ValueError):
            FpExtract(reg("rax"), reg("rbx"))
        with pytest.raises(ValueError):
            FpExtract(reg("xmm1"), reg("xmm0"))


class TestClassification:
    def test_fence_is_serializing(self):
        assert Fence(kind="lfence").is_serializing
        assert not Nop().is_serializing

    def test_branch_family(self):
        assert Branch("ja", Label("x")).is_branch
        assert Jmp(Label("x")).is_branch
        assert Call(Label("x")).is_branch
        assert Ret().is_branch
        assert not Load(reg("rax"), mem(symbol="x")).is_branch

    def test_str_renderings(self):
        assert str(Load(reg("rax"), mem(base="rbx"), size=1)) == "mov rax, byte [rbx]"
        assert str(Fence(kind="mfence")) == "mfence"
        assert str(Branch("ja", Label("done"))) == "ja done"

    def test_label_and_comment_carried(self):
        instruction = Nop(label="entry", comment="does nothing")
        assert instruction.label == "entry"
        assert instruction.comment == "does nothing"
