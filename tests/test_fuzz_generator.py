"""The seeded gadget generator: determinism, shape space, dual-oracle
agreement and the shrinker's contract.

Seed determinism is checked *cross-process* (a spawned interpreter must
rebuild byte-identical programs -- the property that makes fuzz points
content-addressable), and the shrinker is checked on its two invariants:
the minimal case still satisfies the predicate, and every accepted step
strictly reduced the instruction count.
"""

from __future__ import annotations

import multiprocessing
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.fuzz.generator import (
    CHANNELS,
    FENCES,
    FUZZ_SECRET,
    MAX_DELAY,
    SOURCES,
    GadgetShape,
    build_program,
    case_from_shape,
    dual_verdict,
    iter_cases,
    make_case,
    make_shape,
    shrink_case,
)

pytestmark = pytest.mark.fuzz


def _sha_at(coordinate):
    seed, index = coordinate
    return make_case(seed, index).sha


class TestSeedDeterminism:
    def test_same_coordinates_same_program(self):
        for index in range(16):
            first = make_case(11, index)
            again = make_case(11, index)
            assert first.sha == again.sha
            assert first.program.listing() == again.program.listing()
            assert first.shape == again.shape

    def test_different_coordinates_explore_the_space(self):
        shapes = {make_shape(3, index) for index in range(64)}
        assert len(shapes) > 16  # the axes actually vary
        shas = {case.sha for case in iter_cases(3, 64)}
        assert len(shas) == len({(c.shape) for c in iter_cases(3, 64)})

    def test_seed_changes_the_draw(self):
        assert [make_shape(0, i) for i in range(32)] != [
            make_shape(1, i) for i in range(32)
        ]

    def test_hash_stable_across_spawned_processes(self):
        """A spawned interpreter (fresh PYTHONHASHSEED) rebuilds the exact
        same programs: the generator never leans on hash randomization."""
        coordinates = [(17, index) for index in range(8)]
        local = [_sha_at(coordinate) for coordinate in coordinates]
        context = multiprocessing.get_context("spawn")
        with context.Pool(2) as pool:
            remote = pool.map(_sha_at, coordinates)
        assert remote == local

    def test_hash_stable_under_different_pythonhashseed(self):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        script = (
            "from repro.fuzz.generator import make_case;"
            "print(','.join(make_case(17, i).sha for i in range(4)))"
        )
        runs = set()
        for hashseed in ("1", "2"):
            env["PYTHONHASHSEED"] = hashseed
            completed = subprocess.run(
                [sys.executable, "-c", script],
                env=env, capture_output=True, text=True, timeout=60,
            )
            assert completed.returncode == 0, completed.stderr
            runs.add(completed.stdout.strip())
        assert len(runs) == 1
        assert runs.pop() == ",".join(make_case(17, i).sha for i in range(4))


class TestShapeSpace:
    def test_every_draw_is_inside_the_axes(self):
        for index in range(128):
            shape = make_shape(5, index)
            assert shape.source in SOURCES
            assert shape.channel in CHANNELS
            assert shape.fence in FENCES
            assert 0 <= shape.delay <= MAX_DELAY

    def test_bucket_ignores_the_delay_knob(self):
        a = GadgetShape("bounds_check", 0, "direct", "none")
        b = GadgetShape("bounds_check", 4, "direct", "none")
        assert a.bucket == b.bucket
        assert a.bucket == "bounds_check/direct/fence=none"

    def test_shape_roundtrips_through_dict(self):
        shape = make_shape(9, 3)
        assert GadgetShape.from_dict(shape.to_dict()) == shape

    def test_every_knob_adds_instructions(self):
        base = GadgetShape("bounds_check", 0, "direct", "none")
        baseline = len(build_program(base).instructions)
        for delay in range(1, MAX_DELAY + 1):
            grown = GadgetShape("bounds_check", delay, "direct", "none")
            assert len(build_program(grown).instructions) == baseline + delay
        for fence in FENCES[1:]:
            fenced = GadgetShape("bounds_check", 0, "direct", fence)
            assert len(build_program(fenced).instructions) == baseline + 1
        for channel in ("aliased", "double_shift"):
            widened = GadgetShape("bounds_check", 0, channel, "none")
            assert len(build_program(widened).instructions) == baseline + 1


class TestDualOracleAgreement:
    def test_sampled_campaign_slice_agrees_everywhere(self):
        leaks = 0
        for case in iter_cases(0, 24):
            verdict = dual_verdict(case)
            assert verdict.agrees, case.shape.describe()
            if verdict.tsg_leaks:
                leaks += 1
                assert verdict.recovered == FUZZ_SECRET
        assert leaks > 0  # the slice exercises both verdicts

    def test_fences_gate_the_leak_as_the_tsg_predicts(self):
        # The paper's Table-2 physics on generated gadgets: an lfence
        # before the transmitting load kills a Spectre-style leak ...
        safe = case_from_shape(
            0, 0, GadgetShape("bounds_check", 2, "direct", "before_send")
        )
        verdict = dual_verdict(safe)
        assert verdict.agrees and not verdict.tsg_leaks
        # ... while one after it changes nothing.
        leaky = case_from_shape(
            0, 0, GadgetShape("bounds_check", 2, "direct", "after_send")
        )
        verdict = dual_verdict(leaky)
        assert verdict.agrees and verdict.tsg_leaks

    def test_injected_no_flush_splits_the_oracles(self):
        case = case_from_shape(
            0, 0, GadgetShape("bounds_check", 2, "aliased", "none")
        )
        clean = dual_verdict(case)
        assert clean.agrees and clean.tsg_leaks
        broken = dual_verdict(case, inject="no_flush")
        assert broken.tsg_leaks and not broken.transmit_beats_squash
        assert not broken.agrees

    def test_unknown_injection_is_rejected(self):
        case = make_case(0, 0)
        with pytest.raises(ValueError, match="injection"):
            dual_verdict(case, inject="bogus")


class TestShrinker:
    def _disagreeing_case(self):
        return case_from_shape(
            0, 0, GadgetShape("bounds_check", MAX_DELAY, "aliased", "after_send")
        )

    @staticmethod
    def _still_disagrees(candidate):
        return not dual_verdict(candidate, inject="no_flush").agrees

    def test_minimal_case_still_disagrees_and_is_strictly_smaller(self):
        case = self._disagreeing_case()
        assert self._still_disagrees(case)  # the predicate holds going in
        minimal = shrink_case(case, self._still_disagrees)
        assert self._still_disagrees(minimal)
        assert minimal.size < case.size
        # The fully shrunk bounds-check disagreement: no delay chain, the
        # narrow channel, no fence.
        assert minimal.shape.delay == 0
        assert minimal.shape.channel == "direct"
        assert minimal.shape.fence == "none"

    def test_shrinking_preserves_the_coordinates(self):
        case = self._disagreeing_case()
        minimal = shrink_case(case, self._still_disagrees)
        assert (minimal.seed, minimal.index) == (case.seed, case.index)

    def test_unshrinkable_case_comes_back_unchanged(self):
        case = case_from_shape(
            0, 0, GadgetShape("bounds_check", 0, "direct", "none")
        )
        minimal = shrink_case(case, self._still_disagrees)
        assert minimal.shape == case.shape

    def test_predicate_rejecting_everything_keeps_the_original(self):
        case = self._disagreeing_case()
        minimal = shrink_case(case, lambda candidate: False)
        assert minimal.shape == case.shape

    def test_every_accepted_step_shrank_monotonically(self):
        """The shrinker only ever moves to strictly smaller programs --
        checked by instrumenting the predicate with every size it saw."""
        case = self._disagreeing_case()
        sizes = []

        def predicate(candidate):
            ok = self._still_disagrees(candidate)
            if ok:
                sizes.append(candidate.size)
            return ok

        minimal = shrink_case(case, predicate)
        assert sizes, "shrinker never advanced"
        assert all(size < case.size for size in sizes)
        assert minimal.size == min(sizes)
