"""Tests for the typed attack graph."""

from __future__ import annotations

import pytest

from repro.attacks import Nodes
from repro.core import (
    AttackGraph,
    AttackPart,
    AttackStep,
    DependencyKind,
    ExecutionLevel,
    OperationType,
    ProtectionPoint,
    SecurityDependency,
)


def minimal_attack_graph() -> AttackGraph:
    """A hand-built four-node attack graph with one missing security dependency."""
    graph = AttackGraph(name="minimal")
    graph.add_step("setup", OperationType.SETUP, AttackStep.SETUP)
    graph.add_step("auth", OperationType.AUTHORIZATION, AttackStep.DELAYED_AUTHORIZATION,
                   after=["setup"])
    graph.add_step("access", OperationType.SECRET_ACCESS, AttackStep.SECRET_ACCESS,
                   speculative=True, after=["setup"])
    graph.add_step("send", OperationType.SEND, AttackStep.USE_AND_SEND,
                   speculative=True, after=["access"], kind=DependencyKind.DATA)
    graph.add_step("receive", OperationType.RECEIVE, AttackStep.RECEIVE, after=["send"])
    return graph


class TestVertexClasses:
    def test_node_class_properties(self):
        graph = minimal_attack_graph()
        assert graph.setup_nodes == ["setup"]
        assert graph.authorization_nodes == ["auth"]
        assert graph.secret_access_nodes == ["access"]
        assert graph.send_nodes == ["send"]
        assert graph.receive_nodes == ["receive"]
        assert set(graph.speculative_window) == {"access", "send"}

    def test_steps_and_parts(self):
        graph = minimal_attack_graph()
        assert graph.nodes_in_step(AttackStep.SECRET_ACCESS) == ["access"]
        assert set(graph.nodes_in_part(AttackPart.COVERT_CHANNEL)) == {"setup", "send", "receive"}
        assert AttackStep.SETUP in graph.steps_present()

    def test_attack_step_part_mapping(self):
        assert AttackStep.SECRET_ACCESS.part is AttackPart.SECRET_ACCESS
        assert AttackStep.RECEIVE.part is AttackPart.COVERT_CHANNEL
        assert AttackStep.SETUP.part is AttackPart.COVERT_CHANNEL

    def test_meltdown_type_detection(self, spectre_v1_graph, meltdown_graph):
        assert not spectre_v1_graph.is_meltdown_type
        assert meltdown_graph.is_meltdown_type

    def test_validate_complete_graph(self, spectre_v1_graph):
        assert spectre_v1_graph.validate() == []

    def test_validate_reports_missing_classes(self):
        graph = AttackGraph(name="incomplete")
        graph.add_step("auth", OperationType.AUTHORIZATION, AttackStep.DELAYED_AUTHORIZATION)
        problems = graph.validate()
        assert any("secret_access" in problem for problem in problems)
        assert any("receive" in problem for problem in problems)


class TestVulnerabilityAnalysis:
    def test_minimal_graph_is_vulnerable(self):
        graph = minimal_attack_graph()
        assert graph.is_vulnerable()
        assert graph.secret_reachable_before_authorization()

    def test_vulnerabilities_describe_the_race(self):
        graph = minimal_attack_graph()
        vulnerability = graph.find_vulnerabilities(points=[ProtectionPoint.ACCESS])[0]
        assert vulnerability.dependency.authorization == "auth"
        assert vulnerability.dependency.protected == "access"
        assert vulnerability.race.involves("auth")

    def test_authorization_races(self, spectre_v1_graph):
        racing = set()
        for race in spectre_v1_graph.authorization_races():
            racing.update(race.as_pair())
        assert Nodes.LOAD_S in racing
        assert Nodes.LOAD_R in racing

    def test_with_security_dependency_defeats_minimal_graph(self):
        graph = minimal_attack_graph()
        defended = graph.with_security_dependency(SecurityDependency("auth", "access"))
        assert not defended.is_vulnerable()
        assert graph.is_vulnerable(), "original graph must be untouched"

    def test_with_security_dependencies_is_idempotent_on_existing_edges(self):
        graph = minimal_attack_graph()
        dependency = SecurityDependency("auth", "access")
        defended = graph.with_security_dependencies([dependency, dependency])
        assert sum(1 for edge in defended.edges if edge.is_security) == 1


class TestReporting:
    def test_summary_fields(self, spectre_v1_graph):
        summary = spectre_v1_graph.summary()
        assert summary["vulnerable"] is True
        assert summary["meltdown_type"] is False
        assert Nodes.LOAD_S in summary["secret_access_nodes"]
        assert summary["vertices"] == len(spectre_v1_graph)

    def test_describe_mentions_vulnerabilities(self, spectre_v1_graph):
        text = spectre_v1_graph.describe()
        assert "missing security dependencies" in text
        assert Nodes.LOAD_S in text

    def test_describe_defended_graph_reports_no_vulnerabilities(self):
        graph = minimal_attack_graph()
        defended = graph.with_security_dependency(SecurityDependency("auth", "access"))
        assert "attack defeated" in defended.describe()

    def test_copy_preserves_description(self, spectre_v1_graph):
        clone = spectre_v1_graph.copy()
        assert clone.description == spectre_v1_graph.description
