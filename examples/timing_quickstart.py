#!/usr/bin/env python
"""Quickstart for the cycle-accurate OoO timing core (``repro.uarch.timing``).

Run from the repo root::

    PYTHONPATH=src python examples/timing_quickstart.py

The walk-through measures the race the paper's Theorem 1 predicts: a
Spectre v1 victim run on the event-driven Tomasulo core, cycle stamps for the
window open / covert transmit / authorization resolve / squash, the effect of
a defense on the same race, and the registry-wide TSG cross-validation
through the ``Engine`` session API.
"""

from __future__ import annotations

from repro.engine import Engine
from repro.uarch import SimDefense
from repro.uarch.timing.validate import cross_validate, timed_exploit, validation_report


def main() -> None:
    # ------------------------------------------------------------------
    # 1. One attack, cycle by cycle.
    # ------------------------------------------------------------------
    print("=== Spectre v1 on the timing core ===")
    result = timed_exploit("spectre_v1")
    trace = result.timing
    print(f"functional verdict: {'LEAKED' if result.success else 'no leak'} "
          f"(recovered {result.recovered:#x})")
    for event in trace.key_events():
        print(f"  cycle {event.cycle:>5}: {event.kind:<12} {event.detail}")
    window = trace.windows[0]
    print(f"measured window: {window.window_cycles} cycles; transmit "
          f"@{window.transmit_cycle} {'<=' if window.leaked_in_time else '>'} "
          f"squash @{window.squash_cycle} -> "
          f"{'transmit wins the race' if window.leaked_in_time else 'squash wins'}")

    # ------------------------------------------------------------------
    # 2. The same race under a defense: the transmit never issues.
    # ------------------------------------------------------------------
    print("\n=== ... with speculative loads prevented ===")
    engine = Engine()
    defended = engine.simulate("spectre_v1", [SimDefense.PREVENT_SPECULATIVE_LOADS])
    print(f"transmit cycle: {defended.data['transmit_cycle']} "
          f"(squash @{defended.data['squash_cycle']}) -> "
          f"{'leak' if defended.data['transmit_beats_squash'] else 'defended'}")

    # ------------------------------------------------------------------
    # 3. Simulations are content-hash cached on (attack, config, secret).
    # ------------------------------------------------------------------
    warm = engine.simulate("spectre_v1", [SimDefense.PREVENT_SPECULATIVE_LOADS])
    print(f"repeated simulate: cache={warm.cache} "
          f"(stats: {engine.stats()['simulations']})")

    # ------------------------------------------------------------------
    # 4. Theorem 1, registry-wide: measured race == TSG verdict.
    # ------------------------------------------------------------------
    print("\n=== Theorem 1 cross-validation ===")
    print(validation_report(cross_validate()))

    engine.close()


if __name__ == "__main__":
    main()
