#!/usr/bin/env python3
"""Quickstart: model an attack, find the race, add the security dependency.

This walks through the paper's core ideas in a few lines of code:

1. build the Figure 1 attack graph for Spectre v1,
2. find the missing security dependencies (races between the authorization
   and the secret access / use / send operations),
3. apply a defense strategy and verify the attack no longer succeeds,
4. regenerate the paper's Table I / Table III from the attack catalog.
"""

from repro.analysis import ascii_graph, table1, table3
from repro.attacks import Nodes, get
from repro.core import has_race
from repro.defenses import apply_prevent_access, attack_succeeds, evaluate_defense
from repro.defenses import get as get_defense


def main() -> None:
    # 1. Build the Spectre v1 attack graph (Figure 1 of the paper).
    spectre = get("spectre_v1")
    graph = spectre.build_graph()
    print("=" * 72)
    print(f"Attack graph for {spectre.name} ({spectre.cve})")
    print("=" * 72)
    print(ascii_graph(graph))

    # 2. The root cause: races between authorization and the speculated operations.
    print("\nMissing security dependencies (the vulnerabilities):")
    for vulnerability in graph.find_vulnerabilities():
        print(f"  - {vulnerability.dependency}")
    print(
        "\nRace between branch resolution and the secret access:",
        has_race(graph, Nodes.BRANCH_RESOLUTION, Nodes.LOAD_S),
    )
    print("Attack succeeds on unprotected hardware:", attack_succeeds(graph))

    # 3. Defense strategy 1: prevent access before authorization (e.g. LFENCE).
    defended = apply_prevent_access(graph)
    print("\nAfter adding the security dependency (strategy 1 / LFENCE):")
    print("  race removed:", not has_race(defended, Nodes.BRANCH_RESOLUTION, Nodes.LOAD_S))
    print("  attack succeeds:", attack_succeeds(defended))

    # The same conclusion through the defense catalog.
    evaluation = evaluate_defense(get_defense("lfence"), spectre)
    print(f"  catalog verdict: {evaluation}")

    # 4. Regenerate the paper's tables.
    print("\nTable I -- speculative attacks and their variants")
    print(table1())
    print("\nTable III -- authorization and illegal-access nodes")
    print(table3())


if __name__ == "__main__":
    main()
