#!/usr/bin/env python3
"""The Section V-C tool: construct attack graphs from code, find and patch races.

Feeds the paper's Listing 1 (Spectre v1) and Listing 2 (Meltdown) -- written
in the library's tiny assembly dialect -- through the Figure 9 flow:

* decide whether the program needs architecture-level or micro-architecture
  level modelling,
* build the attack graph from the program's existing dependencies,
* report every missing security dependency (race), and
* patch the software-patchable ones by inserting an ``lfence``.
"""

from repro.analysis import ascii_graph
from repro.graphtool import analyze_program, patch_program
from repro.isa import assemble

LISTING1 = """
; Listing 1 -- Spectre v1: bounds check bypass with a Flush+Reload channel
.data
probe_array:  address=0x1000000 size=1048576 shared
victim_array: address=0x200000  size=16
victim_size:  address=0x210000  size=8
secret:       address=0x200048  size=1 protected
.text
    clflush [probe_array]              ; establish the covert channel
    mov rdx, 0x48                      ; attacker-controlled index (out of bounds)
    cmp rdx, [victim_size]             ; authorization: array bounds check
    ja done
    mov rax, byte [victim_array + rdx] ; illegal access (Load S)
    shl rax, 12                        ; use the secret
    mov rbx, [probe_array + rax]       ; send: secret-indexed cache fill
done:
    hlt
"""

LISTING2 = """
; Listing 2 -- Meltdown: read kernel memory from user mode
.data
probe_array:   address=0x1000000  size=1048576 shared
kernel_secret: address=0xffff0000 size=64 kernel protected
.text
    clflush [probe_array]
    mov rax, byte [kernel_secret]      ; authorization and access in one instruction
    shl rax, 12
    mov rbx, [probe_array + rax]
    hlt
"""


def analyze(name: str, text: str) -> None:
    print("=" * 72)
    print(f"Analyzing {name}")
    print("=" * 72)
    program = assemble(text, name=name)
    print(program.listing())

    report = analyze_program(program)
    print()
    print(report.summary())
    print()
    print(ascii_graph(report.build.graph))

    patch = patch_program(program)
    print()
    print(patch.summary())
    if patch.fences_inserted:
        print("\nPatched program:")
        print(patch.patched.listing())
    print()


def main() -> None:
    analyze("listing1-spectre-v1", LISTING1)
    analyze("listing2-meltdown", LISTING2)
    print("Note: Listing 2's races are between micro-ops of one load instruction,")
    print("so no software fence can be placed between them -- the tool reports them")
    print("as requiring a hardware defense (or unmapping, as KPTI does).")


if __name__ == "__main__":
    main()
