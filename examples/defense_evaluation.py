#!/usr/bin/env python3
"""Evaluate every catalogued defense against every catalogued attack.

Reproduces the paper's Section V-B analysis: each industry / academic defense
is expressed as one of the four defense strategies, applied to each attack
graph as added security dependencies, and judged by whether the races that
make the attack work are gone.  Also reproduces the "insufficient defense"
discussion: a fence on the memory path alone does not stop a Meltdown variant
whose secret is already in the L1 cache.
"""

from repro.attacks import variants
from repro.defenses import (
    ALL_DEFENSES,
    evaluate_matrix,
    insufficient_defense_demo,
)


def main() -> None:
    attacks = variants()
    matrix = evaluate_matrix(ALL_DEFENSES, attacks)

    print("=" * 100)
    print("Defense x attack matrix (paper Section V-B)")
    print("=" * 100)
    attack_keys = [variant.key for variant in attacks]
    header = f"{'defense':38s}" + "".join(f"{key[:10]:>11s}" for key in attack_keys)
    print(header)
    print("-" * len(header))

    by_defense = {}
    for evaluation in matrix:
        by_defense.setdefault(evaluation.defense_key, {})[evaluation.attack_key] = evaluation

    for defense in ALL_DEFENSES:
        cells = []
        for key in attack_keys:
            evaluation = by_defense[defense.key][key]
            if not evaluation.applicable:
                cells.append("-")
            elif evaluation.effective:
                cells.append("defeats")
            else:
                cells.append("LEAKS")
        row = f"{defense.name[:37]:38s}" + "".join(f"{cell:>11s}" for cell in cells)
        print(row)

    defeated = {
        key: sum(
            1
            for defense in ALL_DEFENSES
            if by_defense[defense.key][key].effective
        )
        for key in attack_keys
    }
    print("\nNumber of catalogued defenses that defeat each attack:")
    for key, count in defeated.items():
        print(f"  {key:15s} {count}")

    print("\nInsufficient-defense analysis (Section V-B):")
    report = insufficient_defense_demo()
    print(f"  baseline Meltdown-with-cached-secret leaks:     {report.baseline_leaks}")
    print(f"  fence on the memory path only still leaks:      {report.fenced_memory_only_leaks}")
    print(f"    leaking source(s): "
          f"{[', '.join(chosen) for chosen in report.fenced_memory_leaking_sources]}")
    print(f"  security dependency on every source leaks:      {report.fenced_all_sources_leaks}")
    print(f"  'prevent data usage' strategy leaks:             {report.prevent_use_leaks}")
    print(f"  reproduces the paper's conclusion:               {report.reproduces_paper}")


if __name__ == "__main__":
    main()
