#!/usr/bin/env python3
"""The cache covert channel taxonomy of Section II-C, exercised on the cache model.

Demonstrates the four classes of cache timing channels (hit/miss x
access/operation) transmitting a secret byte between a sender and a receiver
sharing the simulated cache, and shows why a partitioned cache (DAWG-style)
breaks the access-based channels.
"""

from repro.channels import (
    CacheCollisionChannel,
    CacheTimingSurface,
    EvictTimeChannel,
    FlushReloadChannel,
    PrimeProbeChannel,
    taxonomy_rows,
)
from repro.uarch import SetAssociativeCache


def make_cache() -> SetAssociativeCache:
    return SetAssociativeCache(sets=64, ways=8, line_size=64, hit_latency=4, miss_latency=200)


def main() -> None:
    print("Section II-C taxonomy:")
    for name, signal, granularity, shared in taxonomy_rows():
        print(f"  {name:15s} signal={signal:4s} granularity={granularity:9s} "
              f"needs shared memory: {shared}")

    secret = 0x5C

    print(f"\nTransmitting secret byte {secret:#04x} through each channel:")

    cache = make_cache()
    flush_reload = FlushReloadChannel(CacheTimingSurface(cache), 0x100_0000)
    print(f"  Flush+Reload    -> recovered {flush_reload.transmit(secret).value:#04x}")

    cache = make_cache()
    prime_probe = PrimeProbeChannel(cache)
    set_index = secret % cache.sets
    print(f"  Prime+Probe     -> recovered set {prime_probe.transmit(secret).value} "
          f"(secret mod {cache.sets} = {set_index})")

    cache = make_cache()
    victim_address = 0x5000 + (secret % 64) * 64
    evict_time = EvictTimeChannel(cache, lambda: cache.access(victim_address, partition=0).latency)
    print(f"  Evict+Time      -> victim's hot set {evict_time.receive().value} "
          f"(expected {cache.set_index(victim_address)})")

    cache = make_cache()
    table = 0x9000
    collision = CacheCollisionChannel(
        cache, lambda: cache.access(table + secret * 64, partition=0).latency,
        table_base=table, entries=256, stride=64,
    )
    print(f"  Cache collision -> recovered {collision.receive().value:#04x}")

    print("\nWith a DAWG-style partitioned cache (sender and receiver in different domains):")
    cache = make_cache()
    partitioned = FlushReloadChannel(
        CacheTimingSurface(cache, sender_partition=0, receiver_partition=1), 0x100_0000
    )
    observation = partitioned.transmit(secret)
    print(f"  Flush+Reload    -> recovered {observation.value} (channel defeated)")


if __name__ == "__main__":
    main()
