#!/usr/bin/env python
"""Quickstart for the batch timing plane: ``Engine.simulate_batch``.

A *batch* is a list of timing points -- attack names, optionally with
per-point defenses / config / secret / model overrides -- served from one
warm session per pool worker instead of one cold ``run()`` per point.
The rows and envelopes are exactly what per-point ``simulate`` calls
would have produced; the batch plane only changes how fast you get them
(the ``timing-batch`` benchmark enforces a >=10x points/sec floor).

Run from the repo root::

    PYTHONPATH=src python examples/batch_quickstart.py
"""

from __future__ import annotations

import time

from repro.engine import Engine


def main() -> None:
    # A campaign-shaped workload: repeated passes over a few registry
    # attacks, undefended and defended.  Points may be bare attack names
    # or mappings with any ``simulate`` parameter.
    base_points = [
        "spectre_v1",
        "meltdown",
        "spectre_v2",
        {"attack": "lvi", "defenses": ("PREVENT_SPECULATIVE_LOADS",)},
        {"attack": "spectre_v1", "defenses": ("DELAY_SPECULATIVE_MISSES",)},
    ]
    points = base_points * 40  # 200 points, 5 unique simulations

    # -- 1. One call, one envelope -------------------------------------
    started = time.perf_counter()
    with Engine() as engine:
        batch = engine.simulate_batch(points, parallel=2)
    elapsed = time.perf_counter() - started

    data = batch.data
    print(
        f"{data['points']} points ({data['unique_simulations']} unique "
        f"simulations), {data['leaking']} leaking, in {elapsed:.2f}s "
        f"({data['points'] / elapsed:.0f} pts/s)"
    )

    # -- 2. Rows come back in input order, one per point ---------------
    for point, row in list(zip(points, data["rows"]))[: len(base_points)]:
        verdict = "LEAKS" if row["transmit_beats_squash"] else "safe"
        defenses = ",".join(row["defenses"]) or "-"
        print(
            f"  {row['attack']:>12} defenses={defenses} "
            f"transmit@{row['transmit_cycle']} squash@{row['squash_cycle']} "
            f"{verdict}"
        )

    # -- 3. The payload holds the full per-point Result envelopes ------
    # (byte-identical to per-point ``engine.run`` calls: same data, same
    # cache provenance, same JSON).
    first = batch.payload[0]
    print(f"first envelope: kind={first.kind} subject={first.subject!r}")

    # -- 4. The same batch from the CLI --------------------------------
    print(
        "CLI equivalent: write the point list to points.json and run\n"
        "  repro simulate --batch points.json --parallel 2 --json"
    )


if __name__ == "__main__":
    main()
