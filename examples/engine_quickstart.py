#!/usr/bin/env python
"""Quickstart for the unified ``Engine`` session API.

The session model: create one :class:`repro.engine.Engine`, let it own the
cached artifacts (attack graphs keyed on ``Program.content_hash()``,
defense evaluations, synthesized graphs) and its process pool, and route
every analysis through it -- build once, analyze many, shard the sweeps.

Run from the repo root::

    PYTHONPATH=src python examples/engine_quickstart.py
"""

from __future__ import annotations

from repro.engine import Engine
from repro.isa import assemble

LISTING1 = """
.data
probe_array:  address=0x1000000 size=1048576 shared
victim_array: address=0x200000  size=16
victim_size:  address=0x210000  size=8
secret:       address=0x200048  size=1 protected
.text
    cmp rdx, [victim_size]
    ja done
    mov rax, byte [victim_array + rdx]
    shl rax, 12
    mov rbx, [probe_array + rax]
done:
    hlt
"""


def main() -> None:
    program = assemble(LISTING1, name="victim")

    with Engine(parallel=2) as engine:
        # -- 1. Build once, analyze many ---------------------------------
        # The first analyze constructs the attack graph; the second is a
        # content-hash cache hit (same Result data, microseconds).
        cold = engine.analyze(program)
        warm = engine.analyze(program)
        print(f"cold analyze: cache={cold.cache}, vulnerable={not cold.ok}, "
              f"findings={len(cold.data['findings'])}")
        print(f"warm analyze: cache={warm.cache} "
              f"(stats: {engine.stats()['analyses']})")

        # Mutating the program changes its content hash -> fresh build.
        patched = assemble(LISTING1.replace("ja done", "ja done\n    lfence"),
                           name="victim")
        print(f"hashes differ after patching: "
              f"{program.content_hash() != patched.content_hash()}")
        print(f"patched still vulnerable: {not engine.analyze(patched).ok}")

        # -- 2. Uniform Result envelope ----------------------------------
        # Every analysis returns the same JSON-serializable envelope; this
        # is what `repro analyze --json` / `repro evaluate --json` print.
        print("\nResult envelope (truncated):")
        print(cold.to_json(indent=None)[:120] + "...")

        # -- 3. Shard the defense matrix over the process pool -----------
        # Rows are sorted by (defense, attack) key, so parallel output is
        # byte-identical to a serial run.
        matrix = engine.evaluate_matrix(parallel=2)
        print(f"\ndefense matrix: {matrix.subject}, "
              f"{matrix.data['effective']} effective pairings, "
              f"every attack defeated: {matrix.ok}")

        # -- 4. Sweep the Section V-A attack space ------------------------
        # Structurally identical (source, delay) combinations share one
        # graph build; the sweep is sharded across workers.
        space = engine.synthesize(parallel=2)
        print(f"attack space: {space.data['combinations']} combinations, "
              f"{space.data['published']} published, "
              f"{space.data['novel']} novel, {space.data['leaking']} leaking")

        # A serial sweep fills the session's own verdict cache instead of the
        # workers' -- structurally identical combinations dedupe to one build.
        serial = engine.synthesize(parallel=1)
        assert serial.data == space.data  # byte-identical rows either way
        print(f"cache stats after serial sweep: "
              f"synth_verdicts={engine.stats()['synth_verdicts']}")


if __name__ == "__main__":
    main()
