#!/usr/bin/env python
"""Quickstart for the declarative ScenarioSpec run-plan API.

Every experiment in the library is one point in the attack x defense x
timing-model x channel x secret space.  A :class:`repro.scenario.
ScenarioSpec` names that point declaratively; ``Engine.run(spec)`` executes
it through one cached, sharded spine; a :class:`repro.scenario.ScenarioGrid`
sweeps whole regions of the space; and a :class:`repro.store.DiskStore`
makes the results survive the process, so the second invocation of any spec
-- in this script, the CLI, or CI -- is one pickle load from
``~/.cache/repro/``.

Run from the repo root::

    PYTHONPATH=src python examples/scenario_quickstart.py
"""

from __future__ import annotations

import tempfile
import time

from repro.engine import Engine
from repro.scenario import ScenarioGrid, ScenarioSpec
from repro.store import DiskStore

# ---------------------------------------------------------------------------
# 1. One experiment point: a declarative, content-hashable spec
# ---------------------------------------------------------------------------
spec = ScenarioSpec("simulate", attack="spectre_v1", secret=0x5A)
print(f"spec: {spec!r}")
print(f"content hash: {spec.content_hash()[:16]}...  (the artifact-store key)")

with Engine() as engine:
    result = engine.run(spec)
    print(f"-> {result.kind}: transmit beats squash = "
          f"{result.data['transmit_beats_squash']} "
          f"(window {result.data['window_cycles']} cycles)\n")

# ---------------------------------------------------------------------------
# 2. A grid: cartesian axes over the scenario space, sharded over the pool
# ---------------------------------------------------------------------------
grid = ScenarioGrid(
    "simulate",
    base={"secret": 0x5A},
    axes={
        "attack": ["spectre_v1", "meltdown"],
        "defenses": [None, ("PREVENT_SPECULATIVE_LOADS",)],
    },
)
with Engine() as engine:
    sweep = engine.run_grid(grid, parallel=2)
print(f"grid: {grid!r} -> {sweep.data['points']} points, "
      f"{sweep.data['ok_points']} defended")
for row in sweep.data["rows"]:
    defenses = ", ".join(row["data"]["defenses"]) or "(none)"
    verdict = "LEAKS" if row["data"]["transmit_beats_squash"] else "safe"
    print(f"  {row['data']['attack']:<12} + {defenses:<28} -> {verdict}")
print()

# ---------------------------------------------------------------------------
# 3. The disk-persistent artifact store: warm across processes
# ---------------------------------------------------------------------------
with tempfile.TemporaryDirectory() as cache_dir:
    sweep_spec = ScenarioSpec(
        "simulate_sweep", attacks=("spectre_v1", "meltdown"),
        defenses=(None, "PREVENT_SPECULATIVE_LOADS"),
    )
    with Engine(store=DiskStore(root=cache_dir)) as engine:
        start = time.perf_counter()
        cold = engine.run(sweep_spec)
        cold_ms = (time.perf_counter() - start) * 1e3

    # A brand new engine *and* store instance: only the disk survives --
    # exactly what a second CLI invocation (`repro run ... --store disk`) sees.
    with Engine(store=DiskStore(root=cache_dir)) as engine:
        start = time.perf_counter()
        warm = engine.run(sweep_spec)
        warm_ms = (time.perf_counter() - start) * 1e3

    assert warm.cache == "warm" and warm.data == cold.data
    print(f"disk store: cold {cold_ms:.1f} ms -> warm fresh-session "
          f"{warm_ms:.2f} ms ({cold_ms / warm_ms:.0f}x), byte-identical rows")

# ---------------------------------------------------------------------------
# 4. Resumable campaigns: a killed grid recomputes only the missing points
# ---------------------------------------------------------------------------
with tempfile.TemporaryDirectory() as cache_dir:
    campaign = ScenarioGrid(
        "simulate",
        axes={"attack": ["spectre_v1", "meltdown"], "secret": [0x41, 0x42, 0x43]},
    )
    specs = campaign.specs()

    # Simulate a campaign interrupted after 2 of its 6 points: each point
    # streamed out of Engine.iter_grid is durable the moment it is yielded
    # (the CLI equivalent dies to Ctrl-C / SIGKILL mid `repro run`).
    with Engine(store=DiskStore(root=cache_dir)) as engine:
        for done, point in enumerate(engine.iter_grid(campaign), start=1):
            if done == 2:
                break  # the "crash"
    print(f"interrupted campaign: 2/{len(specs)} points checkpointed")

    # The relaunch (`repro run ... --store cache/ --resume`) serves the
    # checkpoints and recomputes only the other four.
    with Engine(store=DiskStore(root=cache_dir)) as engine:
        resumed = engine.run_grid(campaign)
        accounting = engine.stats()["grid"]
    print(f"resumed: {accounting['resumed']} from checkpoints, "
          f"{resumed.data['points'] - accounting['resumed']} recomputed, "
          f"{resumed.data['points']} total\n")

# ---------------------------------------------------------------------------
# 5. Specs serialize: the CLI runs the same JSON (`repro run --spec plan.json`)
# ---------------------------------------------------------------------------
print("\nthe same sweep as a JSON run plan:")
print(sweep_spec.to_json())
