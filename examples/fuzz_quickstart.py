#!/usr/bin/env python
"""Quickstart for the differential fuzzing plane: ``repro.fuzz``.

The repo carries two independent leak oracles for the same question --
"does this gadget leak?":

* the **TSG oracle**: build the program's attack graph and check the
  structural leak criterion (missing security dependency on a transmitting
  instruction inside the speculative window), and
* the **timing oracle**: run the program on the cycle-accurate OoO core
  and race the covert-channel transmission against the squash.

``repro.fuzz`` generates seeded gadget programs (speculation source x
window delay x covert channel x fence placement) and pushes every one
through *both* oracles.  Agreement on every generated program is the
fuzzed generalization of the paper's Theorem 1; a disagreement is a
soundness bug in one of the planes, auto-shrunk to a minimal reproducer
and pinned into a regression corpus.

This script runs a small clean campaign (everything agrees), then
deliberately breaks the timing oracle with the deterministic ``no_flush``
injection -- the harness skips the authorization flush, so speculation
resolves too fast and the timing plane calls leaking bounds-check gadgets
safe -- to show a disagreement being caught, shrunk and pinned.

Run from the repo root::

    PYTHONPATH=src python examples/fuzz_quickstart.py
"""

from __future__ import annotations

import tempfile

from repro.engine import Engine
from repro.fuzz import FuzzCorpus, fixture_from_entry

# -- 1. a clean campaign: both oracles agree on every generated program --
engine = Engine()
result = engine.run_fuzz_campaign(seed=0, count=40)
data = result.data
print(
    f"clean campaign: {data['executed']} programs, "
    f"{data['buckets']} attack-shape buckets, "
    f"{data['agreed']} agreed / {data['disagreed']} disagreed "
    f"({data['points_per_second']:.0f} programs/s)"
)
assert result.ok, "the dual oracles disagreed on a clean campaign!"

# -- 2. break one oracle on purpose: the campaign catches it ------------
broken = engine.run_fuzz_campaign(seed=0, count=40, inject="no_flush")
data = broken.data
print(
    f"\ninjected fault 'no_flush': {data['disagreed']} disagreements, "
    f"{data['shrunk']} shrunk to minimal reproducers"
)
assert not broken.ok and data["disagreed"] > 0

# -- 3. every disagreement is shrunk and pinned as a regression fixture --
with tempfile.TemporaryDirectory() as root:
    corpus = FuzzCorpus(root)
    summary = corpus.ingest(data)
    print(
        f"corpus: {summary['written']} fixture(s) pinned, "
        f"{summary['novel_buckets']} novel bucket(s)"
    )
    entry = next(corpus.load_fixtures())
    case = fixture_from_entry(entry)  # regenerated, never deserialized
    assert case.sha == entry["sha"]
    print(f"\nminimal reproducer ({case.size} instructions):")
    print(case.program.listing())

# The same campaign as a CLI session -- checkpointed, killable, resumable:
#
#   repro fuzz --seed 0 --count 500 --store cache/ --progress
#   ^C
#   repro fuzz --seed 0 --count 500 --store cache/ --resume
#   repro fuzz --seed 0 --count 40 --inject no_flush --corpus corpus/fuzz
