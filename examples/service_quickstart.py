#!/usr/bin/env python
"""Quickstart for the async analysis service (``repro.service``).

Starts a server in-process (a background thread with its own event loop),
points a handful of concurrent stdlib clients at it, and reads the dedup
hit-rate back from ``/stats``.  The same server is what ``repro serve``
runs standalone; the same client is what ``repro request`` wraps.

The mechanics on display:

* every request is a JSON-encoded :class:`~repro.scenario.ScenarioSpec`;
  its content hash is the request key.
* concurrent identical specs compute **once** (single-flight dedup: later
  arrivals attach to the in-flight entry, or hit the store).
* every response envelope carries its hit source and queue / compute /
  total latency.

Run from the repo root::

    PYTHONPATH=src python examples/service_quickstart.py
"""

from __future__ import annotations

import shutil
import tempfile
import threading

from repro.engine import Engine
from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig, ServiceThread
from repro.store import DiskStore

CLIENTS = 6

# Two distinct specs for six clients: four clients share one spec (the
# dedup bait), two run their own points.
SHARED = {"kind": "exploit", "params": {"exploit": "spectre_v1", "secret": 0x41}}
WORKLOAD = [SHARED, SHARED, SHARED, SHARED,
            {"kind": "exploit", "params": {"exploit": "meltdown", "secret": 0x42}},
            {"kind": "simulate", "params": {"attack": "spectre_v2"}}]

tmp = tempfile.mkdtemp(prefix="repro-service-quickstart-")
engine = Engine(store=DiskStore(root=tmp, version="quickstart"))

with ServiceThread(engine=engine, config=ServiceConfig()) as handle:
    print(f"service up at {handle.url} (engine + DiskStore shared by all clients)\n")

    envelopes = [None] * CLIENTS

    def client_body(index: int) -> None:
        client = ServiceClient(handle.url)
        envelopes[index] = client.run(WORKLOAD[index])

    threads = [
        threading.Thread(target=client_body, args=(index,)) for index in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    for index, envelope in enumerate(envelopes):
        latency = envelope["latency_ms"]
        print(
            f"client {index}: {envelope['spec']['kind']:<9} "
            f"hit={envelope['hit']:<9} ok={envelope['ok']!s:<5} "
            f"compute {latency['compute']:6.1f} ms, total {latency['total']:6.1f} ms"
        )

    # The four identical requests produced one compute + three free rides
    # (in-flight attachments or store hits, depending on interleaving).
    stats = ServiceClient(handle.url).stats()
    service = stats["service"]
    print(
        f"\n/stats: {service['requests']} requests, "
        f"hits {service['hits']}, hit-rate {service['hit_rate']:.1%}, "
        f"p50 {service['latency_ms']['p50']:.1f} ms, "
        f"p99 {service['latency_ms']['p99']:.1f} ms"
    )
    print(f"engine window since last /stats read: {stats['window'].get('runs', {})}")

engine.close()
shutil.rmtree(tmp, ignore_errors=True)
print("\nserver drained; every computed point stayed checkpointed in the store")
