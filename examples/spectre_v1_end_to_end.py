#!/usr/bin/env python3
"""Spectre v1 end to end on the microarchitectural simulator (Listing 1).

Runs the full six-step attack of Section III on the simulated out-of-order
core: mis-train the bounds-check branch, flush the probe array and the bound,
let the victim speculate out of bounds, and recover the secret byte through
the Flush+Reload covert channel.  Then repeats the attack under each
simulator defense to show which defense strategies stop it.
"""

from repro.exploits import defense_ablation, run_spectre_v1
from repro.uarch import DEFENSE_STRATEGY, SimDefense


def main() -> None:
    secret = 0x42
    print("=" * 72)
    print("Spectre v1 (Listing 1) on the speculative out-of-order simulator")
    print("=" * 72)

    result = run_spectre_v1(secret=secret)
    print(f"planted secret byte:    {result.secret:#04x}")
    print(f"recovered via channel:  "
          f"{result.recovered:#04x}" if result.recovered is not None else "nothing")
    print(f"attack successful:      {result.success}")
    print(f"speculative windows:    {result.stats.speculative_windows}")
    print(f"transient instructions: {result.stats.transient_instructions}")
    print(f"pipeline squashes:      {result.stats.squashes}")

    hot = [value for value, latency in enumerate(result.latencies) if latency < 80]
    print(f"probe entries that hit in the cache: {[hex(v) for v in hot]}")

    print("\nDefense ablation (the paper's four strategies, implemented in hardware):")
    print(f"{'defense':48s} {'paper strategy':42s} outcome")
    print("-" * 100)
    for row in defense_ablation("spectre_v1", secret=secret):
        outcome = "still LEAKS" if row.leaked else "defeated"
        print(f"{row.defense_name:48s} {row.strategy_name:42s} {outcome}")

    print("\nTakeaway: any single security dependency -- before the access (fences,")
    print("masking), before the use (NDA/ConTExT), or before the send (InvisiSpec,")
    print("CleanupSpec, DAWG) -- stops the leak; so does clearing the predictor.")
    print("Defenses aimed elsewhere (KPTI, SSBB) do not help against Spectre v1.")


if __name__ == "__main__":
    main()
