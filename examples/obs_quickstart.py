#!/usr/bin/env python
"""Quickstart for the ``repro.obs`` tracing + metrics plane.

Three moves: trace a sharded grid campaign to a JSONL file (spans cross
the process pool and come back with the results), digest the file into a
per-phase breakdown + critical path, and render the engine's metrics
registry as Prometheus text -- the same document the analysis service
serves on ``GET /metrics``.

Run from the repo root::

    PYTHONPATH=src python examples/obs_quickstart.py
"""

from __future__ import annotations

import os
import tempfile

from repro.engine import Engine
from repro.obs import ProgressLine, Tracer, read_trace, summarize
from repro.scenario import ScenarioGrid

GRID = ScenarioGrid(
    "exploit",
    base={"exploit": "spectre_v1"},
    axes={"secret": list(range(8))},
)


def main() -> None:
    handle, trace_path = tempfile.mkstemp(suffix=".jsonl", prefix="repro-obs-")
    os.close(handle)
    try:
        # -- 1. Trace a campaign -----------------------------------------
        # The tracer rides on the engine session: engine.run / iter_grid /
        # build / store.put open spans, each shard ships its TraceContext
        # to the pool worker, and the worker's `worker.point` spans travel
        # back with the results into one JSONL file.  --progress from the
        # CLI is this ProgressLine, fed per streamed GridPoint.
        tracer = Tracer(sink=trace_path)
        progress = ProgressLine(len(GRID), min_interval=0.0)
        with Engine(parallel=2, tracer=tracer) as engine:
            result = engine.run_grid(GRID, on_point=progress.update)
        progress.finish()
        tracer.close()
        print(f"grid ok={result.ok}: {tracer.emitted} spans -> {trace_path}")

        # -- 2. Digest the trace ------------------------------------------
        # summarize() is what `repro trace summarize` prints: span counts
        # and total/mean/max per phase, the slowest points, and the parent
        # chain behind the span that finished last (the critical path).
        records = read_trace(trace_path)
        digest = summarize(records, top=3)
        print(f"\n{digest['spans']} spans across "
              f"{digest['processes']} processes, "
              f"wall {digest['wall_ms']:.1f} ms")
        for phase, bucket in digest["phases"].items():
            print(f"  {phase:<13} x{bucket['count']:<3} "
                  f"total {bucket['total_ms']:8.2f} ms  "
                  f"max {bucket['max_ms']:.2f} ms")
        worker_pids = {r["pid"] for r in records if r["name"] == "worker.point"}
        print(f"worker.point spans recorded in processes: {sorted(worker_pids)}")

        # -- 3. Scrape the metrics registry -------------------------------
        # Every engine counter (cache events, per-kind runs, grid events,
        # the store ledger synced on scrape) lives on engine.metrics; the
        # service unions its own registry + this one + the global one on
        # GET /metrics.  Here: render a fresh session's registry directly.
        with Engine(parallel=2) as engine:
            engine.run_grid(GRID)
            text = engine.metrics.render()
        print("\nPrometheus exposition (repro_engine_* excerpt):")
        for line in text.splitlines():
            if line.startswith("repro_engine_runs_total") or line.startswith(
                "repro_engine_grid_events_total{event=\"resumed\"}"
            ):
                print(f"  {line}")
    finally:
        os.unlink(trace_path)


if __name__ == "__main__":
    main()
