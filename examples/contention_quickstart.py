#!/usr/bin/env python
"""Quickstart for functional-unit contention (``repro.channels.contention``).

Run from the repo root::

    PYTHONPATH=src python examples/contention_quickstart.py

The walk-through demonstrates the Section II-C *functional-unit contention*
covert channel end to end: a sender encodes a secret byte-fragment as
multiplier-port occupancy, the receiver times its own probe burst and decodes
the value from the cycle delta; the same transmit on an unbounded machine
yields no signal at all (port duplication as a defense).  It then runs the
paper's window-length ablation on the timing core -- ROB/RS/port-count sweeps
in measured cycles -- showing the smallest window closing the Spectre v1 race
and the serialized-port machine closing Spectre v2's.
"""

from __future__ import annotations

from dataclasses import replace

from repro.channels import ContentionChannel, PortContentionSurface
from repro.channels.contention import WIDE_WINDOW_MODEL
from repro.engine import Engine
from repro.uarch.timing import CONTENDED_MODEL, SERIALIZED_MODEL
from repro.uarch.timing.validate import check_attack

SECRET_NIBBLE = 0xB


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The FU-contention transmit, detected.
    # ------------------------------------------------------------------
    print("=== FU-contention covert channel (1 mul port, width-1 CDB) ===")
    channel = ContentionChannel()  # defaults to the contended mul-port surface
    observation = channel.transmit(SECRET_NIBBLE)
    baseline, measured = observation.latencies
    print(f"sent {SECRET_NIBBLE:#x}: probe burst {baseline} -> {measured} cycles "
          f"(delta {measured - baseline}, {channel.unit_delta} cycles/unit)")
    print(f"receiver decodes: {observation.value:#x} "
          f"({'DETECTED' if observation.detected else 'no signal'})")

    # ------------------------------------------------------------------
    # 2. Port duplication defeats the channel: zero occupancy delta.
    # ------------------------------------------------------------------
    print("\n=== ... on an unbounded machine (the PR-3 timing plane) ===")
    unbounded = ContentionChannel(PortContentionSurface(WIDE_WINDOW_MODEL))
    observation = unbounded.transmit(SECRET_NIBBLE)
    print(f"sent {SECRET_NIBBLE:#x}: cycle delta "
          f"{observation.latencies[1] - observation.latencies[0]} -> "
          f"{'detected' if observation.detected else 'NO SIGNAL (channel defeated)'}")

    # ------------------------------------------------------------------
    # 3. Any pool carries the channel; the signal scales with occupancy.
    # ------------------------------------------------------------------
    print("\n=== occupancy delta per pool (3 sender ops) ===")
    for pool in ("alu", "load_store", "branch", "mul"):
        surface = PortContentionSurface(
            replace(WIDE_WINDOW_MODEL, **{f"{pool}_ports": 1}), pool=pool
        )
        print(f"  {pool:<11}: {surface.occupancy_delta(3)} cycles")

    # ------------------------------------------------------------------
    # 4. The window-length ablation: ROB/RS/ports in measured cycles.
    # ------------------------------------------------------------------
    print("\n=== window-length ablation (spectre_v1) ===")
    engine = Engine()
    result = engine.ablate_window(["spectre_v1"])
    for row in result.data["rows"]:
        print(f"  rob={row['rob_size']:>3} rs={row['rs_entries']:>2} "
              f"ports={row['ports']:<10} window={row['window_cycles']:>4} cycles  "
              f"transmit@{row['transmit_cycle']} vs squash@{row['squash_cycle']} -> "
              f"{'LEAKS' if row['transmit_beats_squash'] else 'safe'}")
    for row in result.data["contention_channel"]:
        print(f"  contention channel [{row['ports']}]: delta {row['cycle_delta']} "
              f"cycles -> {'transmits' if row['detected'] else 'no signal'}")

    # ------------------------------------------------------------------
    # 5. Port counts change the race itself: Spectre v2 under serialization.
    # ------------------------------------------------------------------
    print("\n=== spectre_v2: memory-level parallelism is load-bearing ===")
    for label, model in (("contended", CONTENDED_MODEL), ("serialized", SERIALIZED_MODEL)):
        check = check_attack("spectre_v2", model=model)
        print(f"  {label:<10}: transmit@{check.transmit_cycle} vs "
              f"squash@{check.squash_cycle} -> "
              f"{'leaks' if check.transmit_beats_squash else 'safe'} "
              f"(TSG says {'leaks' if check.tsg_leaks else 'safe'})")

    engine.close()


if __name__ == "__main__":
    main()
