#!/usr/bin/env python3
"""Discovering new attacks from the three attack dimensions (Section V-A).

The paper's takeaway: *any new combination of (secret source, delayed
authorization mechanism, covert channel) gives a new attack*.  This example
enumerates the space, separates the combinations already used by published
attacks from the unexplored ones, builds attack graphs for a few candidates,
and shows that each candidate indeed contains a missing security dependency.

It also runs the Meltdown-family exploits on the simulator to show how the
same skeleton with a different secret source becomes a different attack
(Meltdown -> Foreshadow -> MDS), and how a defense that only covers one
source (KPTI) gives a false sense of security.
"""

from repro.attacks import (
    CovertChannelKind,
    DelayMechanism,
    SecretSource,
    novel_combinations,
    published_combinations,
)
from repro.exploits import run_foreshadow, run_mds, run_meltdown
from repro.uarch import SimDefense, UarchConfig


def main() -> None:
    published = published_combinations()
    novel = novel_combinations()
    total = len(SecretSource) * len(DelayMechanism) * len(CovertChannelKind)

    print("=" * 72)
    print("The three-dimensional attack space of Section V-A")
    print("=" * 72)
    print(f"secret sources:        {len(SecretSource)}")
    print(f"delay mechanisms:      {len(DelayMechanism)}")
    print(f"covert channels:       {len(CovertChannelKind)}")
    print(f"total combinations:    {total}")
    print(f"used by published attacks: {len(published)}")
    print(f"unexplored candidates:     {len(novel)}")

    print("\nA few unexplored candidate attacks (all have a missing security dependency):")
    sample = novel_combinations(
        sources=[SecretSource.FPU_REGISTERS, SecretSource.STORE_BUFFER],
        delays=[DelayMechanism.TSX_ABORT, DelayMechanism.CONDITIONAL_BRANCH],
        channels=[CovertChannelKind.PRIME_PROBE, CovertChannelKind.FUNCTIONAL_UNIT],
    )
    for attack in sample[:6]:
        graph = attack.build_graph()
        print(f"  - {attack.describe()}")
        print(f"      graph: {len(graph)} vertices, vulnerable={graph.is_vulnerable()}")

    print("\nSame skeleton, different secret source, on the simulator:")
    for name, runner in (("Meltdown", run_meltdown), ("Foreshadow/L1TF", run_foreshadow),
                         ("MDS (fill-buffer sampling)", run_mds)):
        print(f"  {name:28s} -> {runner()}")

    print("\n...and why putting the security dependency in the wrong place fails (KPTI):")
    kpti = UarchConfig().with_defenses(SimDefense.KERNEL_ISOLATION)
    for name, runner in (("Meltdown", run_meltdown), ("Foreshadow/L1TF", run_foreshadow),
                         ("MDS (fill-buffer sampling)", run_mds)):
        print(f"  {name:28s} under KPTI -> {runner(kpti)}")


if __name__ == "__main__":
    main()
