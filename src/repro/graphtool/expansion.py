"""Intra-instruction (micro-op) expansion for Meltdown-type accesses.

For attacks where the authorization and the access live inside the same
instruction (faulting loads, privileged register reads, lazily-switched FPU
accesses, store-bypassing loads), the attack graph must contain the
instruction's micro-ops as separate vertices (Section V-C: "the tool needs to
break down such instructions into their micro-architectural level").
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Tuple

from ..core.edges import DependencyKind
from ..core.nodes import ExecutionLevel, OperationType
from .classify import AuthorizationKind


@dataclass(frozen=True, slots=True)
class MicroOp:
    """One micro-op vertex produced by expanding an instruction."""

    suffix: str
    op_type: OperationType
    description: str
    speculative: bool = False


@dataclass(frozen=True, slots=True)
class Expansion:
    """The micro-ops of one instruction and the intra-instruction edges."""

    micro_ops: Tuple[MicroOp, ...]
    #: Edges between the micro-ops, as (source suffix, target suffix) pairs.
    edges: Tuple[Tuple[str, str], ...]

    def vertex_name(self, instruction_name: str, suffix: str) -> str:
        return f"{instruction_name} :: {suffix}"


_ADDRESS = MicroOp(
    "compute address", OperationType.OTHER, "compute the effective address"
)


def _check_and_read(check_label: str, read_label: str) -> Expansion:
    return Expansion(
        micro_ops=(
            _ADDRESS,
            MicroOp("permission check", OperationType.AUTHORIZATION, check_label),
            MicroOp(
                "authorization resolved",
                OperationType.RESOLUTION,
                "the delayed check completes",
            ),
            MicroOp("read data", OperationType.SECRET_ACCESS, read_label, speculative=True),
            MicroOp(
                "writeback / forward",
                OperationType.OTHER,
                "forward the (possibly unauthorized) value to dependent micro-ops",
                speculative=True,
            ),
        ),
        edges=(
            ("compute address", "permission check"),
            ("permission check", "authorization resolved"),
            ("compute address", "read data"),
            ("read data", "writeback / forward"),
        ),
    )


_EXPANSIONS = {
    AuthorizationKind.PAGE_PRIVILEGE_CHECK: _check_and_read(
        "page privilege / permission check (delayed)",
        "read the data from memory, cache or an internal buffer",
    ),
    AuthorizationKind.MSR_PRIVILEGE_CHECK: Expansion(
        micro_ops=(
            MicroOp(
                "privilege check",
                OperationType.AUTHORIZATION,
                "check the current privilege level allows RDMSR",
            ),
            MicroOp(
                "authorization resolved",
                OperationType.RESOLUTION,
                "the privilege check completes",
            ),
            MicroOp(
                "read special register",
                OperationType.SECRET_ACCESS,
                "read the system register value",
                speculative=True,
            ),
            MicroOp(
                "writeback / forward",
                OperationType.OTHER,
                "forward the value to dependent micro-ops",
                speculative=True,
            ),
        ),
        edges=(
            ("privilege check", "authorization resolved"),
            ("read special register", "writeback / forward"),
        ),
    ),
    AuthorizationKind.FPU_OWNER_CHECK: Expansion(
        micro_ops=(
            MicroOp(
                "owner check",
                OperationType.AUTHORIZATION,
                "check whether the FPU state belongs to the current context",
            ),
            MicroOp(
                "authorization resolved",
                OperationType.RESOLUTION,
                "the ownership check / state restore completes",
            ),
            MicroOp(
                "read FPU state",
                OperationType.SECRET_ACCESS,
                "read the (possibly stale) floating-point registers",
                speculative=True,
            ),
            MicroOp(
                "writeback / forward",
                OperationType.OTHER,
                "forward the value to dependent micro-ops",
                speculative=True,
            ),
        ),
        edges=(
            ("owner check", "authorization resolved"),
            ("read FPU state", "writeback / forward"),
        ),
    ),
    AuthorizationKind.STORE_LOAD_DISAMBIGUATION: Expansion(
        micro_ops=(
            _ADDRESS,
            MicroOp(
                "address disambiguation",
                OperationType.AUTHORIZATION,
                "compare the load address against older stores in the store buffer",
            ),
            MicroOp(
                "authorization resolved",
                OperationType.RESOLUTION,
                "disambiguation completes (true data source known)",
            ),
            MicroOp(
                "read stale data",
                OperationType.SECRET_ACCESS,
                "read (possibly stale) data from memory, bypassing the store buffer",
                speculative=True,
            ),
            MicroOp(
                "writeback / forward",
                OperationType.OTHER,
                "forward the value to dependent micro-ops",
                speculative=True,
            ),
        ),
        edges=(
            ("compute address", "address disambiguation"),
            ("address disambiguation", "authorization resolved"),
            ("compute address", "read stale data"),
            ("read stale data", "writeback / forward"),
        ),
    ),
}

#: The micro-op suffix that carries the instruction's result to later instructions.
RESULT_SUFFIX = "writeback / forward"
#: The micro-op suffix of the authorization-resolution vertex.
RESOLUTION_SUFFIX = "authorization resolved"
#: The micro-op suffix of the secret-access vertex, per authorization kind.
ACCESS_SUFFIX = {
    AuthorizationKind.PAGE_PRIVILEGE_CHECK: "read data",
    AuthorizationKind.MSR_PRIVILEGE_CHECK: "read special register",
    AuthorizationKind.FPU_OWNER_CHECK: "read FPU state",
    AuthorizationKind.STORE_LOAD_DISAMBIGUATION: "read stale data",
}


@lru_cache(maxsize=None)
def expansion_for(kind: AuthorizationKind) -> Expansion:
    """The micro-op expansion for an intra-instruction authorization kind.

    Memoized per authorization kind: :class:`Expansion` and :class:`MicroOp`
    are frozen (hashable) dataclasses, so the cached objects are safe to
    share between every builder invocation and across engine sessions.
    """
    try:
        return _EXPANSIONS[kind]
    except KeyError as exc:
        raise ValueError(
            f"{kind} is a software authorization; no micro-op expansion is needed"
        ) from exc


#: Edge kind used for all intra-instruction micro-op edges.
MICRO_EDGE_KIND = DependencyKind.MICROARCH
#: Execution level attached to expanded vertices.
MICRO_LEVEL = ExecutionLevel.MICROARCHITECTURAL
