"""Vulnerability analysis on constructed attack graphs.

The analyzer runs the Figure 9 flow end to end: build the attack graph of a
program, find the missing security dependencies (races between authorization
and access / use / send), and produce a report that names the offending
instructions, classifies the program as Spectre-type or Meltdown-type, and
says which vulnerabilities a software fence can plug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.attack_graph import Vulnerability
from ..core.security_dependency import ProtectionPoint
from ..isa.program import Program
from .builder import BuildResult
from .classify import AuthorizationKind, MICROARCH_KINDS


@dataclass(frozen=True, slots=True)
class Finding:
    """One reported vulnerability: a missing security dependency."""

    authorization: str
    protected_operation: str
    point: ProtectionPoint
    software_patchable: bool
    description: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        fix = "software fence" if self.software_patchable else "hardware defense"
        return (
            f"[{self.point.value}] {self.protected_operation!r} may complete before "
            f"{self.authorization!r} (fix: {fix})"
        )


@dataclass
class AnalysisReport:
    """Full report of the attack-graph construction tool on one program."""

    program_name: str
    build: BuildResult
    findings: List[Finding] = field(default_factory=list)
    #: Total racing vertex pairs in the attack graph (batch closure sweep);
    #: an upper bound on how much ordering freedom the hardware retains.
    total_racing_pairs: int = 0

    @property
    def vulnerable(self) -> bool:
        return bool(self.findings)

    @property
    def is_meltdown_type(self) -> bool:
        return self.build.is_meltdown_type

    @property
    def access_findings(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.point is ProtectionPoint.ACCESS]

    @property
    def send_findings(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.point is ProtectionPoint.SEND]

    def summary(self) -> str:
        lines = [
            f"Analysis of {self.program_name!r}",
            f"  graph: {len(self.build.graph)} vertices, {len(self.build.graph.edges)} edges",
            f"  classification: "
            + ("Meltdown-type (intra-instruction)" if self.is_meltdown_type else "Spectre-type (inter-instruction)"),
            f"  potential secret accesses: {len(self.build.secret_accesses)}",
            f"  racing vertex pairs: {self.total_racing_pairs}",
            f"  missing security dependencies: {len(self.findings)}",
        ]
        for finding in self.findings:
            lines.append(f"    - {finding}")
        if not self.findings:
            lines.append("    (none -- program appears safe under this threat model)")
        return "\n".join(lines)


def _software_patchable(build: BuildResult, vulnerability: Vulnerability) -> bool:
    """A vulnerability is software-patchable when its authorization is a branch.

    Fences can be inserted between a software authorization (a branch) and
    the protected access.  When authorization and access are micro-ops of the
    same instruction, no software fence can be placed between them -- the fix
    must come from hardware (or from removing the mapping, as KPTI does).
    """
    software_kinds = {
        site.authorization_kind
        for site in build.secret_accesses
        if site.authorization_kind not in MICROARCH_KINDS
    }
    # The vulnerability's authorization vertex is a branch vertex iff it is
    # not a micro-op vertex (micro-op vertices contain the ``::`` separator).
    return bool(software_kinds) and "::" not in vulnerability.dependency.authorization


def analyze_build(
    build: BuildResult,
    points: Optional[Sequence[ProtectionPoint]] = None,
) -> AnalysisReport:
    """Analyse an already-constructed attack graph (the engine's cold path)."""
    selected_points = list(points) if points is not None else None
    vulnerabilities = build.graph.find_vulnerabilities(points=selected_points)
    findings = [
        Finding(
            authorization=vulnerability.dependency.authorization,
            protected_operation=vulnerability.dependency.protected,
            point=vulnerability.dependency.point,
            software_patchable=_software_patchable(build, vulnerability),
            description=vulnerability.description,
        )
        for vulnerability in vulnerabilities
    ]
    return AnalysisReport(
        program_name=build.program.name,
        build=build,
        findings=findings,
        total_racing_pairs=len(build.graph.all_racing_pairs()),
    )


def analyze_program(
    program: Program,
    protected_symbols: Optional[Sequence[str]] = None,
    points: Optional[Sequence[ProtectionPoint]] = None,
) -> AnalysisReport:
    """Run the full Figure 9 flow on a program and report its vulnerabilities.

    Thin wrapper over :meth:`repro.engine.Engine.analyze` on the default
    engine: repeated analyses of content-identical programs are served from
    the content-addressed cache.  The returned report is the shared cached
    artifact -- treat it as immutable.
    """
    from ..engine import default_engine

    return default_engine().analyze(program, protected_symbols, points).payload
