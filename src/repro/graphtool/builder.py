"""Attack-graph construction from programs (the Figure 9 flow).

Given a :class:`~repro.isa.program.Program` whose sensitive data is marked
(protected / kernel symbols), the builder

1. finds the potential secret accesses and the authorization each one is
   subject to (:mod:`repro.graphtool.classify`),
2. expands faulty accesses into micro-ops (:mod:`repro.graphtool.expansion`)
   because their authorization lives inside the instruction,
3. adds one vertex per instruction (all branch, memory and arithmetic
   instructions, as the paper prescribes), typed as setup / authorization /
   secret access / use / send / receive,
4. adds the dependencies the hardware already honours (data, address,
   control, potential store-to-load, fences) as edges, and
5. leaves the *security* dependencies to the analysis step -- their absence
   is exactly the set of races / vulnerabilities the tool reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.attack_graph import AttackGraph, Vulnerability
from ..core.edges import DependencyKind
from ..core.nodes import AttackStep, ExecutionLevel, OperationType
from ..isa.dependency import all_dependencies
from ..isa.instructions import Alu, Clflush, Instruction, Load, Rdtsc, Store
from ..isa.program import Program
from .classify import (
    AuthorizationKind,
    SecretAccessSite,
    find_secret_accesses,
)
from .expansion import (
    ACCESS_SUFFIX,
    MICRO_EDGE_KIND,
    MICRO_LEVEL,
    RESOLUTION_SUFFIX,
    RESULT_SUFFIX,
    expansion_for,
)


def instruction_node_name(index: int, instruction: Instruction) -> str:
    """Canonical vertex name of an (un-expanded) instruction."""
    return f"i{index}: {instruction}"


def resolution_node_name(index: int, instruction: Instruction) -> str:
    """Canonical vertex name of the resolution vertex of a software authorization."""
    return f"i{index}: {instruction} [resolved]"


@dataclass
class BuildResult:
    """The product of the attack-graph construction tool."""

    program: Program
    graph: AttackGraph
    secret_accesses: List[SecretAccessSite]
    #: Map from instruction index to the vertex carrying its result.
    result_node: Dict[int, str]
    #: Map from instruction index to all vertices modelling it.
    nodes_of: Dict[int, List[str]]
    #: Instruction indices whose registers carry secret-derived (tainted) data.
    tainted_instructions: Set[int] = field(default_factory=set)

    @property
    def is_meltdown_type(self) -> bool:
        return self.graph.is_meltdown_type

    def vulnerabilities(self) -> List[Vulnerability]:
        return self.graph.find_vulnerabilities()


class AttackGraphBuilder:
    """Builds an :class:`AttackGraph` from a program (Section V-C tool)."""

    def __init__(
        self,
        program: Program,
        protected_symbols: Optional[Sequence[str]] = None,
    ) -> None:
        self.program = program
        self.protected_symbols = set(protected_symbols or ())

    # ------------------------------------------------------------------
    def build(self) -> BuildResult:
        program = self.program
        accesses = find_secret_accesses(program, self.protected_symbols)
        access_by_index = {site.index: site for site in accesses}
        software_auth_indices = {
            site.authorization_index: site
            for site in accesses
            if not _is_intra_instruction(site)
        }

        graph = AttackGraph(
            name=f"attack-graph({program.name})",
            description=f"constructed from program {program.name!r}",
        )
        result_node: Dict[int, str] = {}
        entry_node: Dict[int, str] = {}
        completion_node: Dict[int, str] = {}
        nodes_of: Dict[int, List[str]] = {}

        tainted_registers: Set[str] = set()
        tainted_instructions: Set[int] = set()
        flushed_shared_symbols: Set[str] = set()
        send_seen = False

        for index, instruction in enumerate(program):
            site = access_by_index.get(index)
            if site is not None and _is_intra_instruction(site):
                names = self._add_expanded_instruction(graph, index, instruction, site)
                nodes_of[index] = names["all"]
                entry_node[index] = names["entry"]
                result_node[index] = names["result"]
                completion_node[index] = names["resolution"]
                tainted_registers |= instruction.writes_registers()
                tainted_instructions.add(index)
                continue

            op_type, step, speculative = self._classify_vertex(
                index,
                instruction,
                site,
                software_auth_indices,
                tainted_registers,
                flushed_shared_symbols,
                send_seen,
            )
            if op_type is OperationType.SEND:
                send_seen = True
            name = instruction_node_name(index, instruction)
            graph.add_step(
                name,
                op_type,
                step,
                speculative=speculative,
                description=instruction.comment or str(instruction),
            )
            nodes_of[index] = [name]
            entry_node[index] = name
            result_node[index] = name
            completion_node[index] = name

            if isinstance(instruction, Clflush) and instruction.address.symbol is not None:
                symbol = program.symbols.get(instruction.address.symbol)
                if symbol is not None and symbol.shared:
                    flushed_shared_symbols.add(symbol.name)

            # Taint propagation: secret accesses taint their outputs; any
            # instruction reading a tainted register taints its outputs.
            if op_type is OperationType.SECRET_ACCESS:
                tainted_registers |= instruction.writes_registers()
                tainted_instructions.add(index)
            elif instruction.reads_registers() & tainted_registers:
                tainted_registers |= instruction.writes_registers()
                tainted_instructions.add(index)

            # Software authorizations get an explicit resolution vertex.
            if index in software_auth_indices:
                resolution = resolution_node_name(index, instruction)
                graph.add_step(
                    resolution,
                    OperationType.RESOLUTION,
                    AttackStep.DELAYED_AUTHORIZATION,
                    description="authorization (branch) resolution",
                    after=[name],
                    kind=DependencyKind.DATA,
                )
                nodes_of[index].append(resolution)
                completion_node[index] = resolution

        self._add_dependency_edges(graph, entry_node, result_node, completion_node)
        return BuildResult(
            program=program,
            graph=graph,
            secret_accesses=accesses,
            result_node=result_node,
            nodes_of=nodes_of,
            tainted_instructions=tainted_instructions,
        )

    # ------------------------------------------------------------------
    def _classify_vertex(
        self,
        index: int,
        instruction: Instruction,
        site: Optional[SecretAccessSite],
        software_auth_indices: Dict[int, SecretAccessSite],
        tainted_registers: Set[str],
        flushed_shared_symbols: Set[str],
        send_seen: bool,
    ) -> Tuple[OperationType, Optional[AttackStep], bool]:
        """Type an un-expanded instruction vertex."""
        if site is not None:
            return OperationType.SECRET_ACCESS, AttackStep.SECRET_ACCESS, True
        if index in software_auth_indices:
            return OperationType.AUTHORIZATION, AttackStep.DELAYED_AUTHORIZATION, False
        if isinstance(instruction, Clflush):
            return OperationType.SETUP, AttackStep.SETUP, False
        if isinstance(instruction, Rdtsc):
            return OperationType.RECEIVE, AttackStep.RECEIVE, False

        operand = instruction.memory_read or instruction.memory_write
        address_registers: Set[str] = set(operand.registers) if operand is not None else set()
        if operand is not None and address_registers & tainted_registers:
            return OperationType.SEND, AttackStep.USE_AND_SEND, True
        if (
            operand is not None
            and operand.symbol in flushed_shared_symbols
            and send_seen
            and instruction.memory_read is not None
        ):
            return OperationType.RECEIVE, AttackStep.RECEIVE, False
        if instruction.reads_registers() & tainted_registers:
            if isinstance(instruction, (Alu,)):
                return OperationType.USE, AttackStep.USE_AND_SEND, True
            return OperationType.USE, AttackStep.USE_AND_SEND, True
        return OperationType.OTHER, None, False

    # ------------------------------------------------------------------
    def _add_expanded_instruction(
        self,
        graph: AttackGraph,
        index: int,
        instruction: Instruction,
        site: SecretAccessSite,
    ) -> Dict[str, object]:
        """Add the micro-op vertices of a faulty (intra-instruction) access."""
        base = instruction_node_name(index, instruction)
        expansion = expansion_for(site.authorization_kind)
        names: List[str] = []
        for micro in expansion.micro_ops:
            vertex = expansion.vertex_name(base, micro.suffix)
            step = None
            if micro.op_type in (OperationType.AUTHORIZATION, OperationType.RESOLUTION):
                step = AttackStep.DELAYED_AUTHORIZATION
            elif micro.op_type is OperationType.SECRET_ACCESS:
                step = AttackStep.SECRET_ACCESS
            graph.add_step(
                vertex,
                micro.op_type,
                step,
                speculative=micro.speculative,
                level=MICRO_LEVEL,
                description=f"{instruction}: {micro.description}",
            )
            names.append(vertex)
        for source_suffix, target_suffix in expansion.edges:
            graph.add_edge(
                expansion.vertex_name(base, source_suffix),
                expansion.vertex_name(base, target_suffix),
                kind=MICRO_EDGE_KIND,
            )
        entry = names[0]
        result = expansion.vertex_name(base, RESULT_SUFFIX)
        resolution = expansion.vertex_name(base, RESOLUTION_SUFFIX)
        return {"all": names, "entry": entry, "result": result, "resolution": resolution}

    # ------------------------------------------------------------------
    def _add_dependency_edges(
        self,
        graph: AttackGraph,
        entry_node: Dict[int, str],
        result_node: Dict[int, str],
        completion_node: Dict[int, str],
    ) -> None:
        """Map instruction-level dependencies onto graph edges.

        Data / address / control dependencies originate from the vertex that
        produces the instruction's result.  Fence edges instead originate
        from the instruction's *completion* vertex (the resolution vertex of
        a branch, the authorization-resolved micro-op of a faulting access):
        a serializing fence waits for prior instructions to fully complete,
        which is exactly how it enforces the security dependency.
        """
        for dependency in all_dependencies(self.program):
            if dependency.kind is DependencyKind.FENCE:
                source = completion_node.get(dependency.source)
            else:
                source = result_node.get(dependency.source)
            target = entry_node.get(dependency.target)
            if source is None or target is None or source == target:
                continue
            if graph.has_edge(source, target):
                continue
            graph.add_edge(source, target, kind=dependency.kind, label=dependency.detail)


def build_attack_graph(
    program: Program, protected_symbols: Optional[Sequence[str]] = None
) -> BuildResult:
    """Convenience wrapper: construct the attack graph of a program.

    Delegates to the default :class:`repro.engine.Engine`, which memoizes
    builds on ``Program.content_hash()`` -- callers re-building the same
    program share one construction.  Use :class:`AttackGraphBuilder` directly
    for an uncached build.
    """
    from ..engine import default_engine

    return default_engine().build(program, protected_symbols)


def _is_intra_instruction(site: SecretAccessSite) -> bool:
    return site.authorization_index == site.index and site.authorization_kind in ACCESS_SUFFIX
