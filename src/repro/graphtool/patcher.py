"""Patching programs by inserting security dependencies (fences).

The paper: "The tool can also proactively insert a security dependency, e.g.
a lightweight fence, to prevent attacks."  For software authorizations
(branches) the patcher inserts an ``lfence`` immediately after the
authorization instruction, which serializes the protected access behind the
authorization -- defense strategy 1.  Vulnerabilities whose authorization is
inside the access instruction (Meltdown-type) cannot be plugged by a software
fence; the patcher reports them as requiring a hardware defense (or a
mapping-removal defense such as KPTI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Set, Tuple

from ..isa.instructions import Branch, Fence, IndirectJmp, Instruction, Ret
from ..isa.program import Program
from .analyzer import AnalysisReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine import Engine
from .classify import MICROARCH_KINDS


@dataclass(frozen=True, slots=True)
class PatchResult:
    """Outcome of patching a program."""

    original: Program
    patched: Program
    fences_inserted: Tuple[int, ...]
    unpatchable_findings: Tuple[str, ...]
    report_before: AnalysisReport
    report_after: AnalysisReport

    @property
    def access_vulnerabilities_removed(self) -> bool:
        """All software-patchable access-before-authorization races are gone."""
        remaining = [
            finding
            for finding in self.report_after.access_findings
            if finding.software_patchable
        ]
        return not remaining

    def summary(self) -> str:
        lines = [
            f"Patched {self.original.name!r}: inserted {len(self.fences_inserted)} fence(s) "
            f"after instruction indices {list(self.fences_inserted)}",
            f"  software-patchable access races before: "
            f"{sum(1 for f in self.report_before.access_findings if f.software_patchable)}",
            f"  software-patchable access races after:  "
            f"{sum(1 for f in self.report_after.access_findings if f.software_patchable)}",
        ]
        if self.unpatchable_findings:
            lines.append("  findings requiring a hardware defense:")
            lines.extend(f"    - {finding}" for finding in self.unpatchable_findings)
        return "\n".join(lines)


def _fence_positions(report: AnalysisReport) -> Set[int]:
    """Instruction indices after which a fence should be inserted."""
    positions: Set[int] = set()
    for site in report.build.secret_accesses:
        if site.authorization_kind in MICROARCH_KINDS:
            continue
        positions.add(site.authorization_index)
    return positions


def _rebuild_with_fences(program: Program, positions: Sequence[int]) -> Program:
    """Create a new program with an lfence inserted after each given index."""
    patched = Program(name=f"{program.name}+fences", symbols=program.symbols.values())
    insert_after = set(positions)
    for index, instruction in enumerate(program):
        patched.append(instruction)
        if index in insert_after:
            patched.append(Fence(kind="lfence", comment="inserted security dependency"))
    return patched


def patch_program(
    program: Program,
    protected_symbols: Optional[Sequence[str]] = None,
    engine: Optional["Engine"] = None,
) -> PatchResult:
    """Analyze, patch (insert fences) and re-analyze a program.

    Both analyses run through the (given or default) engine session, so the
    pre-patch report is shared with any earlier ``analyze`` of the same
    program content, and re-patching is a pure cache hit.
    """
    from ..engine import default_engine

    session = engine if engine is not None else default_engine()
    report_before = session.analyze(program, protected_symbols).payload
    positions = sorted(_fence_positions(report_before))
    patched = _rebuild_with_fences(program, positions) if positions else program
    report_after = session.analyze(patched, protected_symbols).payload
    unpatchable = tuple(
        str(finding)
        for finding in report_before.findings
        if not finding.software_patchable
    )
    return PatchResult(
        original=program,
        patched=patched,
        fences_inserted=tuple(positions),
        unpatchable_findings=unpatchable,
        report_before=report_before,
        report_after=report_after,
    )
