"""Classification of instructions for the attack-graph construction tool.

Figure 9's first decision is whether the attack variant uses a *faulty
access* (authorization and access inside one instruction, requiring
micro-architecture-level modelling) or a separate *software authorization*
instruction such as a branch (architecture-level modelling suffices).  This
module identifies both kinds of authorization instructions in a program, and
the potential secret-access instructions the tool must track.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..isa.instructions import (
    Branch,
    Call,
    Cmp,
    FpExtract,
    FpLoad,
    IndirectJmp,
    Instruction,
    Jmp,
    Load,
    Rdmsr,
    Ret,
    Store,
)
from ..isa.program import Program


class AuthorizationKind(enum.Enum):
    """Kinds of authorization operations the tool recognises."""

    BOUNDS_CHECK_BRANCH = "software bounds-check branch"
    INDIRECT_BRANCH_TARGET = "indirect branch target resolution"
    RETURN_TARGET = "return target resolution"
    PAGE_PRIVILEGE_CHECK = "page privilege / permission check"
    MSR_PRIVILEGE_CHECK = "model-specific register privilege check"
    FPU_OWNER_CHECK = "FPU ownership check"
    STORE_LOAD_DISAMBIGUATION = "store-load address disambiguation"


#: Authorization kinds that require intra-instruction (micro-op) modelling.
MICROARCH_KINDS = frozenset(
    {
        AuthorizationKind.PAGE_PRIVILEGE_CHECK,
        AuthorizationKind.MSR_PRIVILEGE_CHECK,
        AuthorizationKind.FPU_OWNER_CHECK,
        AuthorizationKind.STORE_LOAD_DISAMBIGUATION,
    }
)


@dataclass(frozen=True)
class AuthorizationSite:
    """An authorization operation found in a program."""

    index: int
    kind: AuthorizationKind

    @property
    def intra_instruction(self) -> bool:
        """``True`` when this authorization happens inside the access instruction."""
        return self.kind in MICROARCH_KINDS


@dataclass(frozen=True)
class SecretAccessSite:
    """A potential secret access found in a program."""

    index: int
    reason: str
    #: Index of the instruction performing the authorization; equal to
    #: ``index`` itself for faulty (intra-instruction) accesses.
    authorization_index: int
    authorization_kind: AuthorizationKind


def _guarding_branch(
    program: Program, access_index: int, address_registers: Set[str]
) -> Optional[int]:
    """Find the closest earlier conditional branch guarding the access index.

    A guard is a conditional branch whose flags were produced by a ``cmp``
    involving one of the registers used to form the access address -- the
    classic software bounds check of Spectre v1.
    """
    latest_cmp_register: Dict[str, int] = {}
    cmp_for_branch: Optional[int] = None
    guard: Optional[int] = None
    for index in range(access_index):
        instruction = program[index]
        if isinstance(instruction, Cmp):
            cmp_for_branch = index
        elif isinstance(instruction, Branch):
            if cmp_for_branch is not None:
                compare = program[cmp_for_branch]
                involved = compare.reads_registers() & address_registers
                if involved:
                    guard = index
    return guard


def find_authorizations(program: Program) -> List[AuthorizationSite]:
    """All authorization operations in the program (Figure 9, both branches)."""
    sites: List[AuthorizationSite] = []
    unresolved_store_addresses = False
    for index, instruction in enumerate(program):
        if isinstance(instruction, Branch):
            sites.append(AuthorizationSite(index, AuthorizationKind.BOUNDS_CHECK_BRANCH))
        elif isinstance(instruction, IndirectJmp):
            sites.append(AuthorizationSite(index, AuthorizationKind.INDIRECT_BRANCH_TARGET))
        elif isinstance(instruction, Ret):
            sites.append(AuthorizationSite(index, AuthorizationKind.RETURN_TARGET))
        elif isinstance(instruction, Rdmsr):
            sites.append(AuthorizationSite(index, AuthorizationKind.MSR_PRIVILEGE_CHECK))
        elif isinstance(instruction, (FpLoad, FpExtract)):
            sites.append(AuthorizationSite(index, AuthorizationKind.FPU_OWNER_CHECK))
        elif isinstance(instruction, Store) and instruction.address.registers:
            unresolved_store_addresses = True
        elif isinstance(instruction, (Load, Cmp)) and instruction.memory_read is not None:
            operand = instruction.memory_read
            symbol = (
                program.symbols.get(operand.symbol) if operand.symbol is not None else None
            )
            if symbol is not None and (symbol.kernel or symbol.protected):
                sites.append(AuthorizationSite(index, AuthorizationKind.PAGE_PRIVILEGE_CHECK))
            elif unresolved_store_addresses and operand.registers:
                sites.append(
                    AuthorizationSite(index, AuthorizationKind.STORE_LOAD_DISAMBIGUATION)
                )
    return sites


def find_secret_accesses(
    program: Program, protected_symbols: Optional[Set[str]] = None
) -> List[SecretAccessSite]:
    """Potential secret accesses and the authorization each one is subject to.

    An access is a potential secret access when

    * it statically references a protected or kernel data symbol (direct
      access -- the authorization is the hardware permission check inside the
      same instruction), or
    * it reads a privileged or lazily-switched register (RDMSR, FP state), or
    * it is register-indexed and guarded by a bounds-check branch (indirect
      access -- out-of-bounds values of the index can reach protected data),
      or
    * it may alias an older store whose address is not yet resolved
      (store-to-load bypass).
    """
    protected = set(protected_symbols or ())
    protected |= {symbol.name for symbol in program.protected_symbols()}
    kernel = {name for name, symbol in program.symbols.items() if symbol.kernel}

    sites: List[SecretAccessSite] = []
    store_seen_with_unknown_address = False
    for index, instruction in enumerate(program):
        if isinstance(instruction, Store) and instruction.address.registers:
            store_seen_with_unknown_address = True
        if isinstance(instruction, Rdmsr):
            sites.append(
                SecretAccessSite(
                    index=index,
                    reason="privileged system register read",
                    authorization_index=index,
                    authorization_kind=AuthorizationKind.MSR_PRIVILEGE_CHECK,
                )
            )
            continue
        if isinstance(instruction, FpExtract):
            sites.append(
                SecretAccessSite(
                    index=index,
                    reason="read of lazily-switched FPU state",
                    authorization_index=index,
                    authorization_kind=AuthorizationKind.FPU_OWNER_CHECK,
                )
            )
            continue
        operand = instruction.memory_read
        if operand is None:
            continue
        symbol_name = operand.symbol
        if symbol_name is not None and (symbol_name in protected or symbol_name in kernel):
            sites.append(
                SecretAccessSite(
                    index=index,
                    reason=f"direct access to protected symbol {symbol_name!r}",
                    authorization_index=index,
                    authorization_kind=AuthorizationKind.PAGE_PRIVILEGE_CHECK,
                )
            )
            continue
        if operand.registers:
            guard = _guarding_branch(program, index, set(operand.registers))
            if guard is not None:
                sites.append(
                    SecretAccessSite(
                        index=index,
                        reason="register-indexed access guarded by a bounds check",
                        authorization_index=guard,
                        authorization_kind=AuthorizationKind.BOUNDS_CHECK_BRANCH,
                    )
                )
                continue
            if store_seen_with_unknown_address:
                sites.append(
                    SecretAccessSite(
                        index=index,
                        reason="load that may bypass an older store with unresolved address",
                        authorization_index=index,
                        authorization_kind=AuthorizationKind.STORE_LOAD_DISAMBIGUATION,
                    )
                )
    return sites


def requires_microarch_modelling(program: Program) -> bool:
    """Does any access need intra-instruction modelling (Meltdown-type)?"""
    return any(site.authorization_kind in MICROARCH_KINDS for site in find_secret_accesses(program))
