"""The Section V-C tool: construct attack graphs from programs, find and patch races."""

from .analyzer import AnalysisReport, Finding, analyze_build, analyze_program
from .builder import (
    AttackGraphBuilder,
    BuildResult,
    build_attack_graph,
    instruction_node_name,
    resolution_node_name,
)
from .classify import (
    AuthorizationKind,
    AuthorizationSite,
    SecretAccessSite,
    find_authorizations,
    find_secret_accesses,
    requires_microarch_modelling,
)
from .expansion import expansion_for
from .patcher import PatchResult, patch_program

__all__ = [
    "AnalysisReport",
    "AttackGraphBuilder",
    "AuthorizationKind",
    "AuthorizationSite",
    "BuildResult",
    "Finding",
    "PatchResult",
    "SecretAccessSite",
    "analyze_build",
    "analyze_program",
    "build_attack_graph",
    "expansion_for",
    "find_authorizations",
    "find_secret_accesses",
    "instruction_node_name",
    "patch_program",
    "requires_microarch_modelling",
    "resolution_node_name",
]
