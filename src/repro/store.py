"""Pluggable artifact stores: where :meth:`Engine.run` results live.

The :class:`~repro.engine.Engine` session caches *artifacts* (builds,
analyses, timing simulations, ...) in per-kind in-memory dictionaries; those
die with the process.  This module adds a second, spec-level layer: any
:class:`~repro.scenario.ScenarioSpec` result envelope can be persisted in an
:class:`ArtifactStore` keyed by the spec's content hash, so a CLI or CI
invocation that re-runs an identical experiment point is served from the
store instead of recomputing -- across processes, when the store is a
:class:`DiskStore`.

Three implementations:

* :class:`MemoryStore` -- an in-process LRU dictionary.  Useful for tests and
  for long-lived sessions that want spec-level (whole-sweep) memoization on
  top of the engine's per-artifact caches.
* :class:`DiskStore` -- the persistent store.  Pickled
  :class:`~repro.engine.Result` envelopes live under
  ``~/.cache/repro/<version>/<hh>/<hash>.pkl`` (``hh`` = the first two hash
  characters; override the root with ``REPRO_CACHE_DIR`` or ``root=``).  The
  ``version`` segment is the *code version*: bumping
  :data:`CODE_VERSION` (or passing a custom ``version=``) orphans every
  previously cached payload, which is how result-shape changes invalidate
  stale artifacts without touching the content-hash scheme.  Reads touch the
  entry (LRU); writes are atomic (temp file + ``os.replace``) and evict the
  least-recently-used entries beyond ``max_entries``.  A corrupted or
  truncated pickle is treated as a miss and deleted, so the engine falls
  back to recomputing and rewrites a good entry.
* :class:`ArtifactStore` -- the :class:`typing.Protocol` the engine codes
  against; bring your own (memcached, S3, ...) by implementing four methods.

Stores never interpret the values they hold -- the engine decides what is
cacheable and how to mark provenance.
"""

from __future__ import annotations

import itertools
import os
import pickle
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterator, Optional, Protocol, Set, Tuple, runtime_checkable

#: Version tag of the cached artifact layout.  Part of every
#: :class:`DiskStore` path: bump it when the pickled ``Result`` shapes (or
#: the analyses behind them) change incompatibly, and every old entry is
#: invalidated at once without touching the spec content-hash scheme.
CODE_VERSION = "1"

#: Environment variable overriding the default on-disk cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default on-disk cache root (``~/.cache/repro``).
DEFAULT_CACHE_ROOT = Path.home() / ".cache" / "repro"

#: Process-wide uniquifier for temp-file names: combined with the pid it
#: makes every in-flight write target distinct without a mkstemp random
#: probe loop on the hot put path.
_tmp_counter = itertools.count()


@runtime_checkable
class ArtifactStore(Protocol):
    """What the engine needs from a store: get / put / stats / clear.

    Keys are content-hash strings (hex); values are picklable objects --
    in practice :class:`~repro.engine.Result` envelopes.  ``get`` returns
    ``None`` on a miss (and must never raise on a damaged entry), ``put``
    returns ``True`` when the value was actually persisted, ``stats``
    reports at least ``entries`` / ``hits`` / ``misses``, and ``clear``
    drops everything, returning the number of entries removed.
    """

    #: ``True`` when ``get`` returns (and ``put`` keeps) the very object the
    #: caller handed over, so the engine must snapshot mutable envelope data
    #: around the store.  Serializing stores (disk, network) set this
    #: ``False`` -- their round-trip already decouples every value.
    aliases_values: bool = True

    def get(self, key: str) -> Optional[object]: ...  # pragma: no cover

    def put(self, key: str, value: object) -> bool: ...  # pragma: no cover

    def stats(self) -> Dict[str, int]: ...  # pragma: no cover

    def clear(self) -> int: ...  # pragma: no cover


def _strippable(value: object) -> Optional[object]:
    """A copy of a ``Result``-shaped value without its rich payload.

    Some payloads (open file handles, lambdas in user-built objects) cannot
    cross a pickle boundary; the envelope ``data`` always can.  Returns the
    stripped copy, or ``None`` when the value has no ``payload`` to strip.
    """
    from dataclasses import is_dataclass, replace

    if is_dataclass(value) and hasattr(value, "payload"):
        return replace(value, payload=None)
    return None


def _dumps(value: object) -> Optional[bytes]:
    """Pickle a value, stripping the payload as a fallback; ``None`` if hopeless."""
    try:
        return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        stripped = _strippable(value)
        if stripped is None:
            return None
        try:
            return pickle.dumps(stripped, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return None


class MemoryStore:
    """An in-process LRU artifact store (the spec-level memo dictionary)."""

    aliases_values = True

    def __init__(self, max_entries: Optional[int] = 4096) -> None:
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._evictions = 0

    def get(self, key: str) -> Optional[object]:
        try:
            value = self._entries[key]
        except KeyError:
            self._misses += 1
            return None
        self._entries.move_to_end(key)  # LRU touch
        self._hits += 1
        return value

    def put(self, key: str, value: object) -> bool:
        self._entries[key] = value
        self._entries.move_to_end(key)
        self._puts += 1
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
        return True

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self._hits,
            "misses": self._misses,
            "puts": self._puts,
            "put_failures": 0,  # a dictionary insert cannot fail
            "evictions": self._evictions,
        }

    def clear(self) -> int:
        dropped = len(self._entries)
        self._entries.clear()
        return dropped


class DiskStore:
    """The disk-persistent artifact store (survives CLI / CI invocations).

    Layout: ``<root>/<version>/<hh>/<hash>.pkl`` where ``hh`` is the first
    two characters of the content hash (keeps directories small at tens of
    thousands of entries).  ``version`` defaults to :data:`CODE_VERSION`.

    Hit/miss counters are per-instance (per process); ``entries`` and
    ``bytes`` are measured on disk, so two processes sharing one root see
    each other's writes -- that cross-process reuse is the point.

    Every path is safe against concurrent siblings: entries deleted under
    an LRU walk or between read and touch are tolerated, version/bucket
    directory creation races are absorbed (a put retries once when its
    bucket vanishes mid-write), and only a *corrupt* entry is ever deleted
    by ``get`` -- a transient read error is just a miss.
    """

    aliases_values = False  # every get/put round-trips through pickle

    def __init__(
        self,
        root: Optional[object] = None,
        *,
        version: Optional[str] = None,
        max_entries: Optional[int] = 4096,
    ) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_ROOT
        self.root = Path(root)
        self.version = version if version is not None else CODE_VERSION
        self.max_entries = max_entries
        self._hits = 0
        self._misses = 0
        #: Persist outcomes.  ``put`` returning ``False`` used to be
        #: invisible (a write-only signal nobody read); the counters make a
        #: store that is silently failing to persist observable in
        #: ``stats()`` -- and through it in ``Engine.stats()["store"]`` and
        #: the service's ``/stats``.
        self._puts = 0
        self._put_failures = 0
        self._evictions = 0
        #: Approximate on-disk entry count, so a put under the limit does
        #: not pay a full directory scan.  Initialized lazily by the first
        #: eviction check; concurrent writers can make it drift (it is
        #: re-trued by every real eviction scan), which only means eviction
        #: may trigger a put early or late -- never incorrectly.
        self._entry_estimate: Optional[int] = None
        #: Bucket directories this instance has already created, so the
        #: per-put fast path skips the mkdir syscall.  A bucket removed
        #: behind our back (external cleanup) is detected by the failed
        #: temp-file open and recreated.
        self._seen_buckets: Set[str] = set()

    # Workers of a sharded grid reconstruct the store from (root, version,
    # max_entries) on their side of the process boundary.
    def __reduce__(self):
        return (
            _rebuild_disk_store,
            (str(self.root), self.version, self.max_entries),
        )

    @property
    def directory(self) -> Path:
        """The version-scoped directory every entry of this store lives in."""
        return self.root / self.version

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.pkl"

    def _iter_entries(self) -> Iterator[Path]:
        # Listed eagerly per directory level: a concurrent evictor (another
        # process sharing the root) may delete buckets or entries mid-walk,
        # and a lazy glob would raise out of the iterator at the call site.
        try:
            buckets = list(self.directory.iterdir())
        except OSError:
            return
        for bucket in buckets:
            try:
                children = list(bucket.iterdir())
            except OSError:  # bucket raced away under the walk
                continue
            for path in children:
                if path.suffix == ".pkl":
                    yield path

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[object]:
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            # Missing entry -- or a transient read failure (the entry was
            # evicted under us by a concurrent process, a permission hiccup):
            # either way a plain miss.  Only *corruption* warrants deleting,
            # a failed read must never destroy a possibly healthy entry.
            self._misses += 1
            return None
        try:
            value = pickle.loads(blob)
        except Exception:
            # Corrupted / truncated entry (a killed writer, a partial disk):
            # drop it and report a miss so the caller recomputes and the next
            # put() rewrites a good entry.
            self._misses += 1
            try:
                path.unlink()
                if self._entry_estimate:
                    self._entry_estimate -= 1
            except OSError:  # pragma: no cover - racing cleaner
                pass
            return None
        self._hits += 1
        try:
            os.utime(path)  # LRU touch: eviction drops the oldest access
        except OSError:  # pragma: no cover - entry raced away
            pass
        return value

    def put(self, key: str, value: object) -> bool:
        persisted = self._write(key, value)
        if persisted:
            self._puts += 1
        else:
            self._put_failures += 1
        return persisted

    def _write(self, key: str, value: object) -> bool:
        blob = _dumps(value)
        if blob is None:
            return False
        path = self._path(key)
        bucket = path.parent
        # Two rounds: the second absorbs a bucket directory deleted between
        # our mkdir/cached check and the temp-file open (a concurrent
        # cleaner racing version-dir creation).
        for _ in range(2):
            if bucket.name not in self._seen_buckets:
                try:
                    bucket.mkdir(parents=True, exist_ok=True)
                except OSError:  # a non-directory in the way, permissions
                    return False
                self._seen_buckets.add(bucket.name)
            tmp = bucket / f".{key[:8]}-{os.getpid()}-{next(_tmp_counter)}.tmp"
            try:
                fd = os.open(tmp, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except OSError:
                self._seen_buckets.discard(bucket.name)
                continue
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp, path)  # atomic: readers never see a torn file
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                self._seen_buckets.discard(bucket.name)
                continue
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            if self._entry_estimate is not None:
                # Overwrites of an existing key inflate the estimate (there
                # is no per-put stat on the fast path); an early eviction
                # scan re-trues it, so the drift is only ever a scan early.
                self._entry_estimate += 1
            self._evict()
            return True
        return False

    def _entry_age(self, path: Path) -> Tuple[int, str]:
        try:
            return (path.stat().st_mtime_ns, path.name)
        except OSError:  # pragma: no cover - entry raced away
            return (0, path.name)

    def _evict(self) -> int:
        """Drop least-recently-used entries beyond ``max_entries``.

        The full directory scan only runs when the (approximate) entry count
        actually exceeds the limit; a store below its bound pays one lazy
        initial count and O(1) bookkeeping per put afterwards.
        """
        if self.max_entries is None:
            return 0
        if self._entry_estimate is None:
            self._entry_estimate = sum(1 for _ in self._iter_entries())
        if self._entry_estimate <= self.max_entries:
            return 0
        entries = sorted(self._iter_entries(), key=self._entry_age)
        dropped = 0
        while len(entries) - dropped > self.max_entries:
            try:
                entries[dropped].unlink()
            except OSError:  # pragma: no cover - racing cleaner
                pass
            dropped += 1
        self._entry_estimate = len(entries) - dropped
        self._evictions += dropped
        return dropped

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        entries = 0
        total_bytes = 0
        for path in self._iter_entries():
            try:
                total_bytes += path.stat().st_size
            except OSError:  # pragma: no cover - entry raced away
                continue
            entries += 1
        return {
            "entries": entries,
            "bytes": total_bytes,
            "hits": self._hits,
            "misses": self._misses,
            "puts": self._puts,
            "put_failures": self._put_failures,
            "evictions": self._evictions,
        }

    def clear(self) -> int:
        dropped = 0
        for path in self._iter_entries():
            try:
                path.unlink()
                dropped += 1
            except OSError:  # pragma: no cover - racing cleaner
                pass
        self._entry_estimate = 0
        return dropped


def _rebuild_disk_store(root: str, version: str, max_entries: Optional[int]) -> DiskStore:
    return DiskStore(root, version=version, max_entries=max_entries)


def store_label(store: Optional[object]) -> str:
    """The hit-source name of a store layer: ``disk`` / ``memory`` / ``none``.

    Serializing stores (``aliases_values is False``) are "disk-class" --
    the value survived a process boundary; aliasing stores are in-memory.
    The analysis service stamps warm hits with this label.
    """
    if store is None:
        return "none"
    return "memory" if getattr(store, "aliases_values", True) else "disk"


def open_store(selector: Optional[str]) -> Optional[object]:
    """Build a store from a CLI-style selector.

    ``None``/``""`` -> no store, ``"memory"`` -> :class:`MemoryStore`,
    ``"disk"`` -> :class:`DiskStore` on the default root, anything else is
    taken as a directory path for a :class:`DiskStore`.
    """
    if not selector:
        return None
    if selector == "memory":
        return MemoryStore()
    if selector == "disk":
        return DiskStore()
    return DiskStore(root=selector)


def store_ref(store: Optional[object]) -> Optional[Tuple[str, str, Optional[int]]]:
    """A picklable reference to a store, for shipping to pool workers.

    Only :class:`DiskStore` is meaningfully shareable across processes (the
    filesystem is the shared medium); memory stores return ``None`` so
    workers simply compute and the parent absorbs their results.
    """
    if isinstance(store, DiskStore):
        return (str(store.root), store.version, store.max_entries)
    return None


def store_from_ref(
    ref: Optional[Tuple[str, str, Optional[int]]]
) -> Optional[DiskStore]:
    """Rebuild a worker-side store from :func:`store_ref`'s reference."""
    if ref is None:
        return None
    root, version, max_entries = ref
    return DiskStore(root, version=version, max_entries=max_entries)
