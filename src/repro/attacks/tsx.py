"""TSX-based transient attack variants: TAA and CacheOut.

TSX transactions are another source of transient instructions: an aborted
transaction squashes its instructions, but micro-architectural state changes
survive.  The authorization node is the completion of the TSX asynchronous
abort; the illegal access forwards data from the L1D cache, store/load
buffers (TAA) or the line fill buffer (CacheOut).
"""

from __future__ import annotations

from functools import partial

from .base import (
    AttackCategory,
    AttackVariant,
    DelayMechanism,
    SecretSource,
)
from .builders import build_faulting_load_graph

TAA = AttackVariant(
    key="taa",
    name="TAA",
    cve="CVE-2019-11135",
    impact="TSX asynchronous abort leaks in-flight data",
    authorization="TSX Asynchronous Abort Completion",
    illegal_access="Load data from L1D cache, store or load buffers",
    category=AttackCategory.MELTDOWN_TYPE,
    secret_source=SecretSource.LINE_FILL_BUFFER,
    delay_mechanism=DelayMechanism.TSX_ABORT,
    year=2019,
    reference="Canella et al., CCS 2019 (Fallout paper)",
    in_table1=False,
    graph_builder=partial(
        build_faulting_load_graph,
        name="taa",
        sources=("cache", "store buffer", "load port"),
        permission_check_label="TSX asynchronous abort completion",
        access_label="load in-flight data inside an aborting transaction",
    ),
)

CACHEOUT = AttackVariant(
    key="cacheout",
    name="Cacheout",
    cve="CVE-2020-0549",
    impact="Leak data on Intel CPUs via cache evictions into the fill buffer",
    authorization="TSX Asynchronous Abort Completion",
    illegal_access="Forward data from fill buffer",
    category=AttackCategory.MELTDOWN_TYPE,
    secret_source=SecretSource.LINE_FILL_BUFFER,
    delay_mechanism=DelayMechanism.TSX_ABORT,
    year=2020,
    reference="van Schaik et al., 2020",
    in_table1=False,
    graph_builder=partial(
        build_faulting_load_graph,
        name="cacheout",
        sources=("line fill buffer",),
        permission_check_label="TSX asynchronous abort completion",
        access_label="forward evicted data from the line fill buffer",
    ),
)

TSX_VARIANTS = (TAA, CACHEOUT)
