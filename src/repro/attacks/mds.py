"""Micro-architectural Data Sampling (MDS) attack variants (Figure 4).

RIDL, ZombieLoad and Fallout all exploit a faulting load that aggressively
forwards stale data from micro-architectural buffers.  They differ only in
which buffer the secret comes from: load port and line fill buffer (RIDL),
line fill buffer (ZombieLoad), store buffer (Fallout).
"""

from __future__ import annotations

from functools import partial

from .base import (
    AttackCategory,
    AttackVariant,
    DelayMechanism,
    SecretSource,
)
from .builders import build_faulting_load_graph

RIDL = AttackVariant(
    key="ridl",
    name="RIDL",
    cve="CVE-2018-12130",
    impact="Rogue in-flight data load across privilege boundaries",
    authorization="Load fault check",
    illegal_access="Forward data from fill buffer and load port",
    category=AttackCategory.MELTDOWN_TYPE,
    secret_source=SecretSource.LINE_FILL_BUFFER,
    delay_mechanism=DelayMechanism.LOAD_FAULT_CHECK,
    year=2019,
    reference="Van Schaik et al., IEEE S&P 2019",
    in_table1=False,
    graph_builder=partial(
        build_faulting_load_graph,
        name="ridl",
        sources=("load port", "line fill buffer"),
        permission_check_label="load fault check",
        access_label="forward in-flight data",
    ),
)

ZOMBIELOAD = AttackVariant(
    key="zombieload",
    name="ZombieLoad",
    cve="CVE-2018-12130",
    impact="Cross-privilege-boundary data sampling",
    authorization="Load fault check",
    illegal_access="Forward data from fill buffer",
    category=AttackCategory.MELTDOWN_TYPE,
    secret_source=SecretSource.LINE_FILL_BUFFER,
    delay_mechanism=DelayMechanism.LOAD_FAULT_CHECK,
    year=2019,
    reference="Schwarz et al., CCS 2019",
    in_table1=False,
    graph_builder=partial(
        build_faulting_load_graph,
        name="zombieload",
        sources=("line fill buffer",),
        permission_check_label="load fault check",
        access_label="forward stale fill-buffer data",
    ),
)

FALLOUT = AttackVariant(
    key="fallout",
    name="Fallout",
    cve="CVE-2018-12126",
    impact="Leak data from store buffer on Meltdown-resistant CPUs",
    authorization="Load fault check",
    illegal_access="Forward data from store buffer",
    category=AttackCategory.MELTDOWN_TYPE,
    secret_source=SecretSource.STORE_BUFFER,
    delay_mechanism=DelayMechanism.LOAD_FAULT_CHECK,
    year=2019,
    reference="Canella et al., CCS 2019",
    in_table1=False,
    graph_builder=partial(
        build_faulting_load_graph,
        name="fallout",
        sources=("store buffer",),
        permission_check_label="load fault check",
        access_label="forward stale store-buffer data",
    ),
)

MDS_VARIANTS = (RIDL, ZOMBIELOAD, FALLOUT)
