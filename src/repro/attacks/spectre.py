"""Spectre-type attack variants (inter-instruction authorization).

Covers Spectre v1, v1.1, v1.2, v2, Spectre-RSB (all modelled by the Figure 1
graph) and Spectre v4 / Spectre-STL (modelled by the Figure 6 graph), plus
Spoiler which leaks address-mapping information through speculative load
hazards.
"""

from __future__ import annotations

from functools import partial

from .base import (
    AttackCategory,
    AttackVariant,
    CovertChannelKind,
    DelayMechanism,
    SecretSource,
)
from .builders import (
    build_branch_speculation_graph,
    build_store_bypass_graph,
)

SPECTRE_V1 = AttackVariant(
    key="spectre_v1",
    name="Spectre v1",
    cve="CVE-2017-5753",
    impact="Boundary check bypass",
    authorization="Boundary-check branch resolution",
    illegal_access="Read out-of-bounds memory",
    category=AttackCategory.SPECTRE_TYPE,
    secret_source=SecretSource.OUT_OF_BOUNDS_MEMORY,
    delay_mechanism=DelayMechanism.CONDITIONAL_BRANCH,
    year=2018,
    reference="Kocher et al., IEEE S&P 2019",
    graph_builder=partial(
        build_branch_speculation_graph,
        name="spectre-v1",
        branch_label="array bounds check (conditional branch)",
        access_label="read out-of-bounds memory",
    ),
)

SPECTRE_V1_1 = AttackVariant(
    key="spectre_v1_1",
    name="Spectre v1.1",
    cve="CVE-2018-3693",
    impact="Speculative buffer overflow",
    authorization="Boundary-check branch resolution",
    illegal_access="Write out-of-bounds memory",
    category=AttackCategory.SPECTRE_TYPE,
    secret_source=SecretSource.OUT_OF_BOUNDS_MEMORY,
    delay_mechanism=DelayMechanism.CONDITIONAL_BRANCH,
    year=2018,
    reference="Kiriansky and Waldspurger, 2018",
    graph_builder=partial(
        build_branch_speculation_graph,
        name="spectre-v1.1",
        branch_label="array bounds check (conditional branch)",
        access_label="write out-of-bounds memory (speculative buffer overflow)",
    ),
)

SPECTRE_V1_2 = AttackVariant(
    key="spectre_v1_2",
    name="Spectre v1.2",
    cve=None,
    impact="Overwrite read-only memory",
    authorization="Page read-only bit check",
    illegal_access="Write read-only memory",
    category=AttackCategory.SPECTRE_TYPE,
    secret_source=SecretSource.READ_ONLY_MEMORY,
    delay_mechanism=DelayMechanism.PAGE_READONLY_CHECK,
    year=2018,
    reference="Kiriansky and Waldspurger, 2018",
    graph_builder=partial(
        build_branch_speculation_graph,
        name="spectre-v1.2",
        branch_label="page read-only permission check",
        access_label="write to read-only memory",
    ),
)

SPECTRE_V2 = AttackVariant(
    key="spectre_v2",
    name="Spectre v2",
    cve="CVE-2017-5715",
    impact="Branch target injection",
    authorization="Indirect branch target resolution",
    illegal_access="Execute code not intended to be executed",
    category=AttackCategory.SPECTRE_TYPE,
    secret_source=SecretSource.WRONG_CODE,
    delay_mechanism=DelayMechanism.INDIRECT_BRANCH,
    year=2018,
    reference="Kocher et al., IEEE S&P 2019",
    graph_builder=partial(
        build_branch_speculation_graph,
        name="spectre-v2",
        branch_label="indirect branch target computation",
        access_label="execute an attacker-chosen gadget that reads the secret",
    ),
)

SPECTRE_RSB = AttackVariant(
    key="spectre_rsb",
    name="Spectre RSB",
    cve="CVE-2018-15572",
    impact="Return mis-predict, execute wrong code",
    authorization="Return target resolution",
    illegal_access="Execute code not intended to be executed",
    category=AttackCategory.SPECTRE_TYPE,
    secret_source=SecretSource.WRONG_CODE,
    delay_mechanism=DelayMechanism.RETURN_ADDRESS,
    year=2018,
    reference="Koruyeh et al., WOOT 2018",
    graph_builder=partial(
        build_branch_speculation_graph,
        name="spectre-rsb",
        branch_label="return address resolution (return stack buffer)",
        access_label="execute an attacker-chosen gadget that reads the secret",
    ),
)

SPECTRE_V4 = AttackVariant(
    key="spectre_v4",
    name="Spectre v4",
    cve="CVE-2018-3639",
    impact="Speculative store bypass, read stale data in memory",
    authorization="Store-load address dependency resolution",
    illegal_access="Read stale data",
    category=AttackCategory.SPECTRE_TYPE,
    secret_source=SecretSource.STALE_MEMORY,
    delay_mechanism=DelayMechanism.ADDRESS_DISAMBIGUATION,
    year=2018,
    reference="Microsoft/Project Zero, 2018",
    graph_builder=partial(build_store_bypass_graph, name="spectre-v4"),
)

SPOILER = AttackVariant(
    key="spoiler",
    name="Spoiler",
    cve="CVE-2019-0162",
    impact="Virtual-to-physical address mapping leakage",
    authorization="Physical address conflict resolution for speculative loads",
    illegal_access="Observe timing of speculative load hazards (address mapping)",
    category=AttackCategory.SPECTRE_TYPE,
    secret_source=SecretSource.ADDRESS_MAPPING,
    delay_mechanism=DelayMechanism.PHYSICAL_ADDRESS_CONFLICT,
    channel=CovertChannelKind.MEMORY_BUS,
    year=2019,
    reference="Islam et al., USENIX Security 2019",
    in_table1=True,
    graph_builder=partial(
        build_branch_speculation_graph,
        name="spoiler",
        branch_label="speculative load hazard (physical address conflict) resolution",
        access_label="observe dependency-resolution timing revealing page mappings",
        mistrain=False,
    ),
)

SPECTRE_VARIANTS = (
    SPECTRE_V1,
    SPECTRE_V1_1,
    SPECTRE_V1_2,
    SPECTRE_V2,
    SPECTRE_V4,
    SPECTRE_RSB,
    SPOILER,
)
