"""Special-register attack variants (Figure 5): Spectre v3a and LazyFP."""

from __future__ import annotations

from functools import partial

from .base import (
    AttackCategory,
    AttackVariant,
    DelayMechanism,
    SecretSource,
)
from .builders import build_special_register_graph

SPECTRE_V3A = AttackVariant(
    key="spectre_v3a",
    name="Meltdown variant1 (Spectre v3a)",
    cve="CVE-2018-3640",
    impact="System register value leakage to unprivileged attacker",
    authorization="RDMSR instruction privilege check",
    illegal_access="Read system register",
    category=AttackCategory.MELTDOWN_TYPE,
    secret_source=SecretSource.SPECIAL_REGISTER,
    delay_mechanism=DelayMechanism.MSR_PRIVILEGE_CHECK,
    year=2018,
    reference="CVE-2018-3640",
    graph_builder=partial(
        build_special_register_graph,
        name="spectre-v3a",
        source="special register",
        permission_check_label="RDMSR supervisor privilege check",
    ),
)

LAZY_FP = AttackVariant(
    key="lazy_fp",
    name="Lazy FP",
    cve="CVE-2018-3665",
    impact="Leak of FPU state",
    authorization="FPU owner check",
    illegal_access="Read stale FPU state",
    category=AttackCategory.MELTDOWN_TYPE,
    secret_source=SecretSource.FPU_REGISTERS,
    delay_mechanism=DelayMechanism.FPU_OWNER_CHECK,
    year=2018,
    reference="Stecklina and Prescher, 2018",
    graph_builder=partial(
        build_special_register_graph,
        name="lazy-fp",
        source="FPU",
        permission_check_label="lazy FPU context ownership check",
    ),
)

SPECIAL_REGISTER_VARIANTS = (SPECTRE_V3A, LAZY_FP)
