"""Meltdown-type attack variants triggered by a faulting memory load.

Covers Meltdown itself and the Foreshadow / L1-Terminal-Fault family, which
all use the Figure 3/4 graph with different secret sources and different
permission checks that are bypassed transiently.
"""

from __future__ import annotations

from functools import partial

from .base import (
    AttackCategory,
    AttackVariant,
    DelayMechanism,
    SecretSource,
)
from .builders import build_faulting_load_graph

MELTDOWN = AttackVariant(
    key="meltdown",
    name="Meltdown (Spectre v3)",
    cve="CVE-2017-5754",
    impact="Kernel content leakage to unprivileged attacker",
    authorization="Kernel privilege check",
    illegal_access="Read from kernel memory",
    category=AttackCategory.MELTDOWN_TYPE,
    secret_source=SecretSource.MAIN_MEMORY,
    delay_mechanism=DelayMechanism.KERNEL_PRIVILEGE_CHECK,
    year=2018,
    reference="Lipp et al., USENIX Security 2018",
    graph_builder=partial(
        build_faulting_load_graph,
        name="meltdown",
        sources=("memory",),
        permission_check_label="kernel privilege (supervisor bit) check",
        access_label="read kernel memory",
    ),
)

FORESHADOW = AttackVariant(
    key="foreshadow",
    name="Foreshadow (L1 Terminal Fault)",
    cve="CVE-2018-3615",
    impact="SGX enclave memory leakage",
    authorization="Page permission check",
    illegal_access="Read enclave data in L1 cache from outside enclave",
    category=AttackCategory.MELTDOWN_TYPE,
    secret_source=SecretSource.L1_CACHE,
    delay_mechanism=DelayMechanism.PAGE_PERMISSION_CHECK,
    year=2018,
    reference="Van Bulck et al., USENIX Security 2018",
    graph_builder=partial(
        build_faulting_load_graph,
        name="foreshadow",
        sources=("cache",),
        permission_check_label="page present/reserved bit check (terminal fault)",
        access_label="read SGX enclave data from the L1 data cache",
    ),
)

FORESHADOW_OS = AttackVariant(
    key="foreshadow_os",
    name="Foreshadow-OS",
    cve="CVE-2018-3620",
    impact="OS memory leakage",
    authorization="Page permission check",
    illegal_access="Read kernel data in cache",
    category=AttackCategory.MELTDOWN_TYPE,
    secret_source=SecretSource.L1_CACHE,
    delay_mechanism=DelayMechanism.PAGE_PERMISSION_CHECK,
    year=2018,
    reference="Weisse et al., 2018",
    graph_builder=partial(
        build_faulting_load_graph,
        name="foreshadow-os",
        sources=("cache",),
        permission_check_label="page present bit check (terminal fault)",
        access_label="read OS kernel data from the L1 data cache",
    ),
)

FORESHADOW_VMM = AttackVariant(
    key="foreshadow_vmm",
    name="Foreshadow-VMM",
    cve="CVE-2018-3646",
    impact="VMM memory leakage",
    authorization="Page permission check",
    illegal_access="Read VMM data in cache",
    category=AttackCategory.MELTDOWN_TYPE,
    secret_source=SecretSource.L1_CACHE,
    delay_mechanism=DelayMechanism.PAGE_PERMISSION_CHECK,
    year=2018,
    reference="Weisse et al., 2018",
    graph_builder=partial(
        build_faulting_load_graph,
        name="foreshadow-vmm",
        sources=("cache",),
        permission_check_label="extended page table (EPT) permission check",
        access_label="read hypervisor data from the L1 data cache",
    ),
)

MELTDOWN_VARIANTS = (MELTDOWN, FORESHADOW, FORESHADOW_OS, FORESHADOW_VMM)
