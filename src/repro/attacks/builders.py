"""Attack-graph builders for the paper's figures.

Each builder constructs the attack graph of one figure:

* :func:`build_branch_speculation_graph` -- Figure 1 (Spectre v1/v1.1/v1.2/v2/RSB),
* :func:`build_faulting_load_graph` -- Figures 3 and 4 (Meltdown, Foreshadow,
  RIDL, ZombieLoad, Fallout, TAA, CacheOut), with one secret-access vertex per
  micro-architectural secret source,
* :func:`build_special_register_graph` -- Figure 5 (Spectre v3a, LazyFP),
* :func:`build_store_bypass_graph` -- Figure 6 (Spectre v4),
* :func:`build_lvi_graph` -- Figure 7 (Load Value Injection).

Vertex names follow the figures so that reports, defenses and tests can refer
to them (:class:`Nodes`).  All builders produce graphs with the race between
the authorization-resolution vertex and the speculative access / use / send
vertices -- the missing security dependencies the paper identifies.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.attack_graph import AttackGraph
from ..core.edges import DependencyKind
from ..core.nodes import AttackStep, ExecutionLevel, OperationType


class Nodes:
    """Canonical vertex names used across the attack graphs."""

    FLUSH = "Flush Array_A"
    MISTRAIN = "Mistrain predictor"
    PLANT_BUFFER = "Place malicious value M in hardware buffers"
    BRANCH = "Conditional/Indirect branch instruction"
    BRANCH_RESOLUTION = "Branch resolution"
    LOAD_INSTRUCTION = "Load instruction"
    REGISTER_ACCESS = "Register access instruction"
    STORE = "Store S"
    PERMISSION_CHECK = "Load permission check"
    DISAMBIGUATION = "Memory address disambiguation"
    AUTH_RESOLVED = "Authorization resolved"
    SQUASH = "Squash or commit"
    LOAD_S = "Load S"
    READ_S = "Read S"
    COMPUTE_R = "Compute load address R"
    LOAD_R = "Load R to cache"
    DIVERT = "Victim's control or data flow diverted by M"
    RELOAD = "Reload Array_A"
    MEASURE = "Measure time"

    @staticmethod
    def read_from(source: str) -> str:
        """Vertex name for reading the secret from a given micro-architectural source."""
        return f"Read S from {source}"

    @staticmethod
    def read_m_from(source: str) -> str:
        """Vertex name for reading the injected value M from a given source (LVI)."""
        return f"Read M from {source}"


def _add_receiver_side(graph: AttackGraph, *, after_send: str, after_window: str) -> None:
    """Add the covert-channel receiver vertices (steps 1a and 5) shared by all graphs."""
    graph.add_step(
        Nodes.RELOAD,
        OperationType.RECEIVE,
        AttackStep.RECEIVE,
        description="Receiver reloads every entry of Array_A",
        after=[Nodes.FLUSH, after_send, after_window],
    )
    graph.add_step(
        Nodes.MEASURE,
        OperationType.RECEIVE,
        AttackStep.RECEIVE,
        description="Receiver measures access times and picks the fast (hit) entry",
        after=[Nodes.RELOAD],
        kind=DependencyKind.DATA,
    )


def _add_sender_send_chain(
    graph: AttackGraph, *, secret_nodes: Sequence[str], speculative: bool = True
) -> None:
    """Add the Use (Compute R) and Send (Load R) vertices fed by the secret accesses."""
    graph.add_step(
        Nodes.COMPUTE_R,
        OperationType.USE,
        AttackStep.USE_AND_SEND,
        speculative=speculative,
        description="Transform the secret into the probe address R = Array_A + S*4K",
    )
    for secret in secret_nodes:
        graph.add_edge(secret, Nodes.COMPUTE_R, kind=DependencyKind.DATA)
    graph.add_step(
        Nodes.LOAD_R,
        OperationType.SEND,
        AttackStep.USE_AND_SEND,
        speculative=speculative,
        description="Fetch Array_A[S*4K]: cache-line state change encodes the secret",
        after=[Nodes.COMPUTE_R],
        kind=DependencyKind.ADDRESS,
    )


def build_branch_speculation_graph(
    name: str = "spectre-v1",
    *,
    branch_label: str = "bounds-check conditional branch",
    access_label: str = "read out-of-bounds memory",
    mistrain: bool = True,
) -> AttackGraph:
    """Figure 1: attacks triggered by a (conditional or indirect) branch.

    Authorization is the *branch resolution*; the speculative window holds the
    illegal access ``Load S``, the use ``Compute load address R`` and the send
    ``Load R to cache``, all of which race with the resolution.
    """
    graph = AttackGraph(name=name, description=f"Figure 1 graph for {name}")
    graph.add_step(
        Nodes.FLUSH,
        OperationType.SETUP,
        AttackStep.SETUP,
        description="Receiver flushes the shared probe array (Flush+Reload setup)",
    )
    setup_for_branch = []
    if mistrain:
        graph.add_step(
            Nodes.MISTRAIN,
            OperationType.SETUP,
            AttackStep.SETUP,
            description="Attacker mis-trains the branch predictor / BTB / RSB",
        )
        setup_for_branch.append(Nodes.MISTRAIN)
    graph.add_step(
        Nodes.BRANCH,
        OperationType.AUTHORIZATION,
        AttackStep.DELAYED_AUTHORIZATION,
        description=f"Delayed authorization: {branch_label}",
        after=setup_for_branch,
        kind=DependencyKind.PROGRAM_ORDER,
    )
    graph.add_step(
        Nodes.BRANCH_RESOLUTION,
        OperationType.RESOLUTION,
        AttackStep.DELAYED_AUTHORIZATION,
        description="Branch resolution: authorization completes (correct flow known)",
        after=[Nodes.BRANCH],
        kind=DependencyKind.DATA,
    )
    graph.add_step(
        Nodes.LOAD_S,
        OperationType.SECRET_ACCESS,
        AttackStep.SECRET_ACCESS,
        speculative=True,
        description=f"Illegal access: {access_label}",
        after=[Nodes.BRANCH],
        kind=DependencyKind.CONTROL,
    )
    _add_sender_send_chain(graph, secret_nodes=[Nodes.LOAD_S])
    graph.add_step(
        Nodes.SQUASH,
        OperationType.SQUASH_OR_COMMIT,
        None,
        description="Mis-speculation squashes architectural state; cache state survives",
        after=[Nodes.BRANCH_RESOLUTION],
    )
    _add_receiver_side(graph, after_send=Nodes.LOAD_R, after_window=Nodes.SQUASH)
    return graph


#: Secret sources of Figure 4 and the vertex name each one maps to.
FAULTING_LOAD_SOURCES = (
    "memory",
    "cache",
    "load port",
    "line fill buffer",
    "store buffer",
)


def build_faulting_load_graph(
    name: str = "meltdown",
    *,
    sources: Iterable[str] = ("memory",),
    permission_check_label: str = "kernel privilege check",
    access_label: str = "read from kernel memory",
) -> AttackGraph:
    """Figures 3 and 4: attacks triggered by a faulting load instruction.

    Authorization and access live inside the *same* load instruction, so the
    graph contains intra-instruction micro-op vertices: the permission/fault
    check, the authorization resolution, and one ``Read S from <source>``
    vertex per micro-architectural secret source (memory, cache, load port,
    line fill buffer, store buffer).
    """
    graph = AttackGraph(name=name, description=f"Figure 3/4 graph for {name}")
    graph.add_step(
        Nodes.FLUSH,
        OperationType.SETUP,
        AttackStep.SETUP,
        description="Receiver flushes the shared probe array (Flush+Reload setup)",
    )
    graph.add_step(
        Nodes.LOAD_INSTRUCTION,
        OperationType.OTHER,
        AttackStep.DELAYED_AUTHORIZATION,
        description="The faulting load instruction (authorization and access in one)",
    )
    graph.add_step(
        Nodes.PERMISSION_CHECK,
        OperationType.AUTHORIZATION,
        AttackStep.DELAYED_AUTHORIZATION,
        level=ExecutionLevel.MICROARCHITECTURAL,
        description=f"Delayed authorization micro-op: {permission_check_label}",
        after=[Nodes.LOAD_INSTRUCTION],
        kind=DependencyKind.MICROARCH,
    )
    graph.add_step(
        Nodes.AUTH_RESOLVED,
        OperationType.RESOLUTION,
        AttackStep.DELAYED_AUTHORIZATION,
        level=ExecutionLevel.MICROARCHITECTURAL,
        description="Authorization resolved (permission check completes)",
        after=[Nodes.PERMISSION_CHECK],
        kind=DependencyKind.MICROARCH,
    )
    secret_nodes = []
    for source in sources:
        node = Nodes.read_from(source)
        graph.add_step(
            node,
            OperationType.SECRET_ACCESS,
            AttackStep.SECRET_ACCESS,
            speculative=True,
            level=ExecutionLevel.MICROARCHITECTURAL,
            description=f"Illegal access: {access_label} ({source})",
            after=[Nodes.LOAD_INSTRUCTION],
            kind=DependencyKind.MICROARCH,
        )
        secret_nodes.append(node)
    _add_sender_send_chain(graph, secret_nodes=secret_nodes)
    graph.add_step(
        Nodes.SQUASH,
        OperationType.SQUASH_OR_COMMIT,
        None,
        description="Load exception raised: pipeline squashed; cache state survives",
        after=[Nodes.AUTH_RESOLVED],
    )
    _add_receiver_side(graph, after_send=Nodes.LOAD_R, after_window=Nodes.SQUASH)
    return graph


def build_special_register_graph(
    name: str = "spectre-v3a",
    *,
    source: str = "special register",
    permission_check_label: str = "RDMSR privilege check",
) -> AttackGraph:
    """Figure 5: attacks whose secret source is a special register or the FPU state."""
    graph = AttackGraph(name=name, description=f"Figure 5 graph for {name}")
    graph.add_step(
        Nodes.FLUSH,
        OperationType.SETUP,
        AttackStep.SETUP,
        description="Receiver flushes the shared probe array (Flush+Reload setup)",
    )
    graph.add_step(
        Nodes.REGISTER_ACCESS,
        OperationType.OTHER,
        AttackStep.DELAYED_AUTHORIZATION,
        description="The register-access instruction (authorization and access in one)",
    )
    graph.add_step(
        Nodes.PERMISSION_CHECK,
        OperationType.AUTHORIZATION,
        AttackStep.DELAYED_AUTHORIZATION,
        level=ExecutionLevel.MICROARCHITECTURAL,
        description=f"Delayed authorization micro-op: {permission_check_label}",
        after=[Nodes.REGISTER_ACCESS],
        kind=DependencyKind.MICROARCH,
    )
    graph.add_step(
        Nodes.AUTH_RESOLVED,
        OperationType.RESOLUTION,
        AttackStep.DELAYED_AUTHORIZATION,
        level=ExecutionLevel.MICROARCHITECTURAL,
        description="Authorization resolved (permission / owner check completes)",
        after=[Nodes.PERMISSION_CHECK],
        kind=DependencyKind.MICROARCH,
    )
    read_node = Nodes.read_from(source)
    graph.add_step(
        read_node,
        OperationType.SECRET_ACCESS,
        AttackStep.SECRET_ACCESS,
        speculative=True,
        level=ExecutionLevel.MICROARCHITECTURAL,
        description=f"Illegal access: read stale/privileged state from the {source}",
        after=[Nodes.REGISTER_ACCESS],
        kind=DependencyKind.MICROARCH,
    )
    _add_sender_send_chain(graph, secret_nodes=[read_node])
    graph.add_step(
        Nodes.SQUASH,
        OperationType.SQUASH_OR_COMMIT,
        None,
        description="(Illegal access) squash; cache state survives",
        after=[Nodes.AUTH_RESOLVED],
    )
    _add_receiver_side(graph, after_send=Nodes.LOAD_R, after_window=Nodes.SQUASH)
    return graph


def build_store_bypass_graph(name: str = "spectre-v4") -> AttackGraph:
    """Figure 6: the memory-disambiguation (store-to-load bypass) attack.

    The authorization is address disambiguation: the load must not read stale
    data until the hardware knows its address differs from every older store
    still sitting in the store buffer.
    """
    graph = AttackGraph(name=name, description="Figure 6 graph for Spectre v4")
    graph.add_step(
        Nodes.FLUSH,
        OperationType.SETUP,
        AttackStep.SETUP,
        description="Receiver flushes the shared probe array (Flush+Reload setup)",
    )
    graph.add_step(
        Nodes.STORE,
        OperationType.OTHER,
        AttackStep.DELAYED_AUTHORIZATION,
        description="Older store whose address is not yet known (sits in store buffer)",
    )
    graph.add_step(
        Nodes.LOAD_INSTRUCTION,
        OperationType.OTHER,
        AttackStep.DELAYED_AUTHORIZATION,
        description="Younger load to (possibly) the same address",
        after=[Nodes.STORE],
        kind=DependencyKind.PROGRAM_ORDER,
    )
    graph.add_step(
        Nodes.DISAMBIGUATION,
        OperationType.AUTHORIZATION,
        AttackStep.DELAYED_AUTHORIZATION,
        description="Delayed authorization: store-load address disambiguation",
        after=[Nodes.STORE, Nodes.LOAD_INSTRUCTION],
        kind=DependencyKind.MICROARCH,
    )
    graph.add_step(
        Nodes.AUTH_RESOLVED,
        OperationType.RESOLUTION,
        AttackStep.DELAYED_AUTHORIZATION,
        description="Authorization resolved: the load's true source is known",
        after=[Nodes.DISAMBIGUATION],
        kind=DependencyKind.MICROARCH,
    )
    graph.add_step(
        Nodes.READ_S,
        OperationType.SECRET_ACCESS,
        AttackStep.SECRET_ACCESS,
        speculative=True,
        description="Illegal access: the load speculatively reads stale data S",
        after=[Nodes.LOAD_INSTRUCTION],
        kind=DependencyKind.MICROARCH,
    )
    _add_sender_send_chain(graph, secret_nodes=[Nodes.READ_S])
    graph.add_step(
        Nodes.SQUASH,
        OperationType.SQUASH_OR_COMMIT,
        None,
        description="(Illegal access) squash on disambiguation mis-prediction",
        after=[Nodes.AUTH_RESOLVED],
    )
    _add_receiver_side(graph, after_send=Nodes.LOAD_R, after_window=Nodes.SQUASH)
    return graph


#: Buffers an LVI attacker can poison (Figure 7).
LVI_SOURCES = ("cache", "load port", "line fill buffer", "store buffer")


def build_lvi_graph(name: str = "lvi", *, sources: Iterable[str] = LVI_SOURCES) -> AttackGraph:
    """Figure 7: Load Value Injection.

    The attacker plants a malicious value M in a micro-architectural buffer;
    the victim's faulting load transiently forwards M, diverting the victim's
    own control or data flow, which then leaks the victim's secret S.
    """
    graph = AttackGraph(name=name, description="Figure 7 graph for Load Value Injection")
    graph.add_step(
        Nodes.FLUSH,
        OperationType.SETUP,
        AttackStep.SETUP,
        description="Receiver flushes the shared probe array (Flush+Reload setup)",
    )
    graph.add_step(
        Nodes.PLANT_BUFFER,
        OperationType.SETUP,
        AttackStep.SETUP,
        description="Attacker plants malicious value M in micro-architectural buffers",
    )
    graph.add_step(
        Nodes.LOAD_INSTRUCTION,
        OperationType.OTHER,
        AttackStep.DELAYED_AUTHORIZATION,
        description="Victim's faulting load instruction",
        after=[Nodes.PLANT_BUFFER],
        kind=DependencyKind.PROGRAM_ORDER,
    )
    graph.add_step(
        Nodes.PERMISSION_CHECK,
        OperationType.AUTHORIZATION,
        AttackStep.DELAYED_AUTHORIZATION,
        level=ExecutionLevel.MICROARCHITECTURAL,
        description="Delayed authorization micro-op: load fault check",
        after=[Nodes.LOAD_INSTRUCTION],
        kind=DependencyKind.MICROARCH,
    )
    graph.add_step(
        Nodes.AUTH_RESOLVED,
        OperationType.RESOLUTION,
        AttackStep.DELAYED_AUTHORIZATION,
        level=ExecutionLevel.MICROARCHITECTURAL,
        description="Authorization resolved (fault detected)",
        after=[Nodes.PERMISSION_CHECK],
        kind=DependencyKind.MICROARCH,
    )
    injection_nodes = []
    for source in sources:
        node = Nodes.read_m_from(source)
        graph.add_step(
            node,
            OperationType.SECRET_ACCESS,
            AttackStep.SECRET_ACCESS,
            speculative=True,
            level=ExecutionLevel.MICROARCHITECTURAL,
            description=f"Illegal access: forward malicious value M from the {source}",
            after=[Nodes.LOAD_INSTRUCTION],
            kind=DependencyKind.MICROARCH,
        )
        injection_nodes.append(node)
    graph.add_step(
        Nodes.DIVERT,
        OperationType.USE,
        AttackStep.USE_AND_SEND,
        speculative=True,
        description="Victim's control or data flow diverted by the injected value M",
    )
    for node in injection_nodes:
        graph.add_edge(node, Nodes.DIVERT, kind=DependencyKind.DATA)
    graph.add_step(
        Nodes.LOAD_S,
        OperationType.SECRET_ACCESS,
        AttackStep.SECRET_ACCESS,
        speculative=True,
        description="Diverted victim code loads its own secret S",
        after=[Nodes.DIVERT],
        kind=DependencyKind.CONTROL,
    )
    _add_sender_send_chain(graph, secret_nodes=[Nodes.LOAD_S])
    graph.add_step(
        Nodes.SQUASH,
        OperationType.SQUASH_OR_COMMIT,
        None,
        description="(Illegal access) squash; cache state survives",
        after=[Nodes.AUTH_RESOLVED],
    )
    _add_receiver_side(graph, after_send=Nodes.LOAD_R, after_window=Nodes.SQUASH)
    return graph
