"""Synthesis of new (hypothetical) attacks -- Section V-A.

The paper's takeaway: *any new combination of the three attack dimensions
gives a new attack*.  The dimensions are

1. the source of the secret (memory, cache, load port, fill buffer, store
   buffer, special registers, FPU state, ...),
2. the hardware feature whose delayed authorization opens the speculation
   window (branch resolution, permission checks, fault checks, address
   disambiguation, TSX aborts, ...), and
3. the covert channel used to send the secret out (cache channels, memory
   bus, functional units, BTB, ...).

:func:`enumerate_attack_space` produces one synthesized attack graph per
combination, and :func:`novel_combinations` reports combinations that are not
covered by any published attack in the registry -- candidates for new attacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Optional, Sequence, Tuple

from ..core.attack_graph import AttackGraph
from .base import CovertChannelKind, DelayMechanism, SecretSource
from .builders import build_faulting_load_graph, build_branch_speculation_graph
from .registry import ALL_VARIANTS

#: Cached index of the published (source, delay, channel) keys.  Built lazily
#: from the registry so ``is_published`` / ``novel_combinations`` are a set
#: lookup per combination instead of a scan over every registered variant.
_PUBLISHED_KEYS: Optional[FrozenSet[Tuple[str, str, str]]] = None


def published_keys() -> FrozenSet[Tuple[str, str, str]]:
    """The set of ``(source, delay, channel)`` keys used by published variants."""
    global _PUBLISHED_KEYS
    if _PUBLISHED_KEYS is None:
        _PUBLISHED_KEYS = frozenset(
            (
                variant.secret_source.name,
                variant.delay_mechanism.name,
                variant.channel.name,
            )
            for variant in ALL_VARIANTS.values()
        )
    return _PUBLISHED_KEYS


def refresh_published_cache() -> None:
    """Drop the cached key index (for tests that mutate the attack registry).

    Subsumed by :meth:`repro.engine.Engine.invalidate`, which clears this
    index together with the engine's synthesized-graph and verdict caches;
    kept as a standalone hook for callers that only touched the registry.
    """
    global _PUBLISHED_KEYS
    _PUBLISHED_KEYS = None

#: Delay mechanisms that resolve at the instruction level (Spectre-type).
_INSTRUCTION_LEVEL_DELAYS = frozenset(
    {
        DelayMechanism.CONDITIONAL_BRANCH,
        DelayMechanism.INDIRECT_BRANCH,
        DelayMechanism.RETURN_ADDRESS,
        DelayMechanism.PHYSICAL_ADDRESS_CONFLICT,
    }
)


@dataclass(frozen=True, slots=True)
class SynthesizedAttack:
    """A point in the three-dimensional attack space of Section V-A."""

    secret_source: SecretSource
    delay_mechanism: DelayMechanism
    channel: CovertChannelKind

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.secret_source.name, self.delay_mechanism.name, self.channel.name)

    @property
    def is_published(self) -> bool:
        """``True`` when a published variant already uses this exact combination."""
        return self.key in published_keys()

    def describe(self) -> str:
        status = "published" if self.is_published else "NEW candidate"
        return (
            f"[{status}] secret from {self.secret_source.value}, "
            f"window opened by {self.delay_mechanism.value}, "
            f"exfiltrated via {self.channel.value}"
        )

    def build_graph(self) -> AttackGraph:
        """Build the attack graph for this combination.

        Instruction-level delay mechanisms produce a Figure 1 style graph;
        all others produce a Figure 4 style faulting-access graph whose
        secret-source vertex is named after the chosen source.  This is the
        raw (uncached) construction; sweeps should go through
        :meth:`repro.engine.Engine.synthesize_graph`, which memoizes graphs
        per ``(source, delay, channel)`` key.
        """
        name = "synth-" + "-".join(part.lower() for part in self.key)
        if self.delay_mechanism in _INSTRUCTION_LEVEL_DELAYS:
            return build_branch_speculation_graph(
                name=name,
                branch_label=self.delay_mechanism.value,
                access_label=f"read secret from {self.secret_source.value}",
            )
        return build_faulting_load_graph(
            name=name,
            sources=(self.secret_source.value,),
            permission_check_label=self.delay_mechanism.value,
            access_label=f"read secret from {self.secret_source.value}",
        )


def enumerate_attack_space(
    sources: Optional[Sequence[SecretSource]] = None,
    delays: Optional[Sequence[DelayMechanism]] = None,
    channels: Optional[Sequence[CovertChannelKind]] = None,
) -> Iterator[SynthesizedAttack]:
    """Enumerate the Cartesian product of the three attack dimensions."""
    sources = tuple(sources) if sources is not None else tuple(SecretSource)
    delays = tuple(delays) if delays is not None else tuple(DelayMechanism)
    channels = tuple(channels) if channels is not None else tuple(CovertChannelKind)
    for source in sources:
        for delay in delays:
            for channel in channels:
                yield SynthesizedAttack(source, delay, channel)


def novel_combinations(
    sources: Optional[Sequence[SecretSource]] = None,
    delays: Optional[Sequence[DelayMechanism]] = None,
    channels: Optional[Sequence[CovertChannelKind]] = None,
    parallel: Optional[int] = None,
) -> List[SynthesizedAttack]:
    """Combinations of the attack space not used by any published variant.

    O(|space|) on the cached key index -- one set lookup per combination.
    Thin wrapper over :meth:`repro.engine.Engine.novel_combinations` on the
    default engine: results are sorted by ``(source, delay, channel)`` key
    and, with ``parallel`` > 1, the lookup is sharded over the process pool
    (output is identical either way).
    """
    from ..engine import default_engine

    return default_engine().novel_combinations(sources, delays, channels, parallel)


def published_combinations() -> List[SynthesizedAttack]:
    """The combinations actually used by the published variants in the registry."""
    seen = {}
    for variant in ALL_VARIANTS.values():
        attack = SynthesizedAttack(variant.secret_source, variant.delay_mechanism, variant.channel)
        seen[attack.key] = attack
    return list(seen.values())
