"""Attack variant metadata and classification.

Every published speculative execution attack is described by an
:class:`AttackVariant`: its CVE and impact (Table I), its authorization and
illegal-access operations (Table III), its classification along the paper's
three attack dimensions (Section V-A: secret source, delay mechanism, covert
channel), and a builder that produces its attack graph (Figures 1, 3-7).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from ..core.attack_graph import AttackGraph


class AttackCategory(enum.Enum):
    """Spectre-type vs Meltdown-type (insight 6 of Section VI).

    Spectre-type attacks separate authorization and access into different
    instructions, so an instruction-level (inter-instruction) graph suffices.
    Meltdown-type attacks perform authorization and access inside the *same*
    instruction, so the graph must include intra-instruction micro-ops.
    """

    SPECTRE_TYPE = "spectre-type"
    MELTDOWN_TYPE = "meltdown-type"


class SecretSource(enum.Enum):
    """Where the transiently accessed secret comes from (Section V-A, dim. 1)."""

    MAIN_MEMORY = "main memory"
    L1_CACHE = "L1 data cache"
    LOAD_PORT = "load port"
    LINE_FILL_BUFFER = "line fill buffer"
    STORE_BUFFER = "store buffer"
    STALE_MEMORY = "stale data in memory"
    SPECIAL_REGISTER = "system/special register"
    FPU_REGISTERS = "FPU register state"
    OUT_OF_BOUNDS_MEMORY = "out-of-bounds user memory"
    READ_ONLY_MEMORY = "read-only memory"
    WRONG_CODE = "unintended code execution"
    ADDRESS_MAPPING = "virtual-to-physical address mapping"


class DelayMechanism(enum.Enum):
    """Hardware feature whose delay opens the speculation window (dim. 2)."""

    CONDITIONAL_BRANCH = "conditional branch resolution"
    INDIRECT_BRANCH = "indirect branch target resolution"
    RETURN_ADDRESS = "return address resolution"
    PAGE_PERMISSION_CHECK = "page permission check"
    KERNEL_PRIVILEGE_CHECK = "kernel privilege check"
    MSR_PRIVILEGE_CHECK = "RDMSR privilege check"
    ADDRESS_DISAMBIGUATION = "store-load address disambiguation"
    FPU_OWNER_CHECK = "FPU owner check"
    LOAD_FAULT_CHECK = "load fault check"
    TSX_ABORT = "TSX asynchronous abort completion"
    PAGE_READONLY_CHECK = "page read-only bit check"
    PHYSICAL_ADDRESS_CONFLICT = "speculative load hazard resolution"


class CovertChannelKind(enum.Enum):
    """Covert channel used to exfiltrate the secret (dim. 3)."""

    FLUSH_RELOAD = "Flush+Reload cache channel"
    PRIME_PROBE = "Prime+Probe cache channel"
    EVICT_TIME = "Evict+Time cache channel"
    CACHE_COLLISION = "cache-collision channel"
    MEMORY_BUS = "memory bus contention channel"
    FUNCTIONAL_UNIT = "functional unit contention channel"
    BTB = "branch target buffer channel"


@dataclass(frozen=True)
class AttackVariant:
    """One published speculative execution attack variant."""

    key: str
    name: str
    cve: Optional[str]
    impact: str
    authorization: str
    illegal_access: str
    category: AttackCategory
    secret_source: SecretSource
    delay_mechanism: DelayMechanism
    channel: CovertChannelKind = CovertChannelKind.FLUSH_RELOAD
    aliases: Tuple[str, ...] = ()
    year: int = 2018
    reference: str = ""
    graph_builder: Optional[Callable[[], AttackGraph]] = field(
        default=None, compare=False, hash=False
    )
    #: ``True`` for the 13 first-published attacks of Table I.
    in_table1: bool = True

    def build_graph(self) -> AttackGraph:
        """Construct this variant's attack graph."""
        if self.graph_builder is None:
            raise NotImplementedError(f"no graph builder registered for {self.key}")
        graph = self.graph_builder()
        graph.description = graph.description or self.name
        return graph

    @property
    def is_meltdown_type(self) -> bool:
        return self.category is AttackCategory.MELTDOWN_TYPE

    @property
    def table1_row(self) -> Tuple[str, str, str]:
        """(attack, CVE, impact) -- one row of Table I."""
        return (self.name, self.cve or "N/A", self.impact)

    @property
    def table3_row(self) -> Tuple[str, str, str]:
        """(attack, authorization, illegal access) -- one row of Table III."""
        return (self.name, self.authorization, self.illegal_access)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name} ({self.cve or 'no CVE'})"
