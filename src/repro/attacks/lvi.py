"""Load Value Injection (Figure 7)."""

from __future__ import annotations

from functools import partial

from .base import (
    AttackCategory,
    AttackVariant,
    DelayMechanism,
    SecretSource,
)
from .builders import build_lvi_graph

LVI = AttackVariant(
    key="lvi",
    name="LVI",
    cve="CVE-2020-0551",
    impact="Hijack transient execution by injecting attacker data into victim loads",
    authorization="Load fault check",
    illegal_access=(
        "Forward data from micro-architectural buffers "
        "(L1D cache, load port, store buffer and line fill buffer)"
    ),
    category=AttackCategory.MELTDOWN_TYPE,
    secret_source=SecretSource.LINE_FILL_BUFFER,
    delay_mechanism=DelayMechanism.LOAD_FAULT_CHECK,
    year=2020,
    reference="Van Bulck et al., IEEE S&P 2020",
    in_table1=False,
    graph_builder=partial(build_lvi_graph, name="lvi"),
)

LVI_VARIANTS = (LVI,)
