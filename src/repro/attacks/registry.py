"""Registry of all modelled attack variants (Tables I and III).

The registry is the single source of truth from which the reporting layer
regenerates Table I (the 13 first-published attacks, their CVEs and impacts)
and Table III (the authorization node and illegal-access node of every
variant, including the newer MDS / LVI / TSX attacks).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .base import AttackCategory, AttackVariant
from .lvi import LVI_VARIANTS
from .mds import MDS_VARIANTS
from .meltdown import MELTDOWN_VARIANTS
from .special_register import SPECIAL_REGISTER_VARIANTS
from .spectre import SPECTRE_VARIANTS
from .tsx import TSX_VARIANTS

#: Every variant, in the order of the paper's Table III (with Spoiler, which
#: only appears in Table I, appended at the end).
_TABLE_ORDER: Tuple[str, ...] = (
    "spectre_v1",
    "spectre_v1_1",
    "spectre_v1_2",
    "spectre_v2",
    "meltdown",
    "spectre_v3a",
    "spectre_v4",
    "spectre_rsb",
    "foreshadow",
    "foreshadow_os",
    "foreshadow_vmm",
    "lazy_fp",
    "ridl",
    "zombieload",
    "fallout",
    "lvi",
    "taa",
    "cacheout",
    "spoiler",
)

_ALL: Tuple[AttackVariant, ...] = (
    SPECTRE_VARIANTS
    + MELTDOWN_VARIANTS
    + SPECIAL_REGISTER_VARIANTS
    + MDS_VARIANTS
    + LVI_VARIANTS
    + TSX_VARIANTS
)

ALL_VARIANTS: Dict[str, AttackVariant] = {
    key: next(variant for variant in _ALL if variant.key == key) for key in _TABLE_ORDER
}


def variants(category: Optional[AttackCategory] = None) -> List[AttackVariant]:
    """All registered variants, optionally filtered by category."""
    result = list(ALL_VARIANTS.values())
    if category is not None:
        result = [variant for variant in result if variant.category is category]
    return result


def get(key: str) -> AttackVariant:
    """Look up a variant by key (e.g. ``"spectre_v1"``)."""
    try:
        return ALL_VARIANTS[key]
    except KeyError as exc:
        known = ", ".join(sorted(ALL_VARIANTS))
        raise KeyError(f"unknown attack variant {key!r}; known variants: {known}") from exc


def keys() -> List[str]:
    """All registered variant keys in table order."""
    return list(ALL_VARIANTS)


def spectre_type() -> List[AttackVariant]:
    """Variants whose authorization and access are in different instructions."""
    return variants(AttackCategory.SPECTRE_TYPE)


def meltdown_type() -> List[AttackVariant]:
    """Variants whose authorization and access are in the same instruction."""
    return variants(AttackCategory.MELTDOWN_TYPE)


def table1_rows() -> List[Tuple[str, str, str]]:
    """(attack, CVE, impact) rows of Table I -- the 13 first-published attacks."""
    return [variant.table1_row for variant in ALL_VARIANTS.values() if variant.in_table1]


def table3_rows() -> List[Tuple[str, str, str]]:
    """(attack, authorization, illegal access) rows of Table III."""
    return [
        variant.table3_row
        for variant in ALL_VARIANTS.values()
        if variant.key != "spoiler"
    ]


def build_all_graphs() -> Dict[str, "object"]:
    """Build the attack graph of every registered variant, keyed by variant key."""
    return {key: variant.build_graph() for key, variant in ALL_VARIANTS.items()}
