"""Catalog of speculative execution attacks modelled as attack graphs."""

from .base import (
    AttackCategory,
    AttackVariant,
    CovertChannelKind,
    DelayMechanism,
    SecretSource,
)
from .builders import (
    FAULTING_LOAD_SOURCES,
    LVI_SOURCES,
    Nodes,
    build_branch_speculation_graph,
    build_faulting_load_graph,
    build_lvi_graph,
    build_special_register_graph,
    build_store_bypass_graph,
)
from .generator import (
    SynthesizedAttack,
    enumerate_attack_space,
    novel_combinations,
    published_combinations,
    published_keys,
    refresh_published_cache,
)
from .registry import (
    ALL_VARIANTS,
    build_all_graphs,
    get,
    keys,
    meltdown_type,
    spectre_type,
    table1_rows,
    table3_rows,
    variants,
)

__all__ = [
    "ALL_VARIANTS",
    "AttackCategory",
    "AttackVariant",
    "CovertChannelKind",
    "DelayMechanism",
    "FAULTING_LOAD_SOURCES",
    "LVI_SOURCES",
    "Nodes",
    "SecretSource",
    "SynthesizedAttack",
    "build_all_graphs",
    "build_branch_speculation_graph",
    "build_faulting_load_graph",
    "build_lvi_graph",
    "build_special_register_graph",
    "build_store_bypass_graph",
    "enumerate_attack_space",
    "get",
    "keys",
    "meltdown_type",
    "novel_combinations",
    "published_combinations",
    "published_keys",
    "refresh_published_cache",
    "spectre_type",
    "table1_rows",
    "table3_rows",
    "variants",
]
