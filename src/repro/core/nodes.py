"""Operation (vertex) types for attack graphs.

The paper (Section IV-B) defines an attack graph as a Topological Sort Graph
whose vertices are *operations* -- an instruction, a micro-architectural
action, or an attacker/receiver action such as flushing a cache line or
measuring an access time.  Four kinds of vertices *must* appear in every
attack graph:

* the victim's / sender's **authorization** operation,
* the sender's **secret access** operation,
* the sender's **send** (micro-architectural state change) operation,
* the receiver's **receive** (secret retrieval) operation.

This module defines those vertex categories, the six attack steps of
Section III, and the :class:`Operation` record stored at each vertex.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional


class OperationType(enum.Enum):
    """Category of an operation vertex in an attack graph."""

    #: Receiver's channel preparation or attacker setup (e.g. ``clflush``,
    #: mis-training a predictor).
    SETUP = "setup"
    #: The authorization operation: permission check, bounds-check branch
    #: resolution, address disambiguation, fault check, ... (Definition 1).
    AUTHORIZATION = "authorization"
    #: The sender's (possibly illegal) access of the secret.
    SECRET_ACCESS = "secret_access"
    #: A computation on the secret (e.g. forming the probe address).
    USE = "use"
    #: The sender's micro-architectural state change that encodes the secret
    #: (e.g. loading a secret-indexed cache line).
    SEND = "send"
    #: The receiver's retrieval of the secret from the covert channel.
    RECEIVE = "receive"
    #: Resolution of the delayed authorization (e.g. branch resolution,
    #: permission-check completion).
    RESOLUTION = "resolution"
    #: Pipeline squash or commit at the end of the speculation window.
    SQUASH_OR_COMMIT = "squash_or_commit"
    #: Any other operation (address computation, ALU work, stores, ...).
    OTHER = "other"


class ExecutionLevel(enum.Enum):
    """Whether a vertex models an instruction or an intra-instruction micro-op.

    The paper's insight 6 (Section VI): Spectre-type attacks only need
    instruction-level (inter-instruction) vertices, while Meltdown-type
    attacks require micro-architectural (intra-instruction) vertices because
    authorization and access happen inside a single load instruction.
    """

    ARCHITECTURAL = "architectural"
    MICROARCHITECTURAL = "microarchitectural"


class AttackStep(enum.Enum):
    """The six critical attack steps of Section III."""

    LOCATE_SECRET = 0
    SETUP = 1
    DELAYED_AUTHORIZATION = 2
    SECRET_ACCESS = 3
    USE_AND_SEND = 4
    RECEIVE = 5

    @property
    def part(self) -> "AttackPart":
        """Map a step to Part A (secret access) or Part B (covert channel)."""
        return _STEP_TO_PART[self]


class AttackPart(enum.Enum):
    """The two high-level parts of a speculative attack (Section III)."""

    #: Part A -- a micro-architectural feature transiently enables the
    #: illegal access of sensitive data.
    SECRET_ACCESS = "A"
    #: Part B -- the sensitive data is transformed into micro-architectural
    #: state observable by the attacker.
    COVERT_CHANNEL = "B"


_STEP_TO_PART: Mapping[AttackStep, AttackPart] = {
    AttackStep.LOCATE_SECRET: AttackPart.SECRET_ACCESS,
    AttackStep.SETUP: AttackPart.COVERT_CHANNEL,
    AttackStep.DELAYED_AUTHORIZATION: AttackPart.SECRET_ACCESS,
    AttackStep.SECRET_ACCESS: AttackPart.SECRET_ACCESS,
    AttackStep.USE_AND_SEND: AttackPart.COVERT_CHANNEL,
    AttackStep.RECEIVE: AttackPart.COVERT_CHANNEL,
}

_FRESH_IDS = itertools.count(1)


@dataclass(frozen=True, slots=True)
class Operation:
    """A vertex of an attack graph.

    Parameters
    ----------
    name:
        Unique, human-readable vertex name (e.g. ``"Load S"``).
    op_type:
        The operation category (:class:`OperationType`).
    step:
        The attack step this operation belongs to, if any.
    level:
        Architectural (instruction) or micro-architectural (micro-op) vertex.
    speculative:
        ``True`` when the operation executes inside the speculative window.
    description:
        Free-form description used in reports and rendered graphs.
    metadata:
        Arbitrary extra attributes (e.g. the originating instruction).
    """

    name: str
    op_type: OperationType = OperationType.OTHER
    step: Optional[AttackStep] = None
    level: ExecutionLevel = ExecutionLevel.ARCHITECTURAL
    speculative: bool = False
    description: str = ""
    metadata: Mapping[str, Any] = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("Operation name must be non-empty")

    @property
    def part(self) -> Optional[AttackPart]:
        """Part A / Part B membership, derived from the attack step."""
        if self.step is None:
            return None
        return self.step.part

    def with_(self, **changes: Any) -> "Operation":
        """Return a copy of this operation with the given fields replaced."""
        current = {
            "name": self.name,
            "op_type": self.op_type,
            "step": self.step,
            "level": self.level,
            "speculative": self.speculative,
            "description": self.description,
            "metadata": dict(self.metadata),
        }
        current.update(changes)
        return Operation(**current)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


def fresh_name(prefix: str) -> str:
    """Return a unique vertex name with the given prefix."""
    return f"{prefix}#{next(_FRESH_IDS)}"
