"""Race conditions on Topological Sort Graphs and Theorem 1.

Section IV-B: a race condition exists between vertices ``u`` and ``v`` of a
TSG if there exist two valid orderings S1 and S2 with ``u`` before ``v`` in S1
and ``v`` before ``u`` in S2.

**Theorem 1.**  For any pair of vertices u and v, u and v do *not* have a race
condition if and only if there exists a directed path connecting u and v.

The paper proves this analytically (Appendix A).  This module provides

* the efficient path-based race check (the practical tool the paper proposes),
* the definition-based check by enumerating orderings (used to validate the
  theorem on concrete graphs, including in the test suite's property tests),
* enumeration of all racing pairs of a graph, and
* construction of witness orderings demonstrating a race.

Performance notes
-----------------
The TSG maintains a bitset transitive closure (see :mod:`repro.core.tsg`),
so :func:`has_race` is O(1) -- two bit tests -- and :func:`find_races` over
the whole graph delegates to ``TopologicalSortGraph.all_racing_pairs``, one
O(V * V/w) sweep over the closure rather than O(V^2) BFS traversals.
:func:`has_race_by_enumeration` and :func:`verify_theorem1` intentionally
remain enumeration-based: they exist to validate the fast path against the
paper's definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, List, Optional, Sequence, Tuple

from .tsg import TopologicalSortGraph


@dataclass(frozen=True)
class Race:
    """A race condition between two operations of a TSG."""

    first: str
    second: str

    def as_pair(self) -> Tuple[str, str]:
        return (self.first, self.second)

    def involves(self, name: str) -> bool:
        return name in (self.first, self.second)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"race({self.first} <-> {self.second})"


def has_race(graph: TopologicalSortGraph, u: str, v: str) -> bool:
    """Path-based race check (Theorem 1): race iff no path u->v and no path v->u.

    O(1) on the reachability index -- two bit tests.
    """
    if u == v:
        return False
    return not (graph.has_path(u, v) or graph.has_path(v, u))


def has_race_by_enumeration(
    graph: TopologicalSortGraph, u: str, v: str, limit: Optional[int] = None
) -> bool:
    """Definition-based race check: enumerate valid orderings and compare positions.

    Exponential in the worst case -- only use on small graphs (which the
    paper's attack graphs are).  ``limit`` bounds the number of orderings
    inspected.
    """
    if u == v:
        return False
    seen_u_first = False
    seen_v_first = False
    for ordering in graph.all_orderings(limit=limit):
        position = {name: index for index, name in enumerate(ordering)}
        if position[u] < position[v]:
            seen_u_first = True
        else:
            seen_v_first = True
        if seen_u_first and seen_v_first:
            return True
    return False


def witness_orderings(
    graph: TopologicalSortGraph, u: str, v: str
) -> Optional[Tuple[List[str], List[str]]]:
    """Return two valid orderings witnessing a race between ``u`` and ``v``.

    Returns ``None`` when the pair does not race.  The witnesses are built by
    scheduling one endpoint as late as possible in each ordering, which by
    Theorem 1 flips their relative order exactly when no path connects them.
    """
    if not has_race(graph, u, v):
        return None
    order_u_late = graph.topological_order(prefer_late=u)
    order_v_late = graph.topological_order(prefer_late=v)
    pos_u_late = {name: index for index, name in enumerate(order_u_late)}
    pos_v_late = {name: index for index, name in enumerate(order_v_late)}
    first = order_u_late if pos_u_late[v] < pos_u_late[u] else order_v_late
    second = order_v_late if pos_v_late[u] < pos_v_late[v] else order_u_late
    return first, second


def find_races(
    graph: TopologicalSortGraph, among: Optional[Iterable[str]] = None
) -> List[Race]:
    """Enumerate all racing pairs of the graph (or among a subset of vertices).

    The whole-graph case is one batch pass over the reachability index
    (:meth:`~repro.core.tsg.TopologicalSortGraph.all_racing_pairs`); the
    subset case filters that pass down to the requested vertices.
    """
    if among is None:
        return [Race(u, v) for u, v in graph.all_racing_pairs()]
    keep = set(among)
    unknown = [name for name in keep if name not in graph]
    if unknown:
        raise KeyError(f"Unknown vertex in race query: {sorted(unknown)!r}")
    return [
        Race(u, v)
        for u, v in graph.all_racing_pairs()
        if u in keep and v in keep
    ]


def race_free(graph: TopologicalSortGraph) -> bool:
    """``True`` when the graph is a total order (no racing pair at all)."""
    return not graph.all_racing_pairs()


@dataclass(frozen=True)
class TheoremCheck:
    """Result of exhaustively checking Theorem 1 on a concrete graph."""

    pairs_checked: int
    mismatches: Tuple[Tuple[str, str], ...]

    @property
    def holds(self) -> bool:
        return not self.mismatches


def verify_theorem1(
    graph: TopologicalSortGraph, ordering_limit: Optional[int] = 20000
) -> TheoremCheck:
    """Check Theorem 1 on ``graph`` by comparing both race definitions.

    For every unordered pair of vertices, the path-based verdict
    (:func:`has_race`) is compared with the ordering-enumeration verdict
    (:func:`has_race_by_enumeration`).  They must agree on every pair.
    """
    mismatches = []
    pairs = 0
    for u, v in combinations(graph.vertices, 2):
        pairs += 1
        by_path = has_race(graph, u, v)
        by_enum = has_race_by_enumeration(graph, u, v, limit=ordering_limit)
        if by_path != by_enum:
            mismatches.append((u, v))
    return TheoremCheck(pairs_checked=pairs, mismatches=tuple(mismatches))


def figure2_example() -> TopologicalSortGraph:
    """The TSG of the paper's Figure 2 (vertices A..G).

    Used in documentation, tests, and the Figure 2 benchmark.  The paper notes
    that ``[A,B,C,D,E,F,G]`` and ``[A,C,E,B,D,F,G]`` are valid orderings,
    ``[A,B,D,E,C,F,G]`` is not, and that D and E race.
    """
    graph = TopologicalSortGraph(name="figure2")
    for name in "ABCDEFG":
        graph.add_vertex(name)
    for source, target in [
        ("A", "B"),
        ("A", "C"),
        ("B", "D"),
        ("C", "D"),
        ("C", "E"),
        ("D", "F"),
        ("E", "F"),
        ("F", "G"),
    ]:
        graph.add_edge(source, target)
    return graph
