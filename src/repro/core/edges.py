"""Dependency (edge) kinds for attack graphs.

An edge ``u -> v`` of a Topological Sort Graph means *u happens before v*.
The paper distinguishes the classic dependencies that hardware already
honours (data and control dependencies, address dependencies, explicit
fences) from the new **security dependency** that must additionally be
honoured to prevent speculative execution attacks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping


class DependencyKind(enum.Enum):
    """Why one operation must happen before another."""

    #: Read-after-write style value dependency between operations.
    DATA = "data"
    #: Control-flow dependency (an operation is control-dependent on a branch).
    CONTROL = "control"
    #: Address dependency (the address of an access depends on another value).
    ADDRESS = "address"
    #: Program order / structural ordering that the hardware preserves
    #: (e.g. in-order retirement, an explicit ordering in the attack recipe).
    PROGRAM_ORDER = "program_order"
    #: Ordering introduced by an explicit serializing instruction (LFENCE...).
    FENCE = "fence"
    #: The paper's new dependency: authorization must complete before a
    #: protected access / use / send operation (Definition 2).
    SECURITY = "security"
    #: Micro-architectural structural dependency inside one instruction
    #: (e.g. address translation before the data array read).
    MICROARCH = "microarch"


#: Dependency kinds that commodity hardware already enforces.  A security
#: dependency is *not* among them -- that is the point of the paper.
HARDWARE_ENFORCED_KINDS = frozenset(
    {
        DependencyKind.DATA,
        DependencyKind.CONTROL,
        DependencyKind.ADDRESS,
        DependencyKind.PROGRAM_ORDER,
        DependencyKind.FENCE,
        DependencyKind.MICROARCH,
    }
)


@dataclass(frozen=True, slots=True)
class Dependency:
    """A directed, labelled edge ``source -> target`` of an attack graph."""

    source: str
    target: str
    kind: DependencyKind = DependencyKind.PROGRAM_ORDER
    label: str = ""
    metadata: Mapping[str, Any] = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise ValueError(f"Self-dependency on {self.source!r} is not allowed")

    @property
    def is_security(self) -> bool:
        """``True`` when this edge is a security dependency."""
        return self.kind is DependencyKind.SECURITY

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.source} -[{self.kind.value}]-> {self.target}"
