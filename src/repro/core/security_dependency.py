"""Security dependencies (Definition 2) and missing-dependency analysis.

Definition 2 (Section IV-C): a *security dependency* of operation ``v`` on
operation ``u`` is an ordering such that ``u`` must complete before ``v`` in
order to avoid a security breach.  ``u`` is typically an authorization
operation; ``v`` is typically an access, a use, or a send of protected data.

The paper's central result equates a *missing* security dependency with a
missing edge in the attack graph, which (by Theorem 1) is a race condition
between authorization and access -- the root cause of speculative execution
attacks.  This module provides the dependency record, the three protection
levels (access / use / send -- matching defense strategies 1-3), detection of
missing security dependencies in an attack graph, and enforcement (edge
insertion) together with verification that enforcement removed the race.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from .edges import Dependency, DependencyKind
from .nodes import OperationType
from .tsg import TopologicalSortGraph


class ProtectionPoint(enum.Enum):
    """Which operation class a security dependency protects.

    The three points correspond to the paper's defense strategies 1-3
    (Figure 8): the authorization must complete before the secret is
    *accessed*, before it is *used*, or before it is *sent* out through the
    covert channel.  The later the protection point, the looser (and cheaper)
    the security guarantee.
    """

    ACCESS = "access"
    USE = "use"
    SEND = "send"


_PROTECTION_TO_OPTYPE = {
    ProtectionPoint.ACCESS: OperationType.SECRET_ACCESS,
    ProtectionPoint.USE: OperationType.USE,
    ProtectionPoint.SEND: OperationType.SEND,
}


@dataclass(frozen=True)
class SecurityDependency:
    """An ordering requirement: ``authorization`` must complete before ``protected``."""

    authorization: str
    protected: str
    point: ProtectionPoint = ProtectionPoint.ACCESS
    rationale: str = ""

    def as_dependency(self) -> Dependency:
        """The attack-graph edge that enforces this security dependency."""
        return Dependency(
            source=self.authorization,
            target=self.protected,
            kind=DependencyKind.SECURITY,
            label=f"security ({self.point.value})",
        )

    def is_enforced(self, graph: TopologicalSortGraph) -> bool:
        """``True`` when the graph already orders authorization before protected.

        Enforcement does not require the literal security edge: any directed
        path from the authorization vertex to the protected vertex removes
        the race (Theorem 1) and therefore enforces the dependency.
        """
        return graph.has_path(self.authorization, self.protected)

    def is_missing(self, graph: TopologicalSortGraph) -> bool:
        """``True`` when the protected operation races with (or precedes) authorization."""
        return not self.is_enforced(graph)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.authorization} must-complete-before {self.protected} [{self.point.value}]"


def enforce(graph: TopologicalSortGraph, dependency: SecurityDependency) -> TopologicalSortGraph:
    """Return a copy of ``graph`` with the security dependency edge inserted."""
    patched = graph.copy(name=f"{graph.name}+security")
    if not patched.has_edge(dependency.authorization, dependency.protected):
        patched.add_dependency(dependency.as_dependency())
    return patched


def missing_security_dependencies(
    graph: TopologicalSortGraph,
    points: Optional[List[ProtectionPoint]] = None,
) -> List[SecurityDependency]:
    """Find every missing security dependency in an attack graph.

    For each authorization vertex and each protected vertex (secret access,
    use, or send -- selectable through ``points``), report a missing
    dependency whenever the two vertices race, i.e. the protected operation
    may complete before the authorization does.  These are exactly the
    vulnerabilities the paper's Section V-C tool is meant to flag.
    """
    if points is None:
        points = [ProtectionPoint.ACCESS, ProtectionPoint.USE, ProtectionPoint.SEND]
    authorizations = [
        op.name
        for op in graph.operations
        if op.op_type in (OperationType.AUTHORIZATION, OperationType.RESOLUTION)
    ]
    # One reachability-index lookup per authorization vertex; every
    # (authorization, protected) pair is then a set-membership test.
    racing = {auth: graph.racing_partners(auth) for auth in authorizations}
    missing: List[SecurityDependency] = []
    for point in points:
        targets = [op.name for op in graph.operations_of_type(_PROTECTION_TO_OPTYPE[point])]
        for auth in authorizations:
            for target in targets:
                if target in racing[auth]:
                    missing.append(
                        SecurityDependency(
                            authorization=auth,
                            protected=target,
                            point=point,
                            rationale=(
                                f"{target!r} can complete before {auth!r}: "
                                "no access/use/send without authorization"
                            ),
                        )
                    )
    return missing


def is_vulnerable(graph: TopologicalSortGraph) -> bool:
    """``True`` when the graph has at least one missing security dependency."""
    return bool(missing_security_dependencies(graph))
