"""Topological Sort Graph (TSG) -- the paper's attack-graph substrate.

Section IV-B defines an attack graph as a Topological Sort Graph: a directed
acyclic graph whose vertices are operations and whose directed edges are
orderings ("u happens before v").  A *valid ordering* is a permutation of all
vertices consistent with every edge, i.e. a topological order.

This module provides the graph data structure plus the ordering machinery
needed to state and check the paper's Theorem 1 (see :mod:`repro.core.race`):
validity checking, enumeration of all valid orderings, reachability, and
ordering construction biased towards putting a chosen vertex early or late.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from .edges import Dependency, DependencyKind
from .nodes import Operation, OperationType


class CycleError(ValueError):
    """Raised when adding an edge would create a cycle in the TSG."""


class TopologicalSortGraph:
    """A directed acyclic graph of :class:`~repro.core.nodes.Operation` vertices.

    Vertices are addressed by their unique ``name``.  Edges are
    :class:`~repro.core.edges.Dependency` records.  The graph rejects any edge
    insertion that would create a cycle, so it is a DAG by construction.
    """

    def __init__(self, name: str = "tsg") -> None:
        self.name = name
        self._ops: Dict[str, Operation] = {}
        self._succ: Dict[str, Set[str]] = {}
        self._pred: Dict[str, Set[str]] = {}
        self._edges: Dict[Tuple[str, str], Dependency] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_operation(self, operation: Operation) -> Operation:
        """Add a vertex.  Re-adding the same name with a different record fails."""
        existing = self._ops.get(operation.name)
        if existing is not None:
            if existing != operation:
                raise ValueError(
                    f"Vertex {operation.name!r} already exists with a different definition"
                )
            return existing
        self._ops[operation.name] = operation
        self._succ[operation.name] = set()
        self._pred[operation.name] = set()
        return operation

    def add_vertex(self, name: str, **kwargs) -> Operation:
        """Convenience wrapper: create and add an :class:`Operation`."""
        return self.add_operation(Operation(name=name, **kwargs))

    def add_dependency(self, dependency: Dependency) -> Dependency:
        """Add an edge, verifying both endpoints exist and no cycle is created."""
        for endpoint in (dependency.source, dependency.target):
            if endpoint not in self._ops:
                raise KeyError(f"Unknown vertex {endpoint!r}")
        key = (dependency.source, dependency.target)
        if key in self._edges:
            return self._edges[key]
        if self.has_path(dependency.target, dependency.source):
            raise CycleError(
                f"Edge {dependency.source} -> {dependency.target} would create a cycle"
            )
        self._edges[key] = dependency
        self._succ[dependency.source].add(dependency.target)
        self._pred[dependency.target].add(dependency.source)
        return dependency

    def add_edge(
        self,
        source: str,
        target: str,
        kind: DependencyKind = DependencyKind.PROGRAM_ORDER,
        label: str = "",
    ) -> Dependency:
        """Convenience wrapper: create and add a :class:`Dependency`."""
        return self.add_dependency(Dependency(source, target, kind=kind, label=label))

    def remove_edge(self, source: str, target: str) -> None:
        """Remove an edge if present."""
        key = (source, target)
        if key in self._edges:
            del self._edges[key]
            self._succ[source].discard(target)
            self._pred[target].discard(source)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def __len__(self) -> int:
        return len(self._ops)

    def operation(self, name: str) -> Operation:
        """Return the operation stored at vertex ``name``."""
        return self._ops[name]

    @property
    def vertices(self) -> List[str]:
        """All vertex names, in insertion order."""
        return list(self._ops)

    @property
    def operations(self) -> List[Operation]:
        """All operations, in insertion order."""
        return list(self._ops.values())

    @property
    def edges(self) -> List[Dependency]:
        """All edges, in insertion order."""
        return list(self._edges.values())

    def edge(self, source: str, target: str) -> Optional[Dependency]:
        """Return the edge ``source -> target`` or ``None``."""
        return self._edges.get((source, target))

    def has_edge(self, source: str, target: str) -> bool:
        return (source, target) in self._edges

    def successors(self, name: str) -> Set[str]:
        return set(self._succ[name])

    def predecessors(self, name: str) -> Set[str]:
        return set(self._pred[name])

    def operations_of_type(self, op_type: OperationType) -> List[Operation]:
        """All operations with the given :class:`OperationType`."""
        return [op for op in self._ops.values() if op.op_type is op_type]

    def in_degree(self, name: str) -> int:
        return len(self._pred[name])

    def out_degree(self, name: str) -> int:
        return len(self._succ[name])

    # ------------------------------------------------------------------
    # Reachability and orderings
    # ------------------------------------------------------------------
    def has_path(self, source: str, target: str) -> bool:
        """``True`` iff there is a directed path from ``source`` to ``target``.

        A vertex is considered to reach itself by the empty path.
        """
        if source not in self._ops or target not in self._ops:
            raise KeyError(f"Unknown vertex in path query: {source!r} or {target!r}")
        if source == target:
            return True
        seen = {source}
        frontier = deque([source])
        while frontier:
            node = frontier.popleft()
            for nxt in self._succ[node]:
                if nxt == target:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    def descendants(self, source: str) -> Set[str]:
        """All vertices reachable from ``source`` (excluding ``source``)."""
        seen: Set[str] = set()
        frontier = deque([source])
        while frontier:
            node = frontier.popleft()
            for nxt in self._succ[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    def ancestors(self, target: str) -> Set[str]:
        """All vertices from which ``target`` is reachable (excluding itself)."""
        seen: Set[str] = set()
        frontier = deque([target])
        while frontier:
            node = frontier.popleft()
            for prv in self._pred[node]:
                if prv not in seen:
                    seen.add(prv)
                    frontier.append(prv)
        return seen

    def is_valid_ordering(self, ordering: Sequence[str]) -> bool:
        """Check whether ``ordering`` is a valid ordering of the TSG.

        A valid ordering contains every vertex exactly once and respects
        every edge: for each edge (u, v), u appears before v.
        """
        if len(ordering) != len(self._ops) or set(ordering) != set(self._ops):
            return False
        position = {name: i for i, name in enumerate(ordering)}
        return all(position[dep.source] < position[dep.target] for dep in self._edges.values())

    def topological_order(self, prefer_late: Optional[str] = None) -> List[str]:
        """Return one valid ordering (Kahn's algorithm).

        When ``prefer_late`` names a vertex, that vertex is scheduled as late
        as possible (its selection is deferred whenever another ready vertex
        exists).  This is used to construct witness orderings for races.
        """
        indegree = {name: len(preds) for name, preds in self._pred.items()}
        ready = [name for name, deg in indegree.items() if deg == 0]
        order: List[str] = []
        while ready:
            pick = None
            if prefer_late is not None and len(ready) > 1:
                for candidate in ready:
                    if candidate != prefer_late:
                        pick = candidate
                        break
            if pick is None:
                pick = ready[0]
            ready.remove(pick)
            order.append(pick)
            for nxt in sorted(self._succ[pick]):
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(self._ops):
            raise CycleError("Graph contains a cycle")  # pragma: no cover - unreachable
        return order

    def all_orderings(self, limit: Optional[int] = None) -> Iterator[List[str]]:
        """Enumerate valid orderings (all topological sorts).

        The number of topological sorts is exponential in general; callers
        should pass ``limit`` or only use this on small graphs (the paper's
        attack graphs have 10-20 vertices).
        """
        indegree = {name: len(preds) for name, preds in self._pred.items()}
        ready = sorted(name for name, deg in indegree.items() if deg == 0)
        emitted = 0

        def backtrack(prefix: List[str], ready_now: List[str]) -> Iterator[List[str]]:
            nonlocal emitted
            if limit is not None and emitted >= limit:
                return
            if len(prefix) == len(self._ops):
                emitted += 1
                yield list(prefix)
                return
            for index, node in enumerate(list(ready_now)):
                next_ready = ready_now[:index] + ready_now[index + 1 :]
                released = []
                for nxt in sorted(self._succ[node]):
                    indegree[nxt] -= 1
                    if indegree[nxt] == 0:
                        released.append(nxt)
                prefix.append(node)
                yield from backtrack(prefix, sorted(next_ready + released))
                prefix.pop()
                for nxt in self._succ[node]:
                    indegree[nxt] += 1
                if limit is not None and emitted >= limit:
                    return

        yield from backtrack([], ready)

    def count_orderings(self, limit: int = 100000) -> int:
        """Count valid orderings, stopping at ``limit``."""
        count = 0
        for _ in self.all_orderings(limit=limit):
            count += 1
        return count

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "TopologicalSortGraph":
        """Return a structural copy of the graph."""
        clone = type(self)(name=name or self.name)
        clone._ops = dict(self._ops)
        clone._succ = {k: set(v) for k, v in self._succ.items()}
        clone._pred = {k: set(v) for k, v in self._pred.items()}
        clone._edges = dict(self._edges)
        return clone

    def subgraph(self, names: Iterable[str], name: str = "subgraph") -> "TopologicalSortGraph":
        """Return the induced subgraph on ``names``."""
        keep = set(names)
        sub = TopologicalSortGraph(name=name)
        for vertex in self.vertices:
            if vertex in keep:
                sub.add_operation(self._ops[vertex])
        for dep in self._edges.values():
            if dep.source in keep and dep.target in keep:
                sub.add_dependency(dep)
        return sub

    def to_networkx(self):
        """Export to a :class:`networkx.DiGraph` (vertex/edge data attached)."""
        import networkx as nx

        graph = nx.DiGraph(name=self.name)
        for op in self._ops.values():
            graph.add_node(op.name, operation=op)
        for dep in self._edges.values():
            graph.add_edge(dep.source, dep.target, dependency=dep, kind=dep.kind.value)
        return graph

    def to_dot(self) -> str:
        """Render the graph in Graphviz DOT format."""
        lines = [f'digraph "{self.name}" {{', "  rankdir=TB;"]
        for op in self._ops.values():
            shape = {
                OperationType.AUTHORIZATION: "diamond",
                OperationType.SECRET_ACCESS: "box",
                OperationType.SEND: "box",
                OperationType.RECEIVE: "ellipse",
            }.get(op.op_type, "ellipse")
            style = ', style="dashed"' if op.speculative else ""
            lines.append(f'  "{op.name}" [shape={shape}{style}];')
        for dep in self._edges.values():
            style = ' [style="bold", color="red"]' if dep.is_security else (
                f' [label="{dep.kind.value}"]'
            )
            lines.append(f'  "{dep.source}" -> "{dep.target}"{style};')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name!r}: "
            f"{len(self._ops)} vertices, {len(self._edges)} edges>"
        )
