"""Topological Sort Graph (TSG) -- the paper's attack-graph substrate.

Section IV-B defines an attack graph as a Topological Sort Graph: a directed
acyclic graph whose vertices are operations and whose directed edges are
orderings ("u happens before v").  A *valid ordering* is a permutation of all
vertices consistent with every edge, i.e. a topological order.

This module provides the graph data structure plus the ordering machinery
needed to state and check the paper's Theorem 1 (see :mod:`repro.core.race`):
validity checking, enumeration of all valid orderings, reachability, and
ordering construction biased towards putting a chosen vertex early or late.

Performance notes
-----------------
The graph maintains an incremental **bitset transitive closure**: every
vertex carries two integer bitmasks over the vertex index space, one of its
(strict) ancestors and one of its (strict) descendants.  With ``V`` vertices,
``E`` edges and ``w`` the machine word size:

* ``add_dependency`` updates the closure in O(V * V/w) bit operations and
  detects cycles with a single bit test (no BFS on insert);
* ``has_path`` is O(1) -- one shift and one mask;
* ``descendants`` / ``ancestors`` decode one bitmask, O(V);
* ``has_race`` (Theorem 1, in :mod:`repro.core.race`) is O(1);
* ``all_racing_pairs`` derives the complete race set from the closure in one
  O(V * V/w) pass instead of O(V^2) BFS traversals;
* ``racing_partners`` answers "everything racing with this vertex" in O(V/w);
* ``count_orderings`` is a memoized downset DP (exact linear-extension
  counts) over connected components instead of explicit enumeration --
  milliseconds on the paper's 10-20-vertex attack graphs;
* ``topological_order`` uses an index-heap ready set, O((V + E) log V),
  replacing the earlier O(V^2) list-scan implementation;
* ``remove_edge`` rebuilds the closure with a topological sweep,
  O((V + E) * V/w) -- removal is rare (defense *adds* edges).

``all_orderings`` remains the exponential backtracking enumerator; it is kept
for witness construction and for validating the DP counter on small graphs.
"""

from __future__ import annotations

import heapq
import math
import os
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .edges import Dependency, DependencyKind
from .nodes import Operation, OperationType

try:  # numpy is optional: the stdlib big-int path is always available.
    import numpy as _np
except ImportError:  # pragma: no cover - container always ships numpy
    _np = None

#: Environment gate for the closure backend: ``auto`` (default) picks numpy
#: when importable, ``python`` forces the stdlib big-int path, ``numpy``
#: demands numpy (raising if absent).  Both backends are differentially
#: tested equal in ``tests/test_batch_plane.py``.
CLOSURE_BACKEND_ENV = "REPRO_TSG_BACKEND"

#: Bits per closure word on the numpy path (uint64 chunks).
_WORD_BITS = 64

#: Below this many vertices the numpy round-trip costs more than the big-int
#: sweep it replaces; the paper's 10-20-vertex attack graphs stay pure-python.
_NUMPY_MIN_VERTICES = 64


def closure_backend() -> str:
    """Resolve the active closure backend: ``"numpy"`` or ``"python"``."""
    choice = os.environ.get(CLOSURE_BACKEND_ENV, "auto").strip().lower()
    if choice == "numpy":
        if _np is None:
            raise RuntimeError(
                f"{CLOSURE_BACKEND_ENV}=numpy but numpy is not importable"
            )
        return "numpy"
    if choice == "python":
        return "python"
    return "numpy" if _np is not None else "python"


def _pack_masks(masks: Sequence[int], words: int):
    """Pack big-int bitmasks into a ``(len(masks), words)`` uint64 array."""
    data = b"".join(mask.to_bytes(words * 8, "little") for mask in masks)
    return _np.frombuffer(data, dtype="<u8").reshape(len(masks), words)


def _unpack_masks(array) -> List[int]:
    """Inverse of :func:`_pack_masks`: uint64 rows back to big-int bitmasks."""
    return [int.from_bytes(row.tobytes(), "little") for row in array]


class CycleError(ValueError):
    """Raised when adding an edge would create a cycle in the TSG."""


class _StateBudgetExceeded(Exception):
    """Internal: the downset DP grew past its state budget (fall back)."""


def _iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``mask`` (ascending)."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class TopologicalSortGraph:
    """A directed acyclic graph of :class:`~repro.core.nodes.Operation` vertices.

    Vertices are addressed by their unique ``name``.  Edges are
    :class:`~repro.core.edges.Dependency` records.  The graph rejects any edge
    insertion that would create a cycle, so it is a DAG by construction.

    Alongside the adjacency sets the graph maintains a bitset transitive
    closure (see the module docstring's performance notes): ``_index`` maps a
    vertex name to its bit position, ``_names`` maps positions back, and
    ``_anc`` / ``_desc`` hold per-vertex ancestor / descendant bitmasks.
    """

    def __init__(self, name: str = "tsg") -> None:
        self.name = name
        self._ops: Dict[str, Operation] = {}
        self._succ: Dict[str, Set[str]] = {}
        self._pred: Dict[str, Set[str]] = {}
        self._edges: Dict[Tuple[str, str], Dependency] = {}
        # Reachability index: vertex name <-> bit position, plus the closure.
        self._index: Dict[str, int] = {}
        self._names: List[str] = []
        self._anc: List[int] = []
        self._desc: List[int] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_operation(self, operation: Operation) -> Operation:
        """Add a vertex.  Re-adding the same name with a different record fails."""
        existing = self._ops.get(operation.name)
        if existing is not None:
            if existing != operation:
                raise ValueError(
                    f"Vertex {operation.name!r} already exists with a different definition"
                )
            return existing
        self._ops[operation.name] = operation
        self._succ[operation.name] = set()
        self._pred[operation.name] = set()
        self._index[operation.name] = len(self._names)
        self._names.append(operation.name)
        self._anc.append(0)
        self._desc.append(0)
        return operation

    def add_vertex(self, name: str, **kwargs) -> Operation:
        """Convenience wrapper: create and add an :class:`Operation`."""
        return self.add_operation(Operation(name=name, **kwargs))

    def add_dependency(self, dependency: Dependency) -> Dependency:
        """Add an edge, verifying both endpoints exist and no cycle is created.

        Cycle detection and closure maintenance are bitmask operations: the
        edge ``u -> v`` is cyclic iff ``u`` is already a descendant of ``v``,
        and on insertion every ancestor of ``u`` (including ``u``) gains the
        descendant set of ``v`` (including ``v``) and vice versa.
        """
        for endpoint in (dependency.source, dependency.target):
            if endpoint not in self._ops:
                raise KeyError(f"Unknown vertex {endpoint!r}")
        key = (dependency.source, dependency.target)
        if key in self._edges:
            return self._edges[key]
        si = self._index[dependency.source]
        ti = self._index[dependency.target]
        if (self._desc[ti] >> si) & 1:
            raise CycleError(
                f"Edge {dependency.source} -> {dependency.target} would create a cycle"
            )
        self._edges[key] = dependency
        self._succ[dependency.source].add(dependency.target)
        self._pred[dependency.target].add(dependency.source)
        if not (self._desc[si] >> ti) & 1:
            up = self._anc[si] | (1 << si)
            down = self._desc[ti] | (1 << ti)
            desc = self._desc
            anc = self._anc
            for i in _iter_bits(up):
                desc[i] |= down
            for i in _iter_bits(down):
                anc[i] |= up
        return dependency

    def add_edge(
        self,
        source: str,
        target: str,
        kind: DependencyKind = DependencyKind.PROGRAM_ORDER,
        label: str = "",
    ) -> Dependency:
        """Convenience wrapper: create and add a :class:`Dependency`."""
        return self.add_dependency(Dependency(source, target, kind=kind, label=label))

    def remove_edge(self, source: str, target: str) -> None:
        """Remove an edge if present (rebuilds the reachability index)."""
        key = (source, target)
        if key in self._edges:
            del self._edges[key]
            self._succ[source].discard(target)
            self._pred[target].discard(source)
            self._rebuild_closure()

    def _rebuild_closure(self) -> None:
        """Recompute the ancestor/descendant bitmasks with a topological sweep.

        Dispatches on :func:`closure_backend`: large graphs take the numpy
        sweep over uint64 word chunks, everything else the stdlib big-int
        path.  Both produce bit-identical masks (differentially tested).
        """
        order = self.topological_order()
        if closure_backend() == "numpy" and len(order) >= _NUMPY_MIN_VERTICES:
            self._rebuild_closure_numpy(order)
        else:
            self._rebuild_closure_python(order)

    def _rebuild_closure_python(self, order: List[str]) -> None:
        """The stdlib path: per-vertex big-int ORs along the sweep."""
        count = len(self._names)
        anc = [0] * count
        desc = [0] * count
        index = self._index
        for name in order:
            i = index[name]
            gathered = 0
            for pred_name in self._pred[name]:
                pi = index[pred_name]
                gathered |= anc[pi] | (1 << pi)
            anc[i] = gathered
        for name in reversed(order):
            i = index[name]
            gathered = 0
            for succ_name in self._succ[name]:
                sj = index[succ_name]
                gathered |= desc[sj] | (1 << sj)
            desc[i] = gathered
        self._anc = anc
        self._desc = desc

    def _rebuild_closure_numpy(self, order: List[str]) -> None:
        """The vectorized path: masks live in ``(V, V/64)`` uint64 arrays.

        Each sweep step ORs all of a vertex's predecessor (or successor)
        closure rows at once -- ``np.bitwise_or.reduce`` over machine-word
        chunks -- instead of the per-predecessor big-int loop.
        """
        count = len(self._names)
        words = (count + _WORD_BITS - 1) // _WORD_BITS
        index = self._index
        anc = _np.zeros((count, words), dtype="<u8")
        desc = _np.zeros((count, words), dtype="<u8")
        unit = _np.zeros((count, words), dtype="<u8")
        for i in range(count):
            unit[i, i // _WORD_BITS] = 1 << (i % _WORD_BITS)
        for name in order:
            preds = self._pred[name]
            if preds:
                rows = [index[p] for p in preds]
                anc[index[name]] = _np.bitwise_or.reduce(
                    anc[rows] | unit[rows], axis=0
                )
        for name in reversed(order):
            succs = self._succ[name]
            if succs:
                rows = [index[s] for s in succs]
                desc[index[name]] = _np.bitwise_or.reduce(
                    desc[rows] | unit[rows], axis=0
                )
        self._anc = _unpack_masks(anc)
        self._desc = _unpack_masks(desc)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def __len__(self) -> int:
        return len(self._ops)

    def operation(self, name: str) -> Operation:
        """Return the operation stored at vertex ``name``."""
        return self._ops[name]

    @property
    def vertices(self) -> List[str]:
        """All vertex names, in insertion order."""
        return list(self._ops)

    @property
    def operations(self) -> List[Operation]:
        """All operations, in insertion order."""
        return list(self._ops.values())

    @property
    def edges(self) -> List[Dependency]:
        """All edges, in insertion order."""
        return list(self._edges.values())

    def edge(self, source: str, target: str) -> Optional[Dependency]:
        """Return the edge ``source -> target`` or ``None``."""
        return self._edges.get((source, target))

    def has_edge(self, source: str, target: str) -> bool:
        return (source, target) in self._edges

    def successors(self, name: str) -> Set[str]:
        return set(self._succ[name])

    def predecessors(self, name: str) -> Set[str]:
        return set(self._pred[name])

    def operations_of_type(self, op_type: OperationType) -> List[Operation]:
        """All operations with the given :class:`OperationType`."""
        return [op for op in self._ops.values() if op.op_type is op_type]

    def in_degree(self, name: str) -> int:
        return len(self._pred[name])

    def out_degree(self, name: str) -> int:
        return len(self._succ[name])

    # ------------------------------------------------------------------
    # Reachability and orderings
    # ------------------------------------------------------------------
    def _mask_to_names(self, mask: int) -> Set[str]:
        names = self._names
        return {names[i] for i in _iter_bits(mask)}

    def has_path(self, source: str, target: str) -> bool:
        """``True`` iff there is a directed path from ``source`` to ``target``.

        A vertex is considered to reach itself by the empty path.  O(1): a
        single bit test against the descendant mask of ``source``.
        """
        if source not in self._ops or target not in self._ops:
            raise KeyError(f"Unknown vertex in path query: {source!r} or {target!r}")
        if source == target:
            return True
        return bool((self._desc[self._index[source]] >> self._index[target]) & 1)

    def descendants(self, source: str) -> Set[str]:
        """All vertices reachable from ``source`` (excluding ``source``)."""
        return self._mask_to_names(self._desc[self._index[source]])

    def ancestors(self, target: str) -> Set[str]:
        """All vertices from which ``target`` is reachable (excluding itself)."""
        return self._mask_to_names(self._anc[self._index[target]])

    def racing_partners(self, name: str) -> Set[str]:
        """All vertices that race with ``name`` (Theorem 1: incomparable vertices).

        One O(V/w) mask operation: everything that is neither an ancestor nor
        a descendant of ``name`` (nor ``name`` itself).
        """
        i = self._index[name]
        full = (1 << len(self._names)) - 1
        comparable = self._anc[i] | self._desc[i] | (1 << i)
        return self._mask_to_names(full & ~comparable)

    def all_racing_pairs(self) -> List[Tuple[str, str]]:
        """Every racing (incomparable) vertex pair, in one pass over the closure.

        Pairs are returned in insertion order of the first member, each pair
        ordered by insertion as well -- the same order the pairwise
        ``itertools.combinations`` scan used to produce.  O(V * V/w); on the
        numpy backend the per-row ``later & ~(anc | desc)`` masks for *all*
        rows are computed in one vectorized pass over uint64 word chunks.
        """
        count = len(self._names)
        names = self._names
        pairs: List[Tuple[str, str]] = []
        if closure_backend() == "numpy" and count >= _NUMPY_MIN_VERTICES:
            words = (count + _WORD_BITS - 1) // _WORD_BITS
            full = (1 << count) - 1
            later = _pack_masks(
                [full >> (i + 1) << (i + 1) for i in range(count)], words
            )
            anc = _pack_masks(self._anc, words)
            desc = _pack_masks(self._desc, words)
            racing_rows = later & ~(anc | desc)
            for i, row in enumerate(racing_rows):
                racing = int.from_bytes(row.tobytes(), "little")
                first = names[i]
                pairs.extend((first, names[j]) for j in _iter_bits(racing))
            return pairs
        full = (1 << count) - 1
        for i in range(count):
            later = full >> (i + 1) << (i + 1)
            racing = later & ~(self._anc[i] | self._desc[i])
            first = names[i]
            pairs.extend((first, names[j]) for j in _iter_bits(racing))
        return pairs

    def is_valid_ordering(self, ordering: Sequence[str]) -> bool:
        """Check whether ``ordering`` is a valid ordering of the TSG.

        A valid ordering contains every vertex exactly once and respects
        every edge: for each edge (u, v), u appears before v.
        """
        if len(ordering) != len(self._ops) or set(ordering) != set(self._ops):
            return False
        position = {name: i for i, name in enumerate(ordering)}
        return all(position[dep.source] < position[dep.target] for dep in self._edges.values())

    def topological_order(self, prefer_late: Optional[str] = None) -> List[str]:
        """Return one valid ordering (Kahn's algorithm over an index heap).

        When ``prefer_late`` names a vertex, that vertex is scheduled as late
        as possible (its selection is deferred whenever another ready vertex
        exists).  This is used to construct witness orderings for races.

        The ready set is a min-heap of insertion indices, so selection is
        deterministic (earliest-inserted ready vertex first) and each step is
        O(log V) instead of the O(V) list scans of the earlier implementation.
        """
        index = self._index
        names = self._names
        indegree = [0] * len(names)
        for name, preds in self._pred.items():
            indegree[index[name]] = len(preds)
        ready = [i for i, degree in enumerate(indegree) if degree == 0]
        heapq.heapify(ready)
        late_index = index.get(prefer_late) if prefer_late is not None else None
        order: List[str] = []
        while ready:
            pick = heapq.heappop(ready)
            if pick == late_index and ready:
                pick, deferred = heapq.heappop(ready), pick
                heapq.heappush(ready, deferred)
            order.append(names[pick])
            for nxt in self._succ[names[pick]]:
                ni = index[nxt]
                indegree[ni] -= 1
                if indegree[ni] == 0:
                    heapq.heappush(ready, ni)
        if len(order) != len(self._ops):
            raise CycleError("Graph contains a cycle")  # pragma: no cover - unreachable
        return order

    def all_orderings(self, limit: Optional[int] = None) -> Iterator[List[str]]:
        """Enumerate valid orderings (all topological sorts).

        The number of topological sorts is exponential in general; callers
        should pass ``limit`` or only use this on small graphs (the paper's
        attack graphs have 10-20 vertices).  For *counting* orderings use
        :meth:`count_orderings`, which is a polynomial-state DP on typical
        attack graphs; the enumerator is retained for witness construction.
        """
        indegree = {name: len(preds) for name, preds in self._pred.items()}
        ready = sorted(name for name, deg in indegree.items() if deg == 0)
        emitted = 0

        def backtrack(prefix: List[str], ready_now: List[str]) -> Iterator[List[str]]:
            nonlocal emitted
            if limit is not None and emitted >= limit:
                return
            if len(prefix) == len(self._ops):
                emitted += 1
                yield list(prefix)
                return
            for index, node in enumerate(list(ready_now)):
                next_ready = ready_now[:index] + ready_now[index + 1 :]
                released = []
                for nxt in sorted(self._succ[node]):
                    indegree[nxt] -= 1
                    if indegree[nxt] == 0:
                        released.append(nxt)
                prefix.append(node)
                yield from backtrack(prefix, sorted(next_ready + released))
                prefix.pop()
                for nxt in self._succ[node]:
                    indegree[nxt] += 1
                if limit is not None and emitted >= limit:
                    return

        yield from backtrack([], ready)

    def count_orderings(self, limit: Optional[int] = 100000) -> int:
        """Count valid orderings (linear extensions) exactly, capped at ``limit``.

        Implemented as a memoized DP over downsets (a downset is the set of
        already-scheduled vertices; a vertex is schedulable once all its
        ancestors are in the downset), computed independently per weakly
        connected component and combined with the multinomial interleaving
        factor.  Exact counts for the paper's 10-20-vertex attack graphs take
        milliseconds; pass ``limit=None`` for the uncapped exact count.

        ``limit`` preserves the historical contract of the enumeration-based
        counter (which stopped once ``limit`` orderings had been seen): when
        the exact count exceeds ``limit``, ``limit`` is returned -- and the
        amount of *work* stays bounded as well.  A capped call gives the DP a
        state budget; pathological shapes (e.g. wide antichains whose downset
        lattice is exponential) fall back to the bounded enumerator instead
        of running the DP to completion.  ``limit=None`` requests the exact
        count and accepts the full DP cost.
        """
        # Scale the state budget with the cap: when only a small count is
        # wanted, bailing out to the enumerator early is cheaper than letting
        # the DP explore a large lattice first.
        budget = (
            None
            if limit is None
            else min(self._DP_STATE_BUDGET, max(4 * limit, 4096))
        )
        total = 1
        remaining = len(self._names)
        try:
            for component in self._weak_components():
                total *= math.comb(remaining, len(component))
                remaining -= len(component)
                total *= self._count_component(component, max_states=budget)
                if limit is not None and total >= limit:
                    return limit
        except _StateBudgetExceeded:
            count = 0
            for _ in self.all_orderings(limit=limit):
                count += 1
            return count
        if limit is not None:
            return min(total, limit)
        return total

    #: Downset-DP state budget for capped ``count_orderings`` calls.  Each
    #: state is one dict entry; past this the bounded enumerator is cheaper.
    _DP_STATE_BUDGET = 1 << 17

    def _weak_components(self) -> List[List[int]]:
        """Vertex indices grouped by weakly connected component."""
        visited: Set[int] = set()
        components: List[List[int]] = []
        index = self._index
        for start, name in enumerate(self._names):
            if start in visited:
                continue
            component = []
            stack = [name]
            visited.add(start)
            while stack:
                current = stack.pop()
                component.append(index[current])
                for neighbour in self._succ[current] | self._pred[current]:
                    ni = index[neighbour]
                    if ni not in visited:
                        visited.add(ni)
                        stack.append(neighbour)
            components.append(component)
        return components

    def _count_component(
        self, component: List[int], max_states: Optional[int] = None
    ) -> int:
        """Linear extensions of one weakly connected component (downset DP)."""
        if len(component) <= 1:
            return 1
        comp_mask = 0
        for i in component:
            comp_mask |= 1 << i
        anc = self._anc
        memo: Dict[int, int] = {comp_mask: 1}

        def extensions(done: int) -> int:
            cached = memo.get(done)
            if cached is not None:
                return cached
            if max_states is not None and len(memo) > max_states:
                raise _StateBudgetExceeded
            todo = comp_mask & ~done
            total = 0
            for i in _iter_bits(todo):
                if anc[i] & comp_mask & ~done:
                    continue  # not ready: an ancestor is still unscheduled
                total += extensions(done | (1 << i))
            memo[done] = total
            return total

        return extensions(0)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "TopologicalSortGraph":
        """Return a structural copy of the graph (the closure index is shared-free)."""
        clone = type(self)(name=name or self.name)
        clone._ops = dict(self._ops)
        clone._succ = {k: set(v) for k, v in self._succ.items()}
        clone._pred = {k: set(v) for k, v in self._pred.items()}
        clone._edges = dict(self._edges)
        clone._index = dict(self._index)
        clone._names = list(self._names)
        clone._anc = list(self._anc)
        clone._desc = list(self._desc)
        return clone

    def subgraph(self, names: Iterable[str], name: str = "subgraph") -> "TopologicalSortGraph":
        """Return the induced subgraph on ``names``."""
        keep = set(names)
        sub = TopologicalSortGraph(name=name)
        for vertex in self.vertices:
            if vertex in keep:
                sub.add_operation(self._ops[vertex])
        for dep in self._edges.values():
            if dep.source in keep and dep.target in keep:
                sub.add_dependency(dep)
        return sub

    def to_networkx(self):
        """Export to a :class:`networkx.DiGraph` (vertex/edge data attached)."""
        import networkx as nx

        graph = nx.DiGraph(name=self.name)
        for op in self._ops.values():
            graph.add_node(op.name, operation=op)
        for dep in self._edges.values():
            graph.add_edge(dep.source, dep.target, dependency=dep, kind=dep.kind.value)
        return graph

    def to_dot(self) -> str:
        """Render the graph in Graphviz DOT format."""
        lines = [f'digraph "{self.name}" {{', "  rankdir=TB;"]
        for op in self._ops.values():
            shape = {
                OperationType.AUTHORIZATION: "diamond",
                OperationType.SECRET_ACCESS: "box",
                OperationType.SEND: "box",
                OperationType.RECEIVE: "ellipse",
            }.get(op.op_type, "ellipse")
            style = ', style="dashed"' if op.speculative else ""
            lines.append(f'  "{op.name}" [shape={shape}{style}];')
        for dep in self._edges.values():
            style = ' [style="bold", color="red"]' if dep.is_security else (
                f' [label="{dep.kind.value}"]'
            )
            lines.append(f'  "{dep.source}" -> "{dep.target}"{style};')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name!r}: "
            f"{len(self._ops)} vertices, {len(self._edges)} edges>"
        )
