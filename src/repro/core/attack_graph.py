"""Attack graphs: TSGs with attack-specific vertex typing and analysis.

An :class:`AttackGraph` is a Topological Sort Graph whose vertices carry the
paper's operation categories (authorization, secret access, send, receive,
setup, ...), attack-step labels (steps 0-5 of Section III), and a
speculative-window flag.  On top of the generic race analysis it offers the
attack-specific questions the paper asks:

* which vertices form Part A (secret access) and Part B (covert channel)?
* which operations lie inside the speculative execution window?
* which security dependencies are missing (i.e. where are the races between
  authorization and access / use / send)?
* does adding a given security dependency (a defense) remove those races?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .edges import DependencyKind
from .nodes import AttackPart, AttackStep, ExecutionLevel, Operation, OperationType
from .race import Race, find_races, has_race
from .security_dependency import (
    ProtectionPoint,
    SecurityDependency,
    missing_security_dependencies,
)
from .tsg import TopologicalSortGraph


@dataclass(frozen=True)
class Vulnerability:
    """A missing security dependency, reported as an exploitable vulnerability."""

    dependency: SecurityDependency
    race: Race
    description: str = ""

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"vulnerability: {self.dependency}"


class AttackGraph(TopologicalSortGraph):
    """A Topological Sort Graph modelling one speculative execution attack."""

    def __init__(self, name: str = "attack", description: str = "") -> None:
        super().__init__(name=name)
        self.description = description

    # ------------------------------------------------------------------
    # Typed construction helpers
    # ------------------------------------------------------------------
    def add_step(
        self,
        name: str,
        op_type: OperationType,
        step: Optional[AttackStep] = None,
        *,
        speculative: bool = False,
        level: ExecutionLevel = ExecutionLevel.ARCHITECTURAL,
        description: str = "",
        after: Sequence[str] = (),
        kind: DependencyKind = DependencyKind.PROGRAM_ORDER,
    ) -> Operation:
        """Add a typed vertex and edges from each vertex in ``after``."""
        operation = Operation(
            name=name,
            op_type=op_type,
            step=step,
            speculative=speculative,
            level=level,
            description=description,
        )
        self.add_operation(operation)
        for predecessor in after:
            self.add_edge(predecessor, name, kind=kind)
        return operation

    # ------------------------------------------------------------------
    # Vertex classes
    # ------------------------------------------------------------------
    def _names_of(self, op_type: OperationType) -> List[str]:
        return [op.name for op in self.operations_of_type(op_type)]

    @property
    def setup_nodes(self) -> List[str]:
        return self._names_of(OperationType.SETUP)

    @property
    def authorization_nodes(self) -> List[str]:
        """Authorization vertices plus their resolution vertices."""
        return self._names_of(OperationType.AUTHORIZATION) + self._names_of(
            OperationType.RESOLUTION
        )

    @property
    def resolution_nodes(self) -> List[str]:
        return self._names_of(OperationType.RESOLUTION)

    @property
    def secret_access_nodes(self) -> List[str]:
        return self._names_of(OperationType.SECRET_ACCESS)

    @property
    def use_nodes(self) -> List[str]:
        return self._names_of(OperationType.USE)

    @property
    def send_nodes(self) -> List[str]:
        return self._names_of(OperationType.SEND)

    @property
    def receive_nodes(self) -> List[str]:
        return self._names_of(OperationType.RECEIVE)

    @property
    def speculative_window(self) -> List[str]:
        """Vertices executed inside the speculative execution window."""
        return [op.name for op in self.operations if op.speculative]

    def nodes_in_step(self, step: AttackStep) -> List[str]:
        return [op.name for op in self.operations if op.step is step]

    def nodes_in_part(self, part: AttackPart) -> List[str]:
        return [op.name for op in self.operations if op.part is part]

    def steps_present(self) -> List[AttackStep]:
        """The attack steps that have at least one vertex, in step order."""
        present = {op.step for op in self.operations if op.step is not None}
        return sorted(present, key=lambda step: step.value)

    @property
    def is_meltdown_type(self) -> bool:
        """Meltdown-type attacks need intra-instruction (micro-op) vertices."""
        return any(op.level is ExecutionLevel.MICROARCHITECTURAL for op in self.operations)

    # ------------------------------------------------------------------
    # Validation and analysis
    # ------------------------------------------------------------------
    REQUIRED_TYPES: Tuple[OperationType, ...] = (
        OperationType.AUTHORIZATION,
        OperationType.SECRET_ACCESS,
        OperationType.SEND,
        OperationType.RECEIVE,
    )

    def validate(self) -> List[str]:
        """Check the graph contains the four mandatory vertex classes.

        Returns a list of problems (empty when the graph is well-formed).
        """
        problems = []
        for required in self.REQUIRED_TYPES:
            if not self.operations_of_type(required):
                problems.append(f"missing required vertex type: {required.value}")
        return problems

    def find_races(self) -> List[Race]:
        """All races in the graph (delegates to :func:`repro.core.race.find_races`)."""
        return find_races(self)

    def authorization_races(self) -> List[Race]:
        """Races between an authorization/resolution vertex and any other vertex."""
        auth = set(self.authorization_nodes)
        return [race for race in find_races(self) if auth & set(race.as_pair())]

    def find_vulnerabilities(
        self, points: Optional[List[ProtectionPoint]] = None
    ) -> List[Vulnerability]:
        """Missing security dependencies, reported as vulnerabilities."""
        vulnerabilities = []
        for dependency in missing_security_dependencies(self, points=points):
            race = Race(dependency.authorization, dependency.protected)
            vulnerabilities.append(
                Vulnerability(
                    dependency=dependency,
                    race=race,
                    description=(
                        f"{dependency.protected!r} races with authorization "
                        f"{dependency.authorization!r} ({dependency.point.value} "
                        "before authorization is possible)"
                    ),
                )
            )
        return vulnerabilities

    def is_vulnerable(self) -> bool:
        """``True`` when at least one security dependency is missing."""
        return bool(self.find_vulnerabilities())

    def secret_reachable_before_authorization(self) -> bool:
        """``True`` when some secret access can complete before some authorization."""
        return any(
            vulnerability.dependency.point is ProtectionPoint.ACCESS
            for vulnerability in self.find_vulnerabilities()
        )

    # ------------------------------------------------------------------
    # Defense application
    # ------------------------------------------------------------------
    def with_security_dependency(self, dependency: SecurityDependency) -> "AttackGraph":
        """Return a copy of the graph with the security dependency edge added."""
        patched = self.copy(name=f"{self.name}+{dependency.point.value}-dep")
        if not patched.has_edge(dependency.authorization, dependency.protected):
            patched.add_dependency(dependency.as_dependency())
        return patched

    def with_security_dependencies(
        self, dependencies: Sequence[SecurityDependency]
    ) -> "AttackGraph":
        """Return a copy with several security dependency edges added."""
        patched = self.copy(name=f"{self.name}+{len(dependencies)}-deps")
        for dependency in dependencies:
            if not patched.has_edge(dependency.authorization, dependency.protected):
                patched.add_dependency(dependency.as_dependency())
        return patched

    def copy(self, name: Optional[str] = None) -> "AttackGraph":
        clone = super().copy(name=name)
        clone.description = self.description
        return clone  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """A dictionary summary used by the reporting and benchmark layers."""
        vulnerabilities = self.find_vulnerabilities()
        return {
            "name": self.name,
            "description": self.description,
            "vertices": len(self),
            "edges": len(self.edges),
            "authorization_nodes": self.authorization_nodes,
            "secret_access_nodes": self.secret_access_nodes,
            "send_nodes": self.send_nodes,
            "receive_nodes": self.receive_nodes,
            "speculative_window": self.speculative_window,
            "steps_present": [step.name for step in self.steps_present()],
            "meltdown_type": self.is_meltdown_type,
            "vulnerabilities": [str(v.dependency) for v in vulnerabilities],
            "vulnerable": bool(vulnerabilities),
        }

    def describe(self) -> str:
        """A human-readable multi-line description of the graph and its races."""
        summary = self.summary()
        lines = [
            f"Attack graph: {summary['name']}",
            f"  {summary['description']}" if summary["description"] else "",
            f"  vertices: {summary['vertices']}, edges: {summary['edges']}",
            f"  authorization: {', '.join(summary['authorization_nodes']) or '-'}",
            f"  secret access: {', '.join(summary['secret_access_nodes']) or '-'}",
            f"  send:          {', '.join(summary['send_nodes']) or '-'}",
            f"  receive:       {', '.join(summary['receive_nodes']) or '-'}",
            f"  speculative window: {', '.join(summary['speculative_window']) or '-'}",
            f"  type: {'Meltdown-type (intra-instruction)' if summary['meltdown_type'] else 'Spectre-type (inter-instruction)'}",
            "  missing security dependencies:",
        ]
        vulnerabilities = summary["vulnerabilities"]
        if vulnerabilities:
            lines.extend(f"    - {item}" for item in vulnerabilities)
        else:
            lines.append("    (none -- attack defeated)")
        return "\n".join(line for line in lines if line)
