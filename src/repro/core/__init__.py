"""Core attack-graph model: TSGs, races, security dependencies, attack graphs."""

from .attack_graph import AttackGraph, Vulnerability
from .edges import Dependency, DependencyKind, HARDWARE_ENFORCED_KINDS
from .nodes import (
    AttackPart,
    AttackStep,
    ExecutionLevel,
    Operation,
    OperationType,
)
from .race import (
    Race,
    TheoremCheck,
    figure2_example,
    find_races,
    has_race,
    has_race_by_enumeration,
    race_free,
    verify_theorem1,
    witness_orderings,
)
from .security_dependency import (
    ProtectionPoint,
    SecurityDependency,
    enforce,
    is_vulnerable,
    missing_security_dependencies,
)
from .tsg import CycleError, TopologicalSortGraph

__all__ = [
    "AttackGraph",
    "AttackPart",
    "AttackStep",
    "CycleError",
    "Dependency",
    "DependencyKind",
    "ExecutionLevel",
    "HARDWARE_ENFORCED_KINDS",
    "Operation",
    "OperationType",
    "ProtectionPoint",
    "Race",
    "SecurityDependency",
    "TheoremCheck",
    "TopologicalSortGraph",
    "Vulnerability",
    "enforce",
    "figure2_example",
    "find_races",
    "has_race",
    "has_race_by_enumeration",
    "is_vulnerable",
    "missing_security_dependencies",
    "race_free",
    "verify_theorem1",
    "witness_orderings",
]
