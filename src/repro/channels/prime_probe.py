"""The Prime+Probe channel (miss and access based).

The receiver fills ("primes") cache sets with its own lines, waits for the
sender, then re-accesses ("probes") its lines.  A slow probe means the sender
evicted one of the receiver's lines from that set, so the secret is encoded
in *which set* the sender touched.  Unlike Flush+Reload it requires no shared
memory between sender and receiver.
"""

from __future__ import annotations

from typing import List, Optional

from ..uarch.cache import SetAssociativeCache
from .base import ChannelObservation, CovertChannel


class PrimeProbeChannel(CovertChannel):
    """Prime+Probe over the sets of a :class:`SetAssociativeCache`.

    The channel works directly against the cache (not the generic timing
    surface) because priming requires knowledge of the set mapping.
    Values in ``[0, sets)`` are encoded as "the sender touches a line mapping
    to set ``value``".
    """

    def __init__(
        self,
        cache: SetAssociativeCache,
        *,
        attacker_base: int = 0x4000_0000,
        victim_base: int = 0x8000_0000,
        sender_partition: int = 0,
        receiver_partition: int = 0,
        hit_threshold: int = 80,
    ) -> None:
        super().__init__(surface=None, hit_threshold=hit_threshold)  # type: ignore[arg-type]
        self.cache = cache
        self.attacker_base = attacker_base
        self.victim_base = victim_base
        self.sender_partition = sender_partition
        self.receiver_partition = receiver_partition

    # ------------------------------------------------------------------
    def _attacker_address(self, set_index: int, way: int) -> int:
        """An attacker-owned address mapping to the given set."""
        stride = self.cache.sets * self.cache.line_size
        return self.attacker_base + way * stride + set_index * self.cache.line_size

    def _victim_address(self, value: int) -> int:
        """A victim address whose set index encodes ``value``."""
        return self.victim_base + (value % self.cache.sets) * self.cache.line_size

    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Prime: fill every way of every set with attacker lines."""
        for set_index in range(self.cache.sets):
            for way in range(self.cache.ways):
                self.cache.access(
                    self._attacker_address(set_index, way),
                    partition=self.receiver_partition,
                )

    def send(self, value: int) -> None:
        """Sender touches a line in the set encoding ``value``, evicting the attacker."""
        self.cache.access(self._victim_address(value), partition=self.sender_partition)

    def probe_set(self, set_index: int) -> int:
        """Total latency of re-accessing the attacker's lines of one set."""
        total = 0
        for way in range(self.cache.ways):
            total += self.cache.access(
                self._attacker_address(set_index, way),
                partition=self.receiver_partition,
                fill=False,
            ).latency
        return total

    def receive(self) -> ChannelObservation:
        """Probe every set; the slowest set is where the sender evicted a line."""
        latencies = [self.probe_set(set_index) for set_index in range(self.cache.sets)]
        best_set = max(range(self.cache.sets), key=lambda index: latencies[index])
        baseline = min(latencies)
        if latencies[best_set] <= baseline:
            return ChannelObservation(value=None, latencies=latencies)
        return ChannelObservation(value=best_set, latencies=latencies)
