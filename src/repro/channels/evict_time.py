"""The Evict+Time channel (miss and operation based).

The attacker measures the execution time of a whole victim operation twice:
once with the cache undisturbed and once after evicting a chosen cache set.
If the victim uses a line in the evicted set, the second run is slower --
revealing, one set at a time, which lines the victim touches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..uarch.cache import SetAssociativeCache
from .base import ChannelObservation


@dataclass
class EvictTimeMeasurement:
    """Timing of one victim run with and without the eviction."""

    set_index: int
    baseline_cycles: int
    evicted_cycles: int

    @property
    def victim_uses_set(self) -> bool:
        return self.evicted_cycles > self.baseline_cycles


class EvictTimeChannel:
    """Evict+Time against a victim operation running on a shared cache.

    The victim operation is a callable returning the number of cycles it
    took (the exploit harness and the tests provide one that accesses the
    cache through :class:`SetAssociativeCache`).
    """

    def __init__(
        self,
        cache: SetAssociativeCache,
        victim_operation: Callable[[], int],
        *,
        eviction_base: int = 0xC000_0000,
    ) -> None:
        self.cache = cache
        self.victim_operation = victim_operation
        self.eviction_base = eviction_base

    def _evict_set(self, set_index: int) -> None:
        """Fill every way of one set with attacker data, evicting the victim."""
        stride = self.cache.sets * self.cache.line_size
        for way in range(self.cache.ways):
            address = self.eviction_base + way * stride + set_index * self.cache.line_size
            self.cache.access(address, partition=0)

    def measure_set(self, set_index: int, warmups: int = 1) -> EvictTimeMeasurement:
        """Measure the victim with and without evicting ``set_index``."""
        for _ in range(max(warmups, 1)):
            self.victim_operation()
        baseline = self.victim_operation()
        self._evict_set(set_index)
        evicted = self.victim_operation()
        return EvictTimeMeasurement(
            set_index=set_index, baseline_cycles=baseline, evicted_cycles=evicted
        )

    def scan(self, sets: Optional[int] = None) -> List[EvictTimeMeasurement]:
        """Measure every set; the sets the victim uses show a slowdown."""
        count = sets if sets is not None else self.cache.sets
        return [self.measure_set(set_index) for set_index in range(count)]

    def receive(self) -> ChannelObservation:
        """Return the set with the largest slowdown (the victim's hottest set)."""
        measurements = self.scan()
        slowdowns = [m.evicted_cycles - m.baseline_cycles for m in measurements]
        best = max(range(len(measurements)), key=lambda index: slowdowns[index])
        if slowdowns[best] <= 0:
            return ChannelObservation(value=None, latencies=slowdowns)
        return ChannelObservation(value=best, latencies=slowdowns)
