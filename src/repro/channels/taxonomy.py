"""The cache timing channel taxonomy of Section II-C.

Cache timing channels are classified along two axes: whether the receiver's
signal is a *hit* or a *miss*, and whether the timing is measured on a single
*access* or on a whole *operation*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple


class Signal(enum.Enum):
    HIT = "hit"
    MISS = "miss"


class Granularity(enum.Enum):
    ACCESS = "access"
    OPERATION = "operation"


@dataclass(frozen=True)
class ChannelClass:
    """One cell of the Section II-C taxonomy."""

    name: str
    signal: Signal
    granularity: Granularity
    example: str
    needs_shared_memory: bool
    description: str


CHANNEL_TAXONOMY: Tuple[ChannelClass, ...] = (
    ChannelClass(
        name="Flush+Reload",
        signal=Signal.HIT,
        granularity=Granularity.ACCESS,
        example="repro.channels.flush_reload.FlushReloadChannel",
        needs_shared_memory=True,
        description=(
            "Flush a shared line; a later fast (hit) reload means the sender touched it."
        ),
    ),
    ChannelClass(
        name="Prime+Probe",
        signal=Signal.MISS,
        granularity=Granularity.ACCESS,
        example="repro.channels.prime_probe.PrimeProbeChannel",
        needs_shared_memory=False,
        description=(
            "Fill a set with attacker lines; a later slow (miss) probe means the sender "
            "evicted one of them."
        ),
    ),
    ChannelClass(
        name="Cache collision",
        signal=Signal.HIT,
        granularity=Granularity.OPERATION,
        example="repro.channels.collision.CacheCollisionChannel",
        needs_shared_memory=False,
        description=(
            "A whole victim operation runs faster when its secret-dependent access hits a "
            "line the attacker pre-loaded."
        ),
    ),
    ChannelClass(
        name="Evict+Time",
        signal=Signal.MISS,
        granularity=Granularity.OPERATION,
        example="repro.channels.evict_time.EvictTimeChannel",
        needs_shared_memory=False,
        description=(
            "A whole victim operation runs slower when the attacker evicted a set the "
            "victim uses."
        ),
    ),
)


def classify(signal: Signal, granularity: Granularity) -> ChannelClass:
    """The taxonomy cell for a (signal, granularity) pair."""
    for channel_class in CHANNEL_TAXONOMY:
        if channel_class.signal is signal and channel_class.granularity is granularity:
            return channel_class
    raise LookupError(f"no channel class for {signal}, {granularity}")  # pragma: no cover


def taxonomy_rows() -> List[Tuple[str, str, str, str]]:
    """(channel, signal, granularity, shared memory?) rows for reports."""
    return [
        (
            channel_class.name,
            channel_class.signal.value,
            channel_class.granularity.value,
            "yes" if channel_class.needs_shared_memory else "no",
        )
        for channel_class in CHANNEL_TAXONOMY
    ]
