"""The functional-unit contention channel (Section II-C, non-cache family).

The paper's covert-channel taxonomy lists *functional-unit contention*
alongside the cache channels: a sender modulates how busy a shared execution
port is (classically the multiplier pipe), and a receiver times its own burst
of ops on the same port -- contended issue slots stretch the burst by a
measurable number of cycles.  Unlike the cache channels this one leaves no
state behind: sender and receiver must overlap in the machine, which is
exactly what one out-of-order window models (the SMT port-contention
setting).

The channel therefore runs on the *scheduler* timing surface rather than the
cache surface: :class:`PortContentionSurface` builds a combined
sender-then-receiver :class:`~repro.uarch.timing.ops.DynamicOp` stream, runs
it through a port-limited :class:`~repro.uarch.timing.scheduler.TimingModel`,
and reports how many cycles the receiver's probe burst took from data-ready
to last broadcast.  With one port per pool every sender op displaces the
receiver by exactly its execution latency, so the occupancy delta is a
noise-free linear encoding; with unbounded ports the delta collapses to zero
and the channel is structurally undetectable -- which is why the PR-3 timing
plane (unlimited functional units) could not measure this family at all.

:class:`ContentionChannel` wraps the surface in the standard
prepare / send / receive protocol of :class:`~repro.channels.base.
CovertChannel`: ``prepare`` calibrates the uncontended baseline and the
per-unit cycle delta, ``send`` stages the sender's occupancy burst, and
``receive`` times the probe burst and decodes the value from the delta.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..uarch.timing.core import SCHEDULERS
from ..uarch.timing.ops import DynamicOp
from ..uarch.timing.scheduler import TimingModel
from .base import ChannelObservation, CovertChannel

#: Op kind issuing to each functional-unit pool (the probe/sender op shape).
_POOL_OP_KIND = {
    "alu": "alu",
    "load_store": "load",
    "branch": "branch",
    "mul": "mul",
}

#: A window wide enough that dispatch/commit width never perturbs the
#: measurement: every op is in flight by cycle 0 and only port/CDB
#: arbitration orders execution, so the occupancy delta is exactly linear.
#: ``replace(WIDE_WINDOW_MODEL, **port_overrides)`` is how the window
#: ablation derives a measurement surface for each port configuration.
WIDE_WINDOW_MODEL = TimingModel(
    dispatch_width=512, commit_width=512, rob_size=4096, rs_entries=4096
)


class PortContentionSurface:
    """Timing surface measuring FU-port occupancy deltas on the OoO plane.

    ``model`` defaults to a wide-window machine with a single ``pool`` port
    and a width-1 CDB -- the fully contended configuration.  Pass a model
    with the pool unbounded to demonstrate the channel's mitigation (port
    duplication): the measured delta collapses to zero.
    """

    def __init__(
        self,
        model: Optional[TimingModel] = None,
        *,
        pool: str = "mul",
        op_latency: Optional[int] = None,
        scheduler: str = "event",
    ) -> None:
        if pool not in _POOL_OP_KIND:
            raise ValueError(
                f"unknown port pool {pool!r}; known: {', '.join(sorted(_POOL_OP_KIND))}"
            )
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; known: {', '.join(sorted(SCHEDULERS))}"
            )
        if model is None:
            model = replace(WIDE_WINDOW_MODEL, cdb_width=1, **{f"{pool}_ports": 1})
        if op_latency is None:
            # The mul pool mirrors the timing core's multiplier pipe: take
            # its latency from the same config knob TimingCPU applies, so
            # the channel's occupancy numbers describe the simulated core.
            from ..uarch.config import DEFAULT_CONFIG

            op_latency = DEFAULT_CONFIG.mul_latency if pool == "mul" else 4
        self.model = model
        self.pool = pool
        self.op_kind = _POOL_OP_KIND[pool]
        self.op_latency = op_latency
        self._scheduler = SCHEDULERS[scheduler](model)

    @property
    def contended(self) -> bool:
        """Whether the probed pool is actually a bounded resource."""
        return self.model.port_limit(self.pool) is not None

    def _op(self, seq: int, role: str) -> DynamicOp:
        return DynamicOp(
            seq=seq,
            pc=seq,
            text=f"{role}{seq}",
            kind=self.op_kind,
            reads=(),
            writes=(f"{role}{seq}",),
            latency=self.op_latency,
        )

    def probe(self, sender_ops: int, probe_ops: int) -> int:
        """Cycles the receiver's probe burst takes next to a sender burst.

        Builds ``sender_ops`` older ops and ``probe_ops`` younger ops, all on
        the probed pool with no data dependencies, schedules the combined
        stream, and returns the receiver's wall-clock: from its first op
        becoming data-ready to its last op broadcasting.  The sender burst
        only stretches that interval when the pool's ports are scarce.
        """
        if probe_ops < 1:
            raise ValueError("probe_ops must be >= 1")
        ops = [self._op(seq, "s") for seq in range(sender_ops)]
        first_probe = len(ops)
        ops.extend(
            self._op(first_probe + i, "p") for i in range(probe_ops)
        )
        schedule = self._scheduler.schedule(ops)
        ready = schedule.ready if schedule.ready is not None else schedule.issue
        return schedule.complete[len(ops) - 1] - ready[first_probe]

    def occupancy_delta(self, sender_ops: int, probe_ops: int = 4) -> int:
        """Extra probe cycles caused by the sender burst (the raw signal)."""
        return self.probe(sender_ops, probe_ops) - self.probe(0, probe_ops)


class ContentionChannel(CovertChannel):
    """Covert channel through functional-unit port occupancy.

    The sender encodes ``value`` as ``value * unit_ops`` occupancy ops on the
    shared pool; the receiver times a fixed probe burst and decodes the value
    from the cycle delta against its calibrated baseline.  The simulator is
    deterministic, so decoding demands the delta be an exact multiple of the
    calibrated per-unit cost.  An *unbounded* pool carries no signal at all
    (zero delta, observation reports ``value=None`` -- the channel is
    defeated).  Merely *duplicating* ports is weaker: sender ops pair up, the
    occupancy delta still moves, and the receiver decodes plausible but
    unfaithful values -- the channel degrades to lower capacity rather than
    disappearing (pinned in ``tests/test_channels_contention.py``).
    """

    def __init__(
        self,
        surface: Optional[PortContentionSurface] = None,
        *,
        entries: int = 16,
        unit_ops: int = 1,
        probe_ops: int = 4,
    ) -> None:
        if entries < 2:
            raise ValueError("entries must be >= 2 (need at least one bit)")
        if unit_ops < 1 or probe_ops < 1:
            raise ValueError("unit_ops and probe_ops must be >= 1")
        if surface is None:
            surface = PortContentionSurface()
        # hit_threshold is meaningless for an occupancy channel; the decode
        # threshold is the calibrated per-unit delta instead.
        super().__init__(surface, hit_threshold=0)
        self.entries = entries
        self.unit_ops = unit_ops
        self.probe_ops = probe_ops
        self._baseline: Optional[int] = None
        self._unit_delta: Optional[int] = None
        self._pending: Optional[int] = None

    @property
    def unit_delta(self) -> Optional[int]:
        """Calibrated probe-cycle delta per encoded unit (None before prepare)."""
        return self._unit_delta

    def prepare(self) -> None:
        """Calibrate the uncontended baseline and the per-unit cycle delta."""
        self._baseline = self.surface.probe(0, self.probe_ops)
        self._unit_delta = (
            self.surface.probe(self.unit_ops, self.probe_ops) - self._baseline
        )

    def send(self, value: int) -> None:
        """Stage the sender's occupancy burst encoding ``value``."""
        if not 0 <= value < self.entries:
            raise ValueError(f"value {value} out of range [0, {self.entries})")
        self._pending = value

    def receive(self) -> ChannelObservation:
        """Time the probe burst next to the staged sender and decode the value.

        Consumes the staged burst: contention carries no persistent state
        (sender and receiver must overlap), so a second ``receive`` without a
        new ``send`` measures an idle machine and decodes 0.
        """
        if self._baseline is None or self._unit_delta is None:
            self.prepare()
        sent = 0 if self._pending is None else self._pending
        self._pending = None
        measured = self.surface.probe(sent * self.unit_ops, self.probe_ops)
        latencies = [self._baseline, measured]
        delta = measured - self._baseline
        if self._unit_delta <= 0:
            # Unbounded (or over-provisioned) ports: no occupancy signal.
            return ChannelObservation(value=None, latencies=latencies)
        value, remainder = divmod(delta, self._unit_delta)
        if remainder or not 0 <= value < self.entries:
            return ChannelObservation(value=None, latencies=latencies)
        return ChannelObservation(value=int(value), latencies=latencies)
