"""The cache-collision channel (hit and operation based).

The attacker primes candidate lines and then times a whole victim operation.
If the victim's secret-dependent access *collides* with (hits on) a line the
attacker pre-loaded, the operation completes faster.  Scanning candidates and
looking for the fastest run reveals which line -- and hence which secret
value -- the victim used.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..uarch.cache import SetAssociativeCache
from .base import ChannelObservation


class CacheCollisionChannel:
    """Cache-collision timing against a victim operation.

    ``victim_operation(value_hint)`` runs the victim once and returns its
    cycle count; the victim internally accesses ``table_base + secret*stride``.
    The attacker pre-loads one candidate entry per trial and watches for the
    fast (collision) case.
    """

    def __init__(
        self,
        cache: SetAssociativeCache,
        victim_operation: Callable[[], int],
        *,
        table_base: int,
        entries: int = 256,
        stride: int = 64,
    ) -> None:
        self.cache = cache
        self.victim_operation = victim_operation
        self.table_base = table_base
        self.entries = entries
        self.stride = stride

    def candidate_address(self, value: int) -> int:
        return self.table_base + value * self.stride

    def prime_candidate(self, value: int) -> None:
        """Pre-load the table entry for one candidate secret value."""
        self.cache.access(self.candidate_address(value), partition=0)

    def flush_table(self) -> None:
        self.cache.flush_range(self.table_base, self.entries * self.stride)

    def measure_candidate(self, value: int) -> int:
        """Victim run time with only the candidate entry pre-loaded."""
        self.flush_table()
        self.prime_candidate(value)
        return self.victim_operation()

    def receive(self) -> ChannelObservation:
        """The candidate with the fastest victim run collided with the secret."""
        timings = [self.measure_candidate(value) for value in range(self.entries)]
        best = min(range(self.entries), key=lambda value: timings[value])
        slowest = max(timings)
        if timings[best] >= slowest:
            return ChannelObservation(value=None, latencies=timings)
        return ChannelObservation(value=best, latencies=timings)
