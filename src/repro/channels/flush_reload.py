"""The Flush+Reload channel (hit and access based).

The receiver flushes every entry of a shared probe array, waits for the
sender, then reloads each entry and measures its latency.  A fast (hit)
reload identifies the entry the sender touched, which encodes the secret.
This is the default covert channel of the paper's speculative attacks.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from .base import ChannelObservation, CovertChannel, TimingSurface


class FlushReloadChannel(CovertChannel):
    """Flush+Reload over a shared probe array of ``entries`` page-strided lines."""

    def __init__(
        self,
        surface: TimingSurface,
        probe_base: int,
        *,
        entries: int = 256,
        stride: int = 4096,
        hit_threshold: int = 80,
    ) -> None:
        super().__init__(surface, hit_threshold)
        if entries <= 0 or stride <= 0:
            raise ValueError("entries and stride must be positive")
        self.probe_base = probe_base
        self.entries = entries
        self.stride = stride

    def entry_address(self, value: int) -> int:
        """The probe-array address encoding ``value``."""
        if not 0 <= value < self.entries:
            raise ValueError(f"value {value} out of range [0, {self.entries})")
        return self.probe_base + value * self.stride

    def prepare(self) -> None:
        """Flush every probe entry (the channel's initial 'absent' state)."""
        for value in range(self.entries):
            self.surface.flush_address(self.entry_address(value))

    def send(self, value: int) -> None:
        """Sender touches the entry indexed by the secret value."""
        self.surface.touch(self.entry_address(value))

    def measure(self) -> List[int]:
        """Reload every entry and return the measured latencies."""
        return [self.surface.probe(self.entry_address(value)) for value in range(self.entries)]

    def receive(self, exclude: Iterable[int] = ()) -> ChannelObservation:
        """Reload the array; the fastest entry below the threshold is the value.

        ``exclude`` lists values the receiver knows were touched
        architecturally (e.g. the committed result of the victim's code) and
        therefore carry no information about the secret.
        """
        latencies = self.measure()
        excluded: Set[int] = set(exclude)
        candidates = [value for value in range(self.entries) if value not in excluded]
        if not candidates:
            return ChannelObservation(value=None, latencies=latencies)
        best_value = min(candidates, key=lambda value: latencies[value])
        if latencies[best_value] >= self.hit_threshold:
            return ChannelObservation(value=None, latencies=latencies)
        return ChannelObservation(value=best_value, latencies=latencies)
