"""Covert channels of Section II-C: the cache timing family plus the
functional-unit contention channel (which runs on the OoO timing plane's
port-occupancy surface instead of the cache)."""

from .base import CacheTimingSurface, ChannelObservation, CovertChannel, TimingSurface
from .collision import CacheCollisionChannel
from .contention import ContentionChannel, PortContentionSurface
from .evict_time import EvictTimeChannel, EvictTimeMeasurement
from .flush_reload import FlushReloadChannel
from .prime_probe import PrimeProbeChannel
from .taxonomy import (
    CHANNEL_TAXONOMY,
    ChannelClass,
    Granularity,
    Signal,
    classify,
    taxonomy_rows,
)

__all__ = [
    "CHANNEL_TAXONOMY",
    "CacheCollisionChannel",
    "CacheTimingSurface",
    "ChannelClass",
    "ChannelObservation",
    "ContentionChannel",
    "CovertChannel",
    "EvictTimeChannel",
    "EvictTimeMeasurement",
    "FlushReloadChannel",
    "Granularity",
    "PortContentionSurface",
    "PrimeProbeChannel",
    "Signal",
    "TimingSurface",
    "classify",
    "taxonomy_rows",
]
