"""Cache timing covert channels (Section II-C)."""

from .base import CacheTimingSurface, ChannelObservation, CovertChannel, TimingSurface
from .collision import CacheCollisionChannel
from .evict_time import EvictTimeChannel, EvictTimeMeasurement
from .flush_reload import FlushReloadChannel
from .prime_probe import PrimeProbeChannel
from .taxonomy import (
    CHANNEL_TAXONOMY,
    ChannelClass,
    Granularity,
    Signal,
    classify,
    taxonomy_rows,
)

__all__ = [
    "CHANNEL_TAXONOMY",
    "CacheCollisionChannel",
    "CacheTimingSurface",
    "ChannelClass",
    "ChannelObservation",
    "CovertChannel",
    "EvictTimeChannel",
    "EvictTimeMeasurement",
    "FlushReloadChannel",
    "Granularity",
    "PrimeProbeChannel",
    "Signal",
    "TimingSurface",
    "classify",
    "taxonomy_rows",
]
