"""Covert channel abstractions and the timing surface they operate on.

A cache covert channel needs three capabilities from the hardware it runs on:
flush a line, touch (access) a line, and measure the access latency of a
line.  Both the raw :class:`~repro.uarch.cache.SetAssociativeCache` (through
:class:`CacheTimingSurface`) and the full
:class:`~repro.uarch.pipeline.SpeculativeCPU` expose them, so every channel
implementation works standalone in unit tests and end-to-end in the exploits.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Protocol, Tuple, runtime_checkable


@runtime_checkable
class TimingSurface(Protocol):
    """The minimal interface a covert channel needs."""

    def flush_address(self, address: int) -> None:  # pragma: no cover - protocol
        ...

    def touch(self, address: int) -> None:  # pragma: no cover - protocol
        ...

    def probe(self, address: int) -> int:  # pragma: no cover - protocol
        ...


class CacheTimingSurface:
    """Adapter exposing a bare cache as a :class:`TimingSurface`.

    ``sender_partition`` / ``receiver_partition`` model whether sender and
    receiver share the cache domain (they do, unless a DAWG-style partitioned
    cache separates them).
    """

    def __init__(
        self,
        cache,
        sender_partition: int = 0,
        receiver_partition: int = 0,
    ) -> None:
        self.cache = cache
        self.sender_partition = sender_partition
        self.receiver_partition = receiver_partition

    def flush_address(self, address: int) -> None:
        self.cache.flush_address(address)

    def touch(self, address: int) -> None:
        self.cache.access(address, partition=self.sender_partition)

    def probe(self, address: int) -> int:
        return self.cache.access(
            address, partition=self.receiver_partition, fill=False
        ).latency


@dataclass
class ChannelObservation:
    """The receiver's measurement: the recovered value and the raw latencies."""

    value: Optional[int]
    latencies: List[int]

    @property
    def detected(self) -> bool:
        return self.value is not None


class CovertChannel(abc.ABC):
    """A micro-architectural covert channel between a sender and a receiver."""

    def __init__(self, surface: TimingSurface, hit_threshold: int = 80) -> None:
        self.surface = surface
        self.hit_threshold = hit_threshold

    @abc.abstractmethod
    def prepare(self) -> None:
        """Receiver's setup step (attack step 1a)."""

    @abc.abstractmethod
    def send(self, value: int) -> None:
        """Sender encodes ``value`` into micro-architectural state (step 4)."""

    @abc.abstractmethod
    def receive(self) -> ChannelObservation:
        """Receiver decodes the value from micro-architectural state (step 5)."""

    def transmit(self, value: int) -> ChannelObservation:
        """Run a full prepare / send / receive round (loopback test helper)."""
        self.prepare()
        self.send(value)
        return self.receive()
