"""Differential fuzzing over the dual TSG/timing oracles.

``repro.fuzz`` synthesizes seeded gadget programs (:mod:`.generator`),
streams them through both of the repo's independent leak oracles as
checkpointed, resumable campaign grids (:mod:`.campaign`), and pins every
oracle disagreement -- auto-shrunk to a minimal reproducer -- in a
regression corpus while bucketing agreements into Table-1-style coverage
(:mod:`.corpus`).
"""

from .campaign import (
    FUZZ_EVENTS,
    FuzzCampaign,
    fuzz_events_counter,
    point_spec,
)
from .corpus import DISAGREEMENT_SCHEMA, FuzzCorpus, fixture_from_entry
from .generator import (
    CHANNELS,
    FENCES,
    FUZZ_SECRET,
    INJECTIONS,
    MAX_DELAY,
    SOURCES,
    FuzzCase,
    FuzzVerdict,
    GadgetShape,
    build_program,
    case_from_shape,
    dual_verdict,
    iter_cases,
    make_case,
    make_shape,
    shrink_case,
)

__all__ = [
    "CHANNELS",
    "DISAGREEMENT_SCHEMA",
    "FENCES",
    "FUZZ_EVENTS",
    "FUZZ_SECRET",
    "FuzzCampaign",
    "FuzzCase",
    "FuzzCorpus",
    "FuzzVerdict",
    "GadgetShape",
    "INJECTIONS",
    "MAX_DELAY",
    "SOURCES",
    "build_program",
    "case_from_shape",
    "dual_verdict",
    "fixture_from_entry",
    "fuzz_events_counter",
    "iter_cases",
    "make_case",
    "make_shape",
    "point_spec",
    "shrink_case",
]
