"""The differential fuzzing campaign runner.

A :class:`FuzzCampaign` streams a seeded block of generated gadgets through
both oracle planes as first-class ``fuzz_point`` specs: every point is
content-addressed (its spec pins the generator coordinates *and* the
program's content hash), checkpointed through the session's
:class:`~repro.store.ArtifactStore`, sharded over :meth:`Engine.iter_grid`
under :class:`~repro.engine.FailurePolicy` supervision, and therefore
resumable -- a killed campaign relaunched against the same store recomputes
only the points never served (``repro fuzz --resume``).

Points run in bounded chunks so a wall-clock ``budget`` can stop the
campaign between chunks without abandoning in-flight work; the chunks are
plain explicit grids, so chunking never changes a point's spec or hash.

Campaign-level accounting rides on the session's metrics registry
(``repro_fuzz_events_total{event=generated|agreed|disagreed|shrunk|novel}``)
and its tracer (``fuzz.generate`` around program synthesis, ``fuzz.point``
around each streamed verdict).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from ..scenario import ScenarioGrid, ScenarioSpec
from .generator import (
    FUZZ_SECRET,
    FuzzCase,
    dual_verdict,
    make_case,
    shrink_case,
)

#: Points per explicit sub-grid: the budget-check granularity.
CHUNK_POINTS = 64

#: Disagreements shrunk per campaign (each shrink re-runs both oracles a
#: handful of times; the cap bounds a pathological campaign's tail).
MAX_SHRINKS = 8

#: The five campaign event streams, pre-touched so the series render at zero.
FUZZ_EVENTS = ("generated", "agreed", "disagreed", "shrunk", "novel")


def fuzz_events_counter(metrics):
    """The shared campaign counter on a session's metrics registry."""
    counter = metrics.counter(
        "repro_fuzz_events_total",
        "Differential fuzzing campaign events by outcome.",
        labelnames=("event",),
    )
    for event in FUZZ_EVENTS:
        counter.touch(event=event)
    return counter


def point_spec(
    seed: int,
    index: int,
    *,
    secret: Optional[int] = None,
    model: Optional[str] = None,
    inject: Optional[str] = None,
    sha: Optional[str] = None,
) -> ScenarioSpec:
    """The content-addressed spec of one fuzz point.

    ``sha`` pins the generated program's content hash into the spec: if the
    generator ever changes what it builds at these coordinates, the spec
    hash changes with it and stale checkpoints can never be served.
    """
    return ScenarioSpec(
        "fuzz_point",
        seed=seed,
        index=index,
        secret=secret,
        model=model,
        inject=inject,
        sha=sha,
    )


class FuzzCampaign:
    """One seeded differential campaign bound to an engine session."""

    def __init__(
        self,
        engine,
        *,
        seed: int,
        count: int,
        secret: Optional[int] = None,
        model: Optional[str] = None,
        inject: Optional[str] = None,
        budget: Optional[float] = None,
        chunk: int = CHUNK_POINTS,
        max_shrinks: int = MAX_SHRINKS,
    ):
        if count < 1:
            raise ValueError("a campaign needs count >= 1")
        self.engine = engine
        self.seed = int(seed)
        self.count = int(count)
        self.secret = secret
        self.model = model
        self.inject = inject
        self.budget = budget
        self.chunk = max(1, int(chunk))
        self.max_shrinks = max_shrinks

    @classmethod
    def from_spec(cls, engine, spec: ScenarioSpec) -> "FuzzCampaign":
        return cls(
            engine,
            seed=int(spec.get("seed")),
            count=int(spec.get("count")),
            secret=spec.get("secret"),
            model=spec.get("model"),
            inject=spec.get("inject"),
            budget=spec.get("budget"),
        )

    def spec(self) -> ScenarioSpec:
        return ScenarioSpec(
            "fuzz_campaign",
            seed=self.seed,
            count=self.count,
            secret=self.secret,
            model=self.model,
            inject=self.inject,
            budget=self.budget,
        )

    def point_specs(self, cases: List[FuzzCase]) -> List[ScenarioSpec]:
        return [
            point_spec(
                self.seed,
                case.index,
                secret=self.secret,
                model=self.model,
                inject=self.inject,
                sha=case.sha,
            )
            for case in cases
        ]

    # ------------------------------------------------------------------
    def execute(
        self,
        parallel: Optional[int] = None,
        on_point: Optional[Callable[[object], None]] = None,
    ) -> Dict[str, object]:
        """Run the campaign; returns the plain-data envelope body.

        This is the pure computation behind the ``fuzz_campaign`` spec kind
        (the engine's executor and ``repro fuzz`` both land here); campaign
        warm-caching and store writes belong to the caller.
        """
        engine = self.engine
        events = fuzz_events_counter(engine.metrics)
        tracer = engine._active_tracer()
        started = time.monotonic()

        if tracer is not None:
            with tracer.span("fuzz.generate", seed=self.seed, count=self.count):
                cases = [make_case(self.seed, i) for i in range(self.count)]
        else:
            cases = [make_case(self.seed, i) for i in range(self.count)]
        events.inc(len(cases), event="generated")
        specs = self.point_specs(cases)

        coverage: Dict[str, int] = {}
        disagreements: List[Dict[str, object]] = []
        agreed = disagreed = quarantined = executed = 0
        budget_exhausted = False
        for base in range(0, len(specs), self.chunk):
            if self.budget is not None and time.monotonic() - started > self.budget:
                budget_exhausted = True
                break
            chunk_specs = specs[base : base + self.chunk]
            grid = ScenarioGrid.explicit(chunk_specs)
            for point in engine.iter_grid(grid, parallel=parallel):
                executed += 1
                result = point.result
                row = result.data
                if result.kind == "error":
                    quarantined += 1
                else:
                    bucket = str(row.get("bucket"))
                    if bucket not in coverage:
                        events.inc(event="novel")
                    coverage[bucket] = coverage.get(bucket, 0) + 1
                    if row.get("agrees"):
                        agreed += 1
                        events.inc(event="agreed")
                    else:
                        disagreed += 1
                        events.inc(event="disagreed")
                        disagreements.append(dict(row))
                if tracer is not None:
                    tracer.finish(
                        tracer.span(
                            "fuzz.point",
                            detached=True,
                            index=row.get("index", point.index),
                            agrees=bool(row.get("agrees")),
                        )
                    )
                if on_point is not None:
                    on_point(point)

        shrunk_count = self._shrink_disagreements(disagreements, events)
        elapsed = time.monotonic() - started
        return {
            "seed": self.seed,
            "count": self.count,
            "executed": executed,
            "secret": self.secret if self.secret is not None else FUZZ_SECRET,
            "model": self.model,
            "inject": self.inject,
            "budget": self.budget,
            "budget_exhausted": budget_exhausted,
            "generated": len(cases),
            "agreed": agreed,
            "disagreed": disagreed,
            "quarantined": quarantined,
            "shrunk": shrunk_count,
            "coverage": dict(sorted(coverage.items())),
            "buckets": len(coverage),
            "disagreements": disagreements,
            "elapsed": elapsed,
            "points_per_second": (executed / elapsed) if elapsed > 0 else None,
        }

    def _shrink_disagreements(
        self, disagreements: List[Dict[str, object]], events
    ) -> int:
        """Shrink each disagreement row in place; returns the shrunk count."""
        from .generator import GadgetShape, case_from_shape

        shrunk_count = 0
        for row in disagreements[: self.max_shrinks]:
            shape = GadgetShape.from_dict(
                {
                    "source": row["source"],
                    "delay": row["delay"],
                    "channel": row["channel"],
                    "fence": row["fence"],
                }
            )
            case = case_from_shape(int(row["seed"]), int(row["index"]), shape)

            def still_disagrees(candidate: FuzzCase) -> bool:
                verdict = dual_verdict(
                    candidate,
                    secret=self.secret if self.secret is not None else FUZZ_SECRET,
                    inject=self.inject,
                    engine=self.engine,
                )
                return not verdict.agrees

            minimal = shrink_case(case, still_disagrees)
            row["shrunk"] = {
                "shape": minimal.shape.to_dict(),
                "sha": minimal.sha,
                "instructions": minimal.size,
                "listing": minimal.program.listing(),
            }
            shrunk_count += 1
            events.inc(event="shrunk")
        return shrunk_count
