"""Seeded gadget-program generator and the dual-oracle differential harness.

The fuzzing plane synthesizes transient-execution gadgets by composing four
independent axes -- the speculation *source*, a dependent-ALU *delay* chain
inside the transient window, the covert-channel *shape* forming the probe
index, and the *fence* placement (the defense) -- into valid tiny-ISA
:class:`~repro.isa.program.Program`s, then asks both of the repo's oracles
the paper's one question about each program:

* the **TSG verdict** -- :func:`repro.defenses.evaluation.attack_succeeds`
  on the program's attack graph (Theorem 1: some covert send races the
  authorization's resolution), and
* the **measured verdict** -- the program replayed end-to-end on
  :class:`~repro.uarch.timing.core.TimingCPU`, reporting whether the covert
  transmit issued at or before the squash cycle.

Theorem 1 says the two verdicts must agree on every generated program; a
disagreement is a soundness bug in one of the planes and gets shrunk to a
minimal reproducer by :func:`shrink_case`.

Determinism contract: :func:`make_case` is a pure function of
``(seed, index)`` -- the derived RNG never touches process state, so the
same coordinates produce the identical program (and identical
``Program.content_hash()``) in the parent and in any pool worker.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Iterator, List, Optional, Tuple

from ..channels.flush_reload import FlushReloadChannel
from ..exploits.programs import (
    KERNEL_SECRET_ADDR,
    PROBE_BASE,
    PROBE_ENTRIES,
    PROBE_SIZE,
    PROBE_STRIDE,
    SECRET_ADDR,
    SECRET_OFFSET,
    VICTIM_ARRAY_BASE,
    VICTIM_ARRAY_LEN,
    VICTIM_SIZE_ADDR,
)
from ..isa.instructions import Alu, Branch, Cmp, Fence, Halt, Load, Mov
from ..isa.operands import Label, imm, mem, reg
from ..isa.program import Program

#: Speculation sources: a mistrained bounds check (Spectre v1 shape, the
#: authorization is a *software* branch) and a faulting kernel load
#: (Meltdown shape, the authorization is the access's own privilege check).
SOURCES: Tuple[str, ...] = ("bounds_check", "kernel_load")

#: Covert-channel shapes: how the transient value becomes a probe index.
#: All three transmit through the Flush+Reload probe array -- ``direct`` is
#: the canonical ``shl 12``; ``aliased`` forwards the index through a second
#: register (taint must survive the move in both planes); ``double_shift``
#: splits the scaling across two dependent ALU ops.
CHANNELS: Tuple[str, ...] = ("direct", "aliased", "double_shift")

#: Fence (lfence) placements -- the defense axis.  ``before_use`` and
#: ``before_send`` order the send after every authorization in both planes;
#: ``before_access`` kills the bounds-check shape but *not* the kernel-load
#: shape (the faulting access carries its own authorization past the fence).
FENCES: Tuple[str, ...] = (
    "none",
    "before_access",
    "before_use",
    "before_send",
    "after_send",
)

#: Longest dependent-ALU delay chain between the secret access and the send.
MAX_DELAY = 4

#: Timing-oracle fault injections (:func:`dual_verdict` ``inject=``).
#: ``no_flush`` skips flushing the bounds-check operand, collapsing the
#: speculation window the theorem's premise requires -- the measured race
#: then reports *safe* while the structural TSG verdict still says *leak*.
INJECTIONS: Tuple[str, ...] = ("no_flush",)

#: The byte every fuzz harness plants (mirrors the exploit harness default).
FUZZ_SECRET = 0x5A

#: Predictor-training runs before the bounds-check victim run.
TRAINING_ROUNDS = 4


@dataclass(frozen=True)
class GadgetShape:
    """One point of the generator's axis space."""

    source: str
    delay: int
    channel: str
    fence: str

    @property
    def bucket(self) -> str:
        """The coverage-corpus bucket this shape belongs to.

        The delay chain is a window knob, not an attack shape -- shapes
        differing only in delay land in the same bucket.
        """
        return f"{self.source}/{self.channel}/fence={self.fence}"

    def describe(self) -> str:
        return (
            f"{self.source} delay={self.delay} channel={self.channel} "
            f"fence={self.fence}"
        )

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "delay": self.delay,
            "channel": self.channel,
            "fence": self.fence,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GadgetShape":
        return cls(
            source=str(data["source"]),
            delay=int(data["delay"]),
            channel=str(data["channel"]),
            fence=str(data["fence"]),
        )


@dataclass(frozen=True)
class FuzzCase:
    """One generated gadget: its coordinates, shape and built program."""

    seed: int
    index: int
    shape: GadgetShape
    program: Program

    @property
    def sha(self) -> str:
        return self.program.content_hash()

    @property
    def size(self) -> int:
        """Shrink metric: the program's instruction count."""
        return len(self.program.instructions)


@dataclass(frozen=True)
class FuzzVerdict:
    """Both oracles' answers for one case."""

    tsg_leaks: bool
    transmit_beats_squash: bool
    transmit_cycle: Optional[int]
    squash_cycle: Optional[int]
    window_cycles: Optional[int]
    recovered: Optional[int]

    @property
    def agrees(self) -> bool:
        return self.tsg_leaks == self.transmit_beats_squash

    def to_dict(self) -> dict:
        return {
            "tsg_leaks": self.tsg_leaks,
            "transmit_beats_squash": self.transmit_beats_squash,
            "transmit_cycle": self.transmit_cycle,
            "squash_cycle": self.squash_cycle,
            "window_cycles": self.window_cycles,
            "recovered": self.recovered,
            "agrees": self.agrees,
        }


def _case_rng(seed: int, index: int) -> random.Random:
    """A process-independent RNG for one (seed, index) coordinate.

    Plain integer arithmetic only: ``random.Random`` seeded with an int is
    stable across processes and interpreter sessions (no ``PYTHONHASHSEED``
    dependence), which is what makes generated programs content-hash-stable
    wherever they are rebuilt.
    """
    return random.Random(0x5EED ^ (seed * 1_000_003 + index * 7919))


def make_shape(seed: int, index: int) -> GadgetShape:
    """Draw the axis coordinates of one case."""
    rng = _case_rng(seed, index)
    return GadgetShape(
        source=rng.choice(SOURCES),
        delay=rng.randint(0, MAX_DELAY),
        channel=rng.choice(CHANNELS),
        fence=rng.choice(FENCES),
    )


def build_program(shape: GadgetShape) -> Program:
    """Materialize one shape as a valid tiny-ISA program.

    The bounds-check family extends the paper's Listing 1, the kernel-load
    family its Listing 2; both share the exploit harness memory layout so
    the standard Flush+Reload probe array serves every generated gadget.
    """
    program = Program(
        name=(
            f"fuzz-{shape.source}-d{shape.delay}-{shape.channel}-{shape.fence}"
        )
    )
    program.declare("probe_array", PROBE_BASE, PROBE_SIZE, shared=True)
    body: List[object] = []
    if shape.source == "bounds_check":
        program.declare("victim_array", VICTIM_ARRAY_BASE, VICTIM_ARRAY_LEN)
        program.declare(
            "victim_size", VICTIM_SIZE_ADDR, 8, initial=(VICTIM_ARRAY_LEN,)
        )
        program.declare("secret", SECRET_ADDR, 1, protected=True)
        body.append(
            Cmp(reg("rdx"), mem(symbol="victim_size"), label="victim",
                comment="bounds check: the delayed authorization")
        )
        body.append(Branch("ja", Label("done")))
        if shape.fence == "before_access":
            body.append(Fence())
        body.append(
            Load(reg("rax"), mem(base="rdx", symbol="victim_array"), size=1,
                 comment="Load S: the (possibly out-of-bounds) secret access")
        )
    elif shape.source == "kernel_load":
        program.declare(
            "kernel_secret", KERNEL_SECRET_ADDR, 64, kernel=True, protected=True
        )
        if shape.fence == "before_access":
            body.append(Fence())
        body.append(
            Load(reg("rax"), mem(symbol="kernel_secret"), size=1, label="attack",
                 comment="faulting load: authorization and access in one op")
        )
    else:  # pragma: no cover - generator invariant
        raise ValueError(f"unknown speculation source {shape.source!r}")
    if shape.fence == "before_use":
        body.append(Fence())
    for _ in range(shape.delay):
        body.append(Alu("add", reg("rax"), imm(0), comment="window delay"))
    send_reg = "rax"
    if shape.channel == "direct":
        body.append(Alu("shl", reg("rax"), imm(12), comment="Use"))
    elif shape.channel == "aliased":
        body.append(Alu("shl", reg("rax"), imm(12), comment="Use"))
        body.append(Mov(reg("rcx"), reg("rax"), comment="alias the index"))
        send_reg = "rcx"
    elif shape.channel == "double_shift":
        body.append(Alu("shl", reg("rax"), imm(6), comment="Use (half)"))
        body.append(Alu("shl", reg("rax"), imm(6), comment="Use (half)"))
    else:  # pragma: no cover - generator invariant
        raise ValueError(f"unknown channel {shape.channel!r}")
    if shape.fence == "before_send":
        body.append(Fence())
    body.append(
        Load(reg("rbx"), mem(base=send_reg, symbol="probe_array"),
             comment="Load R: the covert-channel send")
    )
    if shape.fence == "after_send":
        body.append(Fence())
    end_label = "done" if shape.source == "bounds_check" else "recover"
    body.append(Halt(label=end_label))
    program.extend(body)
    return program


def make_case(seed: int, index: int) -> FuzzCase:
    """The pure (seed, index) -> case function of the generator."""
    shape = make_shape(seed, index)
    return FuzzCase(seed=seed, index=index, shape=shape,
                    program=build_program(shape))


def case_from_shape(seed: int, index: int, shape: GadgetShape) -> FuzzCase:
    """A case at explicit coordinates with an explicit shape (shrinking)."""
    return FuzzCase(seed=seed, index=index, shape=shape,
                    program=build_program(shape))


def iter_cases(seed: int, count: int) -> Iterator[FuzzCase]:
    for index in range(count):
        yield make_case(seed, index)


# ---------------------------------------------------------------------------
# The measured-verdict harness
# ---------------------------------------------------------------------------
def _timing_verdict(
    case: FuzzCase,
    *,
    secret: int,
    inject: Optional[str],
    config=None,
    model=None,
) -> Tuple[bool, Optional[int], object]:
    """Replay one case end-to-end on the timing core.

    Returns ``(transmit_beats_squash, recovered, trace)``.  The harness
    mirrors the exploit-plane choreography for each source family: plant
    the secret, establish the Flush+Reload channel, delay the authorization
    (flush the bounds operand / rely on the late fault check) and read the
    measured race off the victim run's :class:`TimingTrace`.
    """
    from ..uarch import UarchConfig
    from ..uarch.timing.core import TimingCPU

    run_config = config if config is not None else UarchConfig()
    if model is not None:
        cpu = TimingCPU(case.program, run_config, model=model)
    else:
        cpu = TimingCPU(case.program, run_config)
    channel = FlushReloadChannel(
        cpu,
        PROBE_BASE,
        entries=PROBE_ENTRIES,
        stride=PROBE_STRIDE,
        hit_threshold=run_config.hit_threshold,
    )
    if case.shape.source == "bounds_check":
        cpu.write_memory(SECRET_ADDR, secret, 1)
        cpu.write_memory(VICTIM_SIZE_ADDR, VICTIM_ARRAY_LEN, 8)
        for _ in range(TRAINING_ROUNDS):
            cpu.set_register("rdx", 1)
            cpu.run("victim")
        cpu.context_switch(cpu.context_id + 1)
        channel.prepare()
        if inject != "no_flush":
            cpu.flush_symbol("victim_size")
        cpu.set_register("rdx", SECRET_OFFSET)
        cpu.run("victim")
    else:
        cpu.write_memory(KERNEL_SECRET_ADDR, secret, 1)
        cpu.set_fault_handler("recover")
        channel.prepare()
        cpu.run("attack")
    observation = channel.receive()
    trace = getattr(cpu, "last_trace", None)
    measured = bool(trace is not None and trace.transmit_beats_squash)
    return measured, observation.value, trace


def dual_verdict(
    case: FuzzCase,
    *,
    secret: int = FUZZ_SECRET,
    inject: Optional[str] = None,
    engine=None,
    model=None,
) -> FuzzVerdict:
    """Ask both oracles about one case.

    ``engine`` reuses the session's content-addressed graph-build cache for
    the TSG side; without one the graph is built directly.  ``inject``
    deliberately breaks the timing oracle (see :data:`INJECTIONS`) -- the
    TSG side is never touched, so an injection manufactures disagreements
    for the corpus/shrinker machinery to exercise.
    """
    if inject is not None and inject not in INJECTIONS:
        raise ValueError(
            f"unknown timing-oracle injection {inject!r}; "
            f"known: {', '.join(INJECTIONS)}"
        )
    from ..defenses.evaluation import attack_succeeds

    if engine is not None:
        graph = engine.build(case.program).graph
    else:
        from ..graphtool import build_attack_graph

        graph = build_attack_graph(case.program).graph
    tsg_leaks = bool(attack_succeeds(graph))
    measured, recovered, trace = _timing_verdict(
        case, secret=secret, inject=inject, model=model
    )
    return FuzzVerdict(
        tsg_leaks=tsg_leaks,
        transmit_beats_squash=measured,
        transmit_cycle=getattr(trace, "transmit_cycle", None),
        squash_cycle=getattr(trace, "squash_cycle", None),
        window_cycles=getattr(trace, "window_cycles", None),
        recovered=recovered,
    )


# ---------------------------------------------------------------------------
# Hypothesis-style shrinking
# ---------------------------------------------------------------------------
def _shrink_candidates(shape: GadgetShape) -> Iterator[GadgetShape]:
    """Strictly smaller one-step simplifications of ``shape``.

    Every candidate removes at least one instruction from the built
    program: shorten the delay chain, collapse the channel to ``direct``,
    drop the fence.  Emitted simplest-first so the greedy pass prefers the
    biggest single step it can take.
    """
    if shape.delay > 0:
        yield replace(shape, delay=0)
        if shape.delay > 1:
            yield replace(shape, delay=shape.delay - 1)
    if shape.channel != "direct":
        yield replace(shape, channel="direct")
    if shape.fence != "none":
        yield replace(shape, fence="none")


def shrink_case(
    case: FuzzCase,
    still_disagrees: Callable[[FuzzCase], bool],
    *,
    max_checks: int = 64,
) -> FuzzCase:
    """Greedily shrink a disagreeing case to a minimal reproducer.

    Repeatedly tries the one-step simplifications of the current shape and
    keeps any whose rebuilt program still satisfies ``still_disagrees``,
    until no candidate does (a fixpoint) or ``max_checks`` predicate
    evaluations are spent.  Every accepted step strictly reduces the
    program's instruction count, so the result is never larger than the
    input and the loop always terminates.
    """
    current = case
    checks = 0
    progress = True
    while progress and checks < max_checks:
        progress = False
        for candidate_shape in _shrink_candidates(current.shape):
            candidate = case_from_shape(case.seed, case.index, candidate_shape)
            checks += 1
            if candidate.size >= current.size:  # pragma: no cover - invariant
                continue
            if still_disagrees(candidate):
                current = candidate
                progress = True
                break
            if checks >= max_checks:
                break
    return current
