"""The disagreement / novelty corpus of the fuzzing plane.

Two kinds of campaign output accumulate here:

* **Disagreements** -- programs on which the TSG and timing oracles
  answered differently.  Each is auto-shrunk by the campaign and written as
  a pinned JSON fixture (``disagreement_<sha12>.json``) carrying the
  generator coordinates, the shape, the injection that produced it and the
  program listing.  ``tests/test_fuzz_corpus.py`` auto-loads the directory
  and replays every fixture against both oracles, so a disagreement, once
  seen, stays a regression case forever.
* **Agreements** -- bucketed by attack shape (``source/channel/fence``)
  into ``coverage.json``, turning Table-1-style coverage from a hand-curated
  registry into a monotonically growing census of the gadget space.

Fixtures regenerate their program from ``(seed, index)`` or an explicit
shape rather than deserializing instructions: the generator is the single
source of truth for program construction, and the pinned ``sha`` detects
any drift between the fixture and what the generator now builds.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from .generator import FuzzCase, GadgetShape, case_from_shape

#: Fixture schema tag; bump on incompatible layout changes.
DISAGREEMENT_SCHEMA = "repro-fuzz-disagreement/v1"

#: File name of the coverage census inside a corpus directory.
COVERAGE_FILE = "coverage.json"


def fixture_from_entry(entry: Dict[str, object]) -> FuzzCase:
    """Rebuild the program a disagreement fixture pins.

    The shape recorded in the fixture is authoritative (shrunk shapes no
    longer match what ``make_case`` would draw at the same coordinates).
    """
    shape = GadgetShape.from_dict(entry["shape"])  # type: ignore[arg-type]
    return case_from_shape(int(entry["seed"]), int(entry["index"]), shape)


class FuzzCorpus:
    """A directory of pinned disagreement fixtures plus a coverage census."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    # -- coverage ----------------------------------------------------------
    def coverage(self) -> Dict[str, int]:
        path = self.root / COVERAGE_FILE
        if not path.exists():
            return {}
        data = json.loads(path.read_text())
        return {str(bucket): int(count) for bucket, count in data.items()}

    def _write_coverage(self, census: Dict[str, int]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.root / COVERAGE_FILE
        path.write_text(json.dumps(dict(sorted(census.items())), indent=2) + "\n")

    # -- fixtures ----------------------------------------------------------
    def fixture_paths(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("disagreement_*.json"))

    def load_fixtures(self) -> Iterator[Dict[str, object]]:
        for path in self.fixture_paths():
            entry = json.loads(path.read_text())
            if entry.get("schema") != DISAGREEMENT_SCHEMA:
                raise ValueError(
                    f"{path}: unknown corpus fixture schema "
                    f"{entry.get('schema')!r}"
                )
            yield entry

    def write_disagreement(self, entry: Dict[str, object]) -> Path:
        """Pin one (already shrunk) disagreement as a regression fixture."""
        sha = str(entry["sha"])
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.root / f"disagreement_{sha[:12]}.json"
        payload = {"schema": DISAGREEMENT_SCHEMA}
        payload.update(entry)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path

    # -- campaign ingestion ------------------------------------------------
    def ingest(self, data: Dict[str, object]) -> Dict[str, int]:
        """Fold one campaign envelope's ``data`` into the corpus.

        Writes a fixture per disagreement (deduplicated on the shrunk
        program's sha) and merges the campaign's coverage buckets into the
        census.  Returns ``{"written": .., "novel_buckets": ..}``.
        """
        written = 0
        known = {path.name for path in self.fixture_paths()}
        for entry in data.get("disagreements", ()):  # type: ignore[union-attr]
            pinned = dict(entry)
            if "shape" not in pinned:
                # Campaign rows carry the shape as flat point fields.
                pinned["shape"] = {
                    axis: pinned[axis]
                    for axis in ("source", "delay", "channel", "fence")
                    if axis in pinned
                }
            shrunk = pinned.get("shrunk")
            if isinstance(shrunk, dict):
                # Pin the minimal reproducer; keep the original coordinates
                # and shape alongside for provenance.
                pinned["original_shape"] = pinned.get("shape")
                pinned["shape"] = shrunk.get("shape", pinned.get("shape"))
                pinned["sha"] = shrunk.get("sha", pinned.get("sha"))
                pinned["listing"] = shrunk.get("listing", pinned.get("listing"))
            name = f"disagreement_{str(pinned['sha'])[:12]}.json"
            if name in known:
                continue
            self.write_disagreement(pinned)
            known.add(name)
            written += 1
        census = self.coverage()
        novel = 0
        buckets = data.get("coverage") or {}
        for bucket, count in buckets.items():  # type: ignore[union-attr]
            if bucket not in census:
                novel += 1
            census[bucket] = census.get(bucket, 0) + int(count)
        if buckets:
            self._write_coverage(census)
        return {"written": written, "novel_buckets": novel}
