"""Defense strategies and the catalog of industry / academic defenses."""

from .academia import ACADEMIA_DEFENSES
from .base import Defense, DefenseOrigin, DefenseStrategy
from .evaluation import (
    DefenseEvaluation,
    InsufficientDefenseReport,
    attack_succeeds,
    evaluate_defense,
    evaluate_defense_uncached,
    evaluate_matrix,
    insufficient_defense_demo,
    leaking_sources,
    setup_neutralized,
    source_projections,
)
from .industry import INDUSTRY_DEFENSES
from .strategies import (
    FLUSH_PREDICTOR_NODE,
    apply_clear_predictions,
    apply_prevent_access,
    apply_prevent_send,
    apply_prevent_use,
    apply_strategy,
)

ALL_DEFENSES = INDUSTRY_DEFENSES + ACADEMIA_DEFENSES


def get(key: str) -> Defense:
    """Look up a defense by key."""
    for defense in ALL_DEFENSES:
        if defense.key == key:
            return defense
    known = ", ".join(sorted(d.key for d in ALL_DEFENSES))
    raise KeyError(f"unknown defense {key!r}; known defenses: {known}")


def table2_rows():
    """(category, strategy, defense) rows regenerating Table II (industry defenses)."""
    return [defense.table2_row for defense in INDUSTRY_DEFENSES]


__all__ = [
    "ACADEMIA_DEFENSES",
    "ALL_DEFENSES",
    "Defense",
    "DefenseEvaluation",
    "DefenseOrigin",
    "DefenseStrategy",
    "FLUSH_PREDICTOR_NODE",
    "INDUSTRY_DEFENSES",
    "InsufficientDefenseReport",
    "apply_clear_predictions",
    "apply_prevent_access",
    "apply_prevent_send",
    "apply_prevent_use",
    "apply_strategy",
    "attack_succeeds",
    "evaluate_defense",
    "evaluate_defense_uncached",
    "evaluate_matrix",
    "get",
    "insufficient_defense_demo",
    "leaking_sources",
    "setup_neutralized",
    "source_projections",
    "table2_rows",
]
