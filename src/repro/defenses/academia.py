"""Academic defenses discussed in Section V-B, mapped onto the defense strategies."""

from __future__ import annotations

from typing import Tuple

from .base import Defense, DefenseOrigin, DefenseStrategy

CONTEXT_SENSITIVE_FENCING = Defense(
    key="context_sensitive_fencing",
    name="Context-sensitive fencing",
    origin=DefenseOrigin.ACADEMIA,
    strategy=DefenseStrategy.PREVENT_ACCESS,
    description=(
        "Hardware inserts fences at the micro-operation level between a conditional "
        "branch and a subsequent load, preventing the speculative access."
    ),
    reference="Taram, Venkat, Tullsen -- ASPLOS 2019",
)

SECURE_AUTOMATIC_BOUNDS_CHECKING = Defense(
    key="sabc",
    name="Secure Automatic Bounds Checking (SABC)",
    origin=DefenseOrigin.ACADEMIA,
    strategy=DefenseStrategy.PREVENT_ACCESS,
    description=(
        "Insert arithmetic instructions with data dependencies between the bounds-check "
        "branch and the out-of-bounds access, serializing them."
    ),
    reference="Ojogbo, Thottethodi, Vijaykumar -- CGO 2020",
)

SPECTREGUARD = Defense(
    key="spectreguard",
    name="SpectreGuard",
    origin=DefenseOrigin.ACADEMIA,
    strategy=DefenseStrategy.PREVENT_USE,
    description=(
        "Software marks secret memory regions; forwarding of speculatively loaded "
        "secret data to dependent instructions is blocked until authorization."
    ),
    reference="Fustos, Farshchi, Yun -- DAC 2019",
)

NDA = Defense(
    key="nda",
    name="NDA (Non-speculative Data Access)",
    origin=DefenseOrigin.ACADEMIA,
    strategy=DefenseStrategy.PREVENT_USE,
    description="Prevent forwarding of speculatively loaded data to younger instructions.",
    reference="Weisse et al. -- MICRO 2019",
)

CONTEXT = Defense(
    key="context",
    name="ConTExT",
    origin=DefenseOrigin.ACADEMIA,
    strategy=DefenseStrategy.PREVENT_USE,
    description=(
        "Software marks sensitive memory; the hardware does not forward speculatively "
        "read sensitive values to dependent transient instructions."
    ),
    reference="Schwarz et al. -- NDSS 2020",
)

SPECSHIELD = Defense(
    key="specshield",
    name="SpecShield",
    origin=DefenseOrigin.ACADEMIA,
    strategy=DefenseStrategy.PREVENT_USE,
    description="Shield speculatively loaded data from forwarding to covert-channel-capable instructions.",
    reference="Barber et al. -- PACT 2019",
)

SPECSHIELD_ERP = Defense(
    key="specshield_erp",
    name="SpecShieldERP+",
    origin=DefenseOrigin.ACADEMIA,
    strategy=DefenseStrategy.PREVENT_SEND,
    description="Prevent loads whose address is based on speculative data from executing.",
    reference="Barber et al. -- PACT 2019",
)

STT = Defense(
    key="stt",
    name="Speculative Taint Tracking (STT)",
    origin=DefenseOrigin.ACADEMIA,
    strategy=DefenseStrategy.PREVENT_SEND,
    description=(
        "Taint speculatively accessed data and block any instruction that would form "
        "a covert-channel send (e.g. a load with a tainted address) until authorization."
    ),
    reference="Yu et al. -- MICRO 2019",
)

DAWG = Defense(
    key="dawg",
    name="DAWG",
    origin=DefenseOrigin.ACADEMIA,
    strategy=DefenseStrategy.PREVENT_SEND,
    description=(
        "Partition the cache between protection domains so the sender's cache-state "
        "changes are not observable by the receiver's domain."
    ),
    reference="Kiriansky et al. -- MICRO 2018",
)

CONDITIONAL_SPECULATION = Defense(
    key="conditional_speculation",
    name="Conditional Speculation",
    origin=DefenseOrigin.ACADEMIA,
    strategy=DefenseStrategy.PREVENT_SEND,
    description=(
        "Allow speculative loads that hit in the cache (no state change) but delay "
        "speculative loads that miss until authorization resolves."
    ),
    reference="Li et al. -- HPCA 2019",
)

EFFICIENT_INVISIBLE_SPECULATION = Defense(
    key="efficient_invisible_speculation",
    name="Efficient Invisible Speculative Execution",
    origin=DefenseOrigin.ACADEMIA,
    strategy=DefenseStrategy.PREVENT_SEND,
    description="Selective delay and value prediction keep speculative loads from changing cache state.",
    reference="Sakalis et al. -- ISCA 2019",
)

INVISISPEC = Defense(
    key="invisispec",
    name="InvisiSpec",
    origin=DefenseOrigin.ACADEMIA,
    strategy=DefenseStrategy.PREVENT_SEND,
    description=(
        "Speculative loads go into a shadow (speculative) buffer instead of the cache; "
        "the cache is only updated after the speculation is validated."
    ),
    reference="Yan et al. -- MICRO 2018",
)

SAFESPEC = Defense(
    key="safespec",
    name="SafeSpec",
    origin=DefenseOrigin.ACADEMIA,
    strategy=DefenseStrategy.PREVENT_SEND,
    description="Shadow structures hold speculative cache/TLB state until commit.",
    reference="Khasawneh et al. -- DAC 2019",
)

CLEANUPSPEC = Defense(
    key="cleanupspec",
    name="CleanupSpec",
    origin=DefenseOrigin.ACADEMIA,
    strategy=DefenseStrategy.PREVENT_SEND,
    description=(
        "Allow speculative cache state changes but undo (roll back) them when the "
        "speculation is squashed."
    ),
    reference="Saileshwar, Qureshi -- MICRO 2019",
)

ACADEMIA_DEFENSES: Tuple[Defense, ...] = (
    CONTEXT_SENSITIVE_FENCING,
    SECURE_AUTOMATIC_BOUNDS_CHECKING,
    SPECTREGUARD,
    NDA,
    CONTEXT,
    SPECSHIELD,
    SPECSHIELD_ERP,
    STT,
    DAWG,
    CONDITIONAL_SPECULATION,
    EFFICIENT_INVISIBLE_SPECULATION,
    INVISISPEC,
    SAFESPEC,
    CLEANUPSPEC,
)
