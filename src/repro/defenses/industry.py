"""Industry defenses (Table II), mapped onto the paper's defense strategies."""

from __future__ import annotations

from typing import Tuple

from .base import Defense, DefenseOrigin, DefenseStrategy

_BRANCH_PREDICTION_VARIANTS = ("spectre_v1", "spectre_v1_1", "spectre_v1_2", "spectre_v2")
_SERIALIZABLE_SPECTRE = (
    "spectre_v1",
    "spectre_v1_1",
    "spectre_v1_2",
    "spectre_v2",
    "spectre_rsb",
)
_BOUNDARY_BYPASS = ("spectre_v1", "spectre_v1_1", "spectre_v1_2")

LFENCE = Defense(
    key="lfence",
    name="LFence",
    origin=DefenseOrigin.INDUSTRY,
    strategy=DefenseStrategy.PREVENT_ACCESS,
    description=(
        "Serializing fence before the protected memory access: instructions after "
        "the fence cannot execute until prior instructions (the authorization) complete."
    ),
    applicable_attacks=_SERIALIZABLE_SPECTRE,
    table2_category="Spectre",
    reference="Intel SDM",
)

MFENCE = Defense(
    key="mfence",
    name="MFence",
    origin=DefenseOrigin.INDUSTRY,
    strategy=DefenseStrategy.PREVENT_ACCESS,
    description="Memory fence serializing loads and stores around the authorization.",
    applicable_attacks=_SERIALIZABLE_SPECTRE,
    table2_category="Spectre",
    reference="Intel SDM",
)

KAISER = Defense(
    key="kaiser",
    name="KAISER",
    origin=DefenseOrigin.INDUSTRY,
    strategy=DefenseStrategy.PREVENT_ACCESS,
    description=(
        "Kernel Address Isolation: unmap kernel pages from user space so the "
        "speculative access of kernel memory cannot be performed at all."
    ),
    applicable_attacks=("meltdown",),
    table2_category="Meltdown",
    reference="Gruss et al.",
)

KPTI = Defense(
    key="kpti",
    name="Kernel Page Table Isolation (KPTI)",
    origin=DefenseOrigin.INDUSTRY,
    strategy=DefenseStrategy.PREVENT_ACCESS,
    description="Linux implementation of KAISER: separate user/kernel page tables.",
    applicable_attacks=("meltdown",),
    table2_category="Meltdown",
    reference="Linux kernel documentation",
)

DISABLE_BRANCH_PREDICTION = Defense(
    key="disable_branch_prediction",
    name="Disable branch prediction",
    origin=DefenseOrigin.INDUSTRY,
    strategy=DefenseStrategy.CLEAR_PREDICTIONS,
    description="Turn off the vulnerable predictor so mis-training has no effect.",
    applicable_attacks=_BRANCH_PREDICTION_VARIANTS,
    table2_category="Spectre variants requiring branch prediction (v1, v1.1, v1.2, v2)",
    reference="AMD software techniques for managing speculation",
)

IBRS = Defense(
    key="ibrs",
    name="Indirect Branch Restricted Speculation (IBRS)",
    origin=DefenseOrigin.INDUSTRY,
    strategy=DefenseStrategy.CLEAR_PREDICTIONS,
    description="Restrict indirect branch prediction from being influenced by less-privileged code.",
    applicable_attacks=_BRANCH_PREDICTION_VARIANTS,
    table2_category="Spectre variants requiring branch prediction (v1, v1.1, v1.2, v2)",
    reference="Intel speculative execution side channel mitigations",
)

STIBP = Defense(
    key="stibp",
    name="Single Thread Indirect Branch Predictor (STIBP)",
    origin=DefenseOrigin.INDUSTRY,
    strategy=DefenseStrategy.CLEAR_PREDICTIONS,
    description="Prevent the sibling hyperthread from influencing indirect branch prediction.",
    applicable_attacks=_BRANCH_PREDICTION_VARIANTS,
    table2_category="Spectre variants requiring branch prediction (v1, v1.1, v1.2, v2)",
    reference="Intel speculative execution side channel mitigations",
)

IBPB = Defense(
    key="ibpb",
    name="Indirect Branch Prediction Barrier (IBPB)",
    origin=DefenseOrigin.INDUSTRY,
    strategy=DefenseStrategy.CLEAR_PREDICTIONS,
    description=(
        "Flush the BTB on the barrier: code before the barrier cannot affect "
        "branch prediction after it (adds a 'flush predictor' operation)."
    ),
    applicable_attacks=_BRANCH_PREDICTION_VARIANTS,
    table2_category="Spectre variants requiring branch prediction (v1, v1.1, v1.2, v2)",
    reference="Intel deep dive: indirect branch predictor barrier",
)

INVALIDATE_PREDICTOR_ON_CONTEXT_SWITCH = Defense(
    key="invalidate_predictor_ctx_switch",
    name="Invalidate branch predictor during context switch",
    origin=DefenseOrigin.INDUSTRY,
    strategy=DefenseStrategy.CLEAR_PREDICTIONS,
    description="Flush predictor and BTB state whenever the context changes (some AMD CPUs).",
    applicable_attacks=_BRANCH_PREDICTION_VARIANTS,
    table2_category="Spectre variants requiring branch prediction (v1, v1.1, v1.2, v2)",
    reference="AMD software techniques for managing speculation",
)

RETPOLINE = Defense(
    key="retpoline",
    name="Retpoline",
    origin=DefenseOrigin.INDUSTRY,
    strategy=DefenseStrategy.CLEAR_PREDICTIONS,
    description=(
        "Replace indirect branches (which use the potentially poisoned BTB) with "
        "return sequences that use the return stack instead."
    ),
    applicable_attacks=_BRANCH_PREDICTION_VARIANTS,
    table2_category="Spectre variants requiring branch prediction (v1, v1.1, v1.2, v2)",
    reference="Google retpoline",
)

COARSE_ADDRESS_MASKING = Defense(
    key="coarse_masking",
    name="Coarse address masking",
    origin=DefenseOrigin.INDUSTRY,
    strategy=DefenseStrategy.PREVENT_ACCESS,
    description="Mask the accessed address so even a speculative access stays in the legal range.",
    applicable_attacks=_BOUNDARY_BYPASS,
    table2_category="Spectre boundary bypass (v1, v1.1, v1.2)",
    reference="V8 / Linux kernel address masking",
)

DATA_DEPENDENT_MASKING = Defense(
    key="data_dependent_masking",
    name="Data-dependent masking",
    origin=DefenseOrigin.INDUSTRY,
    strategy=DefenseStrategy.PREVENT_ACCESS,
    description="Mask the index with a data-dependent bound so out-of-bounds accesses are clamped.",
    applicable_attacks=_BOUNDARY_BYPASS,
    table2_category="Spectre boundary bypass (v1, v1.1, v1.2)",
    reference="Kiriansky and Waldspurger, 2018",
)

SSBB = Defense(
    key="ssbb",
    name="Speculative Store Bypass Barrier (SSBB)",
    origin=DefenseOrigin.INDUSTRY,
    strategy=DefenseStrategy.PREVENT_ACCESS,
    description="Serialize stores and loads so a load cannot bypass an older store with unknown address.",
    applicable_attacks=("spectre_v4",),
    table2_category="Spectre v4",
    reference="ARM",
)

SSBS = Defense(
    key="ssbs",
    name="Speculative Store Bypass Safe (SSBS)",
    origin=DefenseOrigin.INDUSTRY,
    strategy=DefenseStrategy.PREVENT_ACCESS,
    description="Mode bit preventing loads from speculatively bypassing older stores.",
    applicable_attacks=("spectre_v4",),
    table2_category="Spectre v4",
    reference="ARM",
)

RSB_STUFFING = Defense(
    key="rsb_stuffing",
    name="RSB stuffing",
    origin=DefenseOrigin.INDUSTRY,
    strategy=DefenseStrategy.CLEAR_PREDICTIONS,
    description="Refill the return stack buffer so returns never consume attacker-controlled entries.",
    applicable_attacks=("spectre_rsb",),
    table2_category="Spectre RSB",
    reference="Intel",
)

INDUSTRY_DEFENSES: Tuple[Defense, ...] = (
    LFENCE,
    MFENCE,
    KAISER,
    KPTI,
    DISABLE_BRANCH_PREDICTION,
    IBRS,
    STIBP,
    IBPB,
    INVALIDATE_PREDICTOR_ON_CONTEXT_SWITCH,
    RETPOLINE,
    COARSE_ADDRESS_MASKING,
    DATA_DEPENDENT_MASKING,
    SSBB,
    SSBS,
    RSB_STUFFING,
)
