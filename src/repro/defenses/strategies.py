"""Graph transformations implementing the four defense strategies.

Each strategy is a pure function from an :class:`AttackGraph` to a defended
copy.  Strategies 1-3 insert security-dependency edges from every
authorization-resolution vertex to the protected vertices (access, use, or
send).  Strategy 4 inserts a predictor-clearing operation between the
attacker's mis-training and the victim's branch, cutting the attacker's
control over the speculative path.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..core.attack_graph import AttackGraph
from ..core.edges import DependencyKind
from ..core.nodes import AttackStep, OperationType
from ..core.security_dependency import ProtectionPoint, SecurityDependency

#: Vertex name added by :func:`apply_clear_predictions`.
FLUSH_PREDICTOR_NODE = "Flush predictor"
#: Vertex name of the attacker's mis-training operation (see attacks.builders.Nodes).
MISTRAIN_NODE = "Mistrain predictor"


def _resolution_nodes(graph: AttackGraph) -> List[str]:
    """Authorization-resolution vertices (fall back to authorization vertices)."""
    resolutions = [op.name for op in graph.operations_of_type(OperationType.RESOLUTION)]
    if resolutions:
        return resolutions
    return [op.name for op in graph.operations_of_type(OperationType.AUTHORIZATION)]


def _protect(
    graph: AttackGraph,
    targets: Iterable[str],
    point: ProtectionPoint,
    suffix: str,
) -> AttackGraph:
    """Add a security edge from every resolution vertex to every target vertex.

    Uses one descendant-set lookup on the reachability index per resolution
    vertex; only pairs not already ordered get a new security edge.
    """
    targets = list(targets)
    dependencies = []
    for auth in _resolution_nodes(graph):
        ordered = graph.descendants(auth)
        ordered.add(auth)
        dependencies.extend(
            SecurityDependency(authorization=auth, protected=target, point=point)
            for target in targets
            if target not in ordered
        )
    defended = graph.with_security_dependencies(dependencies)
    defended.name = f"{graph.name}+{suffix}"
    return defended


def apply_prevent_access(
    graph: AttackGraph, sources: Optional[Sequence[str]] = None
) -> AttackGraph:
    """Strategy 1: the secret must not be *accessed* before authorization resolves.

    ``sources`` optionally restricts protection to secret-access vertices whose
    name mentions one of the given micro-architectural sources.  This models
    *partial* (and possibly insufficient) defenses, e.g. serializing only the
    memory path of a load while the L1-cache path stays unprotected
    (Section V-B's insufficient-defense discussion).
    """
    targets = graph.secret_access_nodes
    if sources is not None:
        wanted = [source.lower() for source in sources]
        targets = [
            name
            for name in targets
            if any(source in name.lower() for source in wanted)
        ]
    return _protect(graph, targets, ProtectionPoint.ACCESS, "prevent-access")


def apply_prevent_use(graph: AttackGraph) -> AttackGraph:
    """Strategy 2: speculatively accessed data must not be *used* before authorization."""
    return _protect(graph, graph.use_nodes, ProtectionPoint.USE, "prevent-use")


def apply_prevent_send(graph: AttackGraph) -> AttackGraph:
    """Strategy 3: micro-architectural state changes (the *send*) wait for authorization."""
    return _protect(graph, graph.send_nodes, ProtectionPoint.SEND, "prevent-send")


def apply_clear_predictions(graph: AttackGraph) -> AttackGraph:
    """Strategy 4: clear predictor state so mis-training cannot steer speculation.

    Adds a ``Flush predictor`` operation ordered after the attacker's
    mis-training and before the victim's branch / authorization instruction.
    When the graph has no mis-training vertex (Meltdown-type attacks), the
    transformation is a no-op -- the strategy simply does not address those
    attacks, which the evaluation layer reports as "not defeated".
    """
    defended = graph.copy(name=f"{graph.name}+clear-predictions")
    if MISTRAIN_NODE not in defended:
        return defended
    defended.add_step(
        FLUSH_PREDICTOR_NODE,
        OperationType.SETUP,
        AttackStep.SETUP,
        description="Flush predictor state (IBPB / context-switch invalidation)",
        after=[MISTRAIN_NODE],
        kind=DependencyKind.SECURITY,
    )
    for successor in graph.successors(MISTRAIN_NODE):
        defended.add_edge(FLUSH_PREDICTOR_NODE, successor, kind=DependencyKind.SECURITY)
    return defended


def apply_strategy(graph: AttackGraph, strategy, **kwargs) -> AttackGraph:
    """Dispatch on a :class:`~repro.defenses.base.DefenseStrategy` value."""
    from .base import DefenseStrategy

    dispatch = {
        DefenseStrategy.PREVENT_ACCESS: apply_prevent_access,
        DefenseStrategy.PREVENT_USE: apply_prevent_use,
        DefenseStrategy.PREVENT_SEND: apply_prevent_send,
        DefenseStrategy.CLEAR_PREDICTIONS: apply_clear_predictions,
    }
    return dispatch[strategy](graph, **kwargs)
