"""Defense model: strategies, defense records, and graph transformation.

Section V-B derives four defense strategies from the attack graph model.  A
strategy is implemented by adding security dependencies (edges) to the attack
graph -- or, for strategy 4, by adding a predictor-clearing operation that
prevents the attacker's mis-training from steering speculation:

* Strategy 1 -- **prevent access before authorization**,
* Strategy 2 -- **prevent data usage before authorization**,
* Strategy 3 -- **prevent send before authorization**,
* Strategy 4 -- **clearing predictions** (prevent predictor state sharing).

Every industry and academic defense catalogued by the paper is expressed as a
:class:`Defense` carrying its strategy, so that the claim "all currently
proposed defenses fall under one of our defense strategies" is reproduced by
construction and checked by the test suite.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Sequence, Tuple

from ..attacks.base import AttackVariant, DelayMechanism
from ..core.attack_graph import AttackGraph
from . import strategies as _strategies


class DefenseStrategy(enum.Enum):
    """The paper's four defense strategies (Figure 8 / Figure 4 red arrows)."""

    PREVENT_ACCESS = "prevent access before authorization"
    PREVENT_USE = "prevent data usage before authorization"
    PREVENT_SEND = "prevent send before authorization"
    CLEAR_PREDICTIONS = "clearing predictions"

    @property
    def figure8_number(self) -> int:
        """The red-arrow number used in Figure 8."""
        return {
            DefenseStrategy.PREVENT_ACCESS: 1,
            DefenseStrategy.PREVENT_USE: 2,
            DefenseStrategy.PREVENT_SEND: 3,
            DefenseStrategy.CLEAR_PREDICTIONS: 4,
        }[self]


class DefenseOrigin(enum.Enum):
    """Whether the defense was proposed by industry or academia."""

    INDUSTRY = "industry"
    ACADEMIA = "academia"


@dataclass(frozen=True)
class Defense:
    """One concrete defense mechanism mapped onto a defense strategy."""

    key: str
    name: str
    origin: DefenseOrigin
    strategy: DefenseStrategy
    description: str
    #: Delay mechanisms (speculation triggers) this defense addresses.  An
    #: empty set means the defense is generic across triggers.
    applicable_delays: FrozenSet[DelayMechanism] = frozenset()
    #: Explicit attack keys this defense targets (used when delay filtering
    #: is too coarse, e.g. KPTI only helps against Meltdown proper).
    applicable_attacks: Tuple[str, ...] = ()
    #: Which secret sources the defense protects (``None`` = all).  Used to
    #: model *insufficient* defenses such as a fence that only serializes the
    #: memory path while the secret may still be read from the L1 cache.
    protected_sources: Optional[Tuple[str, ...]] = None
    reference: str = ""
    table2_category: str = ""

    # ------------------------------------------------------------------
    def applies_to(self, variant: AttackVariant) -> bool:
        """Is this defense intended to address the given attack variant?"""
        if self.applicable_attacks:
            return variant.key in self.applicable_attacks
        if self.applicable_delays:
            return variant.delay_mechanism in self.applicable_delays
        return True

    def apply(self, graph: AttackGraph) -> AttackGraph:
        """Return a defended copy of ``graph`` (adds the strategy's security edges)."""
        if self.strategy is DefenseStrategy.PREVENT_ACCESS:
            return _strategies.apply_prevent_access(graph, sources=self.protected_sources)
        if self.strategy is DefenseStrategy.PREVENT_USE:
            return _strategies.apply_prevent_use(graph)
        if self.strategy is DefenseStrategy.PREVENT_SEND:
            return _strategies.apply_prevent_send(graph)
        if self.strategy is DefenseStrategy.CLEAR_PREDICTIONS:
            return _strategies.apply_clear_predictions(graph)
        raise ValueError(f"unknown strategy {self.strategy!r}")  # pragma: no cover

    @property
    def table2_row(self) -> Tuple[str, str, str]:
        """(attack/strategy category, strategy, defense) row used for Table II."""
        return (self.table2_category or "-", self.strategy.value, self.name)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name} [{self.strategy.value}]"
