"""Evaluating whether a defense defeats an attack, on the attack-graph model.

The success condition of a speculative attack, in graph terms, is that the
*send* operation (the micro-architectural state change that encodes the
secret) can complete before the authorization resolves -- i.e. the send races
with the authorization-resolution vertex.  Because the send is data-dependent
on the use and on the secret access, ordering *any* of access / use / send
after authorization (strategies 1-3) breaks the leak.

When a faulting load can obtain the secret from several alternative
micro-architectural sources (Figure 4: memory, cache, load port, line fill
buffer, store buffer), the alternatives are OR-paths: protecting one source
does not protect the others.  :func:`source_projections` expands the graph
into one projection per combination of alternative sources, and
:func:`attack_succeeds` reports a leak when *any* projection leaks -- exactly
the reasoning behind the paper's "insufficient defense" example in
Section V-B.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..attacks.base import AttackVariant
from ..attacks.builders import build_faulting_load_graph
from ..core.attack_graph import AttackGraph
from ..core.nodes import OperationType
from . import strategies
from .base import Defense, DefenseStrategy


# ----------------------------------------------------------------------
# Alternative-source projections
# ----------------------------------------------------------------------
def _alternative_groups(graph: AttackGraph) -> List[List[str]]:
    """Group secret-access vertices that are alternative sources of the same value.

    Two secret-access vertices are alternatives when they feed exactly the
    same successor vertices (e.g. the five ``Read S from ...`` vertices of
    Figure 4 all feed ``Compute load address R``).
    """
    by_successors: Dict[Tuple[str, ...], List[str]] = {}
    for name in graph.secret_access_nodes:
        key = tuple(sorted(graph.successors(name)))
        by_successors.setdefault(key, []).append(name)
    return list(by_successors.values())


def source_projections(graph: AttackGraph) -> List[Tuple[Tuple[str, ...], AttackGraph]]:
    """Expand alternative secret sources into per-choice projections.

    Returns a list of ``(chosen_sources, projected_graph)`` pairs.  Each
    projection keeps exactly one secret-access vertex from every group of
    alternatives and drops the rest; a graph without alternatives yields a
    single projection (itself).
    """
    groups = _alternative_groups(graph)
    if all(len(group) <= 1 for group in groups):
        chosen = tuple(name for group in groups for name in group)
        return [(chosen, graph)]
    projections = []
    for choice in itertools.product(*groups):
        dropped = {
            name for group in groups for name in group if name not in choice
        }
        kept = [name for name in graph.vertices if name not in dropped]
        projected = AttackGraph(name=f"{graph.name}|{'+'.join(choice)}")
        projected.description = graph.description
        for vertex in kept:
            projected.add_operation(graph.operation(vertex))
        for dep in graph.edges:
            if dep.source in dropped or dep.target in dropped:
                continue
            projected.add_dependency(dep)
        projections.append((tuple(choice), projected))
    return projections


# ----------------------------------------------------------------------
# Leak condition
# ----------------------------------------------------------------------
def _resolution_nodes(graph: AttackGraph) -> List[str]:
    resolutions = [op.name for op in graph.operations_of_type(OperationType.RESOLUTION)]
    if resolutions:
        return resolutions
    return [op.name for op in graph.operations_of_type(OperationType.AUTHORIZATION)]


def _projection_leaks(graph: AttackGraph) -> bool:
    """Does this (single-source) graph leak?  Send can finish before authorization.

    One descendant-mask lookup per authorization vertex on the reachability
    index: the graph leaks when some send vertex is not ordered after some
    authorization.
    """
    sends = set(graph.send_nodes)
    authorizations = _resolution_nodes(graph)
    if not sends or not authorizations:
        return False
    return any(
        sends - graph.descendants(auth) - {auth}
        for auth in authorizations
    )


def attack_succeeds(graph: AttackGraph) -> bool:
    """``True`` when the attack modelled by ``graph`` leaks through any source path."""
    return any(_projection_leaks(projection) for _, projection in source_projections(graph))


def leaking_sources(graph: AttackGraph) -> List[Tuple[str, ...]]:
    """The combinations of secret sources through which the graph still leaks."""
    return [
        chosen
        for chosen, projection in source_projections(graph)
        if _projection_leaks(projection)
    ]


def setup_neutralized(defended: AttackGraph) -> bool:
    """Strategy-4 success condition: predictor state is cleared before the branch.

    Clearing predictions does not close the authorization/access race; it
    removes the attacker's control over *which* path is speculated.  The
    defense is considered successful when the graph contains the
    ``Flush predictor`` vertex ordered after the attacker's mis-training and
    before every vertex the mis-training used to influence.
    """
    if strategies.FLUSH_PREDICTOR_NODE not in defended:
        return False
    if strategies.MISTRAIN_NODE not in defended:
        return False
    influenced = defended.successors(strategies.MISTRAIN_NODE) - {
        strategies.FLUSH_PREDICTOR_NODE
    }
    return bool(influenced) and all(
        defended.has_path(strategies.FLUSH_PREDICTOR_NODE, node) for node in influenced
    )


# ----------------------------------------------------------------------
# Defense evaluation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DefenseEvaluation:
    """Outcome of applying one defense to one attack."""

    defense_key: str
    attack_key: str
    strategy: DefenseStrategy
    applicable: bool
    leaked_before: bool
    leaked_after: bool
    leaking_sources_before: Tuple[Tuple[str, ...], ...] = ()
    leaking_sources_after: Tuple[Tuple[str, ...], ...] = ()
    security_edges_added: int = 0
    notes: str = ""

    @property
    def effective(self) -> bool:
        """The defense defeats the attack (and was applicable to it)."""
        return self.applicable and self.leaked_before and not self.leaked_after

    def __str__(self) -> str:  # pragma: no cover - trivial
        verdict = "defeats" if self.effective else "does NOT defeat"
        return f"{self.defense_key} {verdict} {self.attack_key}"


def evaluate_defense_uncached(
    defense: Defense,
    variant: AttackVariant,
    graph: Optional[AttackGraph] = None,
) -> DefenseEvaluation:
    """Apply ``defense`` to ``variant``'s attack graph and report the outcome.

    This is the raw computation; :func:`evaluate_defense` routes through the
    default engine's ``(defense key, attack key)`` evaluation cache.
    """
    baseline = graph if graph is not None else variant.build_graph()
    applicable = defense.applies_to(variant)
    leaked_before = attack_succeeds(baseline)
    sources_before = tuple(leaking_sources(baseline))

    if not applicable:
        return DefenseEvaluation(
            defense_key=defense.key,
            attack_key=variant.key,
            strategy=defense.strategy,
            applicable=False,
            leaked_before=leaked_before,
            leaked_after=leaked_before,
            leaking_sources_before=sources_before,
            leaking_sources_after=sources_before,
            notes="defense does not target this attack variant",
        )

    defended = defense.apply(baseline)
    security_edges = sum(1 for dep in defended.edges if dep.is_security) - sum(
        1 for dep in baseline.edges if dep.is_security
    )
    if defense.strategy is DefenseStrategy.CLEAR_PREDICTIONS:
        leaked_after = not setup_neutralized(defended)
        sources_after = sources_before if leaked_after else ()
        notes = (
            "predictor cleared before the victim's branch"
            if not leaked_after
            else "attack does not rely on predictor mis-training"
        )
    else:
        leaked_after = attack_succeeds(defended)
        sources_after = tuple(leaking_sources(defended))
        notes = "" if not leaked_after else (
            "insufficient: secret still reachable via "
            + ", ".join("/".join(chosen) for chosen in sources_after)
        )
    return DefenseEvaluation(
        defense_key=defense.key,
        attack_key=variant.key,
        strategy=defense.strategy,
        applicable=True,
        leaked_before=leaked_before,
        leaked_after=leaked_after,
        leaking_sources_before=sources_before,
        leaking_sources_after=sources_after,
        security_edges_added=max(security_edges, 0),
        notes=notes,
    )


def evaluate_defense(
    defense: Defense,
    variant: AttackVariant,
    graph: Optional[AttackGraph] = None,
) -> DefenseEvaluation:
    """Apply ``defense`` to ``variant``'s attack graph and report the outcome.

    Thin wrapper over :meth:`repro.engine.Engine.evaluate` on the default
    engine; pairs without an explicit ``graph`` are served from the
    ``(defense key, attack key)`` cache on warm calls.
    """
    from ..engine import default_engine

    return default_engine().evaluate(defense, variant, graph).payload


def evaluate_matrix(
    defenses: Sequence[Defense],
    variants: Sequence[AttackVariant],
    parallel: Optional[int] = None,
) -> List[DefenseEvaluation]:
    """Evaluate every defense against every attack variant.

    Thin wrapper over :meth:`repro.engine.Engine.evaluate_matrix`: rows are
    sorted by ``(defense key, attack key)`` and, with ``parallel`` > 1,
    sharded over the engine's process pool -- parallel output is
    byte-identical to serial output.
    """
    from ..engine import default_engine

    return default_engine().evaluate_matrix(defenses, variants, parallel).payload


# ----------------------------------------------------------------------
# The paper's insufficient-defense example (Section V-B)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class InsufficientDefenseReport:
    """Reproduction of the Section V-B insufficient-defense discussion."""

    baseline_leaks: bool
    fenced_memory_only_leaks: bool
    fenced_memory_leaking_sources: Tuple[Tuple[str, ...], ...]
    fenced_all_sources_leaks: bool
    prevent_use_leaks: bool

    @property
    def reproduces_paper(self) -> bool:
        """The paper's conclusion: a memory-only fence is insufficient,
        fencing every source works, and so does preventing data usage."""
        return (
            self.baseline_leaks
            and self.fenced_memory_only_leaks
            and not self.fenced_all_sources_leaks
            and not self.prevent_use_leaks
        )


def insufficient_defense_demo() -> InsufficientDefenseReport:
    """Meltdown with the secret possibly already in the L1 cache (L1TF-style).

    A security dependency only on the memory path (defense 1 restricted to
    the ``Read S from memory`` vertex) does not stop the attack because the
    secret can still be read from the cache.  Protecting every source, or
    using strategy 2 (prevent data usage), does stop it.
    """
    graph = build_faulting_load_graph(
        name="meltdown-with-cached-secret",
        sources=("memory", "cache"),
        permission_check_label="kernel privilege check",
        access_label="read kernel data",
    )
    fence_memory_only = strategies.apply_prevent_access(graph, sources=("memory",))
    fence_all = strategies.apply_prevent_access(graph)
    prevent_use = strategies.apply_prevent_use(graph)
    return InsufficientDefenseReport(
        baseline_leaks=attack_succeeds(graph),
        fenced_memory_only_leaks=attack_succeeds(fence_memory_only),
        fenced_memory_leaking_sources=tuple(leaking_sources(fence_memory_only)),
        fenced_all_sources_leaks=attack_succeeds(fence_all),
        prevent_use_leaks=attack_succeeds(prevent_use),
    )
