"""A small two-pass assembler for the tiny ISA.

The assembler turns a textual listing -- close to the paper's Listing 1 and
Listing 2 -- into a :class:`~repro.isa.program.Program`.  Supported syntax::

    ; comment
    .data
    array_a:      address=0x100000 size=1048576 shared
    secret:       address=0xffff0000 size=64 protected kernel
    .text
        clflush [array_a]
        mov rbx, array_a
        cmp rdx, [victim_size]
        ja done
        mov al, byte [array_victim + rdx]
        shl rax, 12
        mov rbx, [array_a + rax]
    done:
        hlt

Memory operands accept a symbol, a base register, an index register with an
optional ``*scale``, and a displacement, joined by ``+``.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .instructions import (
    ALU_OPS,
    Alu,
    Branch,
    Call,
    Clflush,
    Cmp,
    CONDITIONS,
    Fence,
    FpExtract,
    FpLoad,
    Halt,
    IndirectJmp,
    Instruction,
    Jmp,
    Load,
    Mov,
    Nop,
    Rdmsr,
    Rdtsc,
    Ret,
    Store,
)
from .operands import ALL_REGISTERS, Immediate, Label, MemoryOperand, Register
from .program import DataSymbol, Program, ProgramError


class AssemblerError(ValueError):
    """Raised for syntax errors, with the offending line number."""

    def __init__(self, message: str, line_number: int, line: str) -> None:
        super().__init__(f"line {line_number}: {message}: {line.strip()!r}")
        self.line_number = line_number
        self.line = line


_DATA_ATTR_RE = re.compile(r"(\w+)=(\S+)")
_DATA_FLAGS = ("protected", "kernel", "shared")


def _parse_int(token: str) -> int:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError as exc:
        raise ValueError(f"not a number: {token!r}") from exc


def _is_register(token: str) -> bool:
    return token in ALL_REGISTERS


def _parse_memory(token: str) -> MemoryOperand:
    """Parse ``[sym + base + index*scale + disp]`` (any subset, any order)."""
    inner = token.strip()[1:-1].strip()
    if not inner:
        raise ValueError("empty memory operand")
    base: Optional[Register] = None
    index: Optional[Register] = None
    scale = 1
    displacement = 0
    symbol: Optional[str] = None
    for part in (piece.strip() for piece in inner.split("+")):
        if not part:
            continue
        if "*" in part:
            reg_name, scale_text = (item.strip() for item in part.split("*", 1))
            if not _is_register(reg_name):
                raise ValueError(f"scaled index must be a register: {part!r}")
            index = Register(reg_name)
            scale = _parse_int(scale_text)
        elif _is_register(part):
            if base is None:
                base = Register(part)
            elif index is None:
                index = Register(part)
            else:
                raise ValueError(f"too many registers in memory operand: {inner!r}")
        else:
            try:
                displacement += _parse_int(part)
            except ValueError:
                if symbol is not None:
                    raise ValueError(f"two symbols in memory operand: {inner!r}") from None
                symbol = part
    return MemoryOperand(
        base=base, index=index, scale=scale, displacement=displacement, symbol=symbol
    )


def _parse_source(token: str) -> object:
    """Parse a generic source operand: register, immediate, label/symbol or memory."""
    token = token.strip()
    if token.startswith("["):
        return _parse_memory(token)
    if _is_register(token):
        return Register(token)
    try:
        return Immediate(_parse_int(token))
    except ValueError:
        return Label(token)


def _split_operands(text: str) -> List[str]:
    """Split an operand string on commas that are not inside brackets."""
    operands: List[str] = []
    depth = 0
    current = ""
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            operands.append(current.strip())
            current = ""
        else:
            current += char
    if current.strip():
        operands.append(current.strip())
    return operands


def _strip_comment(line: str) -> str:
    for marker in (";", "#", "//"):
        position = line.find(marker)
        if position >= 0:
            line = line[:position]
    return line.strip()


def _assemble_mov(operands: List[str], size: int, label: Optional[str]) -> Instruction:
    if len(operands) != 2:
        raise ValueError("mov needs exactly two operands")
    dst_text, src_text = operands
    if dst_text.startswith("["):
        destination = _parse_memory(dst_text)
        source = _parse_source(src_text)
        if isinstance(source, MemoryOperand):
            raise ValueError("memory-to-memory mov is not supported")
        if isinstance(source, Label):
            raise ValueError("cannot store a label directly")
        return Store(address=destination, src=source, size=size, label=label)
    destination = Register(dst_text)
    source = _parse_source(src_text)
    if isinstance(source, MemoryOperand):
        return Load(dst=destination, address=source, size=size, label=label)
    return Mov(dst=destination, src=source, label=label)


def _assemble_instruction(
    mnemonic: str, operand_text: str, label: Optional[str]
) -> Instruction:
    size = 8
    if operand_text.strip().lower().startswith("byte "):
        # e.g. ``mov al, byte [array + rdx]`` -- the byte size marker may also
        # appear on the destination side of a store.
        pass
    operand_text = operand_text.replace("byte ", "@BYTE@")
    operands = _split_operands(operand_text)
    cleaned = []
    for operand in operands:
        if "@BYTE@" in operand:
            size = 1
            operand = operand.replace("@BYTE@", "").strip()
        cleaned.append(operand)
    operands = cleaned

    if mnemonic == "mov":
        # ``mov al, ...`` -- the 8-bit register aliases rax in the tiny ISA.
        operands = ["rax" if operand in ("al", "ax", "eax") else operand for operand in operands]
        return _assemble_mov(operands, size, label)
    if mnemonic in ("movss", "movsd"):
        return FpLoad(dst=Register(operands[0]), address=_parse_memory(operands[1]), label=label)
    if mnemonic in ("movd", "movq") and len(operands) == 2 and operands[1].startswith("xmm"):
        return FpExtract(dst=Register(operands[0]), src=Register(operands[1]), label=label)
    if mnemonic in ALU_OPS:
        source = _parse_source(operands[1])
        if isinstance(source, (MemoryOperand, Label)):
            raise ValueError(f"{mnemonic} source must be a register or immediate")
        return Alu(op=mnemonic, dst=Register(operands[0]), src=source, label=label)
    if mnemonic == "cmp":
        rhs = _parse_source(operands[1])
        if isinstance(rhs, Label):
            raise ValueError("cmp right-hand side cannot be a label")
        return Cmp(lhs=Register(operands[0]), rhs=rhs, label=label)
    if mnemonic in CONDITIONS:
        return Branch(condition=mnemonic, target=Label(operands[0]), label=label)
    if mnemonic == "jmp":
        if operands and _is_register(operands[0]):
            return IndirectJmp(target=Register(operands[0]), label=label)
        return Jmp(target=Label(operands[0]), label=label)
    if mnemonic == "call":
        return Call(target=Label(operands[0]), label=label)
    if mnemonic == "ret":
        return Ret(label=label)
    if mnemonic == "clflush":
        return Clflush(address=_parse_memory(operands[0]), label=label)
    if mnemonic in ("lfence", "mfence"):
        return Fence(kind=mnemonic, label=label)
    if mnemonic == "rdtsc":
        return Rdtsc(dst=Register(operands[0]), label=label)
    if mnemonic == "rdmsr":
        return Rdmsr(dst=Register(operands[0]), msr=_parse_int(operands[1]), label=label)
    if mnemonic == "nop":
        return Nop(label=label)
    if mnemonic in ("hlt", "halt"):
        return Halt(label=label)
    raise ValueError(f"unknown mnemonic {mnemonic!r}")


def _parse_data_line(line: str) -> DataSymbol:
    name, _, rest = line.partition(":")
    name = name.strip()
    if not name:
        raise ValueError("data symbol needs a name")
    attributes = dict(_DATA_ATTR_RE.findall(rest))
    if "address" not in attributes:
        raise ValueError(f"data symbol {name!r} needs address=<value>")
    flags = {flag: flag in rest.split() for flag in _DATA_FLAGS}
    return DataSymbol(
        name=name,
        address=_parse_int(attributes["address"]),
        size=_parse_int(attributes.get("size", "8")),
        protected=flags["protected"],
        kernel=flags["kernel"],
        shared=flags["shared"],
    )


def assemble(text: str, name: str = "program") -> Program:
    """Assemble a textual listing into a :class:`Program`."""
    program = Program(name=name)
    section = ".text"
    pending_label: Optional[str] = None
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw_line)
        if not line:
            continue
        if line.startswith("."):
            section = line.split()[0]
            if section not in (".data", ".text"):
                raise AssemblerError(f"unknown section {section!r}", line_number, raw_line)
            continue
        try:
            if section == ".data":
                program.add_symbol(_parse_data_line(line))
                continue
            if line.endswith(":") and " " not in line:
                if pending_label is not None:
                    program.append(Nop(label=pending_label))
                pending_label = line[:-1]
                continue
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            operand_text = parts[1] if len(parts) > 1 else ""
            instruction = _assemble_instruction(mnemonic, operand_text, pending_label)
            pending_label = None
            program.append(instruction)
        except (ValueError, ProgramError) as exc:
            raise AssemblerError(str(exc), line_number, raw_line) from exc
    if pending_label is not None:
        program.append(Nop(label=pending_label))
    return program
