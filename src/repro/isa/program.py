"""Programs: instruction sequences plus a data-symbol layout.

A :class:`Program` is what the attack-graph construction tool analyses and
what the out-of-order pipeline executes.  Besides the instruction list it
carries a small data layout (named symbols mapped to addresses and sizes) and
an optional set of *protected* symbols -- the memory the user marks as secret
or sensitive, which is the starting point of the Section V-C tool flow.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .instructions import Instruction
from .operands import MemoryOperand


@dataclass(frozen=True)
class DataSymbol:
    """A named data region in the program's address space."""

    name: str
    address: int
    size: int = 8
    #: Initial contents (byte values); unspecified bytes default to zero.
    initial: Tuple[int, ...] = ()
    #: ``True`` when the user marks this region as secret / sensitive.
    protected: bool = False
    #: ``True`` when the region belongs to the kernel / supervisor domain.
    kernel: bool = False
    #: ``True`` when the region is shared between attacker and victim
    #: (a requirement for the Flush+Reload channel).
    shared: bool = False

    def contains(self, address: int) -> bool:
        return self.address <= address < self.address + self.size

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name}@{self.address:#x}[{self.size}]"


class ProgramError(ValueError):
    """Raised for malformed programs (duplicate labels, unknown symbols, ...)."""


class Program:
    """An instruction sequence with labels and a data layout."""

    def __init__(
        self,
        name: str = "program",
        instructions: Optional[Iterable[Instruction]] = None,
        symbols: Optional[Iterable[DataSymbol]] = None,
    ) -> None:
        self._name = name
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._symbols: Dict[str, DataSymbol] = {}
        #: Bumped on every mutation; invalidates the cached content hash.
        self._version = 0
        self._hash_version = -1
        self._hash_cache: Optional[str] = None
        for symbol in symbols or ():
            self.add_symbol(symbol)
        for instruction in instructions or ():
            self.append(instruction)

    @property
    def name(self) -> str:
        return self._name

    @name.setter
    def name(self, value: str) -> None:
        # Renames count as mutations: the name is part of the fingerprint,
        # so the cached content hash must be invalidated.
        self._name = value
        self._version += 1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def append(self, instruction: Instruction) -> int:
        """Append an instruction, registering its label; returns its index."""
        index = len(self._instructions)
        if instruction.label is not None:
            if instruction.label in self._labels:
                raise ProgramError(f"duplicate label {instruction.label!r}")
            self._labels[instruction.label] = index
        self._instructions.append(instruction)
        self._version += 1
        return index

    def extend(self, instructions: Iterable[Instruction]) -> None:
        for instruction in instructions:
            self.append(instruction)

    def add_symbol(self, symbol: DataSymbol) -> DataSymbol:
        if symbol.name in self._symbols:
            raise ProgramError(f"duplicate data symbol {symbol.name!r}")
        for existing in self._symbols.values():
            overlap = (
                symbol.address < existing.address + existing.size
                and existing.address < symbol.address + symbol.size
            )
            if overlap:
                raise ProgramError(
                    f"symbol {symbol.name!r} overlaps {existing.name!r}"
                )
        self._symbols[symbol.name] = symbol
        self._version += 1
        return symbol

    def declare(
        self,
        name: str,
        address: int,
        size: int = 8,
        *,
        initial: Sequence[int] = (),
        protected: bool = False,
        kernel: bool = False,
        shared: bool = False,
    ) -> DataSymbol:
        """Convenience wrapper around :meth:`add_symbol`."""
        return self.add_symbol(
            DataSymbol(
                name=name,
                address=address,
                size=size,
                initial=tuple(initial),
                protected=protected,
                kernel=kernel,
                shared=shared,
            )
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self._instructions[index]

    @property
    def instructions(self) -> List[Instruction]:
        return list(self._instructions)

    @property
    def labels(self) -> Dict[str, int]:
        return dict(self._labels)

    @property
    def symbols(self) -> Dict[str, DataSymbol]:
        return dict(self._symbols)

    def label_index(self, label: str) -> int:
        """Instruction index of a label."""
        try:
            return self._labels[label]
        except KeyError as exc:
            raise ProgramError(f"unknown label {label!r}") from exc

    def symbol(self, name: str) -> DataSymbol:
        try:
            return self._symbols[name]
        except KeyError as exc:
            raise ProgramError(f"unknown data symbol {name!r}") from exc

    def symbol_at(self, address: int) -> Optional[DataSymbol]:
        """The data symbol containing ``address``, if any."""
        for symbol in self._symbols.values():
            if symbol.contains(address):
                return symbol
        return None

    def protected_symbols(self) -> List[DataSymbol]:
        """Symbols the user marked as secret / sensitive."""
        return [symbol for symbol in self._symbols.values() if symbol.protected]

    # ------------------------------------------------------------------
    # Content addressing
    # ------------------------------------------------------------------
    def fingerprint(self) -> Tuple[object, ...]:
        """Canonical structural identity: name, data layout, instruction stream.

        Instructions and symbols are frozen dataclasses, so their ``repr`` is
        a deterministic rendering of the full field tree (class names
        included) -- two programs have equal fingerprints exactly when they
        are structurally identical.
        """
        return (
            self.name,
            tuple(repr(symbol) for symbol in self._symbols.values()),
            tuple(repr(instruction) for instruction in self._instructions),
        )

    def content_hash(self) -> str:
        """SHA-256 over the fingerprint; the key of every engine-level cache.

        The hash is cached and invalidated on mutation (:meth:`append` /
        :meth:`add_symbol`), so repeated cache lookups on a stable program
        cost one integer comparison.
        """
        if self._hash_cache is None or self._hash_version != self._version:
            digest = hashlib.sha256(repr(self.fingerprint()).encode("utf-8"))
            self._hash_cache = digest.hexdigest()
            self._hash_version = self._version
        return self._hash_cache

    # ------------------------------------------------------------------
    # Address resolution
    # ------------------------------------------------------------------
    def symbol_address(self, name: str) -> int:
        return self.symbol(name).address

    def static_address(self, operand: MemoryOperand) -> Optional[int]:
        """The static base address of a memory operand, when it has a symbol."""
        if operand.symbol is None:
            return None
        return self.symbol_address(operand.symbol) + operand.displacement

    def references_symbol(self, operand: MemoryOperand, name: str) -> bool:
        """Does the operand statically reference the named symbol?"""
        return operand.symbol == name

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def listing(self) -> str:
        """Assembly-style listing of the program."""
        lines = [f"; program: {self.name}"]
        if self._symbols:
            lines.append(".data")
            for symbol in self._symbols.values():
                attrs = []
                if symbol.protected:
                    attrs.append("protected")
                if symbol.kernel:
                    attrs.append("kernel")
                if symbol.shared:
                    attrs.append("shared")
                suffix = (" ; " + ", ".join(attrs)) if attrs else ""
                lines.append(
                    f"  {symbol.name}: address={symbol.address:#x} size={symbol.size}{suffix}"
                )
        lines.append(".text")
        for index, instruction in enumerate(self._instructions):
            if instruction.label is not None:
                lines.append(f"{instruction.label}:")
            comment = f"  ; {instruction.comment}" if instruction.comment else ""
            lines.append(f"  {index:3d}: {instruction}{comment}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Program {self.name!r}: {len(self)} instructions, {len(self._symbols)} symbols>"
