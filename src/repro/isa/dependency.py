"""Dependency extraction from programs.

The attack-graph construction tool (Section V-C, Figure 9) builds the edges of
the attack graph from *existing* dependencies: data dependencies, control
dependencies, address dependencies, memory (store-to-load) dependencies and
fences.  This module extracts them from a :class:`~repro.isa.program.Program`
by a simple static analysis over the instruction sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..core.edges import DependencyKind
from .instructions import Fence, Instruction
from .program import Program


@dataclass(frozen=True)
class InstructionDependency:
    """A dependency between two instructions, identified by their indices."""

    source: int
    target: int
    kind: DependencyKind
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.source} -> {self.target} [{self.kind.value}] {self.detail}".rstrip()


def register_data_dependencies(program: Program) -> List[InstructionDependency]:
    """Read-after-write register dependencies (true data dependencies)."""
    last_writer: Dict[str, int] = {}
    dependencies: List[InstructionDependency] = []
    for index, instruction in enumerate(program):
        for register in sorted(instruction.reads_registers()):
            writer = last_writer.get(register)
            if writer is not None:
                dependencies.append(
                    InstructionDependency(
                        writer, index, DependencyKind.DATA, detail=f"via {register}"
                    )
                )
        for register in instruction.writes_registers():
            last_writer[register] = index
    return dependencies


def address_dependencies(program: Program) -> List[InstructionDependency]:
    """Dependencies from the producer of an address register to the memory access.

    These are already covered by :func:`register_data_dependencies` (an
    address register is a read register), but they are reported separately
    with :data:`DependencyKind.ADDRESS` because the paper's send operation
    ("Load R to cache") is characterised by its *address* depending on the
    secret.
    """
    last_writer: Dict[str, int] = {}
    dependencies: List[InstructionDependency] = []
    for index, instruction in enumerate(program):
        operand = instruction.memory_read or instruction.memory_write
        if operand is not None:
            for register in sorted(operand.registers):
                writer = last_writer.get(register)
                if writer is not None:
                    dependencies.append(
                        InstructionDependency(
                            writer,
                            index,
                            DependencyKind.ADDRESS,
                            detail=f"address via {register}",
                        )
                    )
        for register in instruction.writes_registers():
            last_writer[register] = index
    return dependencies


def control_dependencies(program: Program) -> List[InstructionDependency]:
    """Control dependencies: each instruction depends on the closest prior branch."""
    dependencies: List[InstructionDependency] = []
    last_branch: Optional[int] = None
    for index, instruction in enumerate(program):
        if last_branch is not None:
            dependencies.append(
                InstructionDependency(
                    last_branch, index, DependencyKind.CONTROL, detail="post-branch"
                )
            )
        if instruction.is_branch:
            last_branch = index
    return dependencies


def memory_dependencies(program: Program) -> List[InstructionDependency]:
    """Potential store-to-load dependencies.

    A later load may depend on an earlier store when the two may alias.  With
    symbolic operands we use a conservative rule: same symbol means *may
    alias*; a store or load without a static symbol may alias anything.
    """
    dependencies: List[InstructionDependency] = []
    stores: List[Tuple[int, Optional[str]]] = []
    for index, instruction in enumerate(program):
        read = instruction.memory_read
        if read is not None:
            for store_index, store_symbol in stores:
                if store_symbol is None or read.symbol is None or store_symbol == read.symbol:
                    dependencies.append(
                        InstructionDependency(
                            store_index,
                            index,
                            DependencyKind.PROGRAM_ORDER,
                            detail="potential store-to-load aliasing",
                        )
                    )
        write = instruction.memory_write
        if write is not None:
            stores.append((index, write.symbol))
    return dependencies


def fence_dependencies(program: Program) -> List[InstructionDependency]:
    """Serialization edges introduced by fences.

    A fence orders every earlier instruction before itself and itself before
    every later instruction.  To keep the graph small we add edges from the
    instructions before the fence to the fence, and from the fence to the
    instructions after it (transitivity gives the rest).
    """
    dependencies: List[InstructionDependency] = []
    for index, instruction in enumerate(program):
        if not instruction.is_serializing:
            continue
        for earlier in range(index):
            dependencies.append(
                InstructionDependency(
                    earlier, index, DependencyKind.FENCE, detail="before fence"
                )
            )
        for later in range(index + 1, len(program)):
            dependencies.append(
                InstructionDependency(
                    index, later, DependencyKind.FENCE, detail="after fence"
                )
            )
    return dependencies


def all_dependencies(program: Program) -> List[InstructionDependency]:
    """Every dependency the hardware honours, across all categories."""
    dependencies = (
        register_data_dependencies(program)
        + address_dependencies(program)
        + control_dependencies(program)
        + memory_dependencies(program)
        + fence_dependencies(program)
    )
    # Deduplicate identical (source, target, kind) triples.
    seen: Set[Tuple[int, int, DependencyKind]] = set()
    unique: List[InstructionDependency] = []
    for dependency in dependencies:
        key = (dependency.source, dependency.target, dependency.kind)
        if key not in seen:
            seen.add(key)
            unique.append(dependency)
    return unique


def dependency_summary(program: Program) -> Dict[str, int]:
    """Count of dependencies per kind (useful for reports and tests)."""
    counts: Dict[str, int] = {}
    for dependency in all_dependencies(program):
        counts[dependency.kind.value] = counts.get(dependency.kind.value, 0) + 1
    return counts
