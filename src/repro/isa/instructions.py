"""Instructions of the tiny ISA.

The ISA is a deliberately small x86-64-flavoured instruction set, just rich
enough to express the paper's attack listings (Listing 1: Spectre v1,
Listing 2: Meltdown) and their variants: moves, loads/stores, ALU operations,
compares and branches, cache flushes, fences, privileged register reads,
floating-point register accesses, and a cycle counter read.

Every instruction reports the registers it reads and writes and whether it
reads or writes memory; this is what both the dependency analysis
(:mod:`repro.isa.dependency`) and the out-of-order pipeline
(:mod:`repro.uarch.pipeline`) consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple, Union

from .operands import FLAGS, Immediate, Label, MemoryOperand, Register

Source = Union[Register, Immediate, Label, MemoryOperand]

#: Condition codes supported by conditional branches.
CONDITIONS = ("ja", "jae", "jb", "jbe", "je", "jne", "jg", "jl")


@dataclass(frozen=True)
class Instruction:
    """Base class for all instructions."""

    #: Optional label attached to this instruction (branch target).
    label: Optional[str] = field(default=None, kw_only=True)
    #: Free-form comment carried through to reports and attack graphs.
    comment: str = field(default="", kw_only=True)

    # -- dataflow interface -------------------------------------------------
    @property
    def mnemonic(self) -> str:
        return type(self).__name__.lower()

    def reads_registers(self) -> FrozenSet[str]:
        """Register names whose values this instruction reads."""
        return frozenset()

    def writes_registers(self) -> FrozenSet[str]:
        """Register names this instruction writes."""
        return frozenset()

    @property
    def memory_read(self) -> Optional[MemoryOperand]:
        """The memory operand this instruction loads from, if any."""
        return None

    @property
    def memory_write(self) -> Optional[MemoryOperand]:
        """The memory operand this instruction stores to, if any."""
        return None

    # -- classification -----------------------------------------------------
    @property
    def is_load(self) -> bool:
        return self.memory_read is not None

    @property
    def is_store(self) -> bool:
        return self.memory_write is not None

    @property
    def is_branch(self) -> bool:
        return False

    @property
    def is_serializing(self) -> bool:
        """Fences and other instructions that serialize execution."""
        return False

    @property
    def is_privileged(self) -> bool:
        """Instructions requiring supervisor privilege (e.g. RDMSR)."""
        return False

    def describe(self) -> str:
        """One-line human readable rendering."""
        return repr(self)


def _source_registers(source: Source) -> FrozenSet[str]:
    if isinstance(source, Register):
        return frozenset({source.name})
    if isinstance(source, MemoryOperand):
        return source.registers
    return frozenset()


# ---------------------------------------------------------------------------
# Data movement
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Mov(Instruction):
    """Register <- register / immediate / symbol address."""

    dst: Register
    src: Union[Register, Immediate, Label]

    def reads_registers(self) -> FrozenSet[str]:
        return _source_registers(self.src)

    def writes_registers(self) -> FrozenSet[str]:
        return frozenset({self.dst.name})

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"mov {self.dst}, {self.src}"


@dataclass(frozen=True)
class Load(Instruction):
    """Register <- memory.  ``size`` is 1 or 8 bytes."""

    dst: Register
    address: MemoryOperand
    size: int = 8

    def reads_registers(self) -> FrozenSet[str]:
        return self.address.registers

    def writes_registers(self) -> FrozenSet[str]:
        return frozenset({self.dst.name})

    @property
    def memory_read(self) -> Optional[MemoryOperand]:
        return self.address

    def __str__(self) -> str:  # pragma: no cover - trivial
        prefix = "byte " if self.size == 1 else ""
        return f"mov {self.dst}, {prefix}{self.address}"


@dataclass(frozen=True)
class Store(Instruction):
    """Memory <- register / immediate.  ``size`` is 1 or 8 bytes."""

    address: MemoryOperand
    src: Union[Register, Immediate]
    size: int = 8

    def reads_registers(self) -> FrozenSet[str]:
        return self.address.registers | _source_registers(self.src)

    @property
    def memory_write(self) -> Optional[MemoryOperand]:
        return self.address

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"mov {self.address}, {self.src}"


# ---------------------------------------------------------------------------
# ALU
# ---------------------------------------------------------------------------
ALU_OPS = ("add", "sub", "and", "or", "xor", "shl", "shr", "imul")


@dataclass(frozen=True)
class Alu(Instruction):
    """Two-operand ALU operation ``dst = dst <op> src``."""

    op: str
    dst: Register
    src: Union[Register, Immediate]

    def __post_init__(self) -> None:
        if self.op not in ALU_OPS:
            raise ValueError(f"unknown ALU op {self.op!r}; expected one of {ALU_OPS}")

    @property
    def mnemonic(self) -> str:
        return self.op

    def reads_registers(self) -> FrozenSet[str]:
        return frozenset({self.dst.name}) | _source_registers(self.src)

    def writes_registers(self) -> FrozenSet[str]:
        return frozenset({self.dst.name, FLAGS})

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.op} {self.dst}, {self.src}"


@dataclass(frozen=True)
class Cmp(Instruction):
    """Compare and set flags.  The right-hand side may be a memory operand,
    which is how the Spectre v1 bounds check gets its *delayed* operand
    (``Array_Victim_Size`` not in the cache)."""

    lhs: Register
    rhs: Union[Register, Immediate, MemoryOperand]

    def reads_registers(self) -> FrozenSet[str]:
        return frozenset({self.lhs.name}) | _source_registers(self.rhs)

    def writes_registers(self) -> FrozenSet[str]:
        return frozenset({FLAGS})

    @property
    def memory_read(self) -> Optional[MemoryOperand]:
        return self.rhs if isinstance(self.rhs, MemoryOperand) else None

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"cmp {self.lhs}, {self.rhs}"


# ---------------------------------------------------------------------------
# Control flow
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Branch(Instruction):
    """Conditional branch on the flags register."""

    condition: str
    target: Label

    def __post_init__(self) -> None:
        if self.condition not in CONDITIONS:
            raise ValueError(f"unknown condition {self.condition!r}")

    @property
    def mnemonic(self) -> str:
        return self.condition

    def reads_registers(self) -> FrozenSet[str]:
        return frozenset({FLAGS})

    @property
    def is_branch(self) -> bool:
        return True

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.condition} {self.target}"


@dataclass(frozen=True)
class Jmp(Instruction):
    """Unconditional direct jump."""

    target: Label

    @property
    def is_branch(self) -> bool:
        return True

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"jmp {self.target}"


@dataclass(frozen=True)
class IndirectJmp(Instruction):
    """Indirect jump through a register (the Spectre v2 trigger)."""

    target: Register

    def reads_registers(self) -> FrozenSet[str]:
        return frozenset({self.target.name})

    @property
    def is_branch(self) -> bool:
        return True

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"jmp {self.target}"


@dataclass(frozen=True)
class Call(Instruction):
    """Direct call (pushes the return address onto the return stack)."""

    target: Label

    @property
    def is_branch(self) -> bool:
        return True

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"call {self.target}"


@dataclass(frozen=True)
class Ret(Instruction):
    """Return (pops the return stack; the Spectre-RSB trigger)."""

    @property
    def is_branch(self) -> bool:
        return True

    def __str__(self) -> str:  # pragma: no cover - trivial
        return "ret"


# ---------------------------------------------------------------------------
# Cache control, fences, timing
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Clflush(Instruction):
    """Flush the cache line containing the given address."""

    address: MemoryOperand

    def reads_registers(self) -> FrozenSet[str]:
        return self.address.registers

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"clflush {self.address}"


@dataclass(frozen=True)
class Fence(Instruction):
    """Serializing fence (``lfence`` or ``mfence``)."""

    kind: str = "lfence"

    def __post_init__(self) -> None:
        if self.kind not in ("lfence", "mfence"):
            raise ValueError(f"unknown fence kind {self.kind!r}")

    @property
    def mnemonic(self) -> str:
        return self.kind

    @property
    def is_serializing(self) -> bool:
        return True

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.kind


@dataclass(frozen=True)
class Rdtsc(Instruction):
    """Read the cycle counter into a register (used to time probe accesses)."""

    dst: Register

    def writes_registers(self) -> FrozenSet[str]:
        return frozenset({self.dst.name})

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"rdtsc {self.dst}"


# ---------------------------------------------------------------------------
# Privileged / special state
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Rdmsr(Instruction):
    """Read a model-specific (system) register -- requires supervisor privilege."""

    dst: Register
    msr: int

    def writes_registers(self) -> FrozenSet[str]:
        return frozenset({self.dst.name})

    @property
    def is_privileged(self) -> bool:
        return True

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"rdmsr {self.dst}, {self.msr:#x}"


@dataclass(frozen=True)
class FpLoad(Instruction):
    """Load a floating-point register from memory."""

    dst: Register
    address: MemoryOperand

    def __post_init__(self) -> None:
        if not self.dst.is_fp:
            raise ValueError("FpLoad destination must be an xmm register")

    def reads_registers(self) -> FrozenSet[str]:
        return self.address.registers

    def writes_registers(self) -> FrozenSet[str]:
        return frozenset({self.dst.name})

    @property
    def memory_read(self) -> Optional[MemoryOperand]:
        return self.address

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"movss {self.dst}, {self.address}"


@dataclass(frozen=True)
class FpExtract(Instruction):
    """Move the low bits of a floating-point register into a GP register.

    The first FP instruction in a new context is what triggers the LazyFP
    ownership check; reading the stale FP state is the illegal access.
    """

    dst: Register
    src: Register

    def __post_init__(self) -> None:
        if not self.src.is_fp:
            raise ValueError("FpExtract source must be an xmm register")
        if self.dst.is_fp:
            raise ValueError("FpExtract destination must be a GP register")

    def reads_registers(self) -> FrozenSet[str]:
        return frozenset({self.src.name})

    def writes_registers(self) -> FrozenSet[str]:
        return frozenset({self.dst.name})

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"movd {self.dst}, {self.src}"


@dataclass(frozen=True)
class Nop(Instruction):
    """No operation."""

    def __str__(self) -> str:  # pragma: no cover - trivial
        return "nop"


@dataclass(frozen=True)
class Halt(Instruction):
    """Stop the simulated program."""

    def __str__(self) -> str:  # pragma: no cover - trivial
        return "hlt"
