"""Operands of the tiny ISA: registers, immediates and memory references."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Union


#: General-purpose register names of the tiny ISA (x86-64 flavoured).
GP_REGISTERS = (
    "rax",
    "rbx",
    "rcx",
    "rdx",
    "rsi",
    "rdi",
    "rbp",
    "rsp",
    "r8",
    "r9",
    "r10",
    "r11",
    "r12",
    "r13",
    "r14",
    "r15",
)

#: The flags pseudo-register written by ``cmp`` and read by conditional branches.
FLAGS = "flags"

#: Floating-point registers (used by the LazyFP attack model).
FP_REGISTERS = tuple(f"xmm{i}" for i in range(8))

ALL_REGISTERS = GP_REGISTERS + (FLAGS,) + FP_REGISTERS


@dataclass(frozen=True)
class Register:
    """A register operand."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in ALL_REGISTERS:
            raise ValueError(f"unknown register {self.name!r}")

    @property
    def is_fp(self) -> bool:
        return self.name.startswith("xmm")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True)
class Immediate:
    """An immediate (constant) operand."""

    value: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.value:#x}" if abs(self.value) > 9 else str(self.value)


@dataclass(frozen=True)
class Label:
    """A symbolic code or data label operand."""

    name: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True)
class MemoryOperand:
    """A memory reference ``[base + index*scale + displacement]``.

    ``symbol`` optionally names a data symbol whose address is added to the
    effective address (resolved by the :class:`~repro.isa.program.Program`'s
    data layout).
    """

    base: Optional[Register] = None
    index: Optional[Register] = None
    scale: int = 1
    displacement: int = 0
    symbol: Optional[str] = None

    def __post_init__(self) -> None:
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"scale must be 1, 2, 4 or 8, got {self.scale}")
        if self.base is None and self.index is None and self.symbol is None:
            raise ValueError("memory operand needs a base, an index or a symbol")

    @property
    def registers(self) -> FrozenSet[str]:
        """Register names read to form the effective address."""
        names = set()
        if self.base is not None:
            names.add(self.base.name)
        if self.index is not None:
            names.add(self.index.name)
        return frozenset(names)

    def __str__(self) -> str:  # pragma: no cover - trivial
        parts = []
        if self.symbol:
            parts.append(self.symbol)
        if self.base is not None:
            parts.append(self.base.name)
        if self.index is not None:
            term = self.index.name if self.scale == 1 else f"{self.index.name}*{self.scale}"
            parts.append(term)
        if self.displacement:
            parts.append(str(self.displacement))
        return "[" + " + ".join(parts) + "]"


Operand = Union[Register, Immediate, Label, MemoryOperand]


def reg(name: str) -> Register:
    """Shorthand constructor for a register operand."""
    return Register(name)


def imm(value: int) -> Immediate:
    """Shorthand constructor for an immediate operand."""
    return Immediate(value)


def mem(
    base: Optional[str] = None,
    index: Optional[str] = None,
    scale: int = 1,
    displacement: int = 0,
    symbol: Optional[str] = None,
) -> MemoryOperand:
    """Shorthand constructor for a memory operand."""
    return MemoryOperand(
        base=Register(base) if base else None,
        index=Register(index) if index else None,
        scale=scale,
        displacement=displacement,
        symbol=symbol,
    )
