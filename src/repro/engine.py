"""The unified ``Engine`` session API: one declarative run-plan spine.

Every analysis in the library -- the Figure 9 program tool, the defense x
attack matrix, the Section V-A attack-space synthesis, the end-to-end
exploit harness and the cycle-accurate timing plane -- is one *scenario*:
a point (or grid of points) in the attack x defense x timing-model x
channel x secret space.  The engine executes scenarios through a single
spine:

* :meth:`Engine.run` takes a :class:`~repro.scenario.ScenarioSpec` (kind
  ``analyze`` / ``evaluate`` / ``exploit`` / ``simulate`` / ``patch`` /
  ``matrix`` / ``synthesize`` / ``exploit_suite`` / ``simulate_sweep`` /
  ``validate_timing`` / ``window_ablation`` / ``ablation``) and returns one
  :class:`Result` envelope.  Before executing, the spec's content hash is
  looked up in the session's :class:`~repro.store.ArtifactStore` (pass
  ``store=DiskStore()`` for a cache that survives the process -- the second
  CLI/CI invocation of an identical spec is served from
  ``~/.cache/repro/``); after executing, the envelope is persisted back.
* :meth:`Engine.run_grid` takes a :class:`~repro.scenario.ScenarioGrid`
  (cartesian axes over a base spec, or an explicit point list), serves warm
  points from the store, shards the misses over :meth:`Engine.map`'s
  process pool, and aggregates one envelope.  A new sweep axis is one
  ``axes`` entry -- not one new Engine method.

Beneath the spec layer the session keeps its **content-addressed artifact
caches** (:meth:`build` / :meth:`analyze` keyed on
:meth:`Program.content_hash() <repro.isa.program.Program.content_hash>`,
``(defense, variant)``-keyed evaluations, ``(source, delay, channel)``-keyed
synthesized graphs, ``(attack, config, secret, model)``-keyed timing
simulations), all bounded (``cache_limit``), observable (:meth:`stats`) and
droppable (:meth:`invalidate`), and its **execution plane**
(:meth:`Engine.map`: a session-owned process pool with a deterministic
serial fallback; parallel output is byte-identical to serial output).

The named methods (:meth:`analyze`, :meth:`evaluate_matrix`,
:meth:`simulate_sweep`, :meth:`ablate_window`, ...) survive as thin shims
that build the equivalent spec and call :meth:`run` -- prefer specs in new
code.  The legacy free functions (:func:`repro.graphtool.analyze_program`,
:func:`repro.defenses.evaluate_defense`, ...) delegate to the module-wide
:func:`default_engine`.
"""

from __future__ import annotations

import copy
import json
import pickle
import random
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    as_completed,
    wait,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from functools import partial
from pickle import PicklingError
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from .attacks.base import (
    AttackVariant,
    CovertChannelKind,
    DelayMechanism,
    SecretSource,
)
from .attacks.generator import (
    SynthesizedAttack,
    enumerate_attack_space,
    published_keys,
    refresh_published_cache,
)
from .core.attack_graph import AttackGraph
from .core.security_dependency import ProtectionPoint
from .defenses.base import Defense
from .graphtool.analyzer import AnalysisReport, analyze_build
from .graphtool.builder import AttackGraphBuilder, BuildResult
from .graphtool.expansion import expansion_for
from .isa.program import Program
from .scenario import (
    ScenarioGrid,
    ScenarioSpec,
    decode_attack_variant,
    decode_axis_enums,
    decode_config,
    decode_defense,
    decode_model,
    decode_points,
    decode_program,
    decode_secret,
    decode_sim_defense,
    decode_sim_defenses,
)
from .obs.metrics import MetricsRegistry
from .obs.trace import Span, TraceContext, Tracer
from .store import ArtifactStore, store_from_ref, store_ref
from .uarch.timing.scheduler import CONTENDED_MODEL, SERIALIZED_MODEL

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .faults import FaultPlan

T = TypeVar("T")
R = TypeVar("R")


# ---------------------------------------------------------------------------
# Result envelope
# ---------------------------------------------------------------------------
@dataclass
class Result:
    """Uniform JSON-serializable envelope around one analysis outcome.

    ``kind`` is one of ``analyze`` / ``evaluate`` / ``synthesize`` /
    ``exploit`` / ``simulate`` / ``patch`` / ``ablation`` /
    ``window_ablation`` (grids add ``<kind>_grid``); ``ok`` is the
    headline boolean of that kind (program safe, defense effective, sweep
    complete, secret recovered, squash beat the transmit); ``cache`` records
    whether the result came from a cold build, a warm cache hit, or a
    non-cached computation; ``data`` is plain JSON-serializable content and
    ``payload`` the rich library object (``AnalysisReport``,
    ``DefenseEvaluation`` list, ...) for programmatic callers.
    """

    kind: str
    subject: str
    ok: bool
    cache: str
    data: Dict[str, object]
    payload: object = field(default=None, repr=False, compare=False)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "subject": self.subject,
            "ok": self.ok,
            "cache": self.cache,
            "data": self.data,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True, default=str)


# ---------------------------------------------------------------------------
# Fault-tolerant grid execution: policy, streaming points, quarantine
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FailurePolicy:
    """How a grid survives misbehaving points (``Engine(policy=...)``).

    With a policy set, grid misses execute as *per-point* pool tasks under
    supervision instead of contiguous shards:

    * ``timeout`` -- wall-clock seconds a point may run before its worker
      is presumed hung; the pool is killed and the point retried in
      isolation.  ``None`` disables the clock.  A pure-serial engine
      (no pool available) cannot preempt in-process work, so timeouts are
      only enforceable across a process boundary.
    * ``retries`` -- extra attempts a failing point gets, each in an
      isolated single-inflight pool task so an innocent neighbour never
      burns the budget of the point that actually killed the worker.
    * ``backoff`` / ``backoff_cap`` / ``jitter`` -- exponential delay
      between attempts (``backoff * 2**(attempt-1)``, capped, +/- jitter
      fraction drawn from a ``seed``-ed RNG -- deterministic per session).
    * ``quarantine`` -- exhausted points become first-class
      ``Result(kind="error")`` envelopes (never checkpointed, so a
      ``--resume`` retries them) instead of aborting the campaign;
      ``False`` raises :class:`GridPointFailed`.

    Without a policy (the default) grids run the legacy contiguous-shard
    plane with byte-identical envelopes and fail-fast semantics.
    """

    timeout: Optional[float] = None
    retries: int = 2
    backoff: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.25
    quarantine: bool = True
    seed: int = 0


class GridPointFailed(RuntimeError):
    """A grid point exhausted its retry budget under ``quarantine=False``."""


@dataclass(frozen=True)
class GridPoint:
    """One streamed grid point: its expansion index, spec and envelope."""

    index: int
    spec: ScenarioSpec
    result: Result


def _failure_info(exc: BaseException, note: Optional[str] = None) -> Tuple[str, str]:
    """(error type, message) of a point failure, for the error envelope."""
    return (type(exc).__name__, note if note is not None else str(exc))


def _error_envelope(
    spec: ScenarioSpec, failure: Tuple[str, str], attempts: int
) -> Result:
    """The quarantine envelope of a point that survived no attempt."""
    error, message = failure
    return Result(
        kind="error",
        subject=spec.describe(),
        ok=False,
        cache="none",
        data={
            "kind": spec.kind,
            "error": error,
            "message": message,
            "attempts": attempts,
            "quarantined": True,
        },
    )


# ---------------------------------------------------------------------------
# Process-pool shard workers (module-level so they pickle by reference)
# ---------------------------------------------------------------------------
#: A picklable (root, version, max_entries) reference to a DiskStore (or
#: ``None``).  Call sites bind it once per shard with ``functools.partial``
#: so worker engines join the same persistent cache as the parent session.
StoreRef = Optional[Tuple[str, str, Optional[int]]]


def _synth_shard_worker(
    ref: StoreRef, keys: Sequence[Tuple[str, str, str]]
) -> List[Dict[str, object]]:
    """Compute sweep rows for one shard of the attack space.

    Each worker builds its own serial ``Engine`` so structurally identical
    combinations within the shard share one graph build and leak check.
    """
    engine = Engine(store=store_from_ref(ref))
    return [
        engine._synth_row(
            SynthesizedAttack(SecretSource[s], DelayMechanism[d], CovertChannelKind[c])
        )
        for s, d, c in keys
    ]


def _matrix_shard_worker(
    ref: StoreRef, pairs: Sequence[Tuple[Defense, AttackVariant]]
) -> List["DefenseEvaluation"]:
    engine = Engine(store=store_from_ref(ref))
    return [engine.evaluate(defense, variant).payload for defense, variant in pairs]


def _novel_shard_worker(
    keys: Sequence[Tuple[str, str, str]]
) -> List[Tuple[str, str, str]]:
    published = published_keys()
    return [key for key in keys if key not in published]


def _exploit_shard_worker(
    items: Sequence[Tuple[str, object, int]]
) -> List["ExploitResult"]:
    from .exploits.harness import EXPLOITS
    from .uarch.config import DEFAULT_CONFIG

    results = []
    for name, config, secret in items:
        runner = EXPLOITS[name]
        results.append(runner(config if config is not None else DEFAULT_CONFIG, secret))
    return results


def _simulate_shard_worker(
    ref: StoreRef,
    items: Sequence[Tuple[str, Tuple[str, ...], Optional[int], "TimingModel"]],
) -> List["ExploitResult"]:
    """Run timing simulations for one shard of a sweep or window ablation."""
    from .uarch.defenses import SimDefense

    engine = Engine(store=store_from_ref(ref))
    return [
        engine.simulate(
            attack,
            defenses=[SimDefense[name] for name in defense_names],
            secret=secret,
            model=model,
        ).payload
        for attack, defense_names, secret, model in items
    ]


def _decode_simulate_point(spec: ScenarioSpec) -> Tuple:
    """Decode one ``simulate`` spec to ``(attack, scenario, config, secret, model)``.

    Shared by the per-point executor, the batch dedupe pass and the batch
    worker so every plane resolves a point to the *same* simulation-cache
    key -- the registry aliases (MDS siblings, Foreshadow deployments)
    collapse identically everywhere.
    """
    from .uarch.config import DEFAULT_CONFIG
    from .uarch.timing.scheduler import DEFAULT_MODEL
    from .uarch.timing.validate import SCENARIOS

    attack = spec.get("attack")
    scenario = SCENARIOS.get(attack, attack)
    config = decode_config(spec.get("config"))
    base = config if config is not None else DEFAULT_CONFIG
    defenses = decode_sim_defenses(spec.get("defenses"))
    run_config = base.with_defenses(*defenses) if defenses else base
    model = decode_model(spec.get("model"))
    run_model = model if model is not None else DEFAULT_MODEL
    secret = decode_secret(spec.get("secret"))
    return attack, scenario, run_config, secret, run_model


#: The parameters one ``simulate_batch`` point may carry -- exactly the
#: ``simulate`` spec surface, so a point hashes to the spec the same call
#: would produce through :meth:`Engine.simulate`.
_BATCH_POINT_PARAMS = frozenset({"attack", "defenses", "config", "secret", "model"})


def _batch_point_spec(
    point: object,
    secret: Optional[object] = None,
    model: Optional[object] = None,
) -> ScenarioSpec:
    """One batch entry as its equivalent per-point ``simulate`` spec.

    A bare string is an attack name; a mapping may carry any ``simulate``
    parameter, with the batch-level ``secret``/``model`` as defaults.  The
    resulting spec is content-identical to what the same point would
    produce through :meth:`Engine.simulate` -- the envelope-identity
    contract of the batch plane.
    """
    if isinstance(point, str):
        point = {"attack": point}
    if not isinstance(point, Mapping):
        raise TypeError(
            "batch point must be an attack name or a mapping of simulate "
            f"parameters, got {type(point).__name__}"
        )
    unknown = set(point) - _BATCH_POINT_PARAMS
    if unknown:
        raise ValueError(
            f"unknown batch point parameters: {', '.join(sorted(map(str, unknown)))}"
        )
    if not point.get("attack"):
        raise ValueError("batch point needs an 'attack'")
    merged = dict(point)
    merged.setdefault("secret", secret)
    merged.setdefault("model", model)
    return ScenarioSpec("simulate", **merged)


def _simulate_batch_worker(
    ref: StoreRef,
    faults: Optional["FaultPlan"],
    ctx: Optional[TraceContext],
    specs: Sequence[ScenarioSpec],
) -> List[Tuple["ExploitResult", List[Dict[str, object]]]]:
    """Serve one sublist of ``simulate`` points from a single warm engine.

    Unlike :func:`_simulate_shard_worker` (stateless tuples), the whole
    sublist shares one worker :class:`Engine`: the simulation cache and the
    TSG-verdict memo are built once and reused across every point of the
    shard.  Store / fault / trace semantics match the supervised per-point
    plane: each point checkpoints its envelope through the shared store
    ref, honors the shipped :class:`~repro.faults.FaultPlan`, and runs
    under its own ``worker.point`` span whose records ride back with the
    payload -- one ``(payload, spans)`` pair per point, so the shards
    concatenate exactly like every other ``_run_sharded`` worker.
    """
    tracer = _worker_tracer(ctx)
    engine = Engine(store=store_from_ref(ref), faults=faults, tracer=tracer)
    items: List[Tuple["ExploitResult", List[Dict[str, object]]]] = []
    for spec in specs:
        if tracer is None:
            items.append((engine.run(spec).payload, []))
            continue
        with tracer.span(
            "worker.point", parent=ctx, kind=spec.kind, key=spec.content_hash()[:12]
        ):
            payload = engine.run(spec).payload
        items.append((payload, tracer.drain()))
    return items


def _worker_tracer(ctx: Optional[TraceContext]) -> Optional[Tracer]:
    """A collect-mode tracer joined to the shipped trace context.

    Pool workers cannot append to the parent's JSONL sink (interleaved
    buffers across processes would corrupt parentage ordering), so they
    collect finished span records in memory and return them *with* their
    results; the parent absorbs them into its own sink.
    """
    if ctx is None:
        return None
    return Tracer(sink=None, trace_id=ctx.trace_id)


def _spec_shard_worker(
    ref: StoreRef,
    faults: Optional["FaultPlan"],
    ctx: Optional[TraceContext],
    specs: Sequence[ScenarioSpec],
) -> Tuple[List[Result], List[Dict[str, object]]]:
    """Execute one shard of a generic scenario grid.

    Each worker builds its own serial ``Engine``; with a disk-backed store
    reference the worker joins the parent's persistent cache, so repeated
    grids are warm across processes -- and every completed point is a
    durable checkpoint the moment its envelope is persisted.

    Returns ``(results, spans)``: when a :class:`TraceContext` was shipped
    the worker's ``worker.point`` spans (and everything nested under them)
    ride back for the parent tracer to absorb; otherwise ``spans`` is empty.
    """
    tracer = _worker_tracer(ctx)
    engine = Engine(store=store_from_ref(ref), faults=faults, tracer=tracer)
    if tracer is None:
        return [engine.run(spec) for spec in specs], []
    results = []
    for spec in specs:
        with tracer.span(
            "worker.point", parent=ctx, kind=spec.kind, key=spec.content_hash()[:12]
        ):
            results.append(engine.run(spec))
    return results, tracer.drain()


def _point_worker(
    ref: StoreRef,
    faults: Optional["FaultPlan"],
    ctx: Optional[TraceContext],
    spec: ScenarioSpec,
) -> Tuple[Result, List[Dict[str, object]]]:
    """Execute a single grid point: the failure-policy execution unit.

    One point per pool task keeps blame assignment exact -- when a worker
    dies or wedges, the supervisor knows precisely which spec it was
    holding, retries it in isolation and quarantines only that point.
    Returns ``(result, spans)`` exactly like :func:`_spec_shard_worker`.
    """
    tracer = _worker_tracer(ctx)
    engine = Engine(store=store_from_ref(ref), faults=faults, tracer=tracer)
    if tracer is None:
        return engine.run(spec), []
    with tracer.span(
        "worker.point", parent=ctx, kind=spec.kind, key=spec.content_hash()[:12]
    ):
        result = engine.run(spec)
    return result, tracer.drain()


#: (ROB entries, reservation stations) points of the window-length ablation:
#: shrinking the window is the paper's ROB/RS ablation, in measured cycles.
#: The smallest points actually bind on the exploit corpus -- at (4, 2) the
#: Spectre v1 send can no longer issue ahead of the stalled bounds check and
#: the measured race flips from leak to safe.
DEFAULT_WINDOW_GRID: Tuple[Tuple[int, int], ...] = (
    (4, 2),
    (8, 4),
    (16, 8),
    (48, 24),
    (192, 64),
)

def _port_overrides(model: "TimingModel") -> Dict[str, Optional[int]]:
    """The bounded port/CDB fields of a reference model, as ablation overrides."""
    fields = ("alu_ports", "load_store_ports", "branch_ports", "mul_ports", "cdb_width")
    return {
        name: getattr(model, name)
        for name in fields
        if getattr(model, name) is not None
    }


#: Port configurations swept by the window-length ablation: the PR-3
#: unlimited machine, the realistic contended core (Theorem 1 agrees for
#: every registry attack) and the maximally serialized one (collapsed
#: memory-level parallelism closes some races -- e.g. Spectre v2's).  The
#: override dicts are derived from the exported reference models so the
#: ablation cannot drift from ``repro simulate --contended``.
DEFAULT_PORT_CONFIGS: Tuple[Tuple[str, Dict[str, Optional[int]]], ...] = (
    ("unbounded", {}),
    ("contended", _port_overrides(CONTENDED_MODEL)),
    ("serialized", _port_overrides(SERIALIZED_MODEL)),
)


#: Per-(source, delay) structural verdict fields shared across channel twins.
_VERDICT_FIELDS = (
    "leaks",
    "vulnerabilities",
    "racing_pairs",
    "vertices",
    "edges",
    "meltdown_type",
)


def _picklable(payload: object) -> bool:
    """Probe whether work can cross the process boundary.

    CPython signals unpicklable objects with a zoo of exception types
    (PicklingError, TypeError, AttributeError, ...), so the probe catches
    everything -- a failed probe simply routes the work to the serial path
    before anything is submitted to the pool.
    """
    try:
        pickle.dumps(payload)
    except Exception:
        return False
    return True


def _warm_envelope(cached: Result, aliased: bool) -> Result:
    """A warm copy of a stored envelope.

    When the store ``aliased`` the held object (a
    :class:`~repro.store.MemoryStore` hands back the very object it keeps),
    ``data`` is deep-copied so callers can mutate it freely (the documented
    envelope contract) without poisoning the stored entry.  Serializing
    stores already returned a private copy -- no extra work.
    """
    data = copy.deepcopy(cached.data) if aliased else cached.data
    return replace(cached, cache="warm", data=data)


def _store_snapshot(result: Result, aliased: bool) -> Result:
    """The envelope as persisted: decoupled from the caller when aliased."""
    if not aliased:
        return result
    return replace(result, data=copy.deepcopy(result.data))


def _shards(items: List[T], count: int) -> List[List[T]]:
    """Split ``items`` into at most ``count`` contiguous, order-preserving shards."""
    count = max(1, min(count, len(items)))
    size, remainder = divmod(len(items), count)
    shards: List[List[T]] = []
    start = 0
    for i in range(count):
        end = start + size + (1 if i < remainder else 0)
        shards.append(items[start:end])
        start = end
    return shards


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------
class Engine:
    """Stateful session facade: declare the scenario, the engine runs it.

    ``parallel`` sets the default worker count for grid execution; every
    grid method also accepts a per-call ``parallel=`` override.
    ``parallel=None`` (or 1) means deterministic serial execution
    in-process.

    ``cache_limit`` bounds every in-memory artifact cache to that many
    entries (oldest-inserted evicted first), so long-running batch consumers
    of the legacy free functions -- which share the process-global default
    engine -- cannot grow memory without bound.  ``cache_limit=None``
    disables eviction.

    ``store`` plugs in a spec-level :class:`~repro.store.ArtifactStore`:
    every :meth:`run` envelope is keyed by its spec's content hash, checked
    before executing and persisted after.  A
    :class:`~repro.store.DiskStore` makes the cache survive the process --
    a second CLI or CI invocation of the same spec is one pickle load.
    ``store=None`` (the default) disables the spec layer; the in-memory
    artifact caches below it always apply.
    """

    #: Default per-cache entry bound (FIFO eviction beyond this).
    DEFAULT_CACHE_LIMIT = 4096

    #: Fault-tolerance event vocabulary of ``stats()["grid"]`` -- every
    #: event is materialized at zero so campaign dashboards always see the
    #: full schema.
    GRID_EVENTS = (
        "resumed",
        "retried",
        "quarantined",
        "timeouts",
        "pool_respawns",
        "serial_degradations",
    )

    def __init__(
        self,
        parallel: Optional[int] = None,
        cache_limit: Optional[int] = DEFAULT_CACHE_LIMIT,
        store: Optional[ArtifactStore] = None,
        policy: Optional[FailurePolicy] = None,
        faults: Optional["FaultPlan"] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.parallel = parallel
        self.cache_limit = cache_limit
        self.store = store
        #: Optional :class:`FailurePolicy` supervising grid execution.
        #: ``None`` keeps the legacy fail-fast shard plane (byte-identical
        #: envelopes); a policy switches misses to supervised per-point
        #: tasks with timeout / retry / quarantine semantics.
        self.policy = policy
        #: Optional :class:`~repro.faults.FaultPlan`: deterministic fault
        #: injection, threaded to worker engines with the work.
        self.faults = faults
        #: Optional :class:`~repro.obs.Tracer`.  ``None`` (the default) is
        #: the zero-instrumentation fast path; a tracer threads spans from
        #: ``run``/``iter_grid`` down into pool workers (contexts shipped
        #: with the work, worker spans harvested back with the results).
        self.tracer = tracer
        #: The session's unified metrics registry: cache hit/miss, run and
        #: grid-campaign counters live here; ``stats()`` is a compatibility
        #: shim over it, and the service's ``/metrics`` endpoint renders it.
        self.metrics = MetricsRegistry()
        self._cache_events = self.metrics.counter(
            "repro_engine_cache_requests_total",
            "Artifact-cache lookups by cache and outcome.",
            labelnames=("cache", "outcome"),
        )
        self._runs_total = self.metrics.counter(
            "repro_engine_runs_total",
            "Scenario executions routed through Engine.run, by spec kind.",
            labelnames=("kind",),
        )
        self._grid_events = self.metrics.counter(
            "repro_engine_grid_events_total",
            "Fault-tolerance events observed by grid campaigns.",
            labelnames=("event",),
        )
        for event in self.GRID_EVENTS:
            self._grid_events.touch(event=event)
        self._store_ops = self.metrics.counter(
            "repro_engine_store_ops_total",
            "Artifact-store operations, synced from the store's own ledger "
            "on scrape (the store stays registry-free so pool workers are "
            "born light).",
            labelnames=("op",),
        )
        self._store_entries = self.metrics.gauge(
            "repro_engine_store_entries",
            "Entries currently held by the artifact store.",
        )
        self._store_bytes = self.metrics.gauge(
            "repro_engine_store_bytes",
            "Bytes currently held by the artifact store (disk stores only).",
        )
        self.metrics.register_collector(self._sync_store_metrics)
        self._builds: Dict[Tuple, BuildResult] = {}
        self._analyses: Dict[Tuple, AnalysisReport] = {}
        #: Keyed on the (frozen) Defense / AttackVariant objects themselves, so
        #: a customized defense sharing a catalog key cannot alias a stale entry.
        self._evaluations: Dict[Tuple[Defense, AttackVariant], "DefenseEvaluation"] = {}
        self._synth_graphs: Dict[Tuple[str, str, str], AttackGraph] = {}
        self._synth_verdicts: Dict[Tuple[str, str], Dict[str, object]] = {}
        #: Timing simulations keyed on (attack, config, secret, model) -- the
        #: config and model are frozen dataclasses, so the key is the full
        #: content of the run.
        self._simulations: Dict[Tuple, "ExploitResult"] = {}
        #: Theorem-1 TSG verdicts per registry attack.  The verdict is a pure
        #: function of the (frozen) registry variant, so one graph build per
        #: attack serves every undefended simulation row of the session --
        #: the dominant cost of a warm ``simulate`` serve without it.
        self._tsg_verdicts: Dict[str, Optional[bool]] = {}
        #: Decoded ``simulate`` points keyed on their raw spec parameters:
        #: the defense/config/model decode runs once per distinct point per
        #: session instead of once per serve -- the warm context that makes
        #: batch campaigns cheap.  Values are what
        #: :func:`_decode_simulate_point` returns.
        self._point_decodes: Dict[Tuple, Tuple] = {}
        self._executor: Optional[ProcessPoolExecutor] = None
        self._executor_workers = 0
        self._closed = False
        #: Named external counter providers merged into :meth:`stats` --
        #: the analysis service registers itself here so one ``stats()``
        #: call reports engine *and* service counters in one document.
        self._stats_providers: Dict[str, Callable[[], Dict[str, object]]] = {}

    # -- cache plumbing -----------------------------------------------------
    @staticmethod
    def program_key(
        program: Program, protected_symbols: Optional[Sequence[str]] = None
    ) -> Tuple[str, Tuple[str, ...]]:
        """Content-addressed cache key of a program + extra protected symbols."""
        return (program.content_hash(), tuple(sorted(protected_symbols or ())))

    def _record(self, cache: str, hit: bool) -> None:
        self._cache_events.inc(cache=cache, outcome="hit" if hit else "miss")

    def _grid_event(self, event: str, amount: int = 1) -> None:
        self._grid_events.inc(amount, event=event)

    def _sync_store_metrics(self) -> None:
        """Pull the store's counter ledger into the registry (pre-render)."""
        if self.store is None:
            return
        stats = self.store.stats()
        for op in ("hits", "misses", "puts", "put_failures", "evictions"):
            if op in stats:
                self._store_ops.set_to(stats[op], op=op)
        self._store_entries.set(stats.get("entries", 0))
        if "bytes" in stats:
            self._store_bytes.set(stats["bytes"])

    def _active_tracer(self) -> Optional[Tracer]:
        """The session tracer, or ``None`` when tracing is off/disabled."""
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            return tracer
        return None

    def _store(self, store: Dict, key: object, value: T) -> T:
        """Insert into a cache, evicting the oldest entry beyond the limit."""
        if self.cache_limit is not None and len(store) >= self.cache_limit:
            store.pop(next(iter(store)))
        store[key] = value
        return value

    def _stores(self) -> Dict[str, Dict]:
        """The cache registry shared by :meth:`stats` and :meth:`invalidate`."""
        return {
            "builds": self._builds,
            "analyses": self._analyses,
            "evaluations": self._evaluations,
            "synth_graphs": self._synth_graphs,
            "synth_verdicts": self._synth_verdicts,
            "simulations": self._simulations,
            "tsg_verdicts": self._tsg_verdicts,
        }

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Hit / miss / entry counts per cache, spec-run counts per kind,
        the artifact-store counters, and the shared expansion cache.

        A compatibility shim since the observability refactor: the counters
        live in :attr:`metrics` (one registry, also rendered as Prometheus
        text by the service's ``/metrics``), and this method synthesizes the
        historical dict shape from the same series -- byte-identical to the
        pre-registry payloads.
        """
        report = {
            name: {
                "entries": len(store),
                "hits": self._cache_events.value(cache=name, outcome="hit"),
                "misses": self._cache_events.value(cache=name, outcome="miss"),
            }
            for name, store in self._stores().items()
        }
        info = expansion_for.cache_info()
        report["expansions"] = {
            "entries": info.currsize,
            "hits": info.hits,
            "misses": info.misses,
        }
        report["runs"] = dict(
            sorted((kind, count) for (kind,), count in self._runs_total.series().items())
        )
        report["grid"] = {
            event: self._grid_events.value(event=event) for event in self.GRID_EVENTS
        }
        if self.store is not None:
            report["store"] = self.store.stats()
        for name, provider in list(self._stats_providers.items()):
            report[name] = dict(provider())
        return report

    def register_stats(
        self, name: str, provider: Callable[[], Dict[str, object]]
    ) -> None:
        """Merge ``provider()`` into every :meth:`stats` report under ``name``.

        Reserved section names (``runs`` / ``grid`` / ``store`` / the cache
        names) are refused -- a provider must not shadow engine counters.
        """
        reserved = set(self._stores()) | {"expansions", "runs", "grid", "store"}
        if name in reserved:
            raise ValueError(f"stats section {name!r} is reserved by the engine")
        self._stats_providers[name] = provider

    def unregister_stats(self, name: str) -> None:
        self._stats_providers.pop(name, None)

    def stats_snapshot(self) -> Dict[str, Dict[str, int]]:
        """A deep copy of :meth:`stats`, safe to keep as a window baseline."""
        return copy.deepcopy(self.stats())

    @staticmethod
    def stats_delta(
        before: Mapping[str, object], after: Mapping[str, object]
    ) -> Dict[str, object]:
        """Per-window counters: ``after - before``, recursively.

        Numeric leaves are differenced (a counter absent from ``before``
        counts from zero), nested mappings recurse, and non-numeric leaves
        pass through from ``after``.  ``stats_delta(snapshot, stats())``
        is the canonical "what happened since" report -- the service's
        ``/stats`` window uses exactly this.
        """
        delta: Dict[str, object] = {}
        for key, value in after.items():
            previous = before.get(key) if isinstance(before, Mapping) else None
            if isinstance(value, Mapping):
                delta[key] = Engine.stats_delta(
                    previous if isinstance(previous, Mapping) else {}, value
                )
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                baseline = (
                    previous
                    if isinstance(previous, (int, float))
                    and not isinstance(previous, bool)
                    else 0
                )
                delta[key] = value - baseline
            else:
                delta[key] = value
        return delta

    def invalidate(self, cache: Optional[str] = None) -> int:
        """Drop cached artifacts; returns the number of entries removed.

        ``cache`` selects one cache (``builds`` / ``analyses`` /
        ``evaluations`` / ``synth_graphs`` / ``synth_verdicts`` /
        ``simulations``, plus ``store`` when a spec-level artifact store is
        plugged in); ``None``
        clears everything, including the registry's published-key index and
        the shared micro-op expansion cache, and also shuts down the worker
        pool (forked workers snapshot the parent at pool creation, so a
        registry mutation would otherwise be invisible to them) -- use after
        mutating the attack registry or the defense catalog.
        """
        stores = self._stores()
        if cache is not None:
            if cache == "store" and self.store is not None:
                return self.store.clear()
            try:
                store = stores[cache]
            except KeyError as exc:
                known = sorted(stores)
                if self.store is not None:
                    known.append("store")
                raise KeyError(
                    f"unknown cache {cache!r}; known: {', '.join(sorted(known))}"
                ) from exc
            dropped = len(store)
            store.clear()
            return dropped
        dropped = sum(len(store) for store in stores.values())
        for store in stores.values():
            store.clear()
        if self.store is not None:
            dropped += self.store.clear()
        refresh_published_cache()
        expansion_for.cache_clear()
        self._shutdown_pool()
        return dropped

    # -- execution plane ----------------------------------------------------
    def _workers(self, parallel: Optional[int]) -> int:
        if parallel is None:
            parallel = self.parallel
        return max(1, parallel or 1)

    def _pool(self, workers: int) -> ProcessPoolExecutor:
        if self._executor is None or self._executor_workers < workers:
            if self._executor is not None:
                self._executor.shutdown()
            self._executor = ProcessPoolExecutor(max_workers=workers)
            self._executor_workers = workers
        return self._executor

    def _try_pool(self, workers: int) -> Optional[ProcessPoolExecutor]:
        """The session pool, or ``None`` when the platform cannot fork one
        (or the session was closed -- a closed engine never respawns)."""
        if self._closed:
            return None
        try:
            return self._pool(workers)
        except OSError:
            return None

    def _shutdown_pool(self) -> None:
        """Drop the worker pool (a later parallel call may spawn a fresh one)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
            self._executor_workers = 0

    def _kill_pool(self) -> None:
        """Terminate worker processes and drop the pool *without waiting*.

        The graceful :meth:`_shutdown_pool` joins every worker -- which
        deadlocks when the reason for shutting down is a hung or dying
        worker.  This path SIGTERMs the workers first and never waits; a
        later parallel call respawns a fresh pool.
        """
        executor = self._executor
        self._executor = None
        self._executor_workers = 0
        if executor is None:
            return
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # pragma: no cover - process already reaped
                pass
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - broken executor internals
            pass

    def halt(self) -> None:
        """End the session *now*: terminate workers, never wait.

        The Ctrl-C path -- :meth:`close` would join a possibly hung pool.
        Completed grid points already persisted through the artifact store
        stay durable; everything in flight is abandoned.
        """
        self._kill_pool()
        self._closed = True

    def close(self) -> None:
        """End the session: shut the pool down for good (caches are kept).

        A closed engine still answers serial calls (parallel requests fall
        back to the deterministic serial path) but never spawns a new pool,
        and :func:`default_engine` will not hand out a closed session --
        the next caller gets a fresh one.
        """
        self._shutdown_pool()
        if self.tracer is not None:
            self.tracer.flush()
        self._closed = True

    @property
    def closed(self) -> bool:
        """``True`` once :meth:`close` has ended this session."""
        return self._closed

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        parallel: Optional[int] = None,
    ) -> List[R]:
        """Order-preserving map over ``items``, sharded across the pool.

        With ``parallel`` (or the session default) <= 1 this is a plain
        serial list comprehension; otherwise ``fn`` and the items must be
        picklable.  Results always come back in input order, so serial and
        parallel runs are interchangeable.
        """
        work = list(items)
        workers = self._workers(parallel)
        if workers <= 1 or len(work) <= 1:
            return [fn(item) for item in work]
        chunksize = max(1, -(-len(work) // workers))
        pool = self._try_pool(workers)
        if pool is None or not _picklable((fn, work)):
            return [fn(item) for item in work]
        try:
            return list(pool.map(fn, work, chunksize=chunksize))
        except (BrokenExecutor, PicklingError):
            # A broken pool (or a result that cannot cross the process
            # boundary) must not change results -- fall back to the
            # deterministic serial path.  Exceptions raised by ``fn`` itself
            # propagate unchanged; unpicklable *inputs* are caught by the
            # probe above, before anything is submitted.
            self._shutdown_pool()
            return [fn(item) for item in work]

    def _run_sharded(
        self,
        worker: Callable[[List[T]], List[R]],
        items: List[T],
        parallel: Optional[int],
    ) -> List[R]:
        """Run ``worker`` over contiguous shards of ``items``, concatenated in order."""
        workers = self._workers(parallel)
        if workers <= 1 or len(items) <= 1:
            return worker(items)
        shards = _shards(items, workers)
        pool = self._try_pool(workers)
        if pool is None or not _picklable((worker, items)):
            return worker(items)
        try:
            futures = [pool.submit(worker, shard) for shard in shards]
            gathered = [future.result() for future in futures]
        except (BrokenExecutor, PicklingError):
            self._shutdown_pool()
            return worker(items)
        return [row for shard_rows in gathered for row in shard_rows]

    # ======================================================================
    # The run-plan spine: one cached, sharded executor for every spec kind
    # ======================================================================
    def run(
        self,
        spec: Union[ScenarioSpec, ScenarioGrid],
        *,
        parallel: Optional[int] = None,
    ) -> Result:
        """Execute one scenario spec; the single entry point of the engine.

        The spec's content hash is checked against the session's artifact
        store first (a hit is returned as a ``warm`` envelope without
        executing anything); on a miss the kind's executor runs -- through
        the in-memory artifact caches and, for grid kinds, sharded over
        :meth:`Engine.map` -- and the envelope is persisted back.
        ``parallel`` is an execution detail, not part of the scenario's
        identity: serial and sharded runs share one cache entry.
        """
        if isinstance(spec, ScenarioGrid):
            return self.run_grid(spec, parallel=parallel)
        tracer = self._active_tracer()
        if tracer is None:
            return self._run_spec(spec, parallel, None)
        with tracer.span("engine.run", kind=spec.kind) as span:
            result = self._run_spec(spec, parallel, tracer)
            span.set(cache=result.cache)
            return result

    def _run_spec(
        self, spec: ScenarioSpec, parallel: Optional[int], tracer: Optional[Tracer]
    ) -> Result:
        """The untraced :meth:`run` body; ``tracer`` adds the store-put span."""
        executor = getattr(self, f"_run_{spec.kind}")
        key = spec.content_hash()
        if self.store is not None:
            aliased = getattr(self.store, "aliases_values", True)
            cached = self.store.get(key)
            if isinstance(cached, Result):
                return _warm_envelope(cached, aliased)
        if self.faults is not None:
            # Injected *after* the warm path: a checkpointed point must be
            # servable on resume without re-tripping its fault.
            self.faults.fire_point(spec.content_key())
        # Counted here -- after the warm-store return -- so ``stats()["runs"]``
        # reflects real executor invocations, not store-served envelopes.
        self._runs_total.inc(kind=spec.kind)
        result = executor(spec, parallel)
        if self.store is not None:
            if tracer is None:
                self.store.put(key, _store_snapshot(result, aliased))
            else:
                with tracer.span("store.put", kind=spec.kind):
                    self.store.put(key, _store_snapshot(result, aliased))
        return result

    def iter_grid(
        self, grid: ScenarioGrid, *, parallel: Optional[int] = None
    ) -> Iterator[GridPoint]:
        """Stream a grid's points as they finish: the resumable pipeline.

        Yields one :class:`GridPoint` per expansion point, *in completion
        order* (checkpointed points first, then misses as their shard or
        task completes).  Every completed point is persisted through the
        session's artifact store before it is yielded -- with a
        :class:`~repro.store.DiskStore` each yield is a durable checkpoint,
        so a killed campaign relaunched against the same store recomputes
        only the points never yielded (``stats()["grid"]["resumed"]``
        counts the served checkpoints).

        With a :class:`FailurePolicy` on the session the misses run as
        supervised per-point tasks (timeout / retry / quarantine -- see the
        policy's docstring); without one they run the legacy contiguous
        shard plane and a point failure propagates fail-fast, exactly as
        :meth:`run_grid` always did.
        """
        tracer = self._active_tracer()
        if tracer is None:
            yield from self._iter_grid(grid, parallel)
            return
        with tracer.span("engine.iter_grid", kind=grid.kind, points=len(grid)):
            yield from self._iter_grid(grid, parallel)

    def _iter_grid(
        self, grid: ScenarioGrid, parallel: Optional[int]
    ) -> Iterator[GridPoint]:
        """The :meth:`iter_grid` body (separated so tracing can wrap it)."""
        specs = grid.specs()
        self._runs_total.inc(len(specs), kind="grid")
        aliased = True
        misses: List[int] = []
        if self.store is not None:
            aliased = getattr(self.store, "aliases_values", True)
            for index, spec in enumerate(specs):
                cached = self.store.get(spec.content_hash())
                if isinstance(cached, Result):
                    self._grid_event("resumed")
                    yield GridPoint(index, spec, _warm_envelope(cached, aliased))
                else:
                    misses.append(index)
        else:
            misses = list(range(len(specs)))
        if not misses:
            return
        workers = self._workers(parallel)
        if self.policy is not None:
            yield from self._iter_policy(specs, misses, workers, aliased)
        elif workers > 1 and len(misses) > 1:
            yield from self._iter_sharded(specs, misses, workers, aliased)
        else:
            for index in misses:
                # run() handles the per-point store bookkeeping itself.
                yield GridPoint(index, specs[index], self.run(specs[index]))

    def run_grid(
        self,
        grid: ScenarioGrid,
        *,
        parallel: Optional[int] = None,
        on_point: Optional[Callable[[GridPoint], None]] = None,
    ) -> Result:
        """Execute every point of a scenario grid and aggregate one envelope.

        The eager wrapper around :meth:`iter_grid`: drains the stream and
        reassembles rows in the grid's deterministic expansion order --
        parallel output is byte-identical to serial output, and a fault-free
        run is byte-identical to the pre-streaming implementation.
        Quarantined points (``kind="error"`` envelopes, only possible under
        a :class:`FailurePolicy`) are surfaced as failed rows plus a
        ``quarantined`` count in the grid data.  ``on_point`` is invoked
        with each streamed :class:`GridPoint` in completion order -- the
        hook behind the CLI's ``--progress`` line.
        """
        size = len(grid)
        results: List[Optional[Result]] = [None] * size
        for point in self.iter_grid(grid, parallel=parallel):
            results[point.index] = point.result
            if on_point is not None:
                on_point(point)
        # No per-row cache provenance: a worker computes cold what a serial
        # run may serve warm, and grid rows must be byte-identical either
        # way.  Provenance is observable via stats()["store"] instead.
        rows = [
            {"subject": result.subject, "ok": result.ok, "data": result.data}
            for result in results
        ]
        data: Dict[str, object] = {
            "kind": grid.kind,
            "points": size,
            "ok_points": sum(1 for result in results if result.ok),
            "rows": rows,
        }
        if grid.axes:
            data["axes"] = {
                name: len(values) for name, values in grid.axes.items()
            }
        quarantined = sum(1 for result in results if result.kind == "error")
        if quarantined:
            data["quarantined"] = quarantined
        return Result(
            kind=f"{grid.kind}_grid",
            subject=f"grid {grid.kind} ({size} points)",
            ok=all(result.ok for result in results),
            cache="none",
            data=data,
            payload=list(results),
        )

    def _absorb_point(
        self, spec: ScenarioSpec, result: Result, aliased: bool, ref: StoreRef
    ) -> None:
        """Checkpoint a worker-computed point into a process-local store.

        Workers holding a disk-store reference persisted their points
        themselves; only process-local stores need the parent to absorb
        the result.
        """
        if self.store is not None and ref is None:
            self.store.put(spec.content_hash(), _store_snapshot(result, aliased))

    def _iter_sharded(
        self,
        specs: Sequence[ScenarioSpec],
        misses: List[int],
        workers: int,
        aliased: bool,
    ) -> Iterator[GridPoint]:
        """The legacy fail-fast plane, streaming per completed shard."""
        ref = store_ref(self.store)
        tracer = self._active_tracer()
        worker = partial(_spec_shard_worker, ref, self.faults, None)
        payload = [specs[index] for index in misses]
        pool = self._try_pool(workers)
        if pool is None or not _picklable((worker, payload)):
            for index in misses:
                yield GridPoint(index, specs[index], self.run(specs[index]))
            return
        shards = _shards(misses, workers)
        remaining: Dict[Future, List[int]] = {}
        spans: Dict[Future, "Span"] = {}
        try:
            for shard in shards:
                if tracer is not None:
                    # Detached: shard spans finish in completion order from
                    # as_completed, not LIFO -- they must never sit on the
                    # submitting thread's span stack.  Their context ships
                    # with the work so worker.point spans parent on them.
                    span = tracer.span(
                        "engine.shard", detached=True, points=len(shard)
                    )
                    worker = partial(
                        _spec_shard_worker, ref, self.faults, span.context()
                    )
                future = pool.submit(worker, [specs[i] for i in shard])
                remaining[future] = shard
                if tracer is not None:
                    spans[future] = span
            for future in as_completed(list(remaining)):
                rows, worker_spans = future.result()
                shard = remaining.pop(future)
                if tracer is not None:
                    tracer.absorb(worker_spans)
                    tracer.finish(spans.pop(future))
                for index, result in zip(shard, rows):
                    self._absorb_point(specs[index], result, aliased, ref)
                    yield GridPoint(index, specs[index], result)
        except (BrokenExecutor, PicklingError):
            # A broken pool must not change results: the shards never
            # yielded fall back to the deterministic serial path.
            # Exceptions raised by a point itself propagate unchanged.
            self._shutdown_pool()
            for future, shard in remaining.items():
                span = spans.pop(future, None)
                if span is not None:
                    tracer.finish(span.set(error="BrokenExecutor"))
                for index in shard:
                    yield GridPoint(index, specs[index], self.run(specs[index]))

    def _iter_policy(
        self,
        specs: Sequence[ScenarioSpec],
        misses: List[int],
        workers: int,
        aliased: bool,
    ) -> Iterator[GridPoint]:
        """The supervised plane: per-point tasks under the failure policy."""
        policy = self.policy
        rng = random.Random(policy.seed)
        ref = store_ref(self.store)
        tracer = self._active_tracer()
        ctx = tracer.current_context() if tracer is not None else None
        worker_fn = partial(_point_worker, ref, self.faults, ctx)
        use_pool = workers > 1 and len(misses) > 1
        pool = self._try_pool(workers) if use_pool else None
        if pool is None or not _picklable(
            (worker_fn, [specs[index] for index in misses])
        ):
            for index in misses:
                yield GridPoint(
                    index, specs[index], self._run_point_serial(specs[index], rng)
                )
            return
        pending: Dict[Future, int] = {}
        failed: List[Tuple[int, Tuple[str, str]]] = []
        try:
            for index in misses:
                pending[pool.submit(worker_fn, specs[index])] = index
        except (BrokenExecutor, PicklingError) as exc:
            self._grid_event("pool_respawns")
            self._kill_pool()
            submitted = set(pending.values())
            failed.extend(
                (index, _failure_info(exc, "task submission failed"))
                for index in misses
                if index not in submitted
            )
        while pending:
            done, _ = wait(
                list(pending), timeout=policy.timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                # Nothing finished inside the window: the workers holding
                # these points are presumed hung.  Kill the pool (a plain
                # shutdown would join the hung worker) and retry each
                # point in isolation.
                self._grid_event("timeouts")
                failure = ("Timeout", f"no completion within {policy.timeout}s")
                failed.extend((index, failure) for index in pending.values())
                pending.clear()
                self._kill_pool()
                break
            broken = False
            for future in done:
                index = pending.pop(future)
                try:
                    result, worker_spans = future.result()
                except (BrokenExecutor, OSError) as exc:
                    broken = True
                    failed.append(
                        (index, _failure_info(exc, "worker process died"))
                    )
                except Exception as exc:
                    failed.append((index, _failure_info(exc)))
                else:
                    if tracer is not None:
                        tracer.absorb(worker_spans)
                    self._absorb_point(specs[index], result, aliased, ref)
                    yield GridPoint(index, specs[index], result)
            if broken:
                # The whole pool is gone.  Harvest results that completed
                # before the break; everything else joins the retry queue.
                self._grid_event("pool_respawns")
                for future, index in list(pending.items()):
                    try:
                        result, worker_spans = future.result(timeout=0)
                    except Exception as exc:
                        failed.append(
                            (index, _failure_info(exc, "worker process died"))
                        )
                    else:
                        if tracer is not None:
                            tracer.absorb(worker_spans)
                        self._absorb_point(specs[index], result, aliased, ref)
                        yield GridPoint(index, specs[index], result)
                pending.clear()
                self._kill_pool()
        for index, failure in sorted(failed, key=lambda item: item[0]):
            yield GridPoint(
                index,
                specs[index],
                self._recover_point(specs[index], failure, rng, ref),
            )

    def _recover_point(
        self,
        spec: ScenarioSpec,
        failure: Tuple[str, str],
        rng: random.Random,
        ref: StoreRef,
    ) -> Result:
        """Retry a failed point in isolation until it heals or quarantines."""
        policy = self.policy
        attempts = 1  # the failed first pass
        last = failure
        while attempts <= policy.retries:
            self._grid_event("retried")
            delay = min(policy.backoff_cap, policy.backoff * (2 ** (attempts - 1)))
            if policy.jitter:
                delay *= 1.0 + policy.jitter * rng.uniform(-1.0, 1.0)
            if delay > 0:
                time.sleep(delay)
            attempts += 1
            outcome = self._attempt_isolated(spec, ref)
            if isinstance(outcome, Result):
                return outcome
            last = outcome
        if not policy.quarantine:
            raise GridPointFailed(
                f"{spec.describe()}: {last[0]}: {last[1]} (after {attempts} attempts)"
            )
        self._grid_event("quarantined")
        # Never checkpointed: a resume against the same store retries the
        # quarantined point instead of replaying its failure.
        return _error_envelope(spec, last, attempts)

    def _attempt_isolated(
        self, spec: ScenarioSpec, ref: StoreRef
    ) -> Union[Result, Tuple[str, str]]:
        """One supervised attempt of a single point; failure info on error.

        The point rides alone in a (respawned if needed) pool task, so a
        crash or timeout is unambiguously its own doing.  When no pool can
        be spawned at all the engine degrades to in-process execution --
        exceptions still count, but hangs and crashes can no longer be
        contained (nothing preempts in-process work).
        """
        policy = self.policy
        tracer = self._active_tracer()
        ctx = tracer.current_context() if tracer is not None else None
        worker_fn = partial(_point_worker, ref, self.faults, ctx)
        pool = self._try_pool(1)
        if pool is not None and _picklable((worker_fn, spec)):
            future = pool.submit(worker_fn, spec)
            try:
                result, worker_spans = future.result(timeout=policy.timeout)
            except FutureTimeoutError:
                self._grid_event("timeouts")
                self._kill_pool()
                return ("Timeout", f"no result within {policy.timeout}s")
            except (BrokenExecutor, OSError) as exc:
                self._grid_event("pool_respawns")
                self._kill_pool()
                return _failure_info(exc, "worker process died")
            except Exception as exc:
                return _failure_info(exc)
            if tracer is not None:
                tracer.absorb(worker_spans)
            aliased = (
                getattr(self.store, "aliases_values", True)
                if self.store is not None
                else True
            )
            self._absorb_point(spec, result, aliased, ref)
            return result
        self._grid_event("serial_degradations")
        try:
            return self.run(spec)
        except Exception as exc:
            return _failure_info(exc)

    def _run_point_serial(self, spec: ScenarioSpec, rng: random.Random) -> Result:
        """The policy plane without any pool: in-process retry + quarantine."""
        policy = self.policy
        attempts = 0
        last = ("Error", "never attempted")
        while True:
            attempts += 1
            try:
                return self.run(spec)
            except Exception as exc:
                last = _failure_info(exc)
            if attempts > policy.retries:
                break
            self._grid_event("retried")
            delay = min(policy.backoff_cap, policy.backoff * (2 ** (attempts - 1)))
            if policy.jitter:
                delay *= 1.0 + policy.jitter * rng.uniform(-1.0, 1.0)
            if delay > 0:
                time.sleep(delay)
        if not policy.quarantine:
            raise GridPointFailed(
                f"{spec.describe()}: {last[0]}: {last[1]} (after {attempts} attempts)"
            )
        self._grid_event("quarantined")
        return _error_envelope(spec, last, attempts)

    # -- Figure 9 program analysis ------------------------------------------
    def build(
        self, program: Program, protected_symbols: Optional[Sequence[str]] = None
    ) -> BuildResult:
        """Construct (or fetch) the attack graph of a program, content-hashed."""
        key = self.program_key(program, protected_symbols)
        cached = self._builds.get(key)
        if cached is not None:
            self._record("builds", hit=True)
            return cached
        self._record("builds", hit=False)
        tracer = self._active_tracer()
        if tracer is None:
            build = AttackGraphBuilder(program, protected_symbols).build()
        else:
            with tracer.span("engine.build", program=getattr(program, "name", "")):
                build = AttackGraphBuilder(program, protected_symbols).build()
        self._store(self._builds, key, build)
        return build

    def analyze(
        self,
        program: Program,
        protected_symbols: Optional[Sequence[str]] = None,
        points: Optional[Sequence[ProtectionPoint]] = None,
    ) -> Result:
        """Run the full Figure 9 flow on a program; warm calls hit the cache.

        Deprecated spelling of ``run(ScenarioSpec("analyze", program=...))``.

        The envelope ``data`` is freshly built per call and safe to mutate;
        the ``payload`` (:class:`AnalysisReport`) is the shared cached
        artifact -- treat it as immutable, like every cached build.
        """
        return self.run(
            ScenarioSpec(
                "analyze",
                program=program,
                protected_symbols=(
                    tuple(protected_symbols) if protected_symbols is not None else None
                ),
                points=tuple(points) if points is not None else None,
            )
        )

    def _run_analyze(self, spec: ScenarioSpec, parallel: Optional[int]) -> Result:
        program = decode_program(spec.get("program"), spec.get("name"))
        protected_symbols = spec.get("protected_symbols")
        points = decode_points(spec.get("points"))
        points_key = tuple(point.value for point in points) if points is not None else None
        key = (self.program_key(program, protected_symbols), points_key)
        report = self._analyses.get(key)
        if report is not None:
            self._record("analyses", hit=True)
            cache_state = "warm"
        else:
            self._record("analyses", hit=False)
            cache_state = "cold"
            build = self.build(program, protected_symbols)
            report = analyze_build(build, points)
            self._store(self._analyses, key, report)
        # The envelope data is built per call (only the report is cached):
        # callers may freely mutate result.data without poisoning warm hits.
        data = {
            "program": report.program_name,
            "content_hash": key[0][0],
            "vertices": len(report.build.graph),
            "edges": len(report.build.graph.edges),
            "classification": (
                "meltdown-type" if report.is_meltdown_type else "spectre-type"
            ),
            "secret_accesses": len(report.build.secret_accesses),
            "racing_pairs": report.total_racing_pairs,
            "vulnerable": report.vulnerable,
            "findings": [
                {
                    "authorization": finding.authorization,
                    "protected_operation": finding.protected_operation,
                    "point": finding.point.value,
                    "software_patchable": finding.software_patchable,
                    "description": finding.description,
                }
                for finding in report.findings
            ],
        }
        return Result(
            kind="analyze",
            subject=report.program_name,
            ok=not report.vulnerable,
            cache=cache_state,
            data=data,
            payload=report,
        )

    # -- defense evaluation -------------------------------------------------
    def evaluate(
        self,
        defense: Defense,
        variant: AttackVariant,
        graph: Optional[AttackGraph] = None,
    ) -> Result:
        """Apply one defense to one attack variant (cached per key pair).

        Deprecated spelling of ``run(ScenarioSpec("evaluate", defense=...,
        attack=...))``.  Passing an explicit ``graph`` bypasses the
        declarative path entirely (the graph is an opaque mutable object and
        is never cached).
        """
        if graph is not None:
            from .defenses.evaluation import evaluate_defense_uncached

            evaluation = evaluate_defense_uncached(defense, variant, graph)
            return Result(
                kind="evaluate",
                subject=f"{defense.key} vs {variant.key}",
                ok=evaluation.effective,
                cache="none",
                data=_evaluation_row(evaluation),
                payload=evaluation,
            )
        return self.run(ScenarioSpec("evaluate", defense=defense, attack=variant))

    def _run_evaluate(self, spec: ScenarioSpec, parallel: Optional[int]) -> Result:
        from .defenses.evaluation import evaluate_defense_uncached

        defense = decode_defense(spec.get("defense"))
        variant = decode_attack_variant(spec.get("attack"))
        key = (defense, variant)
        evaluation = self._evaluations.get(key)
        if evaluation is not None:
            self._record("evaluations", hit=True)
            cache_state = "warm"
        else:
            self._record("evaluations", hit=False)
            cache_state = "cold"
            evaluation = evaluate_defense_uncached(defense, variant)
            self._store(self._evaluations, key, evaluation)
        return Result(
            kind="evaluate",
            subject=f"{defense.key} vs {variant.key}",
            ok=evaluation.effective,
            cache=cache_state,
            data=_evaluation_row(evaluation),
            payload=evaluation,
        )

    def evaluate_matrix(
        self,
        defenses: Optional[Sequence[Defense]] = None,
        variants: Optional[Sequence[AttackVariant]] = None,
        parallel: Optional[int] = None,
    ) -> Result:
        """Evaluate every defense against every variant, sharded over the pool.

        Deprecated spelling of ``run(ScenarioSpec("matrix", ...))``.  Rows
        are sorted by ``(defense key, attack key)`` so serial and parallel
        runs produce byte-identical output.
        """
        return self.run(
            ScenarioSpec(
                "matrix",
                defenses=tuple(defenses) if defenses is not None else None,
                attacks=tuple(variants) if variants is not None else None,
            ),
            parallel=parallel,
        )

    def _run_matrix(self, spec: ScenarioSpec, parallel: Optional[int]) -> Result:
        from .attacks.registry import variants as registry_variants
        from .defenses import ALL_DEFENSES

        defenses = spec.get("defenses")
        variants = spec.get("attacks")
        chosen_defenses = (
            [decode_defense(defense) for defense in defenses]
            if defenses is not None
            else list(ALL_DEFENSES)
        )
        chosen_variants = (
            [decode_attack_variant(variant) for variant in variants]
            if variants is not None
            else registry_variants()
        )
        pairs = sorted(
            (
                (defense, variant)
                for defense in chosen_defenses
                for variant in chosen_variants
            ),
            key=lambda pair: (pair[0].key, pair[1].key),
        )
        workers = self._workers(parallel)
        if workers <= 1:
            # Serial path goes through the session's evaluation cache.
            evaluations = [
                self.evaluate(defense, variant).payload for defense, variant in pairs
            ]
        else:
            # Warm pairs are served from the session cache; only the misses
            # are sharded out.  Worker results are absorbed back into the
            # cache, so a repeated sweep is all-local dict hits.
            ref = store_ref(self.store)
            misses = [pair for pair in pairs if pair not in self._evaluations]
            computed = self._run_sharded(
                partial(_matrix_shard_worker, ref), misses, workers
            )
            for pair, evaluation in zip(misses, computed):
                if pair not in self._evaluations:
                    self._store(self._evaluations, pair, evaluation)
            evaluations = [
                self.evaluate(defense, variant).payload for defense, variant in pairs
            ]
        rows = [_evaluation_row(evaluation) for evaluation in evaluations]
        defeated: Dict[str, bool] = {}
        for evaluation in evaluations:
            defeated[evaluation.attack_key] = (
                defeated.get(evaluation.attack_key, False) or evaluation.effective
            )
        data = {
            "defenses": len(chosen_defenses),
            "attacks": len(chosen_variants),
            "effective": sum(1 for evaluation in evaluations if evaluation.effective),
            "undefeated_attacks": sorted(
                key for key, covered in defeated.items() if not covered
            ),
            "rows": rows,
        }
        return Result(
            kind="evaluate",
            subject=f"matrix {len(chosen_defenses)}x{len(chosen_variants)}",
            ok=all(defeated.values()) if defeated else True,
            cache="none",
            data=data,
            payload=evaluations,
        )

    # -- Section V-A attack-space synthesis ---------------------------------
    def synthesize_graph(self, attack: SynthesizedAttack) -> AttackGraph:
        """Build (or fetch) the synthesized graph of one combination."""
        graph = self._synth_graphs.get(attack.key)
        if graph is not None:
            self._record("synth_graphs", hit=True)
            return graph
        self._record("synth_graphs", hit=False)
        graph = attack.build_graph()
        self._store(self._synth_graphs, attack.key, graph)
        return graph

    def _synth_row(self, attack: SynthesizedAttack) -> Dict[str, object]:
        """One sweep row; the structural verdict only depends on (source, delay).

        The covert channel names the exfiltration path but does not change the
        synthesized graph's shape, so leak / vulnerability / race analysis is
        shared across all channels of one (source, delay) pair.
        """
        from .defenses.evaluation import attack_succeeds

        structural_key = (attack.secret_source.name, attack.delay_mechanism.name)
        verdict = self._synth_verdicts.get(structural_key)
        if verdict is not None:
            self._record("synth_verdicts", hit=True)
        else:
            self._record("synth_verdicts", hit=False)
            graph = self.synthesize_graph(attack)
            verdict = {
                "leaks": attack_succeeds(graph),
                "vulnerabilities": len(graph.find_vulnerabilities()),
                "racing_pairs": len(graph.all_racing_pairs()),
                "vertices": len(graph),
                "edges": len(graph.edges),
                "meltdown_type": graph.is_meltdown_type,
            }
            self._store(self._synth_verdicts, structural_key, verdict)
        row: Dict[str, object] = {
            "source": attack.secret_source.name,
            "delay": attack.delay_mechanism.name,
            "channel": attack.channel.name,
            "published": attack.is_published,
        }
        row.update(verdict)
        return row

    def synthesize(
        self,
        sources: Optional[Sequence[SecretSource]] = None,
        delays: Optional[Sequence[DelayMechanism]] = None,
        channels: Optional[Sequence[CovertChannelKind]] = None,
        parallel: Optional[int] = None,
    ) -> Result:
        """Sweep the (restricted) attack space, sharded over the pool.

        Deprecated spelling of ``run(ScenarioSpec("synthesize", ...))``.
        Rows come back sorted by ``(source, delay, channel)`` key so parallel
        output is byte-identical to serial output.
        """
        return self.run(
            ScenarioSpec(
                "synthesize",
                sources=tuple(sources) if sources is not None else None,
                delays=tuple(delays) if delays is not None else None,
                channels=tuple(channels) if channels is not None else None,
            ),
            parallel=parallel,
        )

    def _run_synthesize(self, spec: ScenarioSpec, parallel: Optional[int]) -> Result:
        sources = decode_axis_enums(SecretSource, spec.get("sources"))
        delays = decode_axis_enums(DelayMechanism, spec.get("delays"))
        channels = decode_axis_enums(CovertChannelKind, spec.get("channels"))
        attacks = sorted(
            enumerate_attack_space(sources, delays, channels), key=lambda a: a.key
        )
        workers = self._workers(parallel)
        if workers > 1:
            # Shard one representative per structurally distinct (source,
            # delay) pair that the session has not analysed yet; the workers'
            # verdicts are absorbed into the cache, and every row (including
            # channel twins) is then served locally.
            missing: Dict[Tuple[str, str], SynthesizedAttack] = {}
            for attack in attacks:
                structural = (attack.secret_source.name, attack.delay_mechanism.name)
                if structural not in self._synth_verdicts and structural not in missing:
                    missing[structural] = attack
            if missing:
                ref = store_ref(self.store)
                computed = self._run_sharded(
                    partial(_synth_shard_worker, ref),
                    [attack.key for attack in missing.values()],
                    workers,
                )
                for row in computed:
                    structural = (row["source"], row["delay"])
                    if structural not in self._synth_verdicts:
                        self._store(
                            self._synth_verdicts,
                            structural,
                            {name: row[name] for name in _VERDICT_FIELDS},
                        )
        rows = [self._synth_row(attack) for attack in attacks]
        data = {
            "combinations": len(rows),
            "published": sum(1 for row in rows if row["published"]),
            "novel": sum(1 for row in rows if not row["published"]),
            "leaking": sum(1 for row in rows if row["leaks"]),
            "rows": rows,
        }
        return Result(
            kind="synthesize",
            subject="attack-space",
            ok=True,
            cache="none",
            data=data,
            payload=attacks,
        )

    def novel_combinations(
        self,
        sources: Optional[Sequence[SecretSource]] = None,
        delays: Optional[Sequence[DelayMechanism]] = None,
        channels: Optional[Sequence[CovertChannelKind]] = None,
        parallel: Optional[int] = None,
    ) -> List[SynthesizedAttack]:
        """Unpublished combinations, key-sorted, sharded over the pool."""
        attacks = sorted(
            enumerate_attack_space(sources, delays, channels), key=lambda a: a.key
        )
        keys = [attack.key for attack in attacks]
        novel = set(self._run_sharded(_novel_shard_worker, keys, parallel))
        return [attack for attack in attacks if attack.key in novel]

    # -- end-to-end exploits -------------------------------------------------
    def exploit(
        self,
        name: str,
        config: Optional[object] = None,
        secret: Optional[int] = None,
    ) -> Result:
        """Run one end-to-end exploit on the simulator.

        Deprecated spelling of ``run(ScenarioSpec("exploit", exploit=...))``.
        """
        return self.run(
            ScenarioSpec("exploit", exploit=name, config=config, secret=secret)
        )

    def _run_exploit(self, spec: ScenarioSpec, parallel: Optional[int]) -> Result:
        from .exploits.harness import DEFAULT_SECRET, EXPLOITS
        from .uarch.config import DEFAULT_CONFIG

        name = spec.get("exploit")
        if name not in EXPLOITS:
            raise KeyError(
                f"unknown exploit {name!r}; known: {', '.join(sorted(EXPLOITS))}"
            )
        secret = decode_secret(spec.get("secret"))
        planted = DEFAULT_SECRET if secret is None else secret
        config = decode_config(spec.get("config"))
        run_config = config if config is not None else DEFAULT_CONFIG
        defenses = decode_sim_defenses(spec.get("defenses"))
        if defenses:
            run_config = run_config.with_defenses(*defenses)
        result = EXPLOITS[name](run_config, planted)
        return Result(
            kind="exploit",
            subject=name,
            ok=result.success,
            cache="none",
            data=_exploit_row(result),
            payload=result,
        )

    def run_exploits(
        self,
        names: Optional[Sequence[str]] = None,
        config: Optional[object] = None,
        secret: Optional[int] = None,
        parallel: Optional[int] = None,
    ) -> Result:
        """Run a set of exploits (all by default), sharded over the pool.

        Deprecated spelling of ``run(ScenarioSpec("exploit_suite", ...))``.
        """
        return self.run(
            ScenarioSpec(
                "exploit_suite",
                exploits=tuple(names) if names is not None else None,
                config=config,
                secret=secret,
            ),
            parallel=parallel,
        )

    def _run_exploit_suite(self, spec: ScenarioSpec, parallel: Optional[int]) -> Result:
        from .exploits.harness import DEFAULT_SECRET, EXPLOITS

        names = spec.get("exploits")
        chosen = list(names) if names is not None else list(EXPLOITS)
        if len(set(chosen)) != len(chosen):
            raise ValueError("duplicate exploit names in run_exploits")
        secret = decode_secret(spec.get("secret"))
        planted = DEFAULT_SECRET if secret is None else secret
        config = decode_config(spec.get("config"))
        items = [(name, config, planted) for name in chosen]
        results = self._run_sharded(_exploit_shard_worker, items, parallel)
        by_name = dict(zip(chosen, results))
        data = {
            "exploits": len(chosen),
            "leaked": sum(1 for result in results if result.success),
            "rows": [_exploit_row(result) for result in results],
        }
        return Result(
            kind="exploit",
            subject=f"suite ({len(chosen)} exploits)",
            ok=all(result.success for result in results),
            cache="none",
            data=data,
            payload=by_name,
        )

    # -- cycle-accurate timing simulation -------------------------------------
    def simulate(
        self,
        attack: str,
        defenses: Sequence["SimDefense"] = (),
        *,
        config: Optional["UarchConfig"] = None,
        secret: Optional[int] = None,
        model: Optional["TimingModel"] = None,
    ) -> Result:
        """Run one attack end-to-end on the cycle-accurate timing core.

        Deprecated spelling of ``run(ScenarioSpec("simulate", attack=...))``.

        ``attack`` is a registry key (mapped to its representative exploit
        scenario) or an exploit name.  Runs are content-hash cached: the key
        is the attack plus the *frozen* simulator config (defenses included),
        the planted secret and the timing model, so a repeated sweep over the
        same space is all cache hits.  The envelope reports both verdicts of
        the paper's race: the functional leak and the measured transmit-vs-
        squash outcome, plus the Theorem 1 TSG verdict for undefended runs.
        """
        return self.run(
            ScenarioSpec(
                "simulate",
                attack=attack,
                defenses=tuple(defenses) or None,
                config=config,
                secret=secret,
                model=model,
            )
        )

    def _run_simulate(self, spec: ScenarioSpec, parallel: Optional[int]) -> Result:
        from .uarch.timing.validate import timed_exploit

        attack, scenario, run_config, secret, run_model = self._decode_point(spec)
        # Keyed on the resolved *scenario*: aliased registry attacks (the MDS
        # siblings, the Foreshadow deployments, ...) share one timing run.
        key = (scenario, run_config, secret, run_model)
        result = self._simulations.get(key)
        if result is not None:
            self._record("simulations", hit=True)
            cache_state = "warm"
        else:
            self._record("simulations", hit=False)
            cache_state = "cold"
            result = timed_exploit(scenario, run_config, secret, run_model)
            self._store(self._simulations, key, result)
        if not run_config.defenses:
            self._record("tsg_verdicts", hit=attack in self._tsg_verdicts)
        data = _simulate_row(attack, scenario, run_config, result, self._tsg_verdicts)
        return Result(
            kind="simulate",
            subject=attack,
            ok=not data["transmit_beats_squash"],
            cache=cache_state,
            data=data,
            payload=result,
        )

    def simulate_sweep(
        self,
        attacks: Optional[Sequence[str]] = None,
        defenses: Optional[Sequence[Optional["SimDefense"]]] = None,
        secret: Optional[int] = None,
        parallel: Optional[int] = None,
        model: Optional["TimingModel"] = None,
    ) -> Result:
        """Sweep (attack x defense) timing simulations, sharded over the pool.

        Deprecated spelling of ``run(ScenarioSpec("simulate_sweep", ...))``.

        ``defenses`` defaults to the undefended baseline plus every simulator
        defense.  ``model`` selects the timing-plane configuration for every
        run (e.g. the contended reference core).  Rows are sorted by (attack,
        defense) key, warm entries are served from the session cache and
        worker results are absorbed back into it, mirroring
        :meth:`evaluate_matrix`.
        """
        return self.run(
            ScenarioSpec(
                "simulate_sweep",
                attacks=tuple(attacks) if attacks is not None else None,
                defenses=tuple(defenses) if defenses is not None else None,
                secret=secret,
                model=model,
            ),
            parallel=parallel,
        )

    def _run_simulate_sweep(self, spec: ScenarioSpec, parallel: Optional[int]) -> Result:
        from .uarch.config import DEFAULT_CONFIG
        from .uarch.defenses import SimDefense
        from .uarch.timing.scheduler import DEFAULT_MODEL
        from .uarch.timing.validate import SCENARIOS

        model = decode_model(spec.get("model"))
        run_model = model if model is not None else DEFAULT_MODEL
        secret = decode_secret(spec.get("secret"))
        attacks = spec.get("attacks")
        defenses = spec.get("defenses")
        chosen_attacks = list(attacks) if attacks is not None else sorted(SCENARIOS)
        chosen_defenses: List[Optional[SimDefense]] = (
            [
                None if defense is None else decode_sim_defense(defense)
                for defense in defenses
            ]
            if defenses is not None
            else [None] + list(SimDefense)
        )
        combos = sorted(
            (
                (attack, () if defense is None else (defense.name,))
                for attack in chosen_attacks
                for defense in chosen_defenses
            ),
            key=lambda combo: (combo[0], combo[1]),
        )
        workers = self._workers(parallel)
        if workers > 1:
            ref = store_ref(self.store)
            misses = []
            for attack, defense_names in combos:
                run_config = DEFAULT_CONFIG.with_defenses(
                    *(SimDefense[name] for name in defense_names)
                )
                key = (SCENARIOS.get(attack, attack), run_config, secret, run_model)
                if key not in self._simulations:
                    misses.append((attack, defense_names, secret, run_model))
            computed = self._run_sharded(
                partial(_simulate_shard_worker, ref), misses, workers
            )
            for (attack, defense_names, miss_secret, miss_model), result in zip(
                misses, computed
            ):
                run_config = DEFAULT_CONFIG.with_defenses(
                    *(SimDefense[name] for name in defense_names)
                )
                key = (SCENARIOS.get(attack, attack), run_config, miss_secret, miss_model)
                if key not in self._simulations:
                    self._store(self._simulations, key, result)
        rows = [
            self.simulate(
                attack,
                [SimDefense[name] for name in defense_names],
                secret=secret,
                model=model,
            ).data
            for attack, defense_names in combos
        ]
        data = {
            "attacks": len(chosen_attacks),
            "defenses": len(chosen_defenses),
            "contended": run_model.contended,
            "runs": len(rows),
            "leaking": sum(1 for row in rows if row["transmit_beats_squash"]),
            "rows": rows,
        }
        return Result(
            kind="simulate",
            subject=f"sweep {len(chosen_attacks)}x{len(chosen_defenses)}",
            ok=True,
            cache="none",
            data=data,
            payload=rows,
        )

    def simulate_batch(
        self,
        points: Sequence[object],
        *,
        secret: Optional[int] = None,
        model: Optional["TimingModel"] = None,
        parallel: Optional[int] = None,
    ) -> Result:
        """Run a *list* of timing-simulation points through warm sessions.

        Spelling of ``run(ScenarioSpec("simulate_batch", points=...))``.

        Each point is an attack name or a mapping of ``simulate``
        parameters (``attack`` / ``defenses`` / ``config`` / ``secret`` /
        ``model``); the batch-level ``secret``/``model`` fill in per-point
        gaps.  Points are served *in order* and each envelope is
        byte-identical to the per-point :meth:`simulate` call on the same
        session -- the batch only changes who pays for warmup: with
        ``parallel`` > 1 deduplicated cache misses ship to pool workers as
        whole sublists, and each worker reuses one warm engine (simulation
        cache, TSG-verdict memo, decoded configs) across its sublist
        instead of rebuilding per point.  Store checkpoints, FaultPlan
        selection and ``worker.point`` spans behave exactly like the
        per-point plane.
        """
        return self.run(
            ScenarioSpec(
                "simulate_batch",
                points=tuple(points),
                secret=secret,
                model=model,
            ),
            parallel=parallel,
        )

    def _decode_point(self, spec: ScenarioSpec) -> Tuple:
        """Session-memoized :func:`_decode_simulate_point`.

        Keyed on the raw parameter values; unhashable parameters (a dict
        config, say) simply skip the memo.  Decoding is deterministic, so a
        hit is byte-equivalent to re-decoding -- it only skips the repeated
        defense/model/config resolution on warm serves.
        """
        key = (
            spec.get("attack"),
            spec.get("defenses"),
            spec.get("config"),
            spec.get("secret"),
            spec.get("model"),
        )
        try:
            cached = self._point_decodes.get(key)
        except TypeError:
            return _decode_simulate_point(spec)
        if cached is None:
            cached = _decode_simulate_point(spec)
            self._store(self._point_decodes, key, cached)
        return cached

    def _simulation_key(self, spec: ScenarioSpec) -> Tuple:
        """The session simulation-cache key of one ``simulate`` point spec."""
        _, scenario, run_config, secret, run_model = self._decode_point(spec)
        return (scenario, run_config, secret, run_model)

    def _prewarm_batch(
        self, point_specs: Sequence[ScenarioSpec], workers: int
    ) -> Dict[Tuple, Result]:
        """Ship a batch's deduplicated cache misses to the pool.

        Without a :class:`FailurePolicy` the misses run as contiguous
        sublists, one warm engine amortized across each (the fast
        unsupervised plane).  With a policy they run as supervised
        per-point tasks through the same machinery as the grid plane --
        timeouts, bounded retry, pool respawn and quarantine, all counted
        in ``stats()["grid"]`` -- trading shard amortization for exact
        blame assignment.  Either way the worker threads the session's
        fault plan and trace context, so batch points keep FaultPlan
        selection and ``worker.point`` spans.

        Computed payloads are absorbed into the session simulation cache;
        the caller then serves every point in order through :meth:`run`.
        Returns the quarantined points (simulation key -> error envelope)
        so the batch can report them instead of re-tripping the failure
        in-process; empty without a policy (failures propagate fail-fast).
        """
        ref = store_ref(self.store)
        tracer = self._active_tracer()
        ctx = tracer.current_context() if tracer is not None else None
        seen = set()
        misses: List[ScenarioSpec] = []
        for pspec in point_specs:
            key = self._simulation_key(pspec)
            if key in seen or key in self._simulations:
                continue
            seen.add(key)
            misses.append(pspec)
        if not misses:
            return {}
        if self.policy is not None:
            aliased = True
            if self.store is not None:
                aliased = getattr(self.store, "aliases_values", True)
            quarantined: Dict[Tuple, Result] = {}
            for point in self._iter_policy(
                misses, list(range(len(misses))), workers, aliased
            ):
                key = self._simulation_key(point.spec)
                if point.result.kind == "error":
                    quarantined[key] = point.result
                elif key not in self._simulations:
                    self._store(self._simulations, key, point.result.payload)
            return quarantined
        computed = self._run_sharded(
            partial(_simulate_batch_worker, ref, self.faults, ctx), misses, workers
        )
        for pspec, (payload, spans) in zip(misses, computed):
            key = self._simulation_key(pspec)
            if key not in self._simulations:
                self._store(self._simulations, key, payload)
            if tracer is not None and spans:
                tracer.absorb(spans)
        return {}

    def _run_simulate_batch(self, spec: ScenarioSpec, parallel: Optional[int]) -> Result:
        shared_secret = spec.get("secret")
        shared_model = spec.get("model")
        point_specs = [
            _batch_point_spec(point, shared_secret, shared_model)
            for point in spec.get("points") or ()
        ]
        workers = self._workers(parallel)
        quarantined: Dict[Tuple, Result] = {}
        if workers > 1 and len(point_specs) > 1:
            quarantined = self._prewarm_batch(point_specs, workers)
        results = []
        for pspec in point_specs:
            poisoned = quarantined.get(self._simulation_key(pspec))
            results.append(poisoned if poisoned is not None else self.run(pspec))
        rows = [result.data for result in results]
        data: Dict[str, object] = {
            "points": len(rows),
            "unique_simulations": len(
                {self._simulation_key(pspec) for pspec in point_specs}
            ),
            "leaking": sum(1 for row in rows if row.get("transmit_beats_squash")),
            "rows": rows,
        }
        failed = sum(1 for result in results if result.kind == "error")
        if failed:
            data["quarantined"] = failed
        return Result(
            kind="simulate_batch",
            subject=f"batch ({len(rows)} points)",
            ok=not failed,
            cache="none",
            data=data,
            payload=results,
        )

    # ======================================================================
    # The differential fuzzing plane (repro.fuzz)
    # ======================================================================
    def _run_fuzz_point(self, spec: ScenarioSpec, parallel: Optional[int]) -> Result:
        """One generated gadget through both leak oracles.

        The spec pins the generator coordinates and (optionally) the
        program's content hash -- a ``sha`` mismatch means the generator no
        longer builds what this spec was addressed under, and the point
        fails loudly rather than serve a verdict about a different program.
        """
        from .fuzz.generator import FUZZ_SECRET, dual_verdict, make_case

        seed = int(spec.get("seed"))
        index = int(spec.get("index"))
        secret = spec.get("secret")
        planted = FUZZ_SECRET if secret is None else int(secret)
        inject = spec.get("inject")
        model_name = spec.get("model")
        model = decode_model(model_name) if model_name is not None else None
        case = make_case(seed, index)
        pinned = spec.get("sha")
        if pinned is not None and pinned != case.sha:
            raise ValueError(
                f"fuzz_point {seed}/{index}: generator drift -- spec pins "
                f"program {str(pinned)[:12]} but the generator now builds "
                f"{case.sha[:12]}"
            )
        verdict = dual_verdict(
            case, secret=planted, inject=inject, engine=self, model=model
        )
        data: Dict[str, object] = {
            "seed": seed,
            "index": index,
            "sha": case.sha,
            "instructions": case.size,
            "bucket": case.shape.bucket,
            "inject": inject,
            "leaked_secret": verdict.recovered == planted,
        }
        data.update(case.shape.to_dict())
        data.update(verdict.to_dict())
        return Result(
            kind="fuzz_point",
            subject=f"fuzz {seed}/{index}: {case.shape.describe()}",
            ok=verdict.agrees,
            cache="cold",
            data=data,
            payload=case,
        )

    def _run_fuzz_campaign(
        self, spec: ScenarioSpec, parallel: Optional[int]
    ) -> Result:
        """A seeded campaign: chunked, checkpointed grids of fuzz points."""
        from .fuzz.campaign import FuzzCampaign

        campaign = FuzzCampaign.from_spec(self, spec)
        data = campaign.execute(parallel=parallel)
        ok = data["disagreed"] == 0 and data["quarantined"] == 0
        return Result(
            kind="fuzz_campaign",
            subject=f"fuzz campaign seed={campaign.seed} count={campaign.count}",
            ok=ok,
            cache="none",
            data=data,
            payload=None,
        )

    def run_fuzz_campaign(
        self,
        *,
        seed: int,
        count: int,
        secret: Optional[int] = None,
        model: Optional[str] = None,
        inject: Optional[str] = None,
        budget: Optional[float] = None,
        parallel: Optional[int] = None,
        on_point: Optional[Callable[[GridPoint], None]] = None,
        refresh: bool = False,
    ) -> Result:
        """Run one differential fuzzing campaign (``repro fuzz``).

        Equivalent to ``run(ScenarioSpec("fuzz_campaign", ...))`` with two
        campaign-runner extras the generic path cannot express: a streaming
        ``on_point`` callback for live progress, and ``refresh`` to bypass a
        warm campaign envelope while still serving every completed point
        from its checkpoint -- the ``--resume`` semantics (a budget-stopped
        or killed campaign picks up exactly where it left off).
        """
        from .fuzz.campaign import FuzzCampaign

        campaign = FuzzCampaign(
            self,
            seed=seed,
            count=count,
            secret=secret,
            model=model,
            inject=inject,
            budget=budget,
        )
        spec = campaign.spec()
        if not refresh and on_point is None:
            return self.run(spec, parallel=parallel)
        key = spec.content_hash()
        aliased = True
        if self.store is not None:
            aliased = getattr(self.store, "aliases_values", True)
            if not refresh:
                cached = self.store.get(key)
                if isinstance(cached, Result):
                    return _warm_envelope(cached, aliased)
        self._runs_total.inc(kind="fuzz_campaign")
        data = campaign.execute(parallel=parallel, on_point=on_point)
        ok = data["disagreed"] == 0 and data["quarantined"] == 0
        result = Result(
            kind="fuzz_campaign",
            subject=f"fuzz campaign seed={campaign.seed} count={campaign.count}",
            ok=ok,
            cache="none",
            data=data,
            payload=None,
        )
        if self.store is not None:
            self.store.put(key, _store_snapshot(result, aliased))
        return result

    def validate_timing(
        self,
        parallel: Optional[int] = None,
        model: Optional["TimingModel"] = None,
        attacks: Optional[Sequence[str]] = None,
    ) -> Result:
        """Cross-check Theorem 1 for every registry attack (timing vs TSG).

        Deprecated spelling of ``run(ScenarioSpec("validate_timing", ...))``.

        ``model`` selects the timing-plane configuration; pass
        :data:`~repro.uarch.timing.scheduler.CONTENDED_MODEL` to validate
        the race with bounded FU ports and CDB.
        """
        return self.run(
            ScenarioSpec(
                "validate_timing",
                model=model,
                attacks=tuple(attacks) if attacks is not None else None,
            ),
            parallel=parallel,
        )

    def _run_validate_timing(self, spec: ScenarioSpec, parallel: Optional[int]) -> Result:
        from .uarch.timing.validate import cross_validate

        model = decode_model(spec.get("model"))
        attacks = spec.get("attacks")
        checks = cross_validate(
            list(attacks) if attacks is not None else None,
            engine=self,
            parallel=parallel,
            model=model,
        )
        data = {
            "attacks": len(checks),
            "contended": bool(model is not None and model.contended),
            "agreeing": sum(1 for check in checks if check.agrees),
            "disagreeing": sorted(check.attack for check in checks if not check.agrees),
            "rows": [check.to_dict() for check in checks],
        }
        return Result(
            kind="simulate",
            subject="theorem1-validation",
            ok=all(check.agrees for check in checks),
            cache="none",
            data=data,
            payload=checks,
        )

    def ablate_window(
        self,
        attacks: Optional[Sequence[str]] = None,
        *,
        window_grid: Optional[Sequence[Tuple[int, int]]] = None,
        port_configs: Optional[Sequence[Tuple[str, Dict[str, Optional[int]]]]] = None,
        secret: Optional[int] = None,
        parallel: Optional[int] = None,
    ) -> Result:
        """The paper's window-length ablation, in measured cycles.

        Deprecated spelling of ``run(ScenarioSpec("window_ablation", ...))``.

        Sweeps every attack over a (ROB size, RS entries) x port-configuration
        grid of :class:`~repro.uarch.timing.scheduler.TimingModel` variants
        and reports the measured speculation-window length, the transmit /
        squash race and the port/CDB stall provenance of each run.  Runs ride
        the :meth:`simulate` content-hash cache (attack x config x secret x
        model), misses are sharded over :meth:`Engine.map`'s execution plane,
        and rows come back sorted by (attack, ROB, RS, ports) so parallel
        output is byte-identical to serial output.

        Each port configuration also carries a :class:`~repro.channels.
        contention.ContentionChannel` transmission: under a bounded
        configuration the FU-occupancy delta is a nonzero number of cycles
        (the covert channel works), under the unbounded machine it collapses
        to zero -- the structural reason the pre-contention timing plane
        could not measure this channel family.
        """
        return self.run(
            ScenarioSpec(
                "window_ablation",
                attacks=tuple(attacks) if attacks is not None else None,
                window_grid=(
                    tuple(tuple(point) for point in window_grid)
                    if window_grid is not None
                    else None
                ),
                port_configs=(
                    tuple((label, dict(overrides)) for label, overrides in port_configs)
                    if port_configs is not None
                    else None
                ),
                secret=secret,
            ),
            parallel=parallel,
        )

    def _run_window_ablation(self, spec: ScenarioSpec, parallel: Optional[int]) -> Result:
        from dataclasses import replace

        from .channels.contention import (
            ContentionChannel,
            PortContentionSurface,
            WIDE_WINDOW_MODEL,
        )
        from .uarch.config import DEFAULT_CONFIG
        from .uarch.timing.scheduler import DEFAULT_MODEL
        from .uarch.timing.validate import SCENARIOS

        attacks = spec.get("attacks")
        window_grid = spec.get("window_grid")
        port_configs = spec.get("port_configs")
        secret = decode_secret(spec.get("secret"))
        chosen = list(attacks) if attacks is not None else sorted(SCENARIOS)
        grid = (
            [tuple(point) for point in window_grid]
            if window_grid is not None
            else list(DEFAULT_WINDOW_GRID)
        )
        configs = (
            [(label, dict(overrides)) for label, overrides in port_configs]
            if port_configs is not None
            else list(DEFAULT_PORT_CONFIGS)
        )
        combos = [
            (attack, rob, rs, label,
             replace(DEFAULT_MODEL, rob_size=rob, rs_entries=rs, **overrides))
            for attack in sorted(chosen)
            for rob, rs in grid
            for label, overrides in configs
        ]
        combos.sort(key=lambda combo: combo[:4])
        workers = self._workers(parallel)
        if workers > 1:
            # Aliased registry attacks (the MDS siblings, the Foreshadow
            # deployments, ...) share one scenario and therefore one cache
            # key -- ship each missing key to the pool once, not per alias.
            ref = store_ref(self.store)
            misses = []
            queued = set()
            for attack, _, _, _, model in combos:
                key = (SCENARIOS.get(attack, attack), DEFAULT_CONFIG, secret, model)
                if key not in self._simulations and key not in queued:
                    queued.add(key)
                    misses.append((attack, (), secret, model))
            computed = self._run_sharded(
                partial(_simulate_shard_worker, ref), misses, workers
            )
            for (attack, _, miss_secret, model), result in zip(misses, computed):
                key = (SCENARIOS.get(attack, attack), DEFAULT_CONFIG, miss_secret, model)
                if key not in self._simulations:
                    self._store(self._simulations, key, result)
        rows: List[Dict[str, object]] = []
        for attack, rob, rs, label, model in combos:
            result = self.simulate(attack, model=model, secret=secret)
            trace = result.payload.timing
            row = {
                "attack": attack,
                "scenario": result.data["scenario"],
                "rob_size": rob,
                "rs_entries": rs,
                "ports": label,
                "cycles": result.data.get("cycles"),
                "window_cycles": result.data.get("window_cycles"),
                "transmit_cycle": result.data.get("transmit_cycle"),
                "squash_cycle": result.data.get("squash_cycle"),
                "transmit_beats_squash": result.data["transmit_beats_squash"],
                "leaked": result.data["leaked"],
                "port_stall_cycles": trace.port_stall_cycles if trace else 0,
                "cdb_stall_cycles": trace.cdb_stall_cycles if trace else 0,
            }
            rows.append(row)
        channel_value = 11  # arbitrary nibble-plus: exercises a multi-op burst
        channel_rows: List[Dict[str, object]] = []
        for label, overrides in configs:
            channel = ContentionChannel(
                PortContentionSurface(replace(WIDE_WINDOW_MODEL, **overrides))
            )
            observation = channel.transmit(channel_value)
            channel_rows.append(
                {
                    "ports": label,
                    "value": channel_value,
                    "recovered": observation.value,
                    "detected": observation.detected,
                    "unit_cycle_delta": channel.unit_delta,
                    "cycle_delta": observation.latencies[1] - observation.latencies[0],
                    "baseline_cycles": observation.latencies[0],
                    "probe_cycles": observation.latencies[1],
                }
            )
        data = {
            "attacks": len(chosen),
            "models": len(grid) * len(configs),
            "window_grid": [list(point) for point in grid],
            "port_configs": {label: dict(overrides) for label, overrides in configs},
            "runs": len(rows),
            "leaking": sum(1 for row in rows if row["transmit_beats_squash"]),
            "rows": rows,
            "contention_channel": channel_rows,
        }
        return Result(
            kind="window_ablation",
            subject=f"window-ablation {len(chosen)}x{len(grid) * len(configs)}",
            ok=True,
            cache="none",
            data=data,
            payload=rows,
        )

    # -- program patching and defense ablation --------------------------------
    def patch(
        self, program: Program, protected_symbols: Optional[Sequence[str]] = None
    ) -> Result:
        """Analyze a program, insert fences, re-analyze (Figure 9 patch flow).

        Deprecated spelling of ``run(ScenarioSpec("patch", program=...))``.

        Both analyses run through this session's artifact cache; the envelope
        carries the patch summary and the patched listing.
        """
        return self.run(
            ScenarioSpec(
                "patch",
                program=program,
                protected_symbols=(
                    tuple(protected_symbols) if protected_symbols is not None else None
                ),
            )
        )

    def _run_patch(self, spec: ScenarioSpec, parallel: Optional[int]) -> Result:
        from .graphtool.patcher import patch_program

        program = decode_program(spec.get("program"), spec.get("name"))
        protected_symbols = spec.get("protected_symbols")
        patch = patch_program(program, protected_symbols, engine=self)
        data = {
            "program": program.name,
            "fences_inserted": list(patch.fences_inserted),
            "unpatchable_findings": list(patch.unpatchable_findings),
            "vulnerable_before": patch.report_before.vulnerable,
            "vulnerable_after": patch.report_after.vulnerable,
            "access_vulnerabilities_removed": patch.access_vulnerabilities_removed,
            "patched_listing": patch.patched.listing(),
        }
        return Result(
            kind="patch",
            subject=program.name,
            ok=patch.access_vulnerabilities_removed,
            cache="none",
            data=data,
            payload=patch,
        )

    def ablation(
        self,
        attack: str,
        defenses: Optional[Sequence["SimDefense"]] = None,
        secret: Optional[int] = None,
        config: Optional["UarchConfig"] = None,
        parallel: Optional[int] = None,
    ) -> Result:
        """Run one exploit with no defense, then under each simulator defense.

        Deprecated spelling of ``run(ScenarioSpec("ablation", attack=...))``.
        The per-defense runs expand to an explicit exploit grid sharded over
        :meth:`Engine.map`, like every other grid in the engine.
        """
        return self.run(
            ScenarioSpec(
                "ablation",
                attack=attack,
                defenses=tuple(defenses) if defenses is not None else None,
                secret=secret,
                config=config,
            ),
            parallel=parallel,
        )

    def _run_ablation(self, spec: ScenarioSpec, parallel: Optional[int]) -> Result:
        from .exploits.harness import AblationRow, DEFAULT_SECRET, EXPLOITS
        from .uarch.config import DEFAULT_CONFIG
        from .uarch.defenses import SimDefense

        attack = spec.get("attack")
        if attack not in EXPLOITS:
            raise KeyError(
                f"unknown exploit {attack!r}; known: {', '.join(sorted(EXPLOITS))}"
            )
        secret = decode_secret(spec.get("secret"))
        planted = DEFAULT_SECRET if secret is None else secret
        config = decode_config(spec.get("config"))
        base = config if config is not None else DEFAULT_CONFIG
        defenses = spec.get("defenses")
        selected = (
            [decode_sim_defense(defense) for defense in defenses]
            if defenses is not None
            else list(SimDefense)
        )
        # The undefended baseline followed by one point per defense, in
        # caller order -- an explicit grid sharded over the execution plane.
        points = [
            ScenarioSpec("exploit", exploit=attack, secret=planted, config=base)
        ] + [
            ScenarioSpec(
                "exploit",
                exploit=attack,
                secret=planted,
                config=base.with_defenses(defense),
            )
            for defense in selected
        ]
        grid_result = self.run_grid(ScenarioGrid.explicit(points), parallel=parallel)
        leaks = [bool(point.data["success"]) for point in grid_result.payload]
        rows = [AblationRow(attack, None, leaks[0])] + [
            AblationRow(attack, defense, leaked)
            for defense, leaked in zip(selected, leaks[1:])
        ]
        baseline = rows[0]
        defended = rows[1:]
        data = {
            "attack": attack,
            "baseline_leaks": baseline.leaked,
            "defenses": len(defended),
            "effective": sum(1 for row in defended if not row.leaked),
            "rows": [
                {
                    "defense": row.defense_name,
                    "strategy": row.strategy_name,
                    "leaked": row.leaked,
                }
                for row in rows
            ],
        }
        return Result(
            kind="ablation",
            subject=attack,
            ok=any(not row.leaked for row in defended),
            cache="none",
            data=data,
            payload=rows,
        )


# ---------------------------------------------------------------------------
# Row serializers shared by the sweeps and the reporting layer
# ---------------------------------------------------------------------------
def _simulate_row(
    attack: str,
    scenario: str,
    config: "UarchConfig",
    result: "ExploitResult",
    tsg_memo: Optional[Dict[str, Optional[bool]]] = None,
) -> Dict[str, object]:
    """One timing-simulation row: functional verdict + measured race.

    ``tsg_memo`` (keyed by attack name) caches the Theorem-1 verdict across
    rows: rebuilding the registry attack graph dominates a warm serve, and
    the verdict is deterministic per variant, so engines pass their
    session-scoped memo here.
    """
    trace = result.timing
    defense_names = sorted(defense.name.lower() for defense in config.defenses)
    row: Dict[str, object] = {
        "attack": attack,
        "scenario": scenario,
        "defenses": defense_names,
        "leaked": result.success,
        "recovered": result.recovered,
        "speculative_windows": result.stats.speculative_windows,
        "transient_instructions": result.stats.transient_instructions,
    }
    if trace is not None:
        row.update(
            {
                "cycles": trace.cycles,
                "windows": len(trace.windows),
                "transmit_cycle": trace.transmit_cycle,
                "squash_cycle": trace.squash_cycle,
                "window_cycles": trace.window_cycles,
                "transmit_beats_squash": trace.transmit_beats_squash,
            }
        )
    else:  # pragma: no cover - the timing harness always records a trace
        row["transmit_beats_squash"] = result.success
    if not config.defenses:
        if tsg_memo is not None and attack in tsg_memo:
            tsg_leaks = tsg_memo[attack]
        else:
            from .attacks.registry import ALL_VARIANTS
            from .defenses.evaluation import attack_succeeds

            variant = ALL_VARIANTS.get(attack)
            tsg_leaks = None if variant is None else attack_succeeds(variant.build_graph())
            if tsg_memo is not None:
                tsg_memo[attack] = tsg_leaks
        if tsg_leaks is not None:
            row["tsg_leaks"] = tsg_leaks
            row["theorem1_agrees"] = tsg_leaks == row["transmit_beats_squash"]
    return row



def _evaluation_row(evaluation: "DefenseEvaluation") -> Dict[str, object]:
    return {
        "defense": evaluation.defense_key,
        "attack": evaluation.attack_key,
        "strategy": evaluation.strategy.value,
        "applicable": evaluation.applicable,
        "leaked_before": evaluation.leaked_before,
        "leaked_after": evaluation.leaked_after,
        "effective": evaluation.effective,
        "security_edges_added": evaluation.security_edges_added,
        "notes": evaluation.notes,
    }


def _exploit_row(result: "ExploitResult") -> Dict[str, object]:
    return {
        "attack": result.attack,
        "secret": result.secret,
        "recovered": result.recovered,
        "success": result.success,
        "speculative_windows": result.stats.speculative_windows,
        "transient_instructions": result.stats.transient_instructions,
        "squashes": result.stats.squashes,
        "faults": result.stats.faults,
        "notes": result.notes,
    }


# ---------------------------------------------------------------------------
# The default session shared by the legacy free functions
# ---------------------------------------------------------------------------
_DEFAULT_ENGINE: Optional[Engine] = None


def default_engine() -> Engine:
    """The module-wide engine the legacy free functions delegate to.

    Never hands out a closed session: if the current default was closed
    (e.g. by ``set_default_engine(None)`` or a ``with`` block), the next
    caller gets a fresh engine instead of resurrecting the old one's pool.
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None or _DEFAULT_ENGINE.closed:
        _DEFAULT_ENGINE = Engine()
    return _DEFAULT_ENGINE


def set_default_engine(engine: Optional[Engine]) -> Optional[Engine]:
    """Swap the default engine (tests, custom pool sizes); returns the old one.

    ``set_default_engine(None)`` ends the default session: the engine being
    replaced has its worker pool closed (nothing else will ever drain it),
    and the next :func:`default_engine` call creates a fresh session.
    """
    global _DEFAULT_ENGINE
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
    if engine is None and previous is not None:
        previous.close()
    return previous


def halt_default_engine() -> None:
    """Hard-stop the default session, if any (the Ctrl-C backstop).

    Unlike ``set_default_engine(None)`` this never joins workers -- a hung
    pool would block the interpreter's exit handlers indefinitely.
    """
    if _DEFAULT_ENGINE is not None and not _DEFAULT_ENGINE.closed:
        _DEFAULT_ENGINE.halt()
