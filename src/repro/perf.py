"""Timing harness for the reachability-indexed TSG core and the engine.

Measures the hot analyses the repo's upper layers bottom out in:

* all-pairs race detection (Theorem 1 over every vertex pair) and valid-
  ordering counts on synthetic layered DAGs of 50 / 200 / 500 vertices,
  comparing the bitset-closure fast paths against the seed's BFS-per-query
  baseline (PR 1), and
* the :class:`repro.engine.Engine` session API (PR 2): warm-cache
  ``analyze`` against a cold attack-graph build, and the sharded
  attack-space sweep against the per-combination free-function baseline.

Results are appended as one commit-stamped run to a ``BENCH_core.json``
trajectory so future PRs can track regressions.

Used by ``benchmarks/run_perf.py``, the ``repro perf`` CLI subcommand, and
(with smaller budgets) by ``benchmarks/bench_perf_core.py``.
"""

from __future__ import annotations

import json
import random
import subprocess
import time
from collections import deque
from itertools import combinations
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .core.tsg import TopologicalSortGraph

#: (vertices, layer width, extra random forward edges) per suite size.  The
#: 200-vertex entry is the acceptance configuration: 200 vertices and at
#: least 1000 edges.
DEFAULT_SIZES: Tuple[Tuple[int, int, int], ...] = (
    (50, 5, 15),
    (200, 5, 25),
    (500, 5, 50),
)


# ----------------------------------------------------------------------
# Synthetic workloads
# ----------------------------------------------------------------------
def build_layered_dag(
    vertices: int, width: int = 5, extra_edges: int = 0, seed: int = 1
) -> TopologicalSortGraph:
    """A deterministic layered DAG: ``vertices / width`` layers of ``width``.

    Every vertex depends on every vertex of the previous layer, plus
    ``extra_edges`` random forward edges.  Layered graphs keep the
    ordering-count DP polynomial (a downset is a prefix of complete layers
    plus a subset of one layer, at most ``layers * 2^width`` states) while
    still containing ``layers * C(width, 2)`` racing pairs -- a realistic
    stand-in for wide attack graphs.
    """
    rng = random.Random(seed)
    graph = TopologicalSortGraph(name=f"layered-{vertices}v")
    names = [f"n{i}" for i in range(vertices)]
    for name in names:
        graph.add_vertex(name)
    for i in range(width, vertices):
        layer_start = (i // width) * width
        for j in range(layer_start - width, layer_start):
            graph.add_edge(names[j], names[i])
    # Extra forward edges must skip at least one layer; with fewer than three
    # layers no such pair exists, and rejection sampling can always run dry
    # once the eligible pairs are exhausted -- bound the attempts.
    added = 0
    attempts = 0
    max_attempts = extra_edges * 200
    if vertices // width < 3:
        extra_edges = 0
    while added < extra_edges and attempts < max_attempts:
        attempts += 1
        a, b = rng.sample(range(vertices), 2)
        if a > b:
            a, b = b, a
        if b // width - a // width < 2:  # skip intra/adjacent-layer picks
            continue
        if not graph.has_edge(names[a], names[b]):
            graph.add_edge(names[a], names[b])
            added += 1
    return graph


# ----------------------------------------------------------------------
# Seed baseline (the pre-index implementation, kept for comparison)
# ----------------------------------------------------------------------
def bfs_has_path(graph: TopologicalSortGraph, source: str, target: str) -> bool:
    """The seed's ``has_path``: a fresh BFS over the successor sets per query."""
    if source == target:
        return True
    succ = graph._succ  # noqa: SLF001 - deliberate: replicate the seed exactly
    seen = {source}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for nxt in succ[node]:
            if nxt == target:
                return True
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return False


def bfs_racing_pairs(
    graph: TopologicalSortGraph, pairs: Optional[Sequence[Tuple[str, str]]] = None
) -> List[Tuple[str, str]]:
    """All-pairs (or given-pairs) race detection with the seed BFS check."""
    if pairs is None:
        pairs = list(combinations(graph.vertices, 2))
    return [
        (u, v)
        for u, v in pairs
        if not (bfs_has_path(graph, u, v) or bfs_has_path(graph, v, u))
    ]


# ----------------------------------------------------------------------
# Timings
# ----------------------------------------------------------------------
def _best_of(callable_, repeats: int) -> Tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def measure_graph(
    graph: TopologicalSortGraph,
    baseline_pair_budget: int = 4000,
    repeats: int = 3,
    count_orderings: bool = True,
) -> Dict[str, object]:
    """Time the closure fast paths against the seed BFS baseline on one graph.

    The closure side always runs the *full* all-pairs analysis.  The BFS
    baseline runs on at most ``baseline_pair_budget`` pairs (a deterministic
    sample) and is extrapolated to the full pair count, because the full
    quadratic baseline on a 500-vertex graph takes minutes -- which is the
    point of this PR.
    """
    vertices = graph.vertices
    all_pairs = list(combinations(vertices, 2))
    closure_seconds, closure_races = _best_of(graph.all_racing_pairs, repeats)

    if len(all_pairs) <= baseline_pair_budget:
        sample = all_pairs
        baseline_mode = "full"
    else:
        rng = random.Random(2)
        sample = rng.sample(all_pairs, baseline_pair_budget)
        baseline_mode = "sampled"
    bfs_seconds, bfs_races = _best_of(lambda: bfs_racing_pairs(graph, sample), 1)
    bfs_all_pairs_estimate = bfs_seconds * (len(all_pairs) / len(sample))

    if baseline_mode == "full":
        assert set(bfs_races) == set(closure_races), "closure and BFS disagree"

    record: Dict[str, object] = {
        "graph": graph.name,
        "vertices": len(vertices),
        "edges": len(graph.edges),
        "racing_pairs": len(closure_races),
        "all_pairs": len(all_pairs),
        "closure_all_pairs_seconds": closure_seconds,
        "bfs_baseline_mode": baseline_mode,
        "bfs_pairs_measured": len(sample),
        "bfs_measured_seconds": bfs_seconds,
        "bfs_all_pairs_seconds_estimate": bfs_all_pairs_estimate,
        "speedup_all_pairs": (
            bfs_all_pairs_estimate / closure_seconds if closure_seconds > 0 else float("inf")
        ),
    }
    if count_orderings:
        dp_seconds, count = _best_of(lambda: graph.count_orderings(limit=None), repeats)
        record["count_orderings_seconds"] = dp_seconds
        # Exact linear-extension counts of layered DAGs overflow JSON number
        # precision (hundreds of digits); store digits + a prefix instead.
        digits = len(str(count))
        record["count_orderings_digits"] = digits
        record["count_orderings_value"] = (
            count if digits <= 15 else f"{str(count)[:12]}...e{digits - 1}"
        )
    return record


# ----------------------------------------------------------------------
# Engine benchmarks (PR 2): warm-cache analyze, sharded attack space
# ----------------------------------------------------------------------
def build_analysis_program(gadgets: int = 8):
    """A synthetic victim: ``gadgets`` independent Listing-1 style gadgets.

    Each gadget has its own bounds check, victim array and protected secret,
    so the attack graph grows linearly with ``gadgets`` -- a realistic cold
    ``Engine.analyze`` workload for the warm-cache comparison.
    """
    from .isa.assembler import assemble

    lines = [".data", "probe_array: address=0x1000000 size=1048576 shared"]
    for g in range(gadgets):
        base = 0x200000 + g * 0x1000
        lines.append(f"victim_{g}: address={base:#x} size=16")
        lines.append(f"secret_{g}: address={base + 0x48:#x} size=1 protected")
        lines.append(f"size_{g}:   address={0x400000 + g * 0x100:#x} size=8")
    lines.append(".text")
    lines.append("    clflush [probe_array]")
    for g in range(gadgets):
        lines.extend(
            [
                f"    cmp rdx, [size_{g}]",
                f"    ja done_{g}",
                f"    mov rax, byte [victim_{g} + rdx]",
                "    shl rax, 12",
                "    mov rbx, [probe_array + rax]",
                f"done_{g}:",
            ]
        )
    lines.append("    hlt")
    return assemble("\n".join(lines), name=f"engine-analyze-{gadgets}gadgets")


def measure_engine_analyze(gadgets: int = 8, repeats: int = 3) -> Dict[str, object]:
    """Cold attack-graph build vs warm content-hash cache hit on one program."""
    from .engine import Engine

    program = build_analysis_program(gadgets)
    cold_seconds, cold_result = _best_of(lambda: Engine().analyze(program), repeats)
    engine = Engine()
    engine.analyze(program)  # prime the session cache
    warm_seconds, warm_result = _best_of(
        lambda: engine.analyze(program), max(repeats, 5)
    )
    if warm_result.cache != "warm" or warm_result.data != cold_result.data:
        raise RuntimeError("warm Engine.analyze diverged from the cold build")
    report = cold_result.payload
    return {
        "benchmark": "engine-analyze-warm-cache",
        "gadgets": gadgets,
        "vertices": len(report.build.graph),
        "edges": len(report.build.graph.edges),
        "findings": len(report.findings),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup_warm": cold_seconds / warm_seconds if warm_seconds > 0 else float("inf"),
    }


def _legacy_attack_space_rows() -> List[Tuple]:
    """The pre-engine sweep: one graph build + full analysis per combination."""
    from .attacks.generator import enumerate_attack_space
    from .defenses.evaluation import attack_succeeds

    rows = []
    for attack in sorted(enumerate_attack_space(), key=lambda a: a.key):
        graph = attack.build_graph()
        rows.append(
            (
                attack.key,
                attack.is_published,
                attack_succeeds(graph),
                len(graph.find_vulnerabilities()),
                len(graph.all_racing_pairs()),
            )
        )
    return rows


def measure_engine_attack_space(workers: int = 2, repeats: int = 3) -> Dict[str, object]:
    """Serial free-function sweep vs the engine's sharded attack-space sweep.

    The engine wins twice over: structurally identical ``(source, delay)``
    combinations share one graph build + leak analysis via the verdict
    cache, and the remaining work is sharded over the session's process
    pool.  The serial baseline is the pre-engine per-combination sweep.
    """
    from .engine import Engine

    legacy_seconds, legacy_rows = _best_of(_legacy_attack_space_rows, repeats)
    serial_seconds, serial_result = _best_of(lambda: Engine().synthesize(), repeats)
    with Engine() as engine:
        engine.map(abs, [-1, 1], parallel=workers)  # spin up the session pool

        def sharded_cold_sweep():
            # Drop the session's synth caches so every repeat measures a
            # cold sharded sweep (with a warm pool), not a cache replay.
            engine.invalidate("synth_verdicts")
            engine.invalidate("synth_graphs")
            return engine.synthesize(parallel=workers)

        sharded_seconds, sharded_result = _best_of(sharded_cold_sweep, repeats)
    if sharded_result.data != serial_result.data:
        raise RuntimeError("sharded attack-space sweep diverged from serial")
    legacy_leaks = sum(1 for row in legacy_rows if row[2])
    if legacy_leaks != sharded_result.data["leaking"]:
        raise RuntimeError("engine sweep diverged from the legacy baseline")
    return {
        "benchmark": "engine-attack-space-sharded",
        "combinations": sharded_result.data["combinations"],
        "workers": workers,
        "serial_seconds": legacy_seconds,
        "engine_serial_seconds": serial_seconds,
        "engine_sharded_seconds": sharded_seconds,
        "speedup_sharded_vs_serial": (
            legacy_seconds / sharded_seconds if sharded_seconds > 0 else float("inf")
        ),
        "speedup_engine_serial_vs_serial": (
            legacy_seconds / serial_seconds if serial_seconds > 0 else float("inf")
        ),
    }


def run_perf_suite(
    sizes: Sequence[Tuple[int, int, int]] = DEFAULT_SIZES,
    baseline_pair_budget: int = 4000,
    repeats: int = 3,
    include_engine: bool = True,
    engine_workers: int = 2,
) -> Dict[str, object]:
    """Run the full suite and return one commit-stamped run record."""
    results = []
    for vertices, width, extra in sizes:
        graph = build_layered_dag(vertices, width=width, extra_edges=extra)
        results.append(
            measure_graph(
                graph,
                baseline_pair_budget=baseline_pair_budget,
                repeats=repeats,
            )
        )
    run: Dict[str, object] = {
        "commit": _git_commit(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "results": results,
    }
    if include_engine:
        run["engine_results"] = [
            measure_engine_analyze(repeats=repeats),
            measure_engine_attack_space(workers=engine_workers, repeats=repeats),
        ]
    return run


def _git_commit() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                check=True,
                timeout=10,
            ).stdout.strip()
        )
    except Exception:  # pragma: no cover - git absent or not a repo
        return "unknown"


def append_run(path: str, run: Dict[str, object]) -> Dict[str, object]:
    """Append one run to the ``BENCH_core.json`` trajectory file."""
    target = Path(path)
    if target.exists():
        trajectory = json.loads(target.read_text(encoding="utf-8"))
    else:
        trajectory = {"benchmark": "tsg-core-perf", "runs": []}
    trajectory["runs"].append(run)
    target.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")
    return trajectory


def main(output: str = "BENCH_core.json", quick: bool = False) -> Dict[str, object]:
    """Entry point shared by ``benchmarks/run_perf.py`` and ``repro perf``."""
    parent = Path(output).resolve().parent
    if not parent.is_dir():
        raise SystemExit(
            f"cannot write {output!r}: directory {str(parent)!r} does not exist"
        )
    budget = 1500 if quick else 4000
    repeats = 1 if quick else 3
    run = run_perf_suite(baseline_pair_budget=budget, repeats=repeats)
    append_run(output, run)
    return run


def format_engine_records(run: Dict[str, object]) -> List[str]:
    """Human-readable lines for the engine benchmark records of one run."""
    lines = []
    for record in run.get("engine_results", ()):  # type: ignore[union-attr]
        if record["benchmark"] == "engine-analyze-warm-cache":
            lines.append(
                f"engine analyze ({record['gadgets']} gadgets, {record['vertices']}v): "
                f"cold {record['cold_seconds'] * 1e3:.2f} ms vs warm "
                f"{record['warm_seconds'] * 1e6:.1f} us -> "
                f"{record['speedup_warm']:.0f}x warm-cache speedup"
            )
        elif record["benchmark"] == "engine-attack-space-sharded":
            lines.append(
                f"attack space ({record['combinations']} combos): serial sweep "
                f"{record['serial_seconds'] * 1e3:.1f} ms vs engine sharded "
                f"(x{record['workers']}) {record['engine_sharded_seconds'] * 1e3:.1f} ms "
                f"-> {record['speedup_sharded_vs_serial']:.1f}x"
            )
    return lines
