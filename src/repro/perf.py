"""Timing harness for the reachability-indexed TSG core, engine and OoO core.

Measures the hot analyses the repo's upper layers bottom out in:

* all-pairs race detection (Theorem 1 over every vertex pair) and valid-
  ordering counts on synthetic layered DAGs of 50 / 200 / 500 vertices,
  comparing the bitset-closure fast paths against the seed's BFS-per-query
  baseline (PR 1),
* the :class:`repro.engine.Engine` session API (PR 2): warm-cache
  ``analyze`` against a cold attack-graph build, and the sharded
  attack-space sweep against the per-combination free-function baseline, and
* the event-driven OoO timing scheduler (PR 3): the heap-based wakeup engine
  against the naive every-instruction-per-cycle rescan baseline on a
  serialized-miss program (200 instructions by default, 500 behind
  ``--full`` -- the quadratic rescan cost is the suite's wall-clock hog),
  both uncontended and under the contended (FU-port / CDB) model (PR 4).

Results are appended as one commit-stamped run to a ``BENCH_core.json``
trajectory so future PRs can track regressions; :func:`check_thresholds`
turns the ROADMAP's regression limits into a pass/fail gate
(``benchmarks/run_perf.py --check`` / ``repro perf --check``).

Used by ``benchmarks/run_perf.py``, the ``repro perf`` CLI subcommand, and
(with smaller budgets) by ``benchmarks/bench_perf_core.py``.
"""

from __future__ import annotations

import json
import random
import subprocess
import time
from collections import deque
from itertools import combinations
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .core.tsg import TopologicalSortGraph

#: (vertices, layer width, extra random forward edges) per suite size.  The
#: 200-vertex entry is the acceptance configuration: 200 vertices and at
#: least 1000 edges.
DEFAULT_SIZES: Tuple[Tuple[int, int, int], ...] = (
    (50, 5, 15),
    (200, 5, 25),
    (500, 5, 50),
)


# ----------------------------------------------------------------------
# Synthetic workloads
# ----------------------------------------------------------------------
def build_layered_dag(
    vertices: int, width: int = 5, extra_edges: int = 0, seed: int = 1
) -> TopologicalSortGraph:
    """A deterministic layered DAG: ``vertices / width`` layers of ``width``.

    Every vertex depends on every vertex of the previous layer, plus
    ``extra_edges`` random forward edges.  Layered graphs keep the
    ordering-count DP polynomial (a downset is a prefix of complete layers
    plus a subset of one layer, at most ``layers * 2^width`` states) while
    still containing ``layers * C(width, 2)`` racing pairs -- a realistic
    stand-in for wide attack graphs.
    """
    rng = random.Random(seed)
    graph = TopologicalSortGraph(name=f"layered-{vertices}v")
    names = [f"n{i}" for i in range(vertices)]
    for name in names:
        graph.add_vertex(name)
    for i in range(width, vertices):
        layer_start = (i // width) * width
        for j in range(layer_start - width, layer_start):
            graph.add_edge(names[j], names[i])
    # Extra forward edges must skip at least one layer; with fewer than three
    # layers no such pair exists, and rejection sampling can always run dry
    # once the eligible pairs are exhausted -- bound the attempts.
    added = 0
    attempts = 0
    max_attempts = extra_edges * 200
    if vertices // width < 3:
        extra_edges = 0
    while added < extra_edges and attempts < max_attempts:
        attempts += 1
        a, b = rng.sample(range(vertices), 2)
        if a > b:
            a, b = b, a
        if b // width - a // width < 2:  # skip intra/adjacent-layer picks
            continue
        if not graph.has_edge(names[a], names[b]):
            graph.add_edge(names[a], names[b])
            added += 1
    return graph


# ----------------------------------------------------------------------
# Seed baseline (the pre-index implementation, kept for comparison)
# ----------------------------------------------------------------------
def bfs_has_path(graph: TopologicalSortGraph, source: str, target: str) -> bool:
    """The seed's ``has_path``: a fresh BFS over the successor sets per query."""
    if source == target:
        return True
    succ = graph._succ  # noqa: SLF001 - deliberate: replicate the seed exactly
    seen = {source}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for nxt in succ[node]:
            if nxt == target:
                return True
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return False


def bfs_racing_pairs(
    graph: TopologicalSortGraph, pairs: Optional[Sequence[Tuple[str, str]]] = None
) -> List[Tuple[str, str]]:
    """All-pairs (or given-pairs) race detection with the seed BFS check."""
    if pairs is None:
        pairs = list(combinations(graph.vertices, 2))
    return [
        (u, v)
        for u, v in pairs
        if not (bfs_has_path(graph, u, v) or bfs_has_path(graph, v, u))
    ]


# ----------------------------------------------------------------------
# Timings
# ----------------------------------------------------------------------
def _best_of(callable_, repeats: int) -> Tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def measure_graph(
    graph: TopologicalSortGraph,
    baseline_pair_budget: int = 4000,
    repeats: int = 3,
    count_orderings: bool = True,
) -> Dict[str, object]:
    """Time the closure fast paths against the seed BFS baseline on one graph.

    The closure side always runs the *full* all-pairs analysis.  The BFS
    baseline runs on at most ``baseline_pair_budget`` pairs (a deterministic
    sample) and is extrapolated to the full pair count, because the full
    quadratic baseline on a 500-vertex graph takes minutes -- which is the
    point of this PR.
    """
    vertices = graph.vertices
    all_pairs = list(combinations(vertices, 2))
    closure_seconds, closure_races = _best_of(graph.all_racing_pairs, repeats)

    if len(all_pairs) <= baseline_pair_budget:
        sample = all_pairs
        baseline_mode = "full"
    else:
        rng = random.Random(2)
        sample = rng.sample(all_pairs, baseline_pair_budget)
        baseline_mode = "sampled"
    bfs_seconds, bfs_races = _best_of(lambda: bfs_racing_pairs(graph, sample), 1)
    bfs_all_pairs_estimate = bfs_seconds * (len(all_pairs) / len(sample))

    if baseline_mode == "full":
        assert set(bfs_races) == set(closure_races), "closure and BFS disagree"

    record: Dict[str, object] = {
        "graph": graph.name,
        "vertices": len(vertices),
        "edges": len(graph.edges),
        "racing_pairs": len(closure_races),
        "all_pairs": len(all_pairs),
        "closure_all_pairs_seconds": closure_seconds,
        "bfs_baseline_mode": baseline_mode,
        "bfs_pairs_measured": len(sample),
        "bfs_measured_seconds": bfs_seconds,
        "bfs_all_pairs_seconds_estimate": bfs_all_pairs_estimate,
        "speedup_all_pairs": (
            bfs_all_pairs_estimate / closure_seconds if closure_seconds > 0 else float("inf")
        ),
    }
    if count_orderings:
        dp_seconds, count = _best_of(lambda: graph.count_orderings(limit=None), repeats)
        record["count_orderings_seconds"] = dp_seconds
        # Exact linear-extension counts of layered DAGs overflow JSON number
        # precision (hundreds of digits); store digits + a prefix instead.
        digits = len(str(count))
        record["count_orderings_digits"] = digits
        record["count_orderings_value"] = (
            count if digits <= 15 else f"{str(count)[:12]}...e{digits - 1}"
        )
    return record


# ----------------------------------------------------------------------
# Engine benchmarks (PR 2): warm-cache analyze, sharded attack space
# ----------------------------------------------------------------------
def build_analysis_program(gadgets: int = 8):
    """A synthetic victim: ``gadgets`` independent Listing-1 style gadgets.

    Each gadget has its own bounds check, victim array and protected secret,
    so the attack graph grows linearly with ``gadgets`` -- a realistic cold
    ``Engine.analyze`` workload for the warm-cache comparison.
    """
    from .isa.assembler import assemble

    lines = [".data", "probe_array: address=0x1000000 size=1048576 shared"]
    for g in range(gadgets):
        base = 0x200000 + g * 0x1000
        lines.append(f"victim_{g}: address={base:#x} size=16")
        lines.append(f"secret_{g}: address={base + 0x48:#x} size=1 protected")
        lines.append(f"size_{g}:   address={0x400000 + g * 0x100:#x} size=8")
    lines.append(".text")
    lines.append("    clflush [probe_array]")
    for g in range(gadgets):
        lines.extend(
            [
                f"    cmp rdx, [size_{g}]",
                f"    ja done_{g}",
                f"    mov rax, byte [victim_{g} + rdx]",
                "    shl rax, 12",
                "    mov rbx, [probe_array + rax]",
                f"done_{g}:",
            ]
        )
    lines.append("    hlt")
    return assemble("\n".join(lines), name=f"engine-analyze-{gadgets}gadgets")


def measure_engine_analyze(gadgets: int = 8, repeats: int = 3) -> Dict[str, object]:
    """Cold attack-graph build vs warm content-hash cache hit on one program."""
    from .engine import Engine

    program = build_analysis_program(gadgets)
    cold_seconds, cold_result = _best_of(lambda: Engine().analyze(program), repeats)
    engine = Engine()
    engine.analyze(program)  # prime the session cache
    warm_seconds, warm_result = _best_of(
        lambda: engine.analyze(program), max(repeats, 5)
    )
    if warm_result.cache != "warm" or warm_result.data != cold_result.data:
        raise RuntimeError("warm Engine.analyze diverged from the cold build")
    report = cold_result.payload
    return {
        "benchmark": "engine-analyze-warm-cache",
        "gadgets": gadgets,
        "vertices": len(report.build.graph),
        "edges": len(report.build.graph.edges),
        "findings": len(report.findings),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup_warm": cold_seconds / warm_seconds if warm_seconds > 0 else float("inf"),
    }


def measure_disk_store(repeats: int = 3) -> Dict[str, object]:
    """Cold spec execution vs a warm disk-store hit in a *fresh* session.

    The cold side runs a ``simulate_sweep`` scenario spec through an engine
    backed by an empty :class:`~repro.store.DiskStore` (so the timing
    includes the pickling/persist cost); every warm repeat builds a brand
    new engine and store instance on the same directory, so nothing can be
    served from in-memory caches -- only the persistent artifact survives,
    exactly like a second CLI/CI invocation.  The warm envelope must carry
    byte-identical rows.
    """
    import shutil
    import tempfile

    from .engine import Engine
    from .scenario import ScenarioSpec
    from .store import DiskStore

    spec = ScenarioSpec(
        "simulate_sweep",
        attacks=("meltdown", "spectre_v1"),
        defenses=(None, "PREVENT_SPECULATIVE_LOADS"),
    )
    tmp = tempfile.mkdtemp(prefix="repro-disk-bench-")
    try:
        def cold_run():
            shutil.rmtree(tmp, ignore_errors=True)
            with Engine(store=DiskStore(root=tmp, version="bench")) as engine:
                return engine.run(spec)

        cold_seconds, cold_result = _best_of(cold_run, repeats)

        def warm_run():
            with Engine(store=DiskStore(root=tmp, version="bench")) as engine:
                return engine.run(spec)

        warm_seconds, warm_result = _best_of(warm_run, max(repeats, 5))
        if warm_result.cache != "warm" or warm_result.data != cold_result.data:
            raise RuntimeError("warm disk-store run diverged from the cold run")
        entries = DiskStore(root=tmp, version="bench").stats()["entries"]
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return {
        "benchmark": "engine-disk-warm-run",
        "spec_kind": spec.kind,
        "runs": cold_result.data["runs"],
        "store_entries": entries,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup_warm_disk": (
            cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
        ),
    }


def measure_grid_resume(points: int = 200, repeats: int = 2) -> Dict[str, object]:
    """Checkpointing overhead and resume cost on a clean grid.

    Three runs over the same ``points``-point ``exploit_suite`` grid
    (distinct secrets force distinct end-to-end exploit campaigns, so
    every point is real work): plain in-memory execution, the same grid
    checkpointing every point through a fresh
    :class:`~repro.store.DiskStore`, and a resumed run against the
    populated store.  Each checkpointed repeat writes into its own fresh
    version directory so the timed region is exactly the campaign plus
    its durable per-point writes (no cleanup of a prior repeat).  The
    checkpointed and resumed envelopes must match the plain run
    byte-for-byte, the resume must recompute zero points
    (``resume_recomputed`` counts the store misses), and the ROADMAP
    floor caps ``overhead_fraction`` -- durability is only cheap
    insurance while the per-point write cost stays marginal.
    """
    import shutil
    import tempfile

    from .engine import Engine
    from .obs.trace import Tracer
    from .scenario import ScenarioGrid
    from .store import DiskStore

    grid = ScenarioGrid("exploit_suite", axes={"secret": list(range(points))})

    def plain_run():
        with Engine() as engine:
            return engine.run_grid(grid)

    plain_seconds, plain_result = _best_of(plain_run, repeats)

    # The tracing-off control: an attached-but-disabled tracer must cost
    # nothing but the `tracer is None` / `.enabled` checks on the hot path
    # (the ROADMAP pins the measured overhead at <= 2%).
    def trace_off_run():
        with Engine() as engine:
            engine.tracer = Tracer(enabled=False)
            return engine.run_grid(grid)

    trace_off_seconds, trace_off_result = _best_of(trace_off_run, repeats)
    if trace_off_result.data != plain_result.data:
        raise RuntimeError("tracer-disabled grid diverged from the plain run")
    tmp = tempfile.mkdtemp(prefix="repro-resume-bench-")
    try:
        versions = iter(f"bench{i}" for i in range(repeats))
        last_version = []

        def checkpoint_run():
            version = next(versions)
            last_version.append(version)
            with Engine(store=DiskStore(root=tmp, version=version)) as engine:
                return engine.run_grid(grid)

        checkpoint_seconds, checkpoint_result = _best_of(checkpoint_run, repeats)
        if checkpoint_result.data != plain_result.data:
            raise RuntimeError("checkpointed grid diverged from the plain run")

        def resume_run():
            store = DiskStore(root=tmp, version=last_version[-1])
            with Engine(store=store) as engine:
                result = engine.run_grid(grid)
            return store.stats()["misses"], result

        resume_seconds, (recomputed, resume_result) = _best_of(resume_run, repeats)
        if resume_result.data != plain_result.data:
            raise RuntimeError("resumed grid diverged from the plain run")
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return {
        "benchmark": "grid-resume-overhead",
        "points": points,
        "plain_seconds": plain_seconds,
        "checkpoint_seconds": checkpoint_seconds,
        "overhead_fraction": (
            checkpoint_seconds / plain_seconds - 1.0 if plain_seconds > 0 else 0.0
        ),
        "resume_seconds": resume_seconds,
        "resume_recomputed": recomputed,
        "speedup_resume": (
            plain_seconds / resume_seconds if resume_seconds > 0 else float("inf")
        ),
        "trace_off_seconds": trace_off_seconds,
        "trace_off_overhead_fraction": (
            trace_off_seconds / plain_seconds - 1.0 if plain_seconds > 0 else 0.0
        ),
    }


def measure_service_throughput(
    clients: int = 8,
    per_client: int = 10,
    overlap: float = 0.5,
) -> Dict[str, object]:
    """The load-generator benchmark: N concurrent clients, overlapping specs.

    Starts an in-process analysis service over one engine + one fresh
    :class:`~repro.store.DiskStore`, then fires ``clients`` threads each
    submitting ``per_client`` cheap exploit specs of which ``overlap`` are
    shared across all clients.  Perfect single-flight + store dedup means
    the engine computes exactly ``unique_specs`` points -- the benchmark
    *asserts* that (a violated assertion is a dedup regression, not a slow
    run) -- and the dedup hit-rate / p50 / p99 land in BENCH_core.json
    with a floor in ``repro perf --check``.
    """
    import shutil
    import tempfile

    from .engine import Engine
    from .service.loadgen import overlapping_workload, run_load
    from .service.server import ServiceConfig, ServiceThread
    from .store import DiskStore

    workload, unique = overlapping_workload(clients, per_client, overlap)
    total_requests = sum(len(requests) for requests in workload)
    tmp = tempfile.mkdtemp(prefix="repro-service-bench-")
    try:
        engine = Engine(store=DiskStore(root=tmp, version="bench"))
        config = ServiceConfig(queue_depth=max(64, total_requests))
        with ServiceThread(engine=engine, config=config) as handle:
            report = run_load(handle.url, workload, unique)
        computed_runs = sum(
            count
            for kind, count in engine.stats()["runs"].items()
            if kind not in ("grid",)
        )
        engine.close()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    if report.errors or report.rejected:
        raise RuntimeError(
            f"service load run degraded: {report.errors} errors, "
            f"{report.rejected} rejections"
        )
    if computed_runs != unique:
        raise RuntimeError(
            f"single-flight dedup violated: {computed_runs} computes for "
            f"{unique} unique specs"
        )
    return {
        "benchmark": "service-throughput",
        "clients": clients,
        "requests": total_requests,
        "unique_specs": unique,
        "computed": computed_runs,
        "perfect_dedup": computed_runs == unique,
        "dedup_hit_rate": report.dedup_hit_rate,
        "completed": report.completed,
        "elapsed_seconds": report.elapsed_seconds,
        "requests_per_second": report.requests_per_second,
        "p50_ms": report.p50_ms,
        "p99_ms": report.p99_ms,
        "latency_by_source": report.latency_by_source,
    }


def _legacy_attack_space_rows() -> List[Tuple]:
    """The pre-engine sweep: one graph build + full analysis per combination."""
    from .attacks.generator import enumerate_attack_space
    from .defenses.evaluation import attack_succeeds

    rows = []
    for attack in sorted(enumerate_attack_space(), key=lambda a: a.key):
        graph = attack.build_graph()
        rows.append(
            (
                attack.key,
                attack.is_published,
                attack_succeeds(graph),
                len(graph.find_vulnerabilities()),
                len(graph.all_racing_pairs()),
            )
        )
    return rows


def measure_engine_attack_space(workers: int = 2, repeats: int = 3) -> Dict[str, object]:
    """Serial free-function sweep vs the engine's sharded attack-space sweep.

    The engine wins twice over: structurally identical ``(source, delay)``
    combinations share one graph build + leak analysis via the verdict
    cache, and the remaining work is sharded over the session's process
    pool.  The serial baseline is the pre-engine per-combination sweep.
    """
    from .engine import Engine

    legacy_seconds, legacy_rows = _best_of(_legacy_attack_space_rows, repeats)
    serial_seconds, serial_result = _best_of(lambda: Engine().synthesize(), repeats)
    with Engine() as engine:
        engine.map(abs, [-1, 1], parallel=workers)  # spin up the session pool

        def sharded_cold_sweep():
            # Drop the session's synth caches so every repeat measures a
            # cold sharded sweep (with a warm pool), not a cache replay.
            engine.invalidate("synth_verdicts")
            engine.invalidate("synth_graphs")
            return engine.synthesize(parallel=workers)

        sharded_seconds, sharded_result = _best_of(sharded_cold_sweep, repeats)
    if sharded_result.data != serial_result.data:
        raise RuntimeError("sharded attack-space sweep diverged from serial")
    legacy_leaks = sum(1 for row in legacy_rows if row[2])
    if legacy_leaks != sharded_result.data["leaking"]:
        raise RuntimeError("engine sweep diverged from the legacy baseline")
    return {
        "benchmark": "engine-attack-space-sharded",
        "combinations": sharded_result.data["combinations"],
        "workers": workers,
        "serial_seconds": legacy_seconds,
        "engine_serial_seconds": serial_seconds,
        "engine_sharded_seconds": sharded_seconds,
        "speedup_sharded_vs_serial": (
            legacy_seconds / sharded_seconds if sharded_seconds > 0 else float("inf")
        ),
        "speedup_engine_serial_vs_serial": (
            legacy_seconds / serial_seconds if serial_seconds > 0 else float("inf")
        ),
    }


# ----------------------------------------------------------------------
# Timing-core benchmarks (PR 3): event-driven scheduler vs per-cycle rescan
# ----------------------------------------------------------------------
def build_timing_program(instructions: int = 500, load_every: int = 7):
    """A straight-line program of ``instructions`` ops with serialized misses.

    Every ``load_every``-th instruction starts a load whose address depends
    on the previous load's value, so the miss chain serializes (~200 cycles
    per link) and the schedule stretches to thousands of mostly idle cycles
    -- the workload shape that separates an event queue (skips idle cycles)
    from a per-cycle rescan (pays for every one of them).
    """
    from .isa.instructions import Alu, Halt, Load, Mov
    from .isa.operands import imm, mem, reg
    from .isa.program import Program

    program = Program(name=f"timing-{instructions}i")
    program.declare("workload", 0x0200_0000, 1 << 23)
    program.append(Mov(reg("rbx"), imm(0)))
    while len(program) < instructions - 1:
        if len(program) % load_every == 0:
            # rax <- mem[workload + rbx] (miss: a fresh page each time), then
            # rbx <- rbx + rax + 4096: the next load depends on this one.
            program.append(Load(reg("rax"), mem(base="rbx", symbol="workload")))
            program.append(Alu("add", reg("rax"), imm(4096)))
            program.append(Alu("add", reg("rbx"), reg("rax")))
        else:
            program.append(Alu("xor", reg("rcx"), imm(len(program) & 0xFF)))
    program.append(Halt())
    return program


def measure_timing_scheduler(
    instructions: int = 500,
    repeats: int = 3,
    model: Optional["TimingModel"] = None,
    benchmark: str = "timing-event-queue",
) -> Dict[str, object]:
    """Event-driven OoO scheduler vs the naive rescan baseline on one stream.

    The dynamic-op stream is recorded once by the functional front-end; both
    schedulers then assign cycles to the *same* stream and must produce
    identical schedules (the differential check below), so the speedup is a
    pure scheduling-engine comparison.  ``model`` selects the timing model --
    pass a contended one to measure the arbitrated (port/CDB) event path
    against the rescan loop doing the same arbitration per cycle.
    """
    from .uarch.timing import DEFAULT_MODEL, EventScheduler, RescanScheduler, TimingCPU

    timing_model = DEFAULT_MODEL if model is None else model
    program = build_timing_program(instructions)
    cpu = TimingCPU(program)
    cpu.run()
    ops = cpu.last_ops
    event_seconds, event_schedule = _best_of(
        lambda: EventScheduler(timing_model).schedule(ops), repeats
    )
    rescan_seconds, rescan_schedule = _best_of(
        lambda: RescanScheduler(timing_model).schedule(ops), max(1, repeats - 2)
    )
    if event_schedule != rescan_schedule:
        raise RuntimeError("event-driven and rescan schedulers diverged")
    return {
        "benchmark": benchmark,
        "contended": timing_model.contended,
        "instructions": len(ops),
        "cycles": event_schedule.cycles,
        "event_seconds": event_seconds,
        "rescan_seconds": rescan_seconds,
        "speedup_event_vs_rescan": (
            rescan_seconds / event_seconds if event_seconds > 0 else float("inf")
        ),
    }


def measure_contended_scheduler(
    instructions: int = 500, repeats: int = 3
) -> Dict[str, object]:
    """The event engine under port/CDB contention vs the contended rescan.

    Uses the realistic contended reference core (two ALU / two load-store
    ports, single branch/mul ports, width-2 CDB): the event path pays for
    port queues and per-cycle CDB budgets only when ops actually arbitrate,
    while the rescan baseline re-walks every in-flight op every cycle either
    way -- the speedup floor keeps the arbitrated path honest as programs
    grow.
    """
    from .uarch.timing import CONTENDED_MODEL

    return measure_timing_scheduler(
        instructions=instructions,
        repeats=repeats,
        model=CONTENDED_MODEL,
        benchmark="timing-event-queue-contended",
    )


def measure_timing_batch(
    epochs: int = 10,
    defense: str = "PREVENT_SPECULATIVE_LOADS",
    repeats: int = 2,
) -> Dict[str, object]:
    """``Engine.simulate_batch`` vs the per-point loop on a campaign workload.

    The workload is campaign-shaped: ``epochs`` passes over the full attack
    registry x {undefended, one defense} grid -- the shape fuzzing sweeps,
    resumed campaigns and overlapping service traffic produce, where most
    points repeat a simulation some earlier point already paid for.  The
    per-point baseline executes every point in isolation (a fresh engine
    per point: the execution model of the supervised per-point task plane,
    minus IPC, which makes it a *conservative* baseline), while the batch
    plane serves the identical list through one warm session whose
    simulation cache and TSG-verdict memo amortize across the campaign.
    Both paths must produce identical rows -- the differential check below
    raises on divergence -- so the speedup is pure amortization, never a
    changed answer.
    """
    from .engine import Engine, _batch_point_spec
    from .uarch.timing.validate import SCENARIOS

    attacks = sorted(SCENARIOS)
    base_points = [{"attack": attack} for attack in attacks] + [
        {"attack": attack, "defenses": (defense,)} for attack in attacks
    ]
    points = base_points * epochs
    specs = [_batch_point_spec(point) for point in points]

    def per_point_loop() -> List[Dict[str, object]]:
        return [Engine().run(spec).data for spec in specs]

    def batch():
        return Engine().simulate_batch(points)

    per_point_seconds, per_point_rows = _best_of(per_point_loop, max(1, repeats - 1))
    batch_seconds, batch_result = _best_of(batch, repeats)
    if batch_result.data["rows"] != per_point_rows:
        raise RuntimeError("simulate_batch rows diverged from the per-point loop")
    count = len(points)
    return {
        "benchmark": "timing-batch",
        "points": count,
        "epochs": epochs,
        "unique_simulations": batch_result.data["unique_simulations"],
        "per_point_seconds": per_point_seconds,
        "batch_seconds": batch_seconds,
        "per_point_points_per_second": (
            count / per_point_seconds if per_point_seconds > 0 else float("inf")
        ),
        "batch_points_per_second": (
            count / batch_seconds if batch_seconds > 0 else float("inf")
        ),
        "speedup_batch_vs_per_point": (
            per_point_seconds / batch_seconds if batch_seconds > 0 else float("inf")
        ),
    }


def measure_fuzz_throughput(count: int = 96, repeats: int = 2) -> Dict[str, object]:
    """The differential fuzzing campaign's end-to-end program rate.

    Runs one seeded ``fuzz_campaign`` (generator -> both oracles per point,
    serial, no store) and reports programs/second.  The record doubles as
    the dual-oracle soundness pin: a clean campaign must report *zero*
    disagreements -- the TSG structural verdict and the cycle-accurate
    transmit/squash race answering differently on any generated gadget is a
    correctness regression, not a perf one, and ``repro perf --check``
    fails on it outright.
    """
    from .engine import Engine

    def campaign():
        return Engine().run_fuzz_campaign(seed=0, count=count)

    seconds, result = _best_of(campaign, repeats)
    data = result.data
    return {
        "benchmark": "fuzz-throughput",
        "count": count,
        "executed": data["executed"],
        "seconds": seconds,
        "points_per_second": (data["executed"] / seconds) if seconds > 0 else float("inf"),
        "buckets": data["buckets"],
        "disagreed": data["disagreed"],
        "quarantined": data["quarantined"],
    }


def run_perf_suite(
    sizes: Sequence[Tuple[int, int, int]] = DEFAULT_SIZES,
    baseline_pair_budget: int = 4000,
    repeats: int = 3,
    include_engine: bool = True,
    engine_workers: int = 2,
    include_timing: bool = True,
    timing_instructions: int = 500,
) -> Dict[str, object]:
    """Run the full suite and return one commit-stamped run record."""
    results = []
    for vertices, width, extra in sizes:
        graph = build_layered_dag(vertices, width=width, extra_edges=extra)
        results.append(
            measure_graph(
                graph,
                baseline_pair_budget=baseline_pair_budget,
                repeats=repeats,
            )
        )
    run: Dict[str, object] = {
        "commit": _git_commit(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "results": results,
    }
    if include_engine:
        run["engine_results"] = [
            measure_engine_analyze(repeats=repeats),
            measure_engine_attack_space(workers=engine_workers, repeats=repeats),
            measure_disk_store(repeats=repeats),
            measure_grid_resume(repeats=min(repeats, 2)),
            measure_service_throughput(),
        ]
    if include_timing:
        run["timing_results"] = [
            measure_timing_scheduler(instructions=timing_instructions, repeats=repeats),
            measure_contended_scheduler(
                instructions=timing_instructions, repeats=repeats
            ),
            measure_timing_batch(),
        ]
    if include_engine:
        run["fuzz_results"] = [measure_fuzz_throughput()]
    return run


def _git_commit() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                check=True,
                timeout=10,
            ).stdout.strip()
        )
    except Exception:  # pragma: no cover - git absent or not a repo
        return "unknown"


def append_run(path: str, run: Dict[str, object]) -> Dict[str, object]:
    """Append one run to the ``BENCH_core.json`` trajectory file."""
    target = Path(path)
    if target.exists():
        trajectory = json.loads(target.read_text(encoding="utf-8"))
    else:
        trajectory = {"benchmark": "tsg-core-perf", "runs": []}
    trajectory["runs"].append(run)
    target.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")
    return trajectory


#: ROADMAP regression thresholds enforced by :func:`check_thresholds`.
THRESHOLDS = {
    "all_pairs_speedup_min": 10.0,  # closure vs seed BFS, every graph size
    "warm_analyze_speedup_min": 5.0,  # warm Engine.analyze vs cold build
    "sharded_sweep_speedup_min": 1.0,  # sharded sweep not slower than serial
    # A warm DiskStore hit in a fresh process/session must beat recomputing
    # the spec by a wide margin -- the point of the persistent artifact cache.
    "disk_warm_speedup_min": 5.0,
    "timing_event_speedup_min": 5.0,  # event queue vs per-cycle rescan
    # The arbitrated (port/CDB contention) event path must keep beating the
    # contended rescan loop by the same margin class.
    "timing_contended_event_speedup_min": 5.0,
    # The batch simulation plane must serve a campaign-shaped point list at
    # >= 10x the points/sec of the isolated per-point loop (warm session
    # amortization -- the ROADMAP "Raw speed" floor).
    "timing_batch_speedup_min": 10.0,
    # Checkpointing every grid point through the DiskStore must stay cheap
    # insurance: <= 10% over the plain in-memory grid on a clean 200-point
    # run, and a resume against the populated store recomputes nothing.
    "grid_resume_overhead_max": 0.10,
    # An attached-but-disabled Tracer must be free: the engine's hot path
    # pays only a `tracer is None` / `.enabled` check per run, so the
    # tracing-off grid run stays within 2% of no tracer at all.
    "trace_off_overhead_max": 0.02,
    # The analysis service must dedup the 50%-overlap load: with 8 clients
    # sharing half their specs the ideal hit-rate is ~0.44 (35/80); the
    # floor leaves headroom for workload-shape tweaks but catches a broken
    # single-flight (hit-rate 0) immediately.  Computed-equals-unique is
    # additionally pinned exactly via the record's perfect_dedup flag.
    "service_dedup_hit_rate_min": 0.30,
    # The differential fuzzing campaign must push whole generated programs
    # through BOTH oracles (graph build + TSG verdict + cycle-accurate
    # timing run) at a usable campaign rate.  Measured ~600 points/s
    # serial; the floor leaves a wide machine-variance margin while still
    # catching an accidental O(n^2) in the generator or harness.  The same
    # record pins disagreed == 0: the two oracles answering differently on
    # a clean campaign is a soundness bug, enforced alongside the floors.
    "fuzz_points_per_second_min": 50.0,
}


def _latest_run_with(trajectory: Dict[str, object], key: str) -> Optional[Dict]:
    for run in reversed(trajectory.get("runs", [])):  # type: ignore[union-attr]
        if run.get(key):
            return run
    return None


def check_thresholds(trajectory: Dict[str, object]) -> List[str]:
    """Check the latest trajectory records against the ROADMAP thresholds.

    Returns a list of human-readable failures (empty when everything holds).
    Each benchmark family is checked on the most recent run that contains it,
    so quick smoke runs (which skip the engine benchmarks) do not mask a
    previously recorded full run.
    """
    failures: List[str] = []

    graph_run = _latest_run_with(trajectory, "results")
    if graph_run is None:
        failures.append("no core (all-pairs race) benchmark recorded")
    else:
        for record in graph_run["results"]:
            speedup = record["speedup_all_pairs"]
            if speedup < THRESHOLDS["all_pairs_speedup_min"]:
                failures.append(
                    f"{record['graph']}: all-pairs race speedup {speedup:.1f}x "
                    f"below the {THRESHOLDS['all_pairs_speedup_min']:.0f}x floor"
                )

    engine_run = _latest_run_with(trajectory, "engine_results")
    if engine_run is None:
        failures.append("no engine benchmark recorded")
    else:
        disk_seen = False
        resume_seen = False
        service_seen = False
        for record in engine_run["engine_results"]:
            if record["benchmark"] == "engine-analyze-warm-cache":
                if record["speedup_warm"] < THRESHOLDS["warm_analyze_speedup_min"]:
                    failures.append(
                        f"warm Engine.analyze speedup {record['speedup_warm']:.1f}x "
                        f"below the {THRESHOLDS['warm_analyze_speedup_min']:.0f}x floor"
                    )
            elif record["benchmark"] == "engine-attack-space-sharded":
                speedup = record["speedup_sharded_vs_serial"]
                if speedup < THRESHOLDS["sharded_sweep_speedup_min"]:
                    failures.append(
                        f"sharded attack-space sweep {speedup:.2f}x: slower than "
                        "the serial free-function baseline"
                    )
            elif record["benchmark"] == "engine-disk-warm-run":
                disk_seen = True
                speedup = record["speedup_warm_disk"]
                if speedup < THRESHOLDS["disk_warm_speedup_min"]:
                    failures.append(
                        f"warm DiskStore run {speedup:.1f}x over cold, below "
                        f"the {THRESHOLDS['disk_warm_speedup_min']:.0f}x floor"
                    )
            elif record["benchmark"] == "grid-resume-overhead":
                resume_seen = True
                overhead = record["overhead_fraction"]
                if overhead > THRESHOLDS["grid_resume_overhead_max"]:
                    failures.append(
                        f"grid checkpointing overhead {overhead:.1%} on "
                        f"{record['points']} points, above the "
                        f"{THRESHOLDS['grid_resume_overhead_max']:.0%} ceiling"
                    )
                if record.get("resume_recomputed", 0) != 0:
                    failures.append(
                        f"grid resume recomputed {record['resume_recomputed']} "
                        "checkpointed points (expected 0)"
                    )
                trace_off = record.get("trace_off_overhead_fraction")
                if trace_off is None:
                    failures.append(
                        "grid-resume record lacks the tracing-off overhead "
                        "measurement (re-run repro perf)"
                    )
                elif trace_off > THRESHOLDS["trace_off_overhead_max"]:
                    failures.append(
                        f"disabled-tracer grid overhead {trace_off:.1%} on "
                        f"{record['points']} points, above the "
                        f"{THRESHOLDS['trace_off_overhead_max']:.0%} ceiling"
                    )
            elif record["benchmark"] == "service-throughput":
                service_seen = True
                hit_rate = record["dedup_hit_rate"]
                if hit_rate < THRESHOLDS["service_dedup_hit_rate_min"]:
                    failures.append(
                        f"service dedup hit-rate {hit_rate:.1%} on "
                        f"{record['clients']} clients x {record['requests']} "
                        f"requests, below the "
                        f"{THRESHOLDS['service_dedup_hit_rate_min']:.0%} floor"
                    )
                if not record.get("perfect_dedup", False):
                    failures.append(
                        f"service computed {record['computed']} points for "
                        f"{record['unique_specs']} unique specs (single-flight "
                        "+ store dedup must make these equal)"
                    )
        if not disk_seen:
            failures.append("no disk-store (warm spec run) benchmark recorded")
        if not resume_seen:
            failures.append("no grid-resume (checkpointed grid) benchmark recorded")
        if not service_seen:
            failures.append("no service-throughput (load generator) benchmark recorded")

    timing_run = _latest_run_with(trajectory, "timing_results")
    if timing_run is None:
        failures.append("no timing-scheduler benchmark recorded")
    else:
        contended_seen = False
        batch_seen = False
        for record in timing_run["timing_results"]:
            if record.get("benchmark") == "timing-batch":
                batch_seen = True
                speedup = record["speedup_batch_vs_per_point"]
                floor = THRESHOLDS["timing_batch_speedup_min"]
                if speedup < floor:
                    failures.append(
                        f"simulate_batch {speedup:.1f}x points/sec over the "
                        f"per-point loop on {record['points']} points, below "
                        f"the {floor:.0f}x floor"
                    )
                continue
            speedup = record["speedup_event_vs_rescan"]
            if record.get("benchmark") == "timing-event-queue-contended":
                contended_seen = True
                floor = THRESHOLDS["timing_contended_event_speedup_min"]
                label = "contended event-queue scheduler"
            else:
                floor = THRESHOLDS["timing_event_speedup_min"]
                label = "event-queue scheduler"
            if speedup < floor:
                failures.append(
                    f"{label} {speedup:.1f}x over rescan on "
                    f"{record['instructions']} instructions, below the "
                    f"{floor:.0f}x floor"
                )
        if not contended_seen:
            failures.append("no contended event-scheduler benchmark recorded")
        if not batch_seen:
            failures.append("no timing-batch (simulate_batch) benchmark recorded")

    fuzz_run = _latest_run_with(trajectory, "fuzz_results")
    if fuzz_run is None:
        failures.append("no fuzz-throughput (differential campaign) benchmark recorded")
    else:
        for record in fuzz_run["fuzz_results"]:
            rate = record["points_per_second"]
            floor = THRESHOLDS["fuzz_points_per_second_min"]
            if rate < floor:
                failures.append(
                    f"fuzz campaign {rate:.0f} programs/s on "
                    f"{record['count']} points, below the {floor:.0f}/s floor"
                )
            if record.get("disagreed", 0) != 0:
                failures.append(
                    f"fuzz campaign recorded {record['disagreed']} oracle "
                    "disagreement(s) on a clean run (TSG vs timing must "
                    "agree on every generated gadget)"
                )
            if record.get("quarantined", 0) != 0:
                failures.append(
                    f"fuzz campaign quarantined {record['quarantined']} "
                    "point(s) on a clean run (expected 0)"
                )

    return failures


def threshold_report(trajectory: Dict[str, object]) -> List[Dict[str, object]]:
    """One row per ROADMAP floor: check, bound, observed value, pass/fail.

    The table behind ``repro perf --check``: every threshold in
    :data:`THRESHOLDS` (plus the two exact invariants -- zero resume
    recomputes and computed-equals-unique dedup) is shown against the
    value the latest relevant run recorded.  A floor whose benchmark
    family was never recorded reports ``missing`` and fails.
    """
    rows: List[Dict[str, object]] = []

    def add(check: str, bound: str, observed: Optional[float],
            ok: bool, fmt: str = "{:.1f}x") -> None:
        rows.append({
            "check": check,
            "bound": bound,
            "observed": fmt.format(observed) if observed is not None else "missing",
            "ok": observed is not None and ok,
        })

    graph_run = _latest_run_with(trajectory, "results")
    speedups = (
        [record["speedup_all_pairs"] for record in graph_run["results"]]
        if graph_run and graph_run["results"] else []
    )
    worst = min(speedups) if speedups else None
    add("all-pairs race speedup (worst graph)",
        f">= {THRESHOLDS['all_pairs_speedup_min']:.0f}x",
        worst, worst is not None and worst >= THRESHOLDS["all_pairs_speedup_min"])

    engine_run = _latest_run_with(trajectory, "engine_results")
    records = (
        {record["benchmark"]: record for record in engine_run["engine_results"]}
        if engine_run else {}
    )
    warm = records.get("engine-analyze-warm-cache", {}).get("speedup_warm")
    add("warm Engine.analyze speedup",
        f">= {THRESHOLDS['warm_analyze_speedup_min']:.0f}x",
        warm, warm is not None and warm >= THRESHOLDS["warm_analyze_speedup_min"])
    sharded = records.get(
        "engine-attack-space-sharded", {}
    ).get("speedup_sharded_vs_serial")
    add("sharded attack-space sweep vs serial",
        f">= {THRESHOLDS['sharded_sweep_speedup_min']:.0f}x",
        sharded,
        sharded is not None and sharded >= THRESHOLDS["sharded_sweep_speedup_min"],
        fmt="{:.2f}x")
    disk = records.get("engine-disk-warm-run", {}).get("speedup_warm_disk")
    add("warm DiskStore run vs cold",
        f">= {THRESHOLDS['disk_warm_speedup_min']:.0f}x",
        disk, disk is not None and disk >= THRESHOLDS["disk_warm_speedup_min"])
    resume = records.get("grid-resume-overhead", {})
    overhead = resume.get("overhead_fraction")
    add("grid checkpointing overhead",
        f"<= {THRESHOLDS['grid_resume_overhead_max']:.0%}",
        overhead,
        overhead is not None and overhead <= THRESHOLDS["grid_resume_overhead_max"],
        fmt="{:.1%}")
    recomputed = resume.get("resume_recomputed")
    add("grid resume recomputed points", "== 0",
        recomputed, recomputed == 0, fmt="{:.0f}")
    trace_off = resume.get("trace_off_overhead_fraction")
    add("tracing-off grid overhead",
        f"<= {THRESHOLDS['trace_off_overhead_max']:.0%}",
        trace_off,
        trace_off is not None and trace_off <= THRESHOLDS["trace_off_overhead_max"],
        fmt="{:.1%}")
    service = records.get("service-throughput", {})
    hit_rate = service.get("dedup_hit_rate")
    add("service dedup hit-rate",
        f">= {THRESHOLDS['service_dedup_hit_rate_min']:.0%}",
        hit_rate,
        hit_rate is not None
        and hit_rate >= THRESHOLDS["service_dedup_hit_rate_min"],
        fmt="{:.1%}")
    computed = service.get("computed")
    add("service computed points (vs unique specs)",
        f"== {service.get('unique_specs', '?')}",
        computed, bool(service.get("perfect_dedup", False)), fmt="{:.0f}")

    timing_run = _latest_run_with(trajectory, "timing_results")
    plain_speedups: List[float] = []
    contended_speedups: List[float] = []
    batch_speedups: List[float] = []
    for record in (timing_run or {}).get("timing_results", []):
        if record.get("benchmark") == "timing-batch":
            batch_speedups.append(record["speedup_batch_vs_per_point"])
            continue
        bucket = (
            contended_speedups
            if record.get("benchmark") == "timing-event-queue-contended"
            else plain_speedups
        )
        bucket.append(record["speedup_event_vs_rescan"])
    timing = min(plain_speedups) if plain_speedups else None
    add("event-queue scheduler vs rescan",
        f">= {THRESHOLDS['timing_event_speedup_min']:.0f}x",
        timing,
        timing is not None and timing >= THRESHOLDS["timing_event_speedup_min"])
    contended = min(contended_speedups) if contended_speedups else None
    add("contended event-queue scheduler vs rescan",
        f">= {THRESHOLDS['timing_contended_event_speedup_min']:.0f}x",
        contended,
        contended is not None
        and contended >= THRESHOLDS["timing_contended_event_speedup_min"])
    batch = min(batch_speedups) if batch_speedups else None
    add("simulate_batch points/sec vs per-point loop",
        f">= {THRESHOLDS['timing_batch_speedup_min']:.0f}x",
        batch,
        batch is not None and batch >= THRESHOLDS["timing_batch_speedup_min"])

    fuzz_run = _latest_run_with(trajectory, "fuzz_results")
    fuzz = (
        {record["benchmark"]: record for record in fuzz_run["fuzz_results"]}
        if fuzz_run else {}
    ).get("fuzz-throughput", {})
    rate = fuzz.get("points_per_second")
    add("fuzz campaign programs/sec (both oracles)",
        f">= {THRESHOLDS['fuzz_points_per_second_min']:.0f}/s",
        rate,
        rate is not None and rate >= THRESHOLDS["fuzz_points_per_second_min"],
        fmt="{:.0f}/s")
    disagreed = fuzz.get("disagreed")
    add("fuzz campaign oracle disagreements", "== 0",
        disagreed, disagreed == 0, fmt="{:.0f}")
    return rows


def format_threshold_report(rows: List[Dict[str, object]]) -> List[str]:
    """The :func:`threshold_report` rows as aligned ``PASS``/``FAIL`` lines."""
    headers = ("check", "bound", "observed", "status")
    table = [
        (row["check"], row["bound"], row["observed"],
         "PASS" if row["ok"] else "FAIL")
        for row in rows
    ]
    # ``max(header, *rows)`` with an empty table would unpack zero column
    # entries and try to iterate the lone int -- list form keeps it total.
    widths = [
        max([len(str(headers[column])),
             *(len(str(line[column])) for line in table)])
        for column in range(len(headers))
    ]
    lines = [
        "  ".join(str(cell).ljust(width) for cell, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    lines.extend(
        "  ".join(str(cell).ljust(width) for cell, width in zip(line, widths))
        for line in table
    )
    return lines


def check_trajectory(path: str) -> List[str]:
    """Load a ``BENCH_core.json`` file and run :func:`check_thresholds`."""
    target = Path(path)
    if not target.exists():
        return [f"trajectory file {path!r} does not exist"]
    return check_thresholds(json.loads(target.read_text(encoding="utf-8")))


def stale_records(trajectory: Dict[str, object]) -> List[str]:
    """Benchmark families whose latest record predates the HEAD commit.

    ``repro perf --check`` compares floors against the most recent run of
    each family; when that run was stamped by a *different* commit than the
    working tree's HEAD, the table silently grades old code.  Returns one
    human-readable line per stale family (empty when every checked record
    matches HEAD, or when no commit can be resolved at all).
    """
    head = _git_commit()
    if head == "unknown":
        return []
    stale = []
    for key, label in (
        ("results", "core (all-pairs race)"),
        ("engine_results", "engine"),
        ("timing_results", "timing-scheduler"),
        ("fuzz_results", "fuzz-throughput"),
    ):
        run = _latest_run_with(trajectory, key)
        if run is None:
            continue  # the missing-family failure is check_thresholds' job
        commit = run.get("commit", "unknown")
        if commit != head:
            stale.append(
                f"latest {label} record is from commit {str(commit)[:12]}, "
                f"but HEAD is {head[:12]} (re-run `repro perf`)"
            )
    return stale


def run_check(path: str, allow_stale: bool = False) -> int:
    """CLI body shared by ``repro perf --check`` and ``run_perf.py --check``.

    Prints the full pass/fail table of every ROADMAP floor, then one
    ``FAIL: ...`` line per violated threshold (or the all-clear), and
    returns the process exit code.  A latest record stamped by a commit
    other than HEAD is graded as a failure -- the floors would silently
    certify old code -- unless ``allow_stale`` downgrades it to a warning.
    """
    target = Path(path)
    if not target.exists():
        print(f"FAIL: trajectory file {path!r} does not exist")
        return 1
    trajectory = json.loads(target.read_text(encoding="utf-8"))
    for line in format_threshold_report(threshold_report(trajectory)):
        print(line)
    print()
    stale = stale_records(trajectory)
    for line in stale:
        label = "WARNING (stale, tolerated)" if allow_stale else "FAIL"
        print(f"{label}: {line}")
    failures = check_thresholds(trajectory)
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures and not stale:
        print(f"{path}: all perf thresholds hold")
    elif not failures and allow_stale:
        print(f"{path}: all perf thresholds hold (stale records tolerated)")
    if failures:
        return 1
    return 1 if (stale and not allow_stale) else 0


def main(
    output: str = "BENCH_core.json", quick: bool = False, full: bool = False
) -> Dict[str, object]:
    """Entry point shared by ``benchmarks/run_perf.py`` and ``repro perf``.

    ``quick`` is the CI smoke path: two graph sizes, one repeat, a shorter
    timing program, and no engine benchmarks (spawning the process pool
    dominates on small budgets).  The default run keeps the timing-scheduler
    comparison on the 200-instruction program -- the full 500-instruction
    rescan baseline takes most of the suite's wall clock (that O(cycles x
    in-flight) cost is the point of the event engine) and is demoted behind
    ``full``, per the ROADMAP perf-suite item.
    """
    parent = Path(output).resolve().parent
    if not parent.is_dir():
        raise SystemExit(
            f"cannot write {output!r}: directory {str(parent)!r} does not exist"
        )
    run = run_perf_suite(
        sizes=DEFAULT_SIZES[:2] if quick else DEFAULT_SIZES,
        baseline_pair_budget=1500 if quick else 4000,
        repeats=1 if quick else 3,
        include_engine=not quick,
        timing_instructions=500 if full else 200,
    )
    append_run(output, run)
    return run


def format_engine_records(run: Dict[str, object]) -> List[str]:
    """Human-readable lines for the engine + timing benchmark records of one run."""
    lines = []
    for record in run.get("timing_results", ()):  # type: ignore[union-attr]
        if record.get("benchmark") == "timing-batch":
            lines.append(
                f"timing batch ({record['points']} points, "
                f"{record['unique_simulations']} unique sims): per-point loop "
                f"{record['per_point_points_per_second']:.0f} pts/s vs batch "
                f"{record['batch_points_per_second']:.0f} pts/s -> "
                f"{record['speedup_batch_vs_per_point']:.1f}x"
            )
            continue
        flavor = "contended " if record.get("contended") else ""
        lines.append(
            f"{flavor}timing scheduler ({record['instructions']} instructions, "
            f"{record['cycles']} cycles): event queue "
            f"{record['event_seconds'] * 1e3:.2f} ms vs rescan "
            f"{record['rescan_seconds'] * 1e3:.1f} ms -> "
            f"{record['speedup_event_vs_rescan']:.1f}x"
        )
    for record in run.get("fuzz_results", ()):  # type: ignore[union-attr]
        lines.append(
            f"fuzz campaign ({record['count']} generated programs, "
            f"{record['buckets']} buckets): {record['points_per_second']:.0f} "
            f"programs/s through both oracles, {record['disagreed']} "
            f"disagreements, {record['quarantined']} quarantined"
        )
    for record in run.get("engine_results", ()):  # type: ignore[union-attr]
        if record["benchmark"] == "engine-analyze-warm-cache":
            lines.append(
                f"engine analyze ({record['gadgets']} gadgets, {record['vertices']}v): "
                f"cold {record['cold_seconds'] * 1e3:.2f} ms vs warm "
                f"{record['warm_seconds'] * 1e6:.1f} us -> "
                f"{record['speedup_warm']:.0f}x warm-cache speedup"
            )
        elif record["benchmark"] == "engine-attack-space-sharded":
            lines.append(
                f"attack space ({record['combinations']} combos): serial sweep "
                f"{record['serial_seconds'] * 1e3:.1f} ms vs engine sharded "
                f"(x{record['workers']}) {record['engine_sharded_seconds'] * 1e3:.1f} ms "
                f"-> {record['speedup_sharded_vs_serial']:.1f}x"
            )
        elif record["benchmark"] == "engine-disk-warm-run":
            lines.append(
                f"disk store ({record['spec_kind']} spec, {record['runs']} runs): "
                f"cold {record['cold_seconds'] * 1e3:.1f} ms vs warm fresh-session "
                f"hit {record['warm_seconds'] * 1e3:.2f} ms -> "
                f"{record['speedup_warm_disk']:.0f}x disk-warm speedup"
            )
        elif record["benchmark"] == "grid-resume-overhead":
            lines.append(
                f"grid resume ({record['points']} points): plain "
                f"{record['plain_seconds'] * 1e3:.0f} ms vs checkpointed "
                f"{record['checkpoint_seconds'] * 1e3:.0f} ms "
                f"({record['overhead_fraction']:+.1%} overhead); resume "
                f"{record['resume_seconds'] * 1e3:.0f} ms recomputing "
                f"{record['resume_recomputed']} points; tracing off "
                f"{record['trace_off_seconds'] * 1e3:.0f} ms "
                f"({record['trace_off_overhead_fraction']:+.1%})"
            )
        elif record["benchmark"] == "service-throughput":
            lines.append(
                f"service load ({record['clients']} clients x "
                f"{record['requests'] // record['clients']} specs, "
                f"{record['unique_specs']} unique): {record['computed']} computed, "
                f"hit-rate {record['dedup_hit_rate']:.1%}, "
                f"{record['requests_per_second']:.0f} req/s, "
                f"p50 {record['p50_ms']:.1f} ms / p99 {record['p99_ms']:.1f} ms"
            )
    return lines
