"""Cross-process span tracing with a JSONL sink.

A :class:`Tracer` hands out context-manager :class:`Span` objects (name,
attrs, wall-clock start, monotonic duration, parent id) and keeps a
per-thread span stack so nested work parents itself automatically.  Two
extra moves make the traces *cross-process*:

* :class:`TraceContext` is a tiny picklable ``(trace_id, parent_id)``
  pair.  The engine ships one to each pool worker inside the existing
  ``(store_ref, faults, item)`` task tuples; the worker opens a
  collect-mode tracer (``sink=None``), runs its points under spans
  parented on the shipped context, and returns the finished span records
  *with* its results.  The parent absorbs them into its own sink, so one
  JSONL file holds the service request, the batch, the grid, the shard
  and the worker point -- a full request -> worker critical path.
* Spans that finish on a different thread than they started (service
  entries completed by the event loop, shard spans finished by
  ``as_completed``) are started ``detached=True``: they resolve their
  parent from the stack but never join it, so out-of-order finishes
  cannot corrupt sibling parentage.

The sink buffers up to ``buffer_limit`` records and flushes them as one
``write()`` on an append-mode handle -- concurrent flushes (or a second
process absorbed later) interleave whole lines, never partial ones.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Union


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """The picklable hop: which trace, and which span to parent on."""

    trace_id: str
    parent_id: Optional[str] = None


class Span:
    """One timed operation; finish via ``with`` or :meth:`Tracer.finish`."""

    __slots__ = (
        "name", "span_id", "trace_id", "parent_id", "attrs",
        "start", "_t0", "duration_ms", "_tracer", "_finished", "_detached",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        parent_id: Optional[str],
        attrs: Dict[str, object],
        detached: bool,
    ) -> None:
        self.name = name
        self.span_id = _new_id()
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.start = time.time()
        self._t0 = time.perf_counter()
        self.duration_ms: Optional[float] = None
        self._tracer = tracer
        self._finished = False
        self._detached = detached

    def set(self, **attrs: object) -> "Span":
        self.attrs.update(attrs)
        return self

    def context(self) -> TraceContext:
        """The context that parents child spans on this one."""
        return TraceContext(self.trace_id, self.span_id)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer.finish(self)

    def record(self) -> Dict[str, object]:
        return {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "pid": os.getpid(),
            "ts": self.start,
            "dur_ms": self.duration_ms,
            "attrs": self.attrs,
        }


class _NullSpan:
    """The disabled-tracer span: every operation is a no-op."""

    __slots__ = ()
    name = ""
    span_id = ""
    trace_id = ""
    parent_id = None
    duration_ms = None

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def context(self) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()


class _DroppedSpan:
    """A span inside a sampled-out tree.

    Unlike the shared :data:`NULL_SPAN`, a dropped span notifies its tracer
    on finish: the tracer counts unfinished dropped spans per thread, so
    every descendant started while a dropped ancestor is open joins the
    same dropped tree -- sampling decisions are per *tree*, never per span.
    ``context()`` is ``None``: a cross-process hop inside a dropped tree
    ships no context, and the worker runs untraced.
    """

    __slots__ = ("_tracer", "_finished")
    name = ""
    span_id = ""
    trace_id = ""
    parent_id = None
    duration_ms = None

    def __init__(self, tracer: "Tracer") -> None:
        self._tracer = tracer
        self._finished = False

    def set(self, **attrs: object) -> "_DroppedSpan":
        return self

    def context(self) -> None:
        return None

    def __enter__(self) -> "_DroppedSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.finish(self)


ParentLike = Union[None, Span, TraceContext, str]


class Tracer:
    """Span factory + sink.  ``sink=None`` collects records for harvesting.

    A tracer with a ``sink`` path appends JSONL records (buffered, flushed
    as single writes); a sink-less tracer runs in *collect mode* -- the
    pool-worker configuration -- where :meth:`drain` returns the finished
    records so they can travel back with the worker's results and be
    :meth:`absorb`-ed by the parent process.  ``enabled=False`` makes
    every ``span()`` call return the shared no-op span: the configuration
    the perf suite pins at <=2% overhead against no tracer at all.

    ``sample_rate`` head-samples whole span *trees*: when a root span (no
    open ancestor on its thread, no explicit parent) draws above the rate,
    it and every descendant -- including detached spans and anything
    started while it is open -- become dropped spans that emit nothing,
    and :meth:`current_context` returns ``None`` inside the dropped tree
    so pool workers run untraced rather than orphan half a tree.  Trees
    are kept or dropped atomically; a 1%-sampled fuzz campaign writes 1%
    of the *campaigns*, not a 1% shred of every campaign.  ``sample_seed``
    makes the decisions reproducible.
    """

    def __init__(
        self,
        sink: Optional[Union[str, "os.PathLike[str]"]] = None,
        *,
        trace_id: Optional[str] = None,
        buffer_limit: int = 256,
        enabled: bool = True,
        sample_rate: float = 1.0,
        sample_seed: Optional[int] = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate!r}"
            )
        self.enabled = enabled
        self.trace_id = trace_id or _new_id()
        self.sink = os.fspath(sink) if sink is not None else None
        self.buffer_limit = max(1, buffer_limit)
        self.sample_rate = sample_rate
        self._sample_rng = random.Random(sample_seed)
        self._buffer: List[str] = []
        self._collected: List[Dict[str, object]] = []
        self._handle = None
        self._lock = threading.Lock()
        self._local = threading.local()
        self._emitted = 0
        self._closed = False

    # -- span lifecycle -----------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _resolve_parent(self, parent: ParentLike) -> Optional[str]:
        if parent is None:
            stack = self._stack()
            return stack[-1].span_id if stack else None
        if isinstance(parent, Span):
            return parent.span_id
        if isinstance(parent, TraceContext):
            return parent.parent_id
        return parent

    def span(
        self, name: str, *, parent: ParentLike = None, detached: bool = False,
        **attrs: object,
    ) -> Union[Span, _NullSpan]:
        """Start a span (context manager).  ``parent`` overrides the thread
        stack -- pass the shipped :class:`TraceContext` on the worker side,
        or an explicit request span across threads."""
        if not self.enabled:
            return NULL_SPAN
        if self.sample_rate < 1.0:
            if self._drop_depth() > 0:
                # Inside a dropped tree: every span joins the drop.
                return self._start_dropped()
            if (
                parent is None
                and not self._stack()
                and self._sample_rng.random() >= self.sample_rate
            ):
                # A new root drew above the rate: drop the whole tree.
                return self._start_dropped()
        span = Span(self, name, self.trace_id, self._resolve_parent(parent),
                    dict(attrs), detached)
        if not detached:
            self._stack().append(span)
        return span

    def _drop_depth(self) -> int:
        return getattr(self._local, "drop_depth", 0)

    def _start_dropped(self) -> _DroppedSpan:
        self._local.drop_depth = self._drop_depth() + 1
        return _DroppedSpan(self)

    def finish(self, span: Union[Span, _NullSpan, _DroppedSpan]) -> None:
        if isinstance(span, _DroppedSpan):
            if not span._finished:
                span._finished = True
                self._local.drop_depth = max(0, self._drop_depth() - 1)
            return
        if isinstance(span, _NullSpan) or span._finished:
            return
        span._finished = True
        span.duration_ms = (time.perf_counter() - span._t0) * 1000.0
        if not span._detached:
            stack = self._stack()
            if span in stack:
                stack.remove(span)
        self._emit(span.record())

    def current_context(self) -> Optional[TraceContext]:
        """The context a cross-process hop should ship (``None`` when no
        span is open on this thread or the tracer is disabled).  Inside a
        sampled-out tree the context is ``None`` too: the hop's worker runs
        untraced instead of shipping spans nobody will keep."""
        if not self.enabled:
            return None
        if self._drop_depth() > 0:
            return None
        stack = self._stack()
        if not stack:
            return TraceContext(self.trace_id, None)
        return stack[-1].context()

    # -- sink ---------------------------------------------------------------
    def _emit(self, record: Dict[str, object]) -> None:
        with self._lock:
            self._emitted += 1
            if self.sink is None:
                self._collected.append(record)
                return
            self._buffer.append(json.dumps(record, sort_keys=True, default=str))
            if len(self._buffer) >= self.buffer_limit:
                self._flush_locked()

    def absorb(self, records: Sequence[Dict[str, object]]) -> int:
        """Adopt finished span records harvested from a worker process."""
        for record in records:
            self._emit(dict(record))
        return len(records)

    def drain(self) -> List[Dict[str, object]]:
        """Collect-mode harvest: the finished records, cleared."""
        with self._lock:
            records, self._collected = self._collected, []
        return records

    def _flush_locked(self) -> None:
        if not self._buffer:
            return
        if self._handle is None:
            self._handle = open(self.sink, "a", encoding="utf-8")
        self._handle.write("\n".join(self._buffer) + "\n")
        self._handle.flush()
        self._buffer.clear()

    def flush(self) -> None:
        with self._lock:
            if self.sink is not None:
                self._flush_locked()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self.sink is not None:
                self._flush_locked()
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def emitted(self) -> int:
        """Finished spans emitted (buffered, flushed or collected)."""
        return self._emitted


def read_trace(path: Union[str, "os.PathLike[str]"]) -> List[Dict[str, object]]:
    """Load a JSONL trace file (blank lines skipped)."""
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
